"""DNA sequence encoding utilities.

Alignment kernels operate on small-integer codes rather than Python strings:
every sequence is converted once, up front, into a contiguous ``numpy.uint8``
array so the hot anti-diagonal loops are pure vectorised integer comparisons
(the idiom recommended by the HPC-Python guides: encode once, compare many).

The canonical alphabet is::

    A -> 0, C -> 1, G -> 2, T -> 3, N -> 4 (wildcard, never matches)

Lower-case input is accepted.  ``N`` (and any IUPAC ambiguity code) maps to
the wildcard code which, by convention of the scoring module, never produces
a match — mirroring how SeqAn and ksw2 treat ambiguous bases with the simple
DNA scoring schemes used by LOGAN/BELLA.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from ..errors import SequenceError

__all__ = [
    "ALPHABET",
    "WILDCARD_CODE",
    "COMPLEMENT_CODE",
    "encode",
    "encode_batch",
    "decode",
    "reverse",
    "reverse_complement",
    "random_sequence",
    "is_encoded",
]

#: Canonical DNA alphabet in code order.
ALPHABET: str = "ACGTN"

#: Integer code assigned to ``N`` and every non-ACGT character.
WILDCARD_CODE: int = 4

#: Complement of each code (A<->T, C<->G, N->N).
COMPLEMENT_CODE: np.ndarray = np.array([3, 2, 1, 0, 4], dtype=np.uint8)

# Build the 256-entry translation table once at import time.
_ENCODE_TABLE = np.full(256, WILDCARD_CODE, dtype=np.uint8)
for _code, _base in enumerate("ACGT"):
    _ENCODE_TABLE[ord(_base)] = _code
    _ENCODE_TABLE[ord(_base.lower())] = _code

_DECODE_TABLE = np.frombuffer(ALPHABET.encode("ascii"), dtype=np.uint8)

SequenceLike = Union[str, bytes, np.ndarray]


def is_encoded(seq: SequenceLike) -> bool:
    """Return ``True`` if *seq* is already a uint8 code array."""
    return isinstance(seq, np.ndarray) and seq.dtype == np.uint8


def encode(seq: SequenceLike) -> np.ndarray:
    """Encode a DNA sequence into a ``uint8`` code array.

    Parameters
    ----------
    seq:
        A string, ``bytes`` object or an already-encoded ``uint8`` array.
        Already-encoded arrays are validated and returned as-is (no copy) so
        that calling :func:`encode` twice is free.

    Returns
    -------
    numpy.ndarray
        One-dimensional contiguous array of dtype ``uint8`` with values in
        ``[0, 4]``.

    Raises
    ------
    SequenceError
        If the sequence is empty or an encoded array contains codes outside
        the alphabet.
    """
    if isinstance(seq, np.ndarray):
        if seq.dtype != np.uint8:
            raise SequenceError(
                f"encoded sequences must have dtype uint8, got {seq.dtype}"
            )
        if seq.ndim != 1:
            raise SequenceError(
                f"encoded sequences must be one-dimensional, got shape {seq.shape}"
            )
        if seq.size == 0:
            raise SequenceError("cannot encode an empty sequence")
        if seq.size and int(seq.max(initial=0)) > WILDCARD_CODE:
            raise SequenceError(
                "encoded sequence contains codes outside the DNA alphabet"
            )
        return np.ascontiguousarray(seq)

    if isinstance(seq, str):
        raw = seq.encode("ascii", errors="replace")
    elif isinstance(seq, (bytes, bytearray)):
        raw = bytes(seq)
    else:
        raise SequenceError(
            f"cannot encode object of type {type(seq).__name__} as a DNA sequence"
        )
    if len(raw) == 0:
        raise SequenceError("cannot encode an empty sequence")
    ascii_codes = np.frombuffer(raw, dtype=np.uint8)
    return _ENCODE_TABLE[ascii_codes]


def encode_batch(seqs: Iterable[SequenceLike]) -> list[np.ndarray]:
    """Encode an iterable of sequences, preserving order."""
    return [encode(s) for s in seqs]


def decode(codes: np.ndarray) -> str:
    """Decode a ``uint8`` code array back into an upper-case DNA string."""
    codes = encode(codes)  # validates dtype/range
    return _DECODE_TABLE[codes].tobytes().decode("ascii")


def reverse(seq: SequenceLike) -> np.ndarray:
    """Return the reversed encoded sequence (a copy, contiguous).

    LOGAN reverses the query of the left-extension so the GPU reads both
    sequences in increasing memory order (coalesced access, Fig. 6 of the
    paper).  We keep the same convention: reversal returns a fresh contiguous
    buffer because a negative-stride view would defeat the point of the
    optimisation being modeled.
    """
    return np.ascontiguousarray(encode(seq)[::-1])


def reverse_complement(seq: SequenceLike) -> np.ndarray:
    """Return the reverse complement of a sequence as an encoded array."""
    return np.ascontiguousarray(COMPLEMENT_CODE[encode(seq)][::-1])


def random_sequence(
    length: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Generate a uniformly random encoded DNA sequence of *length* bases."""
    if length <= 0:
        raise SequenceError(f"sequence length must be positive, got {length}")
    if rng is None:
        rng = np.random.default_rng()
    return rng.integers(0, 4, size=length, dtype=np.uint8)
