"""Shared harness for the paper-reproduction benchmarks.

Every ``bench_*.py`` file delegates to one ``run_*`` function defined here.
Each run

1. executes the *real* X-drop (and baseline) algorithms on a laptop-scale
   sample of the paper's workload,
2. feeds the measured work traces to the platform models (POWER9 SeqAn,
   Skylake ksw2, V100 LOGAN) with a replication factor that scales the
   sample to the paper's pair/alignment count, and
3. emits a :class:`~repro.perf.metrics.BenchTable` whose rows mirror the
   paper's table — including the published numbers as ``paper_*`` columns so
   the reproduction can be compared at a glance (EXPERIMENTS.md is generated
   from these tables).

The sample sizes are kept small so the whole benchmark suite finishes in a
few minutes; set ``REPRO_BENCH_SCALE`` (e.g. ``2.0`` or ``0.5``) to grow or
shrink every sample proportionally.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.baselines import (
    CUDASW_GPU_ONLY,
    CUDASW_HYBRID_SIMD,
    MANYMAP,
    Ksw2BatchAligner,
    SeqAnBatchAligner,
    banded_smith_waterman,
    smith_waterman,
)
from repro.bella import build_kmer_index, choose_seed, find_candidate_overlaps
from repro.core import ScoringScheme, random_sequence, xdrop_extend
from repro.core.job import AlignmentJob
from repro.data import PairSetSpec, generate_pair_set, load_dataset
from repro.data.datasets import CELEGANS_LIKE, ECOLI_LIKE, DatasetPreset
from repro.gpusim import KernelExecutionModel, KernelWorkload, MultiGpuSystem, TESLA_V100
from repro.logan import LoganAligner, threads_for_xdrop
from repro.perf import BenchTable
from repro.roofline import analyze_kernel, build_series, render_ascii

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: X sweep of Tables II/III (100 K synthetic pairs).
TABLE2_X_VALUES = [10, 20, 50, 100, 500, 1000, 2500, 5000]
#: X sweep of Tables IV/V (BELLA datasets).
BELLA_X_VALUES = [5, 10, 15, 20, 25, 30, 35, 40, 50, 80, 100]

#: Published numbers (seconds) — Table II: SeqAn 168 threads, LOGAN 1 / 6 GPUs.
PAPER_TABLE2 = {
    10: (5.1, 2.2, 1.9),
    20: (12.7, 3.1, 2.1),
    50: (29.6, 5.0, 2.2),
    100: (45.7, 7.2, 2.7),
    500: (102.6, 14.9, 4.0),
    1000: (133.3, 20.2, 4.9),
    2500: (168.0, 25.3, 5.6),
    5000: (176.6, 26.7, 5.8),
}

#: Published numbers (seconds) — Table III: ksw2 80 threads, LOGAN 1 / 8 GPUs.
PAPER_TABLE3 = {
    10: (6.9, 2.5, 1.7),
    20: (7.0, 3.8, 1.8),
    50: (7.7, 5.8, 2.1),
    100: (10.4, 7.3, 2.4),
    500: (113.0, 15.2, 3.4),
    1000: (209.5, 20.4, 4.3),
    2500: (1235.8, 25.9, 5.2),
    5000: (3213.1, 27.2, 5.2),
}

#: Published numbers (seconds) — Table IV: BELLA/SeqAn, LOGAN 1 / 6 GPUs (E. coli).
PAPER_TABLE4 = {
    5: (53.2, 110.4, 114.3),
    10: (108.6, 146.4, 115.3),
    15: (139.0, 152.9, 114.8),
    20: (226.7, 162.7, 118.4),
    25: (275.3, 173.5, 125.3),
    30: (558.0, 185.3, 130.6),
    35: (654.1, 198.4, 136.8),
    40: (750.1, 212.7, 138.4),
    50: (913.1, 248.5, 141.4),
    80: (1303.7, 295.8, 142.4),
    100: (1507.1, 336.3, 144.5),
}

#: Published numbers (seconds) — Table V: BELLA/SeqAn, LOGAN 1 / 6 GPUs (C. elegans).
PAPER_TABLE5 = {
    5: (131.7, 577.1, 213.1),
    10: (723.3, 750.2, 579.7),
    15: (1467.7, 865.6, 749.8),
    20: (1954.8, 908.9, 777.0),
    25: (2518.8, 1015.5, 838.9),
    30: (3047.1, 1125.0, 888.0),
    35: (3492.5, 1226.5, 927.0),
    40: (3887.0, 1329.0, 955.9),
    50: (4607.7, 1449.0, 983.7),
    80: (6367.7, 1593.9, 1046.1),
    100: (7385.3, 1753.3, 1080.9),
}

#: Table I of the paper (X = 100): parallelism level -> (pairs, threads, blocks, seconds).
PAPER_TABLE1 = {
    "none": (1, 1, 1, 1.50),
    "intra": (1, 128, 1, 0.16),
    "intra_sequential_100k": (100_000, 128, 1, 45 * 3600.0),
    "intra_and_inter": (100_000, 128, 100_000, 7.35),
}

#: Fig. 12 single-GPU GCUPS quoted in the paper.
PAPER_FIG12_SINGLE_GPU = {
    "LOGAN": 181.0,
    "manymap": 96.5,
    "CUDASW++ (GPU only)": 70.0,
    "CUDASW++ (SIMD hybrid)": 105.0,
}

_SCORING = ScoringScheme()
_PAPER_PAIRS = 100_000


# --------------------------------------------------------------------------- #
# Scaling / IO helpers.
# --------------------------------------------------------------------------- #
def bench_scale() -> float:
    """Global benchmark scale factor from ``REPRO_BENCH_SCALE`` (default 1.0)."""
    try:
        return max(0.05, float(os.environ.get("REPRO_BENCH_SCALE", "1.0")))
    except ValueError:
        return 1.0


def sample_count(base: int, scale: float | None = None) -> int:
    """Sample size after applying the benchmark scale (minimum of 4)."""
    scale = bench_scale() if scale is None else scale
    return max(4, int(round(base * scale)))


def save_table(table: BenchTable, name: str) -> Path:
    """Archive a table as JSON + text under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    json_path = RESULTS_DIR / f"{name}.json"
    json_path.write_text(table.to_json())
    (RESULTS_DIR / f"{name}.txt").write_text(table.formatted())
    return json_path


def expand_sample(jobs, results, min_blocks: int):
    """Duplicate (job, result) pairs so a small sample can be split across GPUs.

    Every job of a benchmark sample stands for ``replication`` identical
    alignments, so duplicating the sampled jobs (and dividing the replication
    by the duplication factor) leaves the represented workload unchanged
    while giving the multi-GPU load balancer enough items to split evenly.
    Returns ``(jobs, results, divisor)``.
    """
    if len(jobs) >= min_blocks:
        return list(jobs), list(results), 1
    copies = -(-min_blocks // len(jobs))  # ceil division
    return list(jobs) * copies, list(results) * copies, copies


def benchmark_pairs(
    num_pairs: int,
    min_length: int = 2500,
    max_length: int = 7500,
    seed_placement: str = "start",
    rng_seed: int = 2020,
) -> list[AlignmentJob]:
    """Laptop-scale sample of the paper's synthetic 100 K-pair workload.

    Read lengths follow the paper (2.5–7.5 kb, ~15 % pairwise error); only
    the *number* of pairs is scaled down, and every runtime model multiplies
    the measured per-pair work traces back up with a replication factor, so
    the per-pair work distribution matches the paper's workload.
    """
    spec = PairSetSpec(
        num_pairs=num_pairs,
        min_length=min_length,
        max_length=max_length,
        pairwise_error_rate=0.15,
        seed_placement=seed_placement,
        rng_seed=rng_seed,
    )
    return generate_pair_set(spec)


# --------------------------------------------------------------------------- #
# Table I — parallelism levels.
# --------------------------------------------------------------------------- #
def run_table1(scale: float = 1.0) -> BenchTable:
    """Table I: impact of intra- and inter-sequence parallelism at X = 100."""
    xdrop = 100
    jobs = benchmark_pairs(sample_count(8, scale), rng_seed=11)

    # Trace a single pair for the one-block rows.
    first = jobs[0]
    res = xdrop_extend(first.query, first.target, _SCORING, xdrop=xdrop, trace=True)
    from repro.gpusim import BlockWorkTrace

    single_block = BlockWorkTrace.from_extension(
        res, first.query_length, first.target_length
    )
    model = KernelExecutionModel(TESLA_V100)

    # Row 1: no parallelism — one thread, one block.
    none_timing = model.execute(
        KernelWorkload(blocks=[single_block]), threads_per_block=1
    )
    # Row 2: intra-sequence only — 128 threads, one block.
    intra_timing = model.execute(
        KernelWorkload(blocks=[single_block]), threads_per_block=128
    )
    # Row 3: intra-sequence only, 100 K pairs executed one after the other.
    sequential_seconds = intra_timing.total_seconds * _PAPER_PAIRS
    # Row 4: intra + inter — the full batched launch.
    full = LoganAligner(xdrop=xdrop, threads_per_block=128).align_batch(
        jobs, replication=_PAPER_PAIRS / len(jobs)
    )

    table = BenchTable(
        title="Table I — X-drop execution on the GPU model, X=100, per parallelism level",
        parameter_name="row",
        columns=[
            "pairs",
            "threads",
            "blocks",
            "modeled_s",
            "paper_s",
            "speedup_vs_none",
        ],
        notes=(
            "Rows: 1=no parallelism, 2=intra-sequence, 3=intra-sequence over 100K pairs "
            "sequentially, 4=intra+inter (one block per alignment)."
        ),
    )
    none_s = none_timing.total_seconds
    rows = [
        (1, *PAPER_TABLE1["none"][:3], none_s, PAPER_TABLE1["none"][3]),
        (2, *PAPER_TABLE1["intra"][:3], intra_timing.total_seconds, PAPER_TABLE1["intra"][3]),
        (
            3,
            *PAPER_TABLE1["intra_sequential_100k"][:3],
            sequential_seconds,
            PAPER_TABLE1["intra_sequential_100k"][3],
        ),
        (
            4,
            *PAPER_TABLE1["intra_and_inter"][:3],
            full.modeled_seconds,
            PAPER_TABLE1["intra_and_inter"][3],
        ),
    ]
    for row_id, pairs, threads, blocks, modeled, paper in rows:
        reference = none_s if row_id in (1, 2) else none_s * _PAPER_PAIRS
        table.add_row(
            row_id,
            pairs=pairs,
            threads=threads,
            blocks=blocks,
            modeled_s=modeled,
            paper_s=paper,
            speedup_vs_none=reference / modeled if modeled > 0 else float("inf"),
        )
    save_table(table, "table1_parallelism")
    return table


# --------------------------------------------------------------------------- #
# Table II / Fig. 8 — LOGAN vs SeqAn.
# --------------------------------------------------------------------------- #
def run_table2(scale: float = 1.0, x_values: Sequence[int] | None = None) -> BenchTable:
    """Table II + Fig. 8: LOGAN vs SeqAn on the 100 K-pair synthetic workload."""
    x_values = list(x_values or TABLE2_X_VALUES)
    jobs = benchmark_pairs(sample_count(6, scale))
    replication = _PAPER_PAIRS / len(jobs)

    table = BenchTable(
        title="Table II — LOGAN vs SeqAn (modeled, 100K pairs extrapolated)",
        parameter_name="X",
        columns=[
            "seqan_168t_s",
            "logan_1gpu_s",
            "logan_6gpu_s",
            "speedup_1gpu",
            "speedup_6gpu",
            "logan_1gpu_gcups",
            "paper_seqan_s",
            "paper_1gpu_s",
            "paper_6gpu_s",
        ],
        notes=(
            f"sample={len(jobs)} pairs of 2.5-7.5 kb, replicated x{replication:.0f}; "
            "SeqAn modeled on 2x POWER9 (168 threads) from the same work trace."
        ),
    )
    for x in x_values:
        aligner1 = LoganAligner(system=MultiGpuSystem.homogeneous(1), xdrop=x)
        logan1 = aligner1.align_batch(jobs, replication=replication)
        jobs6, results6, copies = expand_sample(jobs, logan1.results, min_blocks=24)
        logan6 = LoganAligner(system=MultiGpuSystem.homogeneous(6), xdrop=x).model_existing(
            jobs6, results6, replication=replication / copies
        )
        seqan_model = SeqAnBatchAligner(xdrop=x)
        seqan_seconds = seqan_model.modeled_seconds_for(
            logan1.summary.scaled(replication)
        )
        paper = PAPER_TABLE2.get(x, (float("nan"),) * 3)
        table.add_row(
            x,
            seqan_168t_s=seqan_seconds,
            logan_1gpu_s=logan1.modeled_seconds,
            logan_6gpu_s=logan6.modeled_seconds,
            speedup_1gpu=seqan_seconds / logan1.modeled_seconds,
            speedup_6gpu=seqan_seconds / logan6.modeled_seconds,
            logan_1gpu_gcups=logan1.modeled_gcups,
            paper_seqan_s=paper[0],
            paper_1gpu_s=paper[1],
            paper_6gpu_s=paper[2],
        )
    save_table(table, "table2_vs_seqan")
    return table


# --------------------------------------------------------------------------- #
# Table III / Fig. 9 — LOGAN vs ksw2.
# --------------------------------------------------------------------------- #
def run_table3(scale: float = 1.0, x_values: Sequence[int] | None = None) -> BenchTable:
    """Table III + Fig. 9: LOGAN vs ksw2 (Skylake platform, 8 GPUs)."""
    x_values = list(x_values or TABLE2_X_VALUES)
    jobs = benchmark_pairs(sample_count(5, scale), rng_seed=2021)
    replication = _PAPER_PAIRS / len(jobs)

    table = BenchTable(
        title="Table III — LOGAN vs ksw2 (modeled, 100K pairs extrapolated)",
        parameter_name="X",
        columns=[
            "ksw2_80t_s",
            "logan_1gpu_s",
            "logan_8gpu_s",
            "speedup_1gpu",
            "speedup_8gpu",
            "paper_ksw2_s",
            "paper_1gpu_s",
            "paper_8gpu_s",
        ],
        notes=(
            f"sample={len(jobs)} pairs; ksw2 run with Z-drop = X and band = X "
            "(the paper's harness convention), modeled on 80 Skylake threads."
        ),
    )
    for x in x_values:
        ksw2 = Ksw2BatchAligner(zdrop=x)
        ksw2_batch = ksw2.align_batch(jobs)
        ksw2_seconds = ksw2.modeled_seconds_for(ksw2_batch.summary.scaled(replication))

        logan1 = LoganAligner(system=MultiGpuSystem.homogeneous(1), xdrop=x).align_batch(
            jobs, replication=replication
        )
        jobs8, results8, copies = expand_sample(jobs, logan1.results, min_blocks=32)
        logan8 = LoganAligner(system=MultiGpuSystem.homogeneous(8), xdrop=x).model_existing(
            jobs8, results8, replication=replication / copies
        )
        paper = PAPER_TABLE3.get(x, (float("nan"),) * 3)
        table.add_row(
            x,
            ksw2_80t_s=ksw2_seconds,
            logan_1gpu_s=logan1.modeled_seconds,
            logan_8gpu_s=logan8.modeled_seconds,
            speedup_1gpu=ksw2_seconds / logan1.modeled_seconds,
            speedup_8gpu=ksw2_seconds / logan8.modeled_seconds,
            paper_ksw2_s=paper[0],
            paper_1gpu_s=paper[1],
            paper_8gpu_s=paper[2],
        )
    save_table(table, "table3_vs_ksw2")
    return table


# --------------------------------------------------------------------------- #
# Tables IV & V / Figs. 10 & 11 — BELLA integration.
# --------------------------------------------------------------------------- #
def _bella_jobs(
    preset: DatasetPreset, dataset_scale: float, max_jobs: int, rng_seed: int
) -> list[AlignmentJob]:
    """Candidate alignment jobs from a scaled BELLA dataset (stages 1-3)."""
    dataset = load_dataset(preset, scale=dataset_scale, rng=np.random.default_rng(rng_seed))
    sequences = [r.sequence for r in dataset.reads]
    index = build_kmer_index(sequences, k=17, lower=2)
    candidates = find_candidate_overlaps(index)
    jobs: list[AlignmentJob] = []
    for pair_id, candidate in enumerate(candidates.candidates):
        if not candidate.seed_positions:
            continue
        query = sequences[candidate.read_i]
        target = sequences[candidate.read_j]
        choice = choose_seed(candidate, 17, len(query), len(target))
        jobs.append(AlignmentJob(query=query, target=target, seed=choice.seed, pair_id=pair_id))
    if not jobs:
        raise RuntimeError("BELLA benchmark dataset produced no candidate overlaps")
    if len(jobs) > max_jobs:
        # Evenly-spaced subsample keeps the length/overlap distribution.
        idx = np.linspace(0, len(jobs) - 1, max_jobs).astype(int)
        jobs = [jobs[i] for i in idx]
    return jobs


def _run_bella_table(
    preset: DatasetPreset,
    paper_rows: dict[int, tuple[float, float, float]],
    name: str,
    scale: float,
    dataset_scale: float,
    base_jobs: int,
    x_values: Sequence[int] | None = None,
) -> BenchTable:
    x_values = list(x_values or BELLA_X_VALUES)
    jobs = _bella_jobs(preset, dataset_scale, sample_count(base_jobs, scale), rng_seed=5)
    replication = preset.paper_alignments / len(jobs)

    table = BenchTable(
        title=f"{name} — BELLA alignment stage: SeqAn vs LOGAN ({preset.name})",
        parameter_name="X",
        columns=[
            "bella_seqan_s",
            "logan_1gpu_s",
            "logan_6gpu_s",
            "speedup_1gpu",
            "speedup_6gpu",
            "paper_bella_s",
            "paper_1gpu_s",
            "paper_6gpu_s",
        ],
        notes=(
            f"{len(jobs)} sampled candidate alignments from a scaled {preset.name} dataset, "
            f"replicated x{replication:.0f} to the paper's {preset.paper_alignments:,} alignments."
        ),
    )
    for x in x_values:
        logan1 = LoganAligner(system=MultiGpuSystem.homogeneous(1), xdrop=x).align_batch(
            jobs, replication=replication
        )
        jobs6, results6, copies = expand_sample(jobs, logan1.results, min_blocks=24)
        logan6 = LoganAligner(system=MultiGpuSystem.homogeneous(6), xdrop=x).model_existing(
            jobs6, results6, replication=replication / copies
        )
        seqan_seconds = SeqAnBatchAligner(xdrop=x).modeled_seconds_for(
            logan1.summary.scaled(replication)
        )
        paper = paper_rows.get(x, (float("nan"),) * 3)
        table.add_row(
            x,
            bella_seqan_s=seqan_seconds,
            logan_1gpu_s=logan1.modeled_seconds,
            logan_6gpu_s=logan6.modeled_seconds,
            speedup_1gpu=seqan_seconds / logan1.modeled_seconds,
            speedup_6gpu=seqan_seconds / logan6.modeled_seconds,
            paper_bella_s=paper[0],
            paper_1gpu_s=paper[1],
            paper_6gpu_s=paper[2],
        )
    save_table(table, name.lower().replace(" ", "_"))
    return table


def run_table4(scale: float = 1.0, x_values: Sequence[int] | None = None) -> BenchTable:
    """Table IV + Fig. 10: BELLA E. coli alignment stage (1.82 M alignments)."""
    return _run_bella_table(
        ECOLI_LIKE, PAPER_TABLE4, "table4_bella_ecoli", scale,
        dataset_scale=0.06, base_jobs=18, x_values=x_values,
    )


def run_table5(scale: float = 1.0, x_values: Sequence[int] | None = None) -> BenchTable:
    """Table V + Fig. 11: BELLA C. elegans alignment stage (235 M alignments)."""
    return _run_bella_table(
        CELEGANS_LIKE, PAPER_TABLE5, "table5_bella_celegans", scale,
        dataset_scale=0.03, base_jobs=18, x_values=x_values,
    )


# --------------------------------------------------------------------------- #
# Fig. 12 — GCUPS comparison across GPU counts.
# --------------------------------------------------------------------------- #
def run_fig12(scale: float = 1.0, xdrop: int = 5000) -> BenchTable:
    """Fig. 12: GCUPS of LOGAN, CUDASW++ and manymap for 1-8 GPUs."""
    jobs = benchmark_pairs(sample_count(6, scale), rng_seed=3)
    replication = _PAPER_PAIRS / len(jobs)
    base = LoganAligner(system=MultiGpuSystem.homogeneous(1), xdrop=xdrop).align_batch(
        jobs, replication=replication
    )

    table = BenchTable(
        title="Fig. 12 — GPU-based aligner throughput (GCUPS) vs GPU count",
        parameter_name="gpus",
        columns=[
            "logan_gcups",
            "manymap_gcups",
            "cudasw_gpu_gcups",
            "cudasw_hybrid_gcups",
            "paper_logan_1gpu_gcups",
        ],
        notes=f"LOGAN modeled at X={xdrop} (its peak-GCUPS regime, as in the paper); "
        "competitor curves are throughput models anchored to the numbers quoted in "
        "the paper (Section II / VI).",
    )
    jobs_x, results_x, copies = expand_sample(jobs, base.results, min_blocks=32)
    for gpus in range(1, 9):
        logan = LoganAligner(
            system=MultiGpuSystem.homogeneous(gpus), xdrop=xdrop
        ).model_existing(jobs_x, results_x, replication=replication / copies)
        table.add_row(
            gpus,
            logan_gcups=logan.modeled_gcups,
            manymap_gcups=MANYMAP.gcups(gpus),
            cudasw_gpu_gcups=CUDASW_GPU_ONLY.gcups(gpus),
            cudasw_hybrid_gcups=CUDASW_HYBRID_SIMD.gcups(gpus),
            paper_logan_1gpu_gcups=PAPER_FIG12_SINGLE_GPU["LOGAN"],
        )
    save_table(table, "fig12_gcups_comparison")
    return table


# --------------------------------------------------------------------------- #
# Fig. 13 — Roofline.
# --------------------------------------------------------------------------- #
def run_fig13(scale: float = 1.0, xdrop: int = 100) -> BenchTable:
    """Fig. 13: instruction Roofline of the LOGAN kernel (X=100, 100 K pairs)."""
    jobs = benchmark_pairs(sample_count(10, scale), rng_seed=17)
    replication = _PAPER_PAIRS / len(jobs)
    aligner = LoganAligner(system=MultiGpuSystem.homogeneous(1), xdrop=xdrop)
    batch = aligner.align_batch(jobs, replication=replication)

    # With start-placed seeds the right-extension stream carries all the work.
    timing = batch.kernel_timings[0][0]
    from repro.gpusim import BlockWorkTrace

    workload = KernelWorkload(replication=replication)
    for job, result in zip(jobs, batch.results):
        ext = result.right
        if ext.band_widths is None or ext.cells_computed <= 1:
            continue
        workload.add(
            BlockWorkTrace.from_extension(ext, job.query_length, job.target_length)
        )
    analysis = analyze_kernel(TESLA_V100, timing, workload, label=f"LOGAN X={xdrop}")
    series = build_series(analysis)

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "fig13_roofline_series.json").write_text(series.to_json())
    (RESULTS_DIR / "fig13_roofline_ascii.txt").write_text(render_ascii(series))

    table = BenchTable(
        title="Fig. 13 — Instruction Roofline of the LOGAN kernel (X=100)",
        parameter_name="metric",
        columns=["value"],
        notes="metric ids: 1=OI (warp instr/byte), 2=achieved warp GIPS, "
        "3=adapted ceiling, 4=INT32 ceiling, 5=ridge point, 6=efficiency vs adapted ceiling, "
        "7=compute bound (1/0).",
    )
    table.add_row(1, value=analysis.point.operational_intensity)
    table.add_row(2, value=analysis.point.warp_gips)
    table.add_row(3, value=analysis.ceilings.adapted_warp_gips)
    table.add_row(4, value=analysis.ceilings.int32_warp_gips)
    table.add_row(5, value=analysis.ceilings.ridge_point)
    table.add_row(6, value=analysis.efficiency)
    table.add_row(7, value=1.0 if analysis.is_compute_bound else 0.0)
    save_table(table, "fig13_roofline")
    return table


# --------------------------------------------------------------------------- #
# Fig. 2 — search-space comparison.
# --------------------------------------------------------------------------- #
def run_fig2(scale: float = 1.0) -> BenchTable:
    """Fig. 2: X-drop vs fixed-band vs full-DP explored cells.

    Two scenarios, following Section III: a *similar* pair (15 % error, the
    normal case) and a *divergent* pair with >50 % substitutions and no
    indels (the case where X-drop terminates early but a fixed band does
    not).
    """
    rng = np.random.default_rng(7)
    length = sample_count(1200, scale)
    xdrop = 50
    bandwidth = 50
    scoring = ScoringScheme(match=1, mismatch=-2, gap=-2)

    template = random_sequence(length, rng)
    similar = template.copy()
    sub_idx = rng.random(length) < 0.15
    similar[sub_idx] = (similar[sub_idx] + rng.integers(1, 4, int(sub_idx.sum()))) % 4

    divergent = template.copy()
    sub_idx = rng.random(length) < 0.55
    divergent[sub_idx] = (divergent[sub_idx] + rng.integers(1, 4, int(sub_idx.sum()))) % 4

    table = BenchTable(
        title="Fig. 2 — explored DP cells: X-drop vs fixed band vs full Smith-Waterman",
        parameter_name="scenario",
        columns=["xdrop_cells", "banded_cells", "full_sw_cells", "xdrop_score", "banded_score"],
        notes="scenario 1 = similar pair (15% substitutions), scenario 2 = divergent pair "
        f"(55% substitutions, no indels); X={xdrop}, band half-width={bandwidth}, "
        "BLAST-like scoring 1/-2/-2.",
    )
    for scenario, other in ((1, similar), (2, divergent)):
        xres = xdrop_extend(template, other, scoring, xdrop=xdrop)
        bres = banded_smith_waterman(template, other, scoring, bandwidth=bandwidth)
        sres = smith_waterman(template, other, scoring)
        table.add_row(
            scenario,
            xdrop_cells=xres.cells_computed,
            banded_cells=bres.cells_computed,
            full_sw_cells=sres.cells_computed,
            xdrop_score=xres.best_score,
            banded_score=bres.best_score,
        )
    save_table(table, "fig2_search_space")
    return table


# --------------------------------------------------------------------------- #
# Accuracy (Section VI "equivalent accuracy").
# --------------------------------------------------------------------------- #
def run_accuracy(scale: float = 1.0) -> BenchTable:
    """Score equivalence: LOGAN vs SeqAn-style reference vs exact DP."""
    from repro.core import exact_extension_score, xdrop_extend_reference

    jobs = benchmark_pairs(
        sample_count(10, scale), min_length=300, max_length=600, seed_placement="middle"
    )
    table = BenchTable(
        title="Accuracy — LOGAN vs SeqAn reference vs exact extension",
        parameter_name="X",
        columns=["pairs", "identical_to_seqan", "fraction_of_exact"],
        notes="identical_to_seqan counts pairs whose LOGAN score equals the scalar "
        "SeqAn-style reference (must equal the pair count); fraction_of_exact is the "
        "mean LOGAN score divided by the un-pruned exact extension score.",
    )
    from repro.core.seed_extend import extend_seed

    for x in (5, 25, 100, 500):
        logan = LoganAligner(xdrop=x).align_batch(jobs)
        identical = 0
        ratio_sum = 0.0
        for job, result in zip(jobs, logan.results):
            seqan_score = extend_seed(
                job.query,
                job.target,
                job.seed,
                _SCORING,
                xdrop=x,
                kernel=xdrop_extend_reference,
            ).score
            if seqan_score == result.score:
                identical += 1
            exact_right = exact_extension_score(
                job.query[job.seed.query_end :], job.target[job.seed.target_end :], _SCORING
            ).best_score
            exact_left = exact_extension_score(
                job.query[: job.seed.query_pos][::-1],
                job.target[: job.seed.target_pos][::-1],
                _SCORING,
            ).best_score if job.seed.query_pos and job.seed.target_pos else 0
            exact_total = exact_left + exact_right + job.seed.length
            ratio_sum += result.score / exact_total if exact_total else 1.0
        table.add_row(
            x,
            pairs=len(jobs),
            identical_to_seqan=identical,
            fraction_of_exact=ratio_sum / len(jobs),
        )
    save_table(table, "accuracy_equivalence")
    return table


# --------------------------------------------------------------------------- #
# Ablations of the design choices called out in DESIGN.md.
# --------------------------------------------------------------------------- #
def run_ablation_threads(scale: float = 1.0) -> BenchTable:
    """Ablation: X-proportional thread scheduling vs a fixed 1024 threads."""
    jobs = benchmark_pairs(sample_count(5, scale), rng_seed=41)
    replication = _PAPER_PAIRS / len(jobs)
    table = BenchTable(
        title="Ablation — threads per block: proportional to X vs fixed 1024",
        parameter_name="X",
        columns=[
            "threads_proportional",
            "proportional_s",
            "fixed_1024_s",
            "slowdown_fixed",
        ],
        notes="Both configurations execute the identical work trace; only the "
        "launch geometry (and therefore occupancy / active warps) differs.",
    )
    for x in (50, 100, 500):
        base = LoganAligner(system=MultiGpuSystem.homogeneous(1), xdrop=x).align_batch(
            jobs, replication=replication
        )
        proportional = base.modeled_seconds
        fixed = LoganAligner(
            system=MultiGpuSystem.homogeneous(1), xdrop=x, threads_per_block=1024
        ).model_existing(jobs, base.results, replication=replication)
        table.add_row(
            x,
            threads_proportional=threads_for_xdrop(x, TESLA_V100),
            proportional_s=proportional,
            fixed_1024_s=fixed.modeled_seconds,
            slowdown_fixed=fixed.modeled_seconds / proportional,
        )
    save_table(table, "ablation_threads")
    return table


def run_ablation_memory(scale: float = 1.0, xdrop: int = 500) -> BenchTable:
    """Ablation: anti-diagonals in HBM (LOGAN) vs reserved shared memory."""
    from repro.gpusim import BlockWorkTrace, occupancy

    jobs = benchmark_pairs(sample_count(5, scale), rng_seed=42)
    replication = _PAPER_PAIRS / len(jobs)
    base = LoganAligner(system=MultiGpuSystem.homogeneous(1), xdrop=xdrop).align_batch(
        jobs, replication=replication
    )
    threads = threads_for_xdrop(xdrop, TESLA_V100)

    workload = KernelWorkload(replication=replication)
    for job, result in zip(jobs, base.results):
        ext = result.right
        if ext.band_widths is not None and ext.cells_computed > 1:
            workload.add(
                BlockWorkTrace(ext.band_widths, job.query_length, job.target_length)
            )
    model = KernelExecutionModel(TESLA_V100)
    hbm_smem = threads * 4  # reduction scratch only (the LOGAN design)
    shared_smem = 48 * 1024  # three anti-diagonal buffers kept in shared memory

    hbm_timing = model.execute(workload, threads, shared_mem_per_block_bytes=hbm_smem)
    shared_timing = model.execute(workload, threads, shared_mem_per_block_bytes=shared_smem)
    occ_hbm = occupancy(TESLA_V100, threads, hbm_smem)
    occ_shared = occupancy(TESLA_V100, threads, shared_smem)

    table = BenchTable(
        title="Ablation — anti-diagonal placement: HBM (LOGAN) vs shared memory",
        parameter_name="row",
        columns=["blocks_per_sm", "active_warps_per_sm", "kernel_s", "slowdown"],
        notes="row 1 = HBM placement (reduction scratch only in shared memory); "
        "row 2 = 48 KiB of anti-diagonal buffers per block in shared memory, which "
        "caps occupancy at 2 blocks per SM (Section IV-B).",
    )
    table.add_row(
        1,
        blocks_per_sm=occ_hbm.blocks_per_sm,
        active_warps_per_sm=occ_hbm.active_warps_per_sm,
        kernel_s=hbm_timing.total_seconds,
        slowdown=1.0,
    )
    table.add_row(
        2,
        blocks_per_sm=occ_shared.blocks_per_sm,
        active_warps_per_sm=occ_shared.active_warps_per_sm,
        kernel_s=shared_timing.total_seconds,
        slowdown=shared_timing.total_seconds / hbm_timing.total_seconds,
    )
    save_table(table, "ablation_memory")
    return table


def run_ablation_reversal(scale: float = 1.0, xdrop: int = 100) -> BenchTable:
    """Ablation: host-side query reversal (coalesced access) on vs off."""
    from repro.gpusim import BlockWorkTrace, MemoryModel

    jobs = benchmark_pairs(sample_count(5, scale), rng_seed=43)
    replication = _PAPER_PAIRS / len(jobs)
    base = LoganAligner(system=MultiGpuSystem.homogeneous(1), xdrop=xdrop).align_batch(
        jobs, replication=replication
    )
    threads = threads_for_xdrop(xdrop, TESLA_V100)
    workload = KernelWorkload(replication=replication)
    for job, result in zip(jobs, base.results):
        ext = result.right
        if ext.band_widths is not None and ext.cells_computed > 1:
            workload.add(
                BlockWorkTrace(ext.band_widths, job.query_length, job.target_length)
            )

    coalesced = KernelExecutionModel(
        TESLA_V100, memory_model=MemoryModel(TESLA_V100, sequence_read_amplification=2.0)
    ).execute(workload, threads)
    # Without the reversal one sequence is read backwards: every byte touches
    # a different 32-byte sector, inflating its DRAM traffic ~16x.
    uncoalesced = KernelExecutionModel(
        TESLA_V100, memory_model=MemoryModel(TESLA_V100, sequence_read_amplification=16.0)
    ).execute(workload, threads)

    table = BenchTable(
        title="Ablation — sequence reversal for coalesced access: on vs off",
        parameter_name="row",
        columns=["hbm_gb", "memory_s", "kernel_s", "slowdown"],
        notes="row 1 = reversal on (coalesced reads), row 2 = reversal off "
        "(one sequence read backwards, ~16x sequence traffic).",
    )
    table.add_row(
        1,
        hbm_gb=coalesced.hbm_bytes / 1e9,
        memory_s=coalesced.memory_seconds,
        kernel_s=coalesced.total_seconds,
        slowdown=1.0,
    )
    table.add_row(
        2,
        hbm_gb=uncoalesced.hbm_bytes / 1e9,
        memory_s=uncoalesced.memory_seconds,
        kernel_s=uncoalesced.total_seconds,
        slowdown=uncoalesced.total_seconds / coalesced.total_seconds,
    )
    save_table(table, "ablation_reversal")
    return table


def run_ablation_reduction(scale: float = 1.0, xdrop: int = 50) -> BenchTable:
    """Ablation: warp-shuffle reduction vs a serial per-block maximum."""
    from repro.gpusim import BlockWorkTrace, KernelCostParameters

    jobs = benchmark_pairs(sample_count(5, scale), rng_seed=44)
    replication = _PAPER_PAIRS / len(jobs)
    base = LoganAligner(system=MultiGpuSystem.homogeneous(1), xdrop=xdrop).align_batch(
        jobs, replication=replication
    )
    threads = threads_for_xdrop(xdrop, TESLA_V100)
    workload = KernelWorkload(replication=replication)
    for job, result in zip(jobs, base.results):
        ext = result.right
        if ext.band_widths is not None and ext.cells_computed > 1:
            workload.add(
                BlockWorkTrace(ext.band_widths, job.query_length, job.target_length)
            )

    shuffle = KernelExecutionModel(TESLA_V100).execute(workload, threads)
    # Serial reduction: thread 0 compares every value — 32 steps per warp
    # instead of log2(32), plus heavier bookkeeping on the single thread.
    serial_params = KernelCostParameters(
        shuffle_steps_per_warp=32, bookkeeping_warp_instructions=40.0
    )
    serial = KernelExecutionModel(TESLA_V100, params=serial_params).execute(
        workload, threads
    )

    table = BenchTable(
        title="Ablation — anti-diagonal max: warp-shuffle reduction vs serial scan",
        parameter_name="row",
        columns=["warp_instructions", "kernel_s", "slowdown"],
        notes="row 1 = in-warp shuffle reduction (LOGAN), row 2 = serial comparison.",
    )
    table.add_row(
        1,
        warp_instructions=shuffle.warp_instructions,
        kernel_s=shuffle.total_seconds,
        slowdown=1.0,
    )
    table.add_row(
        2,
        warp_instructions=serial.warp_instructions,
        kernel_s=serial.total_seconds,
        slowdown=serial.total_seconds / shuffle.total_seconds,
    )
    save_table(table, "ablation_reduction")
    return table


def run_ablation_loadbalance(scale: float = 1.0, xdrop: int = 500) -> BenchTable:
    """Ablation: work-aware load balancing vs naive equal-count splitting."""
    # A deliberately skewed workload: a few long pairs among many short ones.
    long_jobs = benchmark_pairs(
        sample_count(3, scale), min_length=6000, max_length=7500, rng_seed=45
    )
    short_jobs = benchmark_pairs(
        sample_count(9, scale), min_length=2500, max_length=3000, rng_seed=46
    )
    jobs = long_jobs + short_jobs
    replication = _PAPER_PAIRS / len(jobs)
    base = LoganAligner(system=MultiGpuSystem.homogeneous(1), xdrop=xdrop).align_batch(
        jobs, replication=replication
    )

    table = BenchTable(
        title="Ablation — multi-GPU load balancing: estimated-cells vs equal counts",
        parameter_name="row",
        columns=["imbalance", "batch_s", "slowdown"],
        notes="row 1 = LOGAN's length-aware split, row 2 = naive round-robin by count; "
        "6 GPUs, skewed read-length distribution.",
    )
    cells_policy = LoganAligner(
        system=MultiGpuSystem.homogeneous(6), xdrop=xdrop, balancer_policy="cells"
    ).model_existing(jobs, base.results, replication=replication)
    count_policy = LoganAligner(
        system=MultiGpuSystem.homogeneous(6), xdrop=xdrop, balancer_policy="count"
    ).model_existing(jobs, base.results, replication=replication)
    table.add_row(
        1,
        imbalance=cells_policy.multi_gpu.load_imbalance,
        batch_s=cells_policy.modeled_seconds,
        slowdown=1.0,
    )
    table.add_row(
        2,
        imbalance=count_policy.multi_gpu.load_imbalance,
        batch_s=count_policy.modeled_seconds,
        slowdown=count_policy.modeled_seconds / cells_policy.modeled_seconds,
    )
    save_table(table, "ablation_loadbalance")
    return table


# --------------------------------------------------------------------------- #
# Engine comparison — the registry axis added by the unified engine layer.
# --------------------------------------------------------------------------- #
def compare_engines(
    jobs: Sequence[AlignmentJob],
    xdrop: int = 50,
    engines: Sequence[str] | None = None,
    scoring: ScoringScheme | None = None,
) -> list[dict]:
    """Run every named engine over *jobs* and collect comparison rows.

    The per-job scalar ``reference`` engine is always executed (it is the
    speed-up denominator and the score oracle) even when *engines* excludes
    it from the reported rows.  Shared by :func:`run_engines` and
    ``benchmarks/bench_engines.py``.
    """
    from repro.engine import available_engines, get_engine

    scoring = scoring or _SCORING
    # Default sweep covers what can actually be built: optional engines
    # whose dependency is missing (e.g. compiled without numba) are skipped.
    names = list(engines) if engines else available_engines()
    ref_batch = get_engine("reference", scoring=scoring, xdrop=xdrop).align_batch(jobs)
    ref_scores = ref_batch.scores()

    rows = []
    for name in names:
        if name == "reference":
            batch = ref_batch
        else:
            batch = get_engine(name, scoring=scoring, xdrop=xdrop).align_batch(jobs)
        rows.append(
            {
                "engine": name,
                "measured_seconds": batch.elapsed_seconds,
                "measured_gcups": batch.measured_gcups(),
                "speedup_vs_scalar": (
                    ref_batch.elapsed_seconds / batch.elapsed_seconds
                    if batch.elapsed_seconds > 0
                    else float("inf")
                ),
                "scores_identical_to_reference": batch.scores() == ref_scores,
                "modeled_seconds": batch.modeled_seconds,
                "cells": batch.summary.cells,
            }
        )
    return rows


def run_engines(
    scale: float = 1.0,
    engines: Sequence[str] | None = None,
    xdrop: int = 50,
    rng_seed: int = 2020,
) -> BenchTable:
    """Compare every registered alignment engine on one fixed-seed batch.

    Each engine aligns the same job batch; rows report measured wall-clock,
    GCUPS, the speed-up over the per-job scalar reference loop, and whether
    the scores are bit-identical to the reference (1.0) or merely
    comparable (0.0, e.g. the affine-gap ksw2 engine).
    """
    jobs = benchmark_pairs(
        sample_count(24, scale),
        min_length=300,
        max_length=600,
        seed_placement="middle",
        rng_seed=rng_seed,
    )
    rows = compare_engines(jobs, xdrop=xdrop, engines=engines)

    table = BenchTable(
        title=f"Engine comparison — {len(jobs)} jobs, X={xdrop}",
        parameter_name="engine#",
        columns=[
            "measured_s",
            "measured_gcups",
            "speedup_vs_reference",
            "scores_exact",
            "modeled_s",
        ],
        notes="engines: "
        + ", ".join(f"{i}={row['engine']}" for i, row in enumerate(rows)),
    )
    for index, row in enumerate(rows):
        table.add_row(
            index,
            measured_s=row["measured_seconds"],
            measured_gcups=row["measured_gcups"],
            speedup_vs_reference=row["speedup_vs_scalar"],
            scores_exact=float(row["scores_identical_to_reference"]),
            modeled_s=(
                row["modeled_seconds"]
                if row["modeled_seconds"] is not None
                else float("nan")
            ),
        )
    save_table(table, "engines")
    return table


# --------------------------------------------------------------------------- #
# Dispatch used by the CLI.
# --------------------------------------------------------------------------- #
_EXPERIMENTS = {
    "engines": run_engines,
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig2": run_fig2,
    "accuracy": run_accuracy,
    "ablation_threads": run_ablation_threads,
    "ablation_memory": run_ablation_memory,
    "ablation_reversal": run_ablation_reversal,
    "ablation_reduction": run_ablation_reduction,
    "ablation_loadbalance": run_ablation_loadbalance,
}


def run_experiment(name: str, scale: float = 1.0) -> BenchTable:
    """Run one named experiment (used by ``repro-bench``)."""
    if name not in _EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(_EXPERIMENTS)}")
    return _EXPERIMENTS[name](scale=scale)
