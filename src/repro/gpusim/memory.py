"""Device-memory model: HBM traffic, capacity checks and host transfers.

Section IV-B of the paper explains why LOGAN keeps its three anti-diagonal
buffers in HBM rather than shared memory, and Section VII shows that the
resulting kernel is nonetheless *compute* bound: the buffers of the blocks
resident on the device largely fit in the L2 cache, so the HBM traffic per
cell is far below the naive 16-18 bytes of the three parent reads and one
write.  This module models that effect:

* compulsory traffic — every block streams its two sequences from HBM once
  and writes its final result back;
* anti-diagonal buffer traffic — charged per cell only for the fraction of
  resident working set that exceeds the L2 capacity;
* HBM capacity — the footprint of sequences plus per-block buffers, which
  the batch layer uses to cap the number of alignments shipped per launch
  (and the load balancer uses to balance devices);
* host-device transfers over the PCIe/NVLink link.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .device import DeviceSpec
from .trace import KernelWorkload

__all__ = ["MemoryModel", "MemoryEstimate"]

_RESULT_BYTES_PER_BLOCK = 16  # best score + end coordinates returned per block
_VALUE_BYTES = 4  # anti-diagonal scores are int32 on the device


@dataclass(frozen=True)
class MemoryEstimate:
    """HBM traffic / footprint estimate for one kernel launch.

    Attributes
    ----------
    hbm_bytes:
        Modeled HBM traffic of the kernel (reads + writes).
    footprint_bytes:
        HBM capacity required to hold the batch (sequences + buffers +
        results).
    l2_resident_fraction:
        Fraction of the per-cell buffer traffic served by the L2 cache.
    transfer_bytes:
        Bytes moved over the host link (sequences in, results out).
    """

    hbm_bytes: int
    footprint_bytes: int
    l2_resident_fraction: float
    transfer_bytes: int


class MemoryModel:
    """Estimates memory behaviour of a LOGAN kernel launch on a device.

    Parameters
    ----------
    device:
        The device specification.
    bytes_per_cell_uncached:
        HBM bytes a DP cell would cost with no cache at all: three int32
        parent loads, one int32 store and two sequence bytes.
    sequence_read_amplification:
        Multiplier on compulsory sequence traffic to account for re-reads
        of the query/target across anti-diagonal segments.
    """

    def __init__(
        self,
        device: DeviceSpec,
        bytes_per_cell_uncached: float = 3 * _VALUE_BYTES + _VALUE_BYTES + 2,
        sequence_read_amplification: float = 2.0,
    ) -> None:
        if bytes_per_cell_uncached <= 0:
            raise ConfigurationError("bytes_per_cell_uncached must be positive")
        if sequence_read_amplification < 1.0:
            raise ConfigurationError("sequence_read_amplification must be >= 1")
        self.device = device
        self.bytes_per_cell_uncached = float(bytes_per_cell_uncached)
        self.sequence_read_amplification = float(sequence_read_amplification)

    # ------------------------------------------------------------------ #
    # Footprint / capacity.
    # ------------------------------------------------------------------ #
    def footprint_bytes(self, workload: KernelWorkload) -> int:
        """HBM bytes needed to host the whole workload at once."""
        sequences = workload.total_sequence_bytes
        buffers = workload.buffer_bytes(_VALUE_BYTES)
        results = workload.total_blocks * _RESULT_BYTES_PER_BLOCK
        return int(sequences + buffers + results)

    def fits(self, workload: KernelWorkload) -> bool:
        """Whether the workload fits in device memory in a single launch."""
        return self.footprint_bytes(workload) <= self.device.hbm_capacity_bytes

    def max_blocks_per_launch(self, workload: KernelWorkload) -> int:
        """Largest number of blocks of this workload's average size per launch."""
        blocks = max(1, workload.total_blocks)
        per_block = self.footprint_bytes(workload) / blocks
        if per_block <= 0:
            return blocks
        return max(1, int(self.device.hbm_capacity_bytes // per_block))

    # ------------------------------------------------------------------ #
    # Traffic.
    # ------------------------------------------------------------------ #
    def l2_resident_fraction(
        self, workload: KernelWorkload, resident_blocks: int
    ) -> float:
        """Fraction of anti-diagonal buffer accesses served by the L2 cache.

        The working set of a resident block is its three anti-diagonal
        buffers sized to the *current* band (approximated by the workload's
        mean band width).  If the combined working set of all resident
        blocks fits in L2 the fraction is ~1; otherwise it degrades
        proportionally.
        """
        if resident_blocks <= 0:
            raise ConfigurationError("resident_blocks must be positive")
        band = max(1.0, workload.mean_band_width)
        working_set = resident_blocks * 3 * band * _VALUE_BYTES
        if working_set <= 0:
            return 1.0
        return float(min(1.0, self.device.l2_cache_bytes / working_set))

    def estimate(
        self, workload: KernelWorkload, resident_blocks: int
    ) -> MemoryEstimate:
        """Full memory estimate for one launch with *resident_blocks* per device."""
        l2_fraction = self.l2_resident_fraction(workload, resident_blocks)
        cells = workload.total_cells
        buffer_traffic = cells * self.bytes_per_cell_uncached * (1.0 - l2_fraction)
        sequence_traffic = (
            workload.total_sequence_bytes * self.sequence_read_amplification
        )
        result_traffic = workload.total_blocks * _RESULT_BYTES_PER_BLOCK
        hbm_bytes = int(buffer_traffic + sequence_traffic + result_traffic)
        transfer_bytes = int(
            workload.total_sequence_bytes + workload.total_blocks * _RESULT_BYTES_PER_BLOCK
        )
        return MemoryEstimate(
            hbm_bytes=hbm_bytes,
            footprint_bytes=self.footprint_bytes(workload),
            l2_resident_fraction=l2_fraction,
            transfer_bytes=transfer_bytes,
        )

    # ------------------------------------------------------------------ #
    # Host link.
    # ------------------------------------------------------------------ #
    def transfer_seconds(self, transfer_bytes: int) -> float:
        """Seconds to move *transfer_bytes* over the host link."""
        if transfer_bytes < 0:
            raise ConfigurationError("transfer_bytes must be non-negative")
        bandwidth = self.device.pcie_bandwidth_gbps * 1e9
        return transfer_bytes / bandwidth
