"""Knobs of the self-tuning controllers (validated, JSON-round-trippable).

The option surface mirrors :class:`repro.prefilter.PrefilterPolicy`: a
frozen dataclass with eager ``__post_init__`` validation and a
``from_options`` classmethod that rejects unknown keys, so a typo in
``ServiceConfig(autotune_options=...)`` or ``--autotune-options`` fails at
configuration time with the list of valid names, not at the first decision.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping

from ..core.xdrop_batch import MAX_SUGGESTED_BATCH_SIZE
from ..errors import ConfigurationError

__all__ = ["AUTOTUNE_MODES", "AutotuneOptions"]

#: The three autotune modes: ``off`` (static config), ``advise`` (decide
#: and count, never actuate), ``on`` (actuate, guarded by the kill-switch).
AUTOTUNE_MODES = ("off", "advise", "on")


@dataclass(frozen=True)
class AutotuneOptions:
    """Controller/planner/kill-switch tuning of the autotune subsystem.

    Attributes
    ----------
    window:
        Batches of kernel telemetry each controller's ring buffer holds;
        the decision signal is aggregated over this window only.
    min_window_batches:
        Batches a window must hold before its controller may decide
        (avoids reacting to a single unrepresentative batch).
    cooldown_batches:
        Batches a controller sits out after any decision (applied,
        advised or vetoed) before it may propose again.
    low_live_fraction, high_live_fraction:
        The dead band of the live-fraction signal: below ``low`` the
        batch shrinks, above ``high`` it grows, in between nothing moves.
    hysteresis:
        Extra margin the signal must clear to *reverse* the previous
        decision's direction — stops a bin from flapping grow/shrink on
        a signal hovering at a band edge.
    min_batch_size:
        Floor of any per-bin batch size the controller may set.
    max_batch_size_factor:
        Growth bound as a multiple of the configured ``max_batch_size``
        (the static policy value); the absolute cap
        :data:`repro.core.xdrop_batch.MAX_SUGGESTED_BATCH_SIZE` always
        applies on top.
    min_tile_width, max_tile_width:
        Bounds of the ``tile_width`` engine override.
    min_compact_threshold, max_compact_threshold, compact_step:
        Bounds and (additive) step size of the ``compact_threshold``
        engine override.
    planner:
        Consult the :class:`repro.autotune.WhatIfPlanner` before applying
        a batch-size *growth* (shrinks are host-side padding economics the
        device model cannot see; the kill-switch guards them instead).
    planner_min_gain:
        Modeled per-pair throughput ratio (proposed / current) a growth
        must reach to be applied; below it the decision is vetoed.
    revert_fraction:
        Kill-switch trigger: measured GCUPS falling below
        ``baseline * (1 - revert_fraction)`` counts as a regression.
    revert_batches:
        Consecutive post-decision batches that must regress before the
        kill-switch reverts every knob to the static configuration.
    """

    window: int = 8
    min_window_batches: int = 3
    cooldown_batches: int = 2
    low_live_fraction: float = 0.5
    high_live_fraction: float = 0.85
    hysteresis: float = 0.05
    min_batch_size: int = 8
    max_batch_size_factor: int = 4
    min_tile_width: int = 256
    max_tile_width: int = 8192
    min_compact_threshold: float = 0.1
    max_compact_threshold: float = 0.9
    compact_step: float = 0.1
    planner: bool = True
    planner_min_gain: float = 1.0
    revert_fraction: float = 0.5
    revert_batches: int = 4

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigurationError(
                f"autotune window must be positive, got {self.window}"
            )
        if not 1 <= self.min_window_batches <= self.window:
            raise ConfigurationError(
                f"autotune min_window_batches must be in [1, window], got "
                f"{self.min_window_batches} with window={self.window}"
            )
        if self.cooldown_batches < 0:
            raise ConfigurationError(
                f"autotune cooldown_batches must be >= 0, "
                f"got {self.cooldown_batches}"
            )
        if not 0.0 < self.low_live_fraction < self.high_live_fraction < 1.0:
            raise ConfigurationError(
                "autotune live-fraction band must satisfy 0 < low < high < 1; "
                f"got low={self.low_live_fraction}, "
                f"high={self.high_live_fraction}"
            )
        if self.hysteresis < 0 or (
            self.high_live_fraction + self.hysteresis >= 1.0
            or self.low_live_fraction - self.hysteresis <= 0.0
        ):
            raise ConfigurationError(
                f"autotune hysteresis must keep the widened band inside "
                f"(0, 1), got {self.hysteresis}"
            )
        if self.min_batch_size < 1:
            raise ConfigurationError(
                f"autotune min_batch_size must be positive, "
                f"got {self.min_batch_size}"
            )
        if self.max_batch_size_factor < 1:
            raise ConfigurationError(
                f"autotune max_batch_size_factor must be >= 1, "
                f"got {self.max_batch_size_factor}"
            )
        if not 1 <= self.min_tile_width <= self.max_tile_width:
            raise ConfigurationError(
                f"autotune tile-width bounds must satisfy 1 <= min <= max; "
                f"got [{self.min_tile_width}, {self.max_tile_width}]"
            )
        if not (
            0.0
            <= self.min_compact_threshold
            < self.max_compact_threshold
            <= 1.0
        ):
            raise ConfigurationError(
                "autotune compact-threshold bounds must satisfy "
                f"0 <= min < max <= 1; got [{self.min_compact_threshold}, "
                f"{self.max_compact_threshold}]"
            )
        if not 0.0 < self.compact_step <= 1.0:
            raise ConfigurationError(
                f"autotune compact_step must be in (0, 1], "
                f"got {self.compact_step}"
            )
        if self.planner_min_gain <= 0:
            raise ConfigurationError(
                f"autotune planner_min_gain must be positive, "
                f"got {self.planner_min_gain}"
            )
        if not 0.0 < self.revert_fraction < 1.0:
            raise ConfigurationError(
                f"autotune revert_fraction must be in (0, 1), "
                f"got {self.revert_fraction}"
            )
        if self.revert_batches < 1:
            raise ConfigurationError(
                f"autotune revert_batches must be positive, "
                f"got {self.revert_batches}"
            )

    @classmethod
    def from_options(
        cls, options: Mapping[str, Any] | None
    ) -> "AutotuneOptions":
        """Build options from a loose mapping (CLI / config dict)."""
        opts = dict(options or {})
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(opts) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown autotune option(s) {unknown}; "
                f"available: {sorted(known)}"
            )
        return cls(**opts)

    def batch_size_bound(self, base: int) -> int:
        """Growth ceiling of a bin whose static batch size is *base*."""
        return max(
            1, min(self.max_batch_size_factor * base, MAX_SUGGESTED_BATCH_SIZE)
        )
