"""Tests of the benchmark subsystem: schema, baseline store, gate, CLI.

Fast paths (tiny workloads, temp trajectory files) run in tier-1; the
timed quick-scale measurement smoke is marked ``benchmark``.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BaselineStore,
    BenchEntry,
    BenchResult,
    compare,
    run_engine_bench,
    run_service_bench,
)
from repro.cli import main_bench_perf
from repro.errors import ConfigurationError


def make_row(engine="batched", speedup=4.0, seconds=1.0, identical=True):
    return BenchResult(
        engine=engine,
        measured_seconds=seconds,
        measured_gcups=0.01,
        speedup_vs_scalar=speedup,
        scores_identical_to_reference=identical,
        cells=1000,
    )


def make_entry(speedup=4.0, seconds=1.0, quick=False, label="x"):
    return BenchEntry(
        kind="engines",
        label=label,
        batch_size=256,
        xdrop=50,
        rng_seed=2020,
        scoring={"match": 1, "mismatch": -1, "gap": -1},
        quick=quick,
        rows=[
            make_row("reference", 1.0, 5.0),
            make_row("batched", speedup, seconds),
        ],
    )


# --------------------------------------------------------------------------- #
# Schema
# --------------------------------------------------------------------------- #
class TestSchema:
    def test_entry_round_trip(self):
        entry = make_entry()
        clone = BenchEntry.from_dict(json.loads(json.dumps(entry.to_dict())))
        assert clone.signature() == entry.signature()
        assert clone.row("batched").speedup_vs_scalar == 4.0
        assert clone.row("missing") is None

    def test_signature_distinguishes_workloads(self):
        assert make_entry().signature() != make_entry(quick=True).signature()
        other = make_entry()
        other.xdrop = 49
        assert other.signature() != make_entry().signature()

    def test_profile_entry_round_trips_and_signs_distinctly(self):
        entry = make_entry()
        entry.profile = "pacbio"
        entry.extra = {"workload": {"min_length": 2000, "max_length": 4000}}
        clone = BenchEntry.from_dict(json.loads(json.dumps(entry.to_dict())))
        assert clone.profile == "pacbio"
        assert clone.signature() == entry.signature()
        # A profile series never matches the default-workload series, and
        # different workload knobs open distinct series within a profile.
        assert entry.signature() != make_entry().signature()
        other = BenchEntry.from_dict(json.loads(json.dumps(entry.to_dict())))
        other.extra = {"workload": {"min_length": 100, "max_length": 4000}}
        assert other.signature() != entry.signature()
        assert "profile=pacbio" in entry.formatted()

    def test_legacy_entry_without_profile_keeps_signature(self):
        # Pre-profile trajectory entries have no "profile" key; they must
        # keep matching runs of the default workload.
        data = make_entry().to_dict()
        del data["profile"]
        assert BenchEntry.from_dict(data).signature() == make_entry().signature()

    def test_timestamp_autofilled_and_formatted(self):
        entry = make_entry()
        assert entry.timestamp
        text = entry.formatted()
        assert "batched" in text and "4.00x" in text

    def test_malformed_entry_raises(self):
        with pytest.raises(ConfigurationError):
            BenchEntry.from_dict({"rows": [{"engine": "x"}]})


# --------------------------------------------------------------------------- #
# Baseline store
# --------------------------------------------------------------------------- #
class TestBaselineStore:
    def test_missing_file_is_empty(self, tmp_path):
        store = BaselineStore(tmp_path / "none.json")
        assert store.load() == []
        assert store.latest() is None

    def test_append_and_reload(self, tmp_path):
        store = BaselineStore(tmp_path / "t.json")
        store.append(make_entry(label="first"))
        store.append(make_entry(speedup=8.0, label="second"))
        trajectory = store.load()
        assert [e.label for e in trajectory] == ["first", "second"]
        assert store.latest().label == "second"
        data = json.loads((tmp_path / "t.json").read_text())
        assert data["schema"].startswith("repro-bench-trajectory")
        assert len(data["trajectory"]) == 2

    def test_legacy_engines_snapshot_becomes_trajectory(self, tmp_path):
        legacy = {
            "batch_size": 256,
            "xdrop": 50,
            "rng_seed": 2020,
            "scoring": {"match": 1, "mismatch": -1, "gap": -1},
            "engines": [make_row("batched", 4.3, 1.28).to_dict()],
        }
        path = tmp_path / "BENCH_engines.json"
        path.write_text(json.dumps(legacy))
        store = BaselineStore(path)
        entries = store.load()
        assert len(entries) == 1
        assert entries[0].timestamp == "legacy"
        assert entries[0].row("batched").measured_seconds == 1.28
        # The legacy snapshot matches the signature of a fresh full entry.
        assert store.latest_matching(make_entry()) is not None
        # Appending preserves it as the trajectory root.
        store.append(make_entry(speedup=9.0))
        assert [e.timestamp == "legacy" for e in store.load()] == [True, False]

    def test_latest_matching_respects_signature(self, tmp_path):
        store = BaselineStore(tmp_path / "t.json")
        store.append(make_entry(quick=True))
        assert store.latest_matching(make_entry(quick=False)) is None
        assert store.latest_matching(make_entry(quick=True)) is not None

    def test_unrecognised_layout_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"weird": 1}')
        with pytest.raises(ConfigurationError):
            BaselineStore(path).load()
        path.write_text("not json")
        with pytest.raises(ConfigurationError):
            BaselineStore(path).load()

    def test_repo_baselines_parse(self):
        """The committed trajectory files must always load."""
        engines = BaselineStore("BENCH_engines.json").load()
        assert engines and engines[0].timestamp == "legacy"
        assert any(not e.quick for e in engines[1:])
        service = BaselineStore("BENCH_service.json").load()
        assert service and service[0].timestamp == "legacy"


# --------------------------------------------------------------------------- #
# Regression gate
# --------------------------------------------------------------------------- #
class TestCompare:
    def test_improvement_passes(self):
        report = compare(make_entry(speedup=9.0), make_entry(speedup=4.0))
        assert report.ok
        delta = report.deltas[0]
        assert delta.engine == "batched" and delta.ratio == pytest.approx(2.25)
        assert "reference" in report.skipped  # the denominator is ungated

    def test_regression_beyond_tolerance_fails(self):
        report = compare(
            make_entry(speedup=2.0), make_entry(speedup=4.0), tolerance=0.30
        )
        assert not report.ok
        assert report.regressions[0].engine == "batched"
        assert "REGRESSION" in report.formatted()

    def test_regression_within_tolerance_passes(self):
        report = compare(
            make_entry(speedup=3.0), make_entry(speedup=4.0), tolerance=0.30
        )
        assert report.ok  # 25% drop < 30% tolerance

    def test_seconds_metric_direction(self):
        slower = compare(
            make_entry(seconds=2.0),
            make_entry(seconds=1.0),
            metric="measured_seconds",
            tolerance=0.30,
        )
        assert not slower.ok
        faster = compare(
            make_entry(seconds=0.5),
            make_entry(seconds=1.0),
            metric="measured_seconds",
        )
        assert faster.ok

    def test_no_baseline_is_passing_first_record(self):
        report = compare(make_entry(), None)
        assert report.ok and not report.deltas

    def test_unknown_metric_and_bad_tolerance(self):
        with pytest.raises(ConfigurationError):
            compare(make_entry(), make_entry(), metric="vibes")
        with pytest.raises(ConfigurationError):
            compare(make_entry(), make_entry(), tolerance=-1.0)

    def test_noise_rows_are_ungated(self):
        current = make_entry()
        current.rows.append(make_row("service_resubmit", 100.0, 0.001))
        baseline = make_entry()
        baseline.rows.append(make_row("service_resubmit", 5000.0, 0.0001))
        report = compare(current, baseline)
        assert report.ok
        assert "service_resubmit" in report.skipped

    def test_report_round_trips_to_dict(self):
        report = compare(make_entry(speedup=9.0), make_entry(speedup=4.0))
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["deltas"][0]["engine"] == "batched"


# --------------------------------------------------------------------------- #
# Runners + CLI (tiny workloads; the timed smoke is marked `benchmark`)
# --------------------------------------------------------------------------- #
class TestRunnersAndCli:
    def test_engine_runner_tiny(self):
        entry = run_engine_bench(pairs=4, engines=["reference", "batched"], seed=7)
        assert entry.batch_size == 4
        batched = entry.row("batched")
        assert batched.scores_identical_to_reference
        assert batched.kernel is not None and batched.kernel["rows"] > 0
        assert entry.row("reference").speedup_vs_scalar == 1.0

    def test_engine_runner_rejects_bad_input(self):
        with pytest.raises(ConfigurationError):
            run_engine_bench(pairs=0)
        with pytest.raises(ConfigurationError):
            run_engine_bench(pairs=4, engines=["nope"])
        with pytest.raises(ConfigurationError):
            run_engine_bench(pairs=4, repeats=0)

    def test_cli_perf_records_and_gates(self, tmp_path, capsys):
        baseline = tmp_path / "engines.json"
        args = [
            "--pairs", "4", "--engines", "reference", "batched",
            "--baseline", str(baseline), "--seed", "7",
        ]
        # First run: nothing comparable stored, record the baseline.
        assert main_bench_perf(args + ["--record"]) == 0
        assert BaselineStore(baseline).latest() is not None
        # Second run: gated against the recorded entry (generous tolerance
        # absorbs timing noise on a 4-pair batch).
        code = main_bench_perf(args + ["--tolerance", "0.99"])
        assert code == 0
        out = capsys.readouterr().out
        assert "compare vs baseline" in out

    def test_engine_runner_profile_workload(self):
        entry = run_engine_bench(
            pairs=3,
            engines=["reference", "wavefront"],
            seed=7,
            profile="pacbio",
            min_length=60,
            max_length=120,
            error_rate=0.05,
        )
        assert entry.profile == "pacbio"
        assert entry.extra["workload"]["min_length"] == 60
        assert entry.row("wavefront").scores_identical_to_reference

    def test_engine_runner_rejects_workload_knobs_without_profile(self):
        with pytest.raises(ConfigurationError, match="profile"):
            run_engine_bench(pairs=4, min_length=60)

    def test_cli_perf_missing_baseline_message_and_strict(self, tmp_path, capsys):
        baseline = tmp_path / "engines.json"
        args = [
            "--pairs", "3", "--engines", "reference", "wavefront",
            "--profile", "ont", "--baseline", str(baseline), "--seed", "7",
        ]
        # No baseline for this series yet: explain, exit 0 by default.
        assert main_bench_perf(args) == 0
        out = capsys.readouterr().out
        assert "no baseline recorded for series 'engines/ont'" in out
        assert "--record" in out
        # --strict turns the missing baseline into a gate failure.
        assert main_bench_perf(args + ["--strict"]) == 1
        # Record, then re-run strict: series exists, gate passes.
        assert main_bench_perf(args + ["--record"]) == 0
        capsys.readouterr()
        assert main_bench_perf(args + ["--strict", "--tolerance", "0.99"]) == 0
        assert "compare vs baseline" in capsys.readouterr().out

    def test_cli_perf_missing_engine_row_reported(self, tmp_path, capsys):
        baseline = tmp_path / "engines.json"
        common = ["--pairs", "3", "--baseline", str(baseline), "--seed", "7"]
        assert main_bench_perf(
            common + ["--engines", "reference", "batched", "--record"]
        ) == 0
        capsys.readouterr()
        # Same series, new engine: the entry matches but the wavefront row
        # has no baseline — say so per engine; only --strict gates on it.
        args = common + [
            "--engines", "reference", "batched", "wavefront",
            "--tolerance", "0.99",
        ]
        assert main_bench_perf(args) == 0
        out = capsys.readouterr().out
        assert "engine 'wavefront'" in out and "no baseline recorded" in out
        assert main_bench_perf(args + ["--strict"]) == 1

    def test_cli_perf_artifact_and_json(self, tmp_path, capsys):
        artifact = tmp_path / "report.json"
        code = main_bench_perf(
            [
                "--pairs", "4", "--engines", "reference", "batched",
                "--baseline", str(tmp_path / "b.json"), "--seed", "7",
                "--no-compare", "--json", "--artifact", str(artifact),
            ]
        )
        assert code == 0
        payload = json.loads(artifact.read_text())
        assert payload["ok"] is True
        emitted = json.loads(capsys.readouterr().out)
        assert emitted["engines"]["batch_size"] == 4

    def test_main_bench_dispatches_perf(self, tmp_path):
        from repro.cli import main_bench

        assert (
            main_bench(
                [
                    "perf", "--pairs", "4", "--engines", "reference", "batched",
                    "--baseline", str(tmp_path / "b.json"), "--no-compare",
                ]
            )
            == 0
        )


@pytest.mark.benchmark
class TestBenchmarkSmoke:
    def test_quick_engine_bench_meets_floor(self):
        """Quick-scale measurement: the compacted kernel must beat 3x."""
        entry = run_engine_bench(quick=True)
        assert entry.quick and entry.batch_size == 64
        batched = entry.row("batched")
        assert batched.scores_identical_to_reference
        assert batched.speedup_vs_scalar >= 3.0

    def test_quick_service_bench_parity_and_cache(self):
        entry = run_service_bench(quick=True)
        rows = {row.engine: row for row in entry.rows}
        assert rows["service"].scores_identical_to_reference
        assert rows["service_resubmit"].scores_identical_to_reference
        assert entry.extra["cache_hit_rate"] > 0
        assert entry.extra["kernel_live_fraction"] is not None
