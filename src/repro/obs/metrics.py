"""Labelled metrics core: counters, gauges, fixed-bucket histograms.

The registry is the process-local equivalent of a Prometheus client: code
creates (or re-fetches) named instruments once, updates them from hot paths,
and an exporter periodically turns the whole registry into an immutable
:class:`MetricsSnapshot` for the JSON-lines / Prometheus text writers in
:mod:`repro.obs.export`.

Design constraints, in order:

1. *Correct under threads.*  Every instrument guards its state with one
   small lock; the hammer tests assert no increment is ever lost and
   histogram totals stay consistent under concurrent observers.
2. *Cheap enough for hot paths.*  The critical section of an update is one
   dict/float operation — no allocation, no string formatting.  A snapshot
   never blocks updates for longer than copying the instrument's state.
3. *Idempotent creation.*  ``registry.counter("x")`` returns the existing
   instrument on repeat calls, so layers can declare their instruments
   locally without threading registry handles through every constructor.
   Re-declaring a name with a different type or label set raises.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "SeriesSample",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets (seconds-shaped: 0.5 ms .. 10 s, +Inf implied).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: A label set frozen into a hashable series key.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labelnames: Sequence[str], labels: Mapping[str, Any]) -> LabelKey:
    """Validate and freeze one update's labels against the declaration."""
    if set(labels) != set(labelnames):
        raise ConfigurationError(
            f"labels {sorted(labels)} do not match the declared label names "
            f"{sorted(labelnames)}"
        )
    return tuple((name, str(labels[name])) for name in labelnames)


class _Instrument:
    """Shared plumbing: name, declaration, per-instrument lock."""

    kind = "abstract"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _declaration(self) -> tuple:
        return (self.kind, self.labelnames)


class Counter(_Instrument):
    """Monotonically increasing counter, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[LabelKey, float] = {}
        if not self.labelnames:
            # Unlabelled series exist from creation, so snapshots taken
            # before any traffic still export the zero.
            self._values[()] = 0.0

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        """Add *value* (must be non-negative) to the labelled series."""
        if value < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc({value}))"
            )
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        """Current value of one labelled series (0.0 if never incremented)."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        """Sum across every labelled series."""
        with self._lock:
            return float(sum(self._values.values()))

    def _sample(self) -> list["SeriesSample"]:
        with self._lock:
            items = list(self._values.items())
        return [
            SeriesSample(self.name, self.kind, dict(key), value, help=self.help)
            for key, value in items
        ]


class Gauge(_Instrument):
    """A value that can go up and down (queue depth, live fraction, ...)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[LabelKey, float] = {}
        if not self.labelnames:
            self._values[()] = 0.0

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + value

    def dec(self, value: float = 1.0, **labels: Any) -> None:
        self.inc(-value, **labels)

    def value(self, **labels: Any) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def _sample(self) -> list["SeriesSample"]:
        with self._lock:
            items = list(self._values.items())
        return [
            SeriesSample(self.name, self.kind, dict(key), value, help=self.help)
            for key, value in items
        ]


class _HistogramSeries:
    """Bucket counts + sum/count of one labelled histogram series."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self, num_buckets: int) -> None:
        self.counts = [0] * (num_buckets + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Fixed-bucket histogram (cumulative rendering happens at export)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be a non-empty sorted "
                f"sequence, got {buckets!r}"
            )
        self.buckets = bounds
        self._series: dict[LabelKey, _HistogramSeries] = {}
        if not self.labelnames:
            self._series[()] = _HistogramSeries(len(self.buckets))

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation into the labelled series."""
        key = _label_key(self.labelnames, labels)
        value = float(value)
        # Bucket search outside the lock: the bounds are immutable.
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            series.counts[index] += 1
            series.sum += value
            series.count += 1

    def series(self, **labels: Any) -> dict[str, Any]:
        """Snapshot of one labelled series (counts per bucket, sum, count)."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            s = self._series.get(key)
            if s is None:
                return {"counts": [0] * (len(self.buckets) + 1), "sum": 0.0, "count": 0}
            return {"counts": list(s.counts), "sum": s.sum, "count": s.count}

    def _sample(self) -> list["SeriesSample"]:
        with self._lock:
            items = [
                (key, list(s.counts), s.sum, s.count)
                for key, s in self._series.items()
            ]
        return [
            SeriesSample(
                self.name,
                self.kind,
                dict(key),
                value=total,
                help=self.help,
                histogram={
                    "buckets": list(self.buckets),
                    "counts": counts,
                    "sum": total,
                    "count": count,
                },
            )
            for key, counts, total, count in items
        ]


@dataclass
class SeriesSample:
    """One exported series: a (name, labels) pair with its value.

    For histograms ``value`` is the observation sum and ``histogram``
    carries the bucket detail; counters and gauges leave it ``None``.
    """

    name: str
    kind: str
    labels: dict[str, str]
    value: float
    help: str = ""
    histogram: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }
        if self.histogram is not None:
            payload["histogram"] = {
                "buckets": list(self.histogram["buckets"]),
                "counts": list(self.histogram["counts"]),
                "sum": self.histogram["sum"],
                "count": self.histogram["count"],
            }
        return payload


@dataclass
class MetricsSnapshot:
    """Immutable point-in-time copy of a registry.

    ``provenance`` follows the benchmark-reproducibility checklist: the
    exporting layer stamps config hash / seed / git SHA so every exported
    series can be traced back to the run that produced it.
    """

    captured_at: float
    series: list[SeriesSample] = field(default_factory=list)
    provenance: dict[str, Any] = field(default_factory=dict)

    def get(self, name: str, **labels: Any) -> SeriesSample | None:
        """The sample of (name, labels), or ``None`` when absent."""
        wanted = {k: str(v) for k, v in labels.items()}
        for sample in self.series:
            if sample.name == name and sample.labels == wanted:
                return sample
        return None

    def value(self, name: str, default: float | None = None, **labels: Any) -> float:
        """Value of one series; *default* (or an error) when absent."""
        sample = self.get(name, **labels)
        if sample is None:
            if default is not None:
                return default
            raise KeyError(f"no series {name!r} with labels {labels!r}")
        return sample.value

    def names(self) -> set[str]:
        """Every distinct series name in the snapshot."""
        return {s.name for s in self.series}

    def to_dict(self) -> dict[str, Any]:
        return {
            "captured_at": self.captured_at,
            "provenance": dict(self.provenance),
            "series": [s.to_dict() for s in self.series],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricsSnapshot":
        return cls(
            captured_at=float(data.get("captured_at", 0.0)),
            provenance=dict(data.get("provenance", {})),
            series=[
                SeriesSample(
                    name=str(s["name"]),
                    kind=str(s.get("kind", "gauge")),
                    labels={k: str(v) for k, v in dict(s.get("labels", {})).items()},
                    value=float(s.get("value", 0.0)),
                    histogram=s.get("histogram"),
                )
                for s in data.get("series", [])
            ],
        )


class MetricsRegistry:
    """Named home of every instrument one subsystem exports.

    The service owns a private registry (its stats snapshot is a view over
    it); library-wide telemetry (kernels, engines, pipeline stages) lands
    on the process-global registry from :mod:`repro.obs.runtime`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(labelnames):
                    raise ConfigurationError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind} with labels {list(existing.labelnames)}"
                    )
                return existing
            instrument = cls(name, help=help, labelnames=labelnames, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        """Get or create the counter *name*."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        """Get or create the gauge *name*."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram *name* (fixed *buckets*)."""
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def names(self) -> list[str]:
        """Sorted names of every registered instrument."""
        with self._lock:
            return sorted(self._instruments)

    def instruments(self) -> list[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def snapshot(
        self, provenance: Mapping[str, Any] | None = None
    ) -> MetricsSnapshot:
        """Copy every series into an immutable snapshot."""
        samples: list[SeriesSample] = []
        for instrument in self.instruments():
            samples.extend(instrument._sample())
        samples.sort(key=lambda s: (s.name, sorted(s.labels.items())))
        return MetricsSnapshot(
            captured_at=time.time(),
            series=samples,
            provenance=dict(provenance or {}),
        )


def diff_counters(
    old: MetricsSnapshot, new: MetricsSnapshot
) -> list[dict[str, Any]]:
    """Counter/histogram-count deltas between two snapshots of one registry.

    The flight recorder stores these per interval: what *changed* recently
    is the useful crash context, not lifetime totals.
    """
    previous: dict[tuple, float] = {}
    for sample in old.series:
        previous[(sample.name, tuple(sorted(sample.labels.items())))] = sample.value
    deltas: list[dict[str, Any]] = []
    for sample in new.series:
        if sample.kind == "gauge":
            continue
        key = (sample.name, tuple(sorted(sample.labels.items())))
        delta = sample.value - previous.get(key, 0.0)
        if delta != 0.0:
            deltas.append(
                {"name": sample.name, "labels": dict(sample.labels), "delta": delta}
            )
    return deltas


__all__.append("diff_counters")
