"""Fig. 13 — instruction Roofline analysis of the LOGAN kernel (X = 100).

Paper reference: the kernel's operational intensity on HBM puts it in the
compute-bound region of the Roofline (right of the ridge point) and its
achieved warp GIPS sit close to the *adapted* ceiling of Eq. (1) — i.e. the
implementation is near-optimal given its per-iteration parallelism, and far
below the raw 220.8 INT32 ceiling only because anti-diagonals cannot always
fill every scheduled warp.

The reproduction checks exactly those relationships and writes the Roofline
series (JSON + ASCII rendering) to ``benchmarks/results/``.
"""

from __future__ import annotations


def test_fig13_roofline(run_experiment):
    table = run_experiment("fig13")
    values = {int(row.parameter): row.values["value"] for row in table.rows}
    oi = values[1]
    achieved = values[2]
    adapted_ceiling = values[3]
    int32_ceiling = values[4]
    ridge = values[5]
    efficiency = values[6]
    compute_bound = values[7]

    # Compute-bound: operational intensity is right of the ridge point.
    assert compute_bound == 1.0
    assert oi > ridge
    # The adapted ceiling is below the raw INT32 ceiling (Eq. 1 lowers it).
    assert adapted_ceiling <= int32_ceiling
    # Achieved performance is close to the adapted ceiling (near-optimal),
    # and never above the hardware INT32 ceiling.
    assert efficiency > 0.5
    assert achieved <= int32_ceiling * 1.05
