"""Network front door: a socket server wrapping :class:`AlignmentService`.

The server speaks the length-prefixed JSON protocol of
``repro.distrib.wire``.  One connection handles any number of requests,
each a single frame with an ``"op"`` field:

``ping``
    Liveness + identity (pid, engine, transport, workers).
``submit``
    ``{"op": "submit", "jobs": [...]}`` — align a batch and reply with the
    results (wire-exact) plus per-job cache-hit flags.
``stats`` / ``metrics``
    The service's :meth:`stats` dict / full metrics snapshot, including the
    per-shard series merged back from worker processes.
``shutdown``
    Ask the server to stop serving after replying.

Shutdown is always graceful: ``close(drain=True)`` (also the SIGINT/SIGTERM
path installed by :meth:`serve_forever`) stops accepting connections,
drains the submission queue, flushes durable state and joins the workers —
in-flight tickets complete instead of being dropped.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import traceback
from typing import Any

from ..errors import ReproError, ServiceError
from .wire import job_from_wire, recv_frame, result_to_wire, send_frame

__all__ = ["AlignmentServer", "GracefulShutdown"]


class GracefulShutdown:
    """Context manager turning SIGINT/SIGTERM into an orderly stop request.

    The handler only sets :attr:`requested`; the serving loop notices and
    walks its normal drain-flush-join shutdown path instead of dying with
    tickets in flight.  Previous handlers are restored on exit.
    """

    _SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self) -> None:
        self.requested = threading.Event()
        self._previous: dict[int, Any] = {}

    def __enter__(self) -> "GracefulShutdown":
        for signum in self._SIGNALS:
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except (ValueError, OSError):
                pass  # not the main thread / unsupported platform
        return self

    def __exit__(self, *exc_info: object) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                pass

    def _handle(self, signum: int, frame: Any) -> None:
        self.requested.set()


class AlignmentServer:
    """Serve an :class:`~repro.service.AlignmentService` over a socket.

    Parameters
    ----------
    config:
        :class:`repro.api.AlignConfig` the service is built from (transport,
        workers, durable state path all come from ``config.service``).
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port`).
    service:
        Pre-built service to serve instead of constructing one (the server
        then does not own its shutdown).
    """

    def __init__(
        self,
        config=None,
        host: str = "127.0.0.1",
        port: int = 0,
        service=None,
    ) -> None:
        if (config is None) == (service is None):
            raise ServiceError("pass exactly one of config= or service=")
        if service is None:
            from ..service import AlignmentService

            service = AlignmentService(config=config)
            self._owns_service = True
        else:
            self._owns_service = False
        self.service = service
        self.config = config if config is not None else service.config
        self._sock = socket.create_server((host, port))
        self.host, self.port = self._sock.getsockname()[:2]
        self._stop = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._closed = False
        self._requests_c = self.service.obs.counter(
            "repro_server_requests_total",
            "requests handled by the network front door",
            labelnames=("op",),
        )
        self._connections_c = self.service.obs.counter(
            "repro_server_connections_total",
            "client connections accepted",
        )

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "AlignmentServer":
        """Start accepting connections (idempotent)."""
        if self._closed:
            raise ServiceError("server has been closed")
        if self._accept_thread is None or not self._accept_thread.is_alive():
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="repro-server-accept", daemon=True
            )
            self._accept_thread.start()
        return self

    def serve_forever(self, install_signal_handlers: bool = False) -> None:
        """Serve until :meth:`request_stop` (or SIGINT/SIGTERM), then drain."""
        self.start()
        if install_signal_handlers:
            with GracefulShutdown() as stop:
                while not self._stop.is_set() and not stop.requested.is_set():
                    stop.requested.wait(0.2)
        else:
            self._stop.wait()
        self.close(drain=True)

    def request_stop(self) -> None:
        self._stop.set()

    def close(self, drain: bool = True) -> None:
        """Stop accepting, finish open connections, shut the service down."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._stop.set()
        try:
            self._sock.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for thread in list(self._conn_threads):
            thread.join(timeout=10.0)
        if self._owns_service:
            self.service.shutdown(drain=drain)

    def __enter__(self) -> "AlignmentServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close(drain=exc_info[0] is None)

    # -- connection handling ----------------------------------------------

    def _accept_loop(self) -> None:
        self._sock.settimeout(0.2)
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            self._connections_c.inc()
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-server-conn",
                daemon=True,
            )
            thread.start()
            with self._lock:
                self._conn_threads.append(thread)
                self._conn_threads = [
                    t for t in self._conn_threads if t.is_alive()
                ]

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while not self._stop.is_set():
                try:
                    request = recv_frame(conn)
                except (ServiceError, OSError):
                    return
                if request is None:
                    return
                response = self._handle_request(request)
                try:
                    send_frame(conn, response)
                except OSError:
                    return
                if request.get("op") == "shutdown" and response.get("ok"):
                    self.request_stop()
                    return

    def _handle_request(self, request: dict[str, Any]) -> dict[str, Any]:
        op = str(request.get("op", ""))
        self._requests_c.inc(op=op or "unknown")
        try:
            if op == "ping":
                return {"ok": True, "server": self._identity()}
            if op == "submit":
                return self._handle_submit(request)
            if op == "stats":
                return {"ok": True, "stats": self.service.stats().to_dict()}
            if op == "metrics":
                return {
                    "ok": True,
                    "metrics": self.service.metrics_snapshot().to_dict(),
                }
            if op == "shutdown":
                return {"ok": True, "stopping": True}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except ReproError as exc:
            return {"ok": False, "error": str(exc)}
        except Exception as exc:  # never let a handler kill the connection
            return {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            }

    def _handle_submit(self, request: dict[str, Any]) -> dict[str, Any]:
        jobs = [job_from_wire(payload) for payload in request.get("jobs", [])]
        if not jobs:
            return {"ok": True, "results": [], "cached": []}
        timeout = float(request.get("timeout", 300.0))
        tickets = self.service.submit_many(jobs)
        if not self.service.running:
            self.service.drain()
        results = [ticket.result(timeout=timeout) for ticket in tickets]
        return {
            "ok": True,
            "results": [result_to_wire(result) for result in results],
            "cached": [bool(ticket.cache_hit) for ticket in tickets],
        }

    def _identity(self) -> dict[str, Any]:
        svc = self.config.service if self.config is not None else None
        return {
            "pid": os.getpid(),
            "engine": self.config.engine if self.config is not None else None,
            "transport": svc.transport if svc is not None else None,
            "num_workers": svc.num_workers if svc is not None else None,
            "state_path": svc.state_path if svc is not None else None,
        }
