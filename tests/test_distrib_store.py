"""Durable SQLite submission queue + result cache (``repro.distrib.store``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distrib.store import DurableStore
from repro.distrib.wire import cache_key_to_json
from repro.engine import get_engine
from repro.errors import ServiceError
from repro.obs import get_observability
from repro.service.cache import job_cache_key


@pytest.fixture
def store_path(tmp_path) -> str:
    return str(tmp_path / "state.db")


def _keyed(jobs, scoring, xdrop=30):
    return [(cache_key_to_json(job_cache_key(j, scoring, xdrop)), j) for j in jobs]


class TestQueue:
    def test_enqueue_and_recover_round_trip(self, store_path, small_jobs, scoring):
        with DurableStore(store_path, obs=get_observability().scoped()) as store:
            ids = [store.enqueue(k, j) for k, j in _keyed(small_jobs, scoring)]
            assert len(set(ids)) == len(small_jobs)
            assert store.pending_count() == len(small_jobs)
            records = store.recover()
        assert [r.row_id for r in records] == ids
        assert not any(r.redelivered for r in records)
        for record, job in zip(records, small_jobs):
            assert np.array_equal(record.job.query, job.query)
            assert np.array_equal(record.job.target, job.target)
            assert record.job.seed == job.seed

    def test_inflight_rows_survive_reopen_as_redeliveries(
        self, store_path, small_jobs, scoring
    ):
        keyed = _keyed(small_jobs, scoring)
        with DurableStore(store_path, obs=get_observability().scoped()) as store:
            ids = [store.enqueue(k, j) for k, j in keyed]
            store.mark_inflight(ids[:3])
            # No complete(): the process "crashes" here.

        obs = get_observability().scoped()
        with DurableStore(store_path, obs=obs) as reopened:
            records = reopened.recover()
            # Crash leftovers come first and are flagged.
            assert [r.redelivered for r in records].count(True) == 3
            assert all(r.redelivered for r in records[:3])
            assert {r.row_id for r in records[:3]} == set(ids[:3])
            assert all(r.attempts == 1 for r in records[:3])
            # recover() reset them to pending: a second recover is clean.
            assert not any(r.redelivered for r in reopened.recover())
        snap = obs.registry.snapshot()
        assert snap.value("repro_durable_redelivered_total") == 3.0

    def test_release_returns_rows_to_pending(self, store_path, small_jobs, scoring):
        with DurableStore(store_path, obs=get_observability().scoped()) as store:
            ids = [store.enqueue(k, j) for k, j in _keyed(small_jobs[:2], scoring)]
            store.mark_inflight(ids)
            store.release(ids)
            assert not any(r.redelivered for r in store.recover())


class TestResults:
    def test_complete_moves_rows_to_results(self, store_path, small_jobs, scoring):
        engine = get_engine("batched", scoring=scoring, xdrop=30)
        results = engine.align_batch(small_jobs).results
        keyed = _keyed(small_jobs, scoring)
        obs = get_observability().scoped()
        with DurableStore(store_path, obs=obs) as store:
            ids = [store.enqueue(k, j) for k, j in keyed]
            store.mark_inflight(ids)
            store.complete(
                (row_id, key, result)
                for row_id, (key, _), result in zip(ids, keyed, results)
            )
            assert store.pending_count() == 0
            assert store.result_count() == len(small_jobs)
            for (key, _), expected in zip(keyed, results):
                assert store.lookup_result(key) == expected
            assert store.lookup_result("no-such-key") is None
            store.flush()
        snap = obs.registry.snapshot()
        assert snap.value("repro_durable_enqueued_total") == len(small_jobs)
        assert snap.value("repro_durable_completed_total") == len(small_jobs)
        assert snap.value("repro_durable_lookups_total", outcome="hit") == (
            len(small_jobs)
        )
        assert snap.value("repro_durable_lookups_total", outcome="miss") == 1.0
        assert snap.value("repro_durable_pending") == 0.0

    def test_results_survive_reopen(self, store_path, small_jobs, scoring):
        engine = get_engine("batched", scoring=scoring, xdrop=30)
        result = engine.align_batch(small_jobs[:1]).results[0]
        key = _keyed(small_jobs[:1], scoring)[0][0]
        with DurableStore(store_path, obs=get_observability().scoped()) as store:
            # row_id=None: results can be upserted without a queue row.
            store.complete([(None, key, result)])
        with DurableStore(store_path, obs=get_observability().scoped()) as reopened:
            assert reopened.lookup_result(key) == result


class TestCompaction:
    def test_complete_tombstones_then_compact_purges(
        self, store_path, small_jobs, scoring
    ):
        engine = get_engine("batched", scoring=scoring, xdrop=30)
        results = engine.align_batch(small_jobs).results
        keyed = _keyed(small_jobs, scoring)
        obs = get_observability().scoped()
        with DurableStore(store_path, obs=obs) as store:
            ids = [store.enqueue(k, j) for k, j in keyed]
            store.mark_inflight(ids)
            store.complete(
                (row_id, key, result)
                for row_id, (key, _), result in zip(ids, keyed, results)
            )
            # Tombstoned rows are invisible to pending_count but still on
            # disk until compact() purges them.
            assert store.pending_count() == 0
            purged = store.compact()
            assert purged == {"queue": len(small_jobs), "results": 0}
            assert store.compact() == {"queue": 0, "results": 0}
            assert store.result_count() == len(small_jobs)
        snap = obs.registry.snapshot()
        assert snap.value(
            "repro_durable_compacted_total", kind="queue"
        ) == len(small_jobs)

    def test_ttl_expires_old_results(self, store_path, small_jobs, scoring):
        engine = get_engine("batched", scoring=scoring, xdrop=30)
        result = engine.align_batch(small_jobs[:1]).results[0]
        key = _keyed(small_jobs[:1], scoring)[0][0]
        with DurableStore(store_path, obs=get_observability().scoped()) as store:
            store.complete([(None, key, result)])
            assert store.compact(ttl_seconds=3600) == {"queue": 0, "results": 0}
            assert store.lookup_result(key) == result
            assert store.compact(ttl_seconds=0) == {"queue": 0, "results": 1}
            assert store.lookup_result(key) is None

    def test_invalid_ttl_rejected(self, store_path):
        with pytest.raises(ValueError):
            DurableStore(store_path, ttl_seconds=-1)
        with DurableStore(store_path, obs=get_observability().scoped()) as store:
            with pytest.raises(ValueError):
                store.compact(ttl_seconds=-0.5)

    def test_store_stops_growing_across_restart_cycles(
        self, store_path, small_jobs, scoring
    ):
        """Regression: enqueue/complete/restart cycles must not accrete rows."""
        import os

        engine = get_engine("batched", scoring=scoring, xdrop=30)
        results = engine.align_batch(small_jobs).results
        keyed = _keyed(small_jobs, scoring)
        sizes = []
        for _ in range(4):
            with DurableStore(
                store_path, obs=get_observability().scoped(), ttl_seconds=0
            ) as store:
                store.recover()  # compacts tombstones + expired results
                ids = [store.enqueue(k, j) for k, j in keyed]
                store.mark_inflight(ids)
                store.complete(
                    (row_id, key, result)
                    for row_id, (key, _), result in zip(ids, keyed, results)
                )
                store.flush()
            sizes.append(os.path.getsize(store_path))
        # Same workload every cycle: once warm, the file must not grow.
        assert sizes[-1] <= sizes[1]
        with DurableStore(
            store_path, obs=get_observability().scoped(), ttl_seconds=0
        ) as store:
            store.recover()
            with store._lock:
                (rows,) = store._conn.execute(
                    "SELECT COUNT(*) FROM queue"
                ).fetchone()
            assert rows == 0


class TestLifecycle:
    def test_unopenable_path_raises_service_error(self, tmp_path):
        with pytest.raises(ServiceError):
            DurableStore(str(tmp_path / "missing-dir" / "state.db"))
