"""Differential conformance harness: every engine vs the scalar oracle.

The library's central correctness claim — every *exact* engine returns
scores, extents and work accounting bit-identical to
:func:`repro.core.xdrop.xdrop_extend_reference` — is turned into an
executable artifact here.  A :class:`ConformanceRunner` replays any batch
of jobs through:

* every registered engine (uniform ``scoring``/``xdrop``/``trace``
  options), asserting bit-identity for engines declaring ``exact = True``
  and run-to-run determinism for the rest (the ksw2 Z-drop engine is
  *comparable*, not identical, by design);
* the :class:`~repro.service.AlignmentService` path (queue -> batcher ->
  cache -> sharded workers), asserting bit-identity with the direct
  engine call, then a second cache-served round asserting the cache
  returns exactly what the engine computed.

On a mismatch the runner *shrinks*: it first minimises the failing batch
(exact engines are batch-independent, but inter-sequence batched kernels
can fail only in company), then greedily trims the failing pair's
sequences while the mismatch persists, and reports the smallest failing
pair together with the workload seed and the JSON config — everything
needed to replay the failure from its printed form.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..core.encoding import decode
from ..core.job import AlignmentJob
from ..core.result import SeedAlignmentResult
from ..core.seed_extend import Seed
from ..engine import describe_engines, get_engine, list_engines
from ..errors import ConfigurationError
from ..obs.provenance import build_provenance
from ..obs.runtime import get_observability
from ..workloads import Workload

__all__ = [
    "FieldMismatch",
    "ConformanceFailure",
    "ConformanceReport",
    "ConformanceRunner",
    "compare_results",
]

#: The semantic oracle every exact engine is measured against.
ORACLE_ENGINE = "reference"

#: What a shrink predicate reports: (index of the failing job within the
#: candidate batch, its field mismatches), or None when the batch passes.
PredicateResult = "tuple[int, list[FieldMismatch]] | None"

#: Per-extension fields that must match bit-for-bit on exact engines.
_EXTENSION_FIELDS = (
    "best_score",
    "query_end",
    "target_end",
    "anti_diagonals",
    "cells_computed",
    "terminated_early",
)

#: The semantic subset checked for exact engines whose *work accounting*
#: is an estimate rather than a DP replay (``work_exact = False`` in the
#: registry, e.g. the cost-space wavefront engine).
_CORE_EXTENSION_FIELDS = (
    "best_score",
    "query_end",
    "target_end",
    "terminated_early",
)

#: Top-level result fields that must match bit-for-bit.
_RESULT_FIELDS = (
    "score",
    "seed_score",
    "query_begin",
    "query_end",
    "target_begin",
    "target_end",
)


@dataclass(frozen=True)
class FieldMismatch:
    """One differing field between the oracle and an engine result."""

    field: str
    expected: Any
    actual: Any

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.field}: expected {self.expected!r}, got {self.actual!r}"


@dataclass
class ConformanceFailure:
    """A shrunk, replayable conformance violation.

    Everything needed to reproduce is carried inline: the decoded
    sequences of the minimal failing pair, the seed anchor, the JSON
    config, and — when the jobs came from the workload bank — the profile
    name and root seed of the generator run.
    """

    engine: str
    mismatches: list[FieldMismatch]
    query: str
    target: str
    seed: tuple[int, int, int]
    config: dict[str, Any]
    job_index: int
    profile: str | None = None
    workload_seed: int | None = None
    shrunk: bool = False
    minimal_batch: int = 1
    #: Flight-recorder dump captured at record time (see
    #: :func:`repro.obs.configure`); ``None`` when the recorder was off.
    flight_recorder: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (the CI failure artifact)."""
        return {
            "engine": self.engine,
            "mismatches": [
                {"field": m.field, "expected": _jsonable(m.expected),
                 "actual": _jsonable(m.actual)}
                for m in self.mismatches
            ],
            "query": self.query,
            "target": self.target,
            "seed": list(self.seed),
            "config": self.config,
            "job_index": self.job_index,
            "profile": self.profile,
            "workload_seed": self.workload_seed,
            "shrunk": self.shrunk,
            "minimal_batch": self.minimal_batch,
            "flight_recorder": self.flight_recorder,
        }

    def replay_hint(self) -> str:
        """A copy-pasteable snippet reproducing this failure."""
        if not self.query:  # crash record with no isolated pair
            return (
                "# crash during the round; regenerate the jobs via "
                f"generate_workload({self.profile!r}, "
                f"WorkloadSpec(seed={self.workload_seed}, ...))"
            )
        qpos, tpos, k = self.seed
        note = ""
        if self.minimal_batch > 1:
            note = (
                f"# batch-dependent: needs {self.minimal_batch} co-batched jobs; "
                "the single pair below may pass alone — regenerate the round "
                f"via generate_workload({self.profile!r}, "
                f"WorkloadSpec(seed={self.workload_seed}, ...))\n"
            )
        return (
            note + "from repro.core.job import AlignmentJob\n"
            "from repro.core.seed_extend import Seed\n"
            "from repro.testing import ConformanceRunner\n"
            "from repro.api import AlignConfig\n"
            f"job = AlignmentJob({self.query!r}, {self.target!r}, "
            f"Seed({qpos}, {tpos}, {k}))\n"
            f"config = AlignConfig.from_dict({self.config!r})\n"
            f"ConformanceRunner(config, engines=[{self.engine!r}])"
            ".run_jobs([job]).summary()"
        )

    def describe(self) -> str:
        """Human-readable one-failure report."""
        origin = (
            f"profile={self.profile!r} workload_seed={self.workload_seed}"
            if self.profile is not None
            else f"job_index={self.job_index}"
        )
        fields = "; ".join(str(m) for m in self.mismatches)
        return (
            f"[{self.engine}] {origin} minimal pair "
            f"({len(self.query)}x{len(self.target)} bp, seed={self.seed}, "
            f"shrunk={self.shrunk}, minimal_batch={self.minimal_batch}): {fields}\n"
            f"  query : {self.query}\n"
            f"  target: {self.target}"
        )


def _jsonable(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    return value


@dataclass
class ConformanceReport:
    """Aggregate outcome of one conformance run."""

    engines: list[str] = field(default_factory=list)
    jobs: int = 0
    comparisons: int = 0
    elapsed_seconds: float = 0.0
    service_checked: bool = False
    network_checked: bool = False
    failures: list[ConformanceFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every comparison was bit-identical (or sane, if inexact)."""
        return not self.failures

    def merge(self, other: "ConformanceReport") -> "ConformanceReport":
        """Fold *other* into this report (in place) and return self."""
        for name in other.engines:
            if name not in self.engines:
                self.engines.append(name)
        self.jobs += other.jobs
        self.comparisons += other.comparisons
        self.elapsed_seconds += other.elapsed_seconds
        self.service_checked = self.service_checked or other.service_checked
        self.network_checked = self.network_checked or other.network_checked
        self.failures.extend(other.failures)
        return self

    def summary(self) -> str:
        """Printable multi-line report."""
        head = (
            f"conformance: {self.jobs} jobs x {len(self.engines)} engines "
            f"({self.comparisons} comparisons"
            f"{', +service' if self.service_checked else ''}"
            f"{', +network' if self.network_checked else ''}) in "
            f"{self.elapsed_seconds:.2f}s -> "
            f"{'OK' if self.ok else f'{len(self.failures)} FAILURE(S)'}"
        )
        if self.ok:
            return head
        return "\n".join([head] + [f.describe() for f in self.failures])


def compare_results(
    expected: SeedAlignmentResult,
    actual: SeedAlignmentResult,
    trace: bool = False,
    work_exact: bool = True,
) -> list[FieldMismatch]:
    """Field-by-field bit-identity check of two seed-alignment results.

    With ``work_exact=False`` the per-extension comparison is restricted to
    the semantic fields (score, extents, early termination) and band traces
    are not compared — the contract of exact engines whose work accounting
    is an estimate (see :func:`repro.engine.describe_engines`).
    """
    mismatches: list[FieldMismatch] = []
    for name in _RESULT_FIELDS:
        exp, act = getattr(expected, name), getattr(actual, name)
        if int(exp) != int(act):
            mismatches.append(FieldMismatch(name, int(exp), int(act)))
    extension_fields = _EXTENSION_FIELDS if work_exact else _CORE_EXTENSION_FIELDS
    for side in ("left", "right"):
        exp_ext, act_ext = getattr(expected, side), getattr(actual, side)
        for name in extension_fields:
            exp, act = getattr(exp_ext, name), getattr(act_ext, name)
            if bool(exp != act):
                mismatches.append(FieldMismatch(f"{side}.{name}", exp, act))
        if trace and work_exact:
            exp_bw, act_bw = exp_ext.band_widths, act_ext.band_widths
            same = (exp_bw is None) == (act_bw is None) and (
                exp_bw is None or np.array_equal(exp_bw, act_bw)
            )
            if not same:
                mismatches.append(
                    FieldMismatch(f"{side}.band_widths", exp_bw, act_bw)
                )
    return mismatches


class ConformanceRunner:
    """Replays job batches through every engine (and the service) vs the oracle.

    Parameters
    ----------
    config:
        The :class:`repro.api.AlignConfig` supplying ``scoring``, ``xdrop``
        and ``trace`` (shared by every engine) plus the engine/serving
        parameters of the service path.  Defaults to ``AlignConfig()``.
    engines:
        Engine names to test (default: every *available* registered
        engine; explicitly naming an unavailable optional engine raises
        with the recorded reason).  The oracle (``reference``) is always
        available and never compared to itself.
    include_service:
        Also run the :class:`~repro.service.AlignmentService` path and a
        second, cache-served round.
    include_network:
        Also replay every batch through a live
        :class:`~repro.distrib.AlignmentServer` — jobs and results cross a
        real socket (and, when the config says ``transport="process"``,
        real worker processes) and must still come back bit-identical.
        One server is started lazily and reused across ``run_jobs`` calls;
        use the runner as a context manager (or call :meth:`close`) to
        shut it down.
    shrink:
        Minimise the first failing case per engine (batch, then sequences).
    max_shrink_evals:
        Budget of extra engine evaluations the shrinker may spend per
        failure.
    """

    def __init__(
        self,
        config=None,
        engines: Sequence[str] | None = None,
        include_service: bool = True,
        include_network: bool = False,
        shrink: bool = True,
        max_shrink_evals: int = 200,
    ) -> None:
        if config is None:
            from ..api import AlignConfig

            config = AlignConfig()
        self.config = config
        registered = list_engines()
        rows = {row["name"]: row for row in describe_engines()}
        if engines is not None:
            names = list(engines)
            unknown = sorted(set(n.lower() for n in names) - set(registered))
            if unknown:
                raise ConfigurationError(
                    f"unknown engine(s) {', '.join(map(repr, unknown))}; "
                    f"available: {', '.join(registered)}"
                )
            unavailable = sorted(
                n.lower() for n in names if not rows[n.lower()]["available"]
            )
            if unavailable:
                details = "; ".join(
                    f"{n}: {rows[n]['reason'] or 'optional dependency missing'}"
                    for n in unavailable
                )
                raise ConfigurationError(
                    f"engine(s) {', '.join(map(repr, unavailable))} are "
                    f"registered but unavailable ({details})"
                )
        else:
            # Default sweep covers everything that can actually be built;
            # optional engines whose dependency is missing are skipped.
            names = [n for n in registered if rows[n]["available"]]
        self.engine_names = [n.lower() for n in names]
        self.include_service = include_service
        self.include_network = include_network
        self.shrink = shrink
        self.max_shrink_evals = int(max_shrink_evals)
        self._engines: dict[str, Any] = {}
        self._config_engine: Any = None
        self._network_server: Any = None

    def close(self) -> None:
        """Shut down the shared network server (no-op when never started)."""
        if self._network_server is not None:
            self._network_server.close(drain=True)
            self._network_server = None

    def __enter__(self) -> "ConformanceRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def _build(self, name: str):
        """Build (and memoise) one engine with the uniform options."""
        if name not in self._engines:
            self._engines[name] = get_engine(
                name,
                scoring=self.config.scoring,
                xdrop=self.config.xdrop,
                trace=self.config.trace,
            )
        return self._engines[name]

    def _is_exact(self, name: str) -> bool:
        # Public registry introspection; an engine that does not declare
        # exactness (``exact`` is None) gets the weaker determinism check.
        exact = {row["name"]: row["exact"] for row in describe_engines()}
        return bool(exact.get(name))

    def _is_work_exact(self, name: str) -> bool:
        # Whether the engine's work accounting / band traces are also
        # bit-identical (restricts the compared fields when not).
        rows = {row["name"]: row["work_exact"] for row in describe_engines()}
        return bool(rows.get(name))

    def _oracle_results(self, jobs: Sequence[AlignmentJob]) -> list[SeedAlignmentResult]:
        return self._build(ORACLE_ENGINE).align_batch(list(jobs)).results

    # ------------------------------------------------------------------ #
    def run_workload(self, workload: Workload) -> ConformanceReport:
        """Conformance-check one generated workload (provenance attached)."""
        return self.run_jobs(
            workload.jobs,
            profile=workload.profile,
            workload_seed=workload.spec.seed,
        )

    def run_jobs(
        self,
        jobs: Iterable[AlignmentJob],
        profile: str | None = None,
        workload_seed: int | None = None,
    ) -> ConformanceReport:
        """Replay *jobs* through every configured engine and the service.

        An engine (or the service) *raising* is itself a conformance
        failure, not an abort: the exception is recorded — with the first
        individually-crashing job isolated when possible — and the run
        continues, so a fuzz campaign always produces its report/artifact.
        """
        jobs = list(jobs)
        report = ConformanceReport(engines=list(self.engine_names), jobs=len(jobs))
        if not jobs:
            return report
        started = time.perf_counter()
        try:
            oracle = self._oracle_results(jobs)
        except Exception as error:
            self._record_crash(
                report, ORACLE_ENGINE, jobs, error, profile, workload_seed
            )
            report.elapsed_seconds = time.perf_counter() - started
            return report

        for name in self.engine_names:
            if name == ORACLE_ENGINE:
                continue
            try:
                if self._is_exact(name):
                    self._check_exact(
                        name, jobs, oracle, report, profile, workload_seed
                    )
                else:
                    self._check_inexact(name, jobs, report, profile, workload_seed)
            except Exception as error:
                self._record_crash(report, name, jobs, error, profile, workload_seed)

        if self.include_service:
            try:
                self._check_service(jobs, oracle, report, profile, workload_seed)
            except Exception as error:
                self._record_crash(
                    report, "service", jobs, error, profile, workload_seed
                )
            report.service_checked = True
        if self.include_network:
            try:
                self._check_network(jobs, oracle, report, profile, workload_seed)
            except Exception as error:
                self._record_crash(
                    report, "network", jobs, error, profile, workload_seed
                )
            report.network_checked = True
        report.elapsed_seconds = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------ #
    def _record(
        self,
        report: ConformanceReport,
        engine: str,
        job: AlignmentJob,
        job_index: int,
        mismatches: list[FieldMismatch],
        profile: str | None,
        workload_seed: int | None,
        predicate: "Callable[[list[AlignmentJob]], PredicateResult] | None" = None,
        batch: list[AlignmentJob] | None = None,
    ) -> None:
        """Shrink (when enabled) and append one failure to *report*."""
        shrunk = False
        minimal_batch = 1
        if self.shrink and predicate is not None:
            job, mismatches, minimal_batch = self._shrink(
                job, mismatches, predicate, batch or [job]
            )
            shrunk = True
        report.failures.append(
            ConformanceFailure(
                engine=engine,
                mismatches=mismatches,
                query=decode(job.query),
                target=decode(job.target),
                seed=(job.seed.query_pos, job.seed.target_pos, job.seed.length),
                config=self.config.to_dict(),
                job_index=job_index,
                profile=profile,
                workload_seed=workload_seed,
                shrunk=shrunk,
                minimal_batch=minimal_batch,
                flight_recorder=self._flight_dump(engine, mismatches),
            )
        )

    def _flight_dump(
        self, engine: str, mismatches: list[FieldMismatch]
    ) -> dict[str, Any] | None:
        """Snapshot the flight recorder into the failure artifact, if active.

        The ring buffer holds the spans/events/metric deltas leading up to
        the violation, so the dump answers "what was the system doing right
        before this failed" without re-running under a debugger.
        """
        ob = get_observability()
        if ob.recorder is None:
            return None
        ob.event(
            "conformance_failure",
            engine=engine,
            fields=[m.field for m in mismatches],
        )
        return ob.recorder.dump(
            reason="conformance_failure",
            provenance=build_provenance(config=self.config),
        )

    def _record_count_mismatch(
        self, report, engine, jobs, results, profile, workload_seed
    ) -> bool:
        """Record a result-count violation; True when one was found.

        An engine that drops or truncates results must fail loudly — a
        silent ``zip`` would certify it as conformant on the jobs it never
        answered.
        """
        if len(results) == len(jobs):
            return False
        self._record(
            report, engine, jobs[0], 0,
            [FieldMismatch("result_count", len(jobs), len(results))],
            profile, workload_seed, None,
        )
        return True

    def _record_crash(
        self, report, engine, jobs, error, profile, workload_seed
    ) -> None:
        """Record an engine exception, isolating one crashing job if possible."""
        crash_index = 0
        crash_job = jobs[0]
        if engine in list_engines():
            try:
                runner = self._build(engine)
                for index, job in enumerate(jobs):
                    try:
                        runner.align_batch([job])
                    except Exception:
                        crash_index, crash_job = index, job
                        break
            except Exception:  # engine cannot even be built/probed
                pass
        self._record(
            report, engine, crash_job, crash_index,
            [FieldMismatch("exception", "a completed run",
                           f"{type(error).__name__}: {error}")],
            profile, workload_seed, None,
        )

    def _check_exact(self, name, jobs, oracle, report, profile, workload_seed) -> None:
        engine = self._build(name)
        results = engine.align_batch(jobs).results
        if self._record_count_mismatch(
            report, name, jobs, results, profile, workload_seed
        ):
            return
        trace = self.config.trace
        work_exact = self._is_work_exact(name)
        for index, (exp, act) in enumerate(zip(oracle, results)):
            report.comparisons += 1
            mismatches = compare_results(exp, act, trace=trace, work_exact=work_exact)
            if not mismatches:
                continue

            def predicate(batch: list[AlignmentJob]) -> PredicateResult:
                exp_b = self._oracle_results(batch)
                act_b = engine.align_batch(batch).results
                if len(act_b) != len(exp_b):
                    return 0, [FieldMismatch("result_count", len(exp_b), len(act_b))]
                for i, (e, a) in enumerate(zip(exp_b, act_b)):
                    found = compare_results(e, a, trace=trace, work_exact=work_exact)
                    if found:
                        return i, found
                return None

            self._record(
                report, name, jobs[index], index, mismatches,
                profile, workload_seed, predicate, batch=jobs,
            )
            return  # one shrunk failure per engine per run keeps cost bounded

    def _check_inexact(self, name, jobs, report, profile, workload_seed) -> None:
        """Inexact engines: determinism across replays + extent sanity."""
        engine = self._build(name)
        first = engine.align_batch(jobs).results
        second = engine.align_batch(jobs).results
        if self._record_count_mismatch(
            report, name, jobs, first, profile, workload_seed
        ) or self._record_count_mismatch(
            report, name, jobs, second, profile, workload_seed
        ):
            return
        for index, (job, a, b) in enumerate(zip(jobs, first, second)):
            report.comparisons += 1
            mismatches = [
                FieldMismatch(f"determinism.{m.field}", m.expected, m.actual)
                for m in compare_results(a, b, trace=False)
            ]
            if not (
                0 <= a.query_begin <= a.query_end <= job.query_length
                and 0 <= a.target_begin <= a.target_end <= job.target_length
            ):
                mismatches.append(
                    FieldMismatch(
                        "extents-in-bounds",
                        f"within 0..{job.query_length}/0..{job.target_length}",
                        (a.query_begin, a.query_end, a.target_begin, a.target_end),
                    )
                )
            if mismatches:
                self._record(
                    report, name, job, index, mismatches,
                    profile, workload_seed, None,
                )
                return

    def _config_baseline(self, jobs, oracle) -> list[SeedAlignmentResult]:
        """Direct-engine results the service run is compared against.

        When the configured engine is exact with no engine-specific options
        the oracle already *is* the direct answer (bit-identity is the
        engines' contract), so no duplicate alignment runs; otherwise the
        config engine is built once per runner and memoised.
        """
        if (
            not self.config.engine_options
            and self.config.bandwidth is None
            and self._is_exact(self.config.engine)
            and self._is_work_exact(self.config.engine)
        ):
            return oracle
        if self._config_engine is None:
            self._config_engine = self.config.build_engine()
        return self._config_engine.align_batch(jobs).results

    def _check_service(self, jobs, oracle, report, profile, workload_seed) -> None:
        """Service path must be bit-identical to the direct engine call."""
        from ..service import AlignmentService

        direct = self._config_baseline(jobs, oracle)
        with AlignmentService(config=self.config) as service:
            for round_name in ("service", "service-cache"):
                tickets = service.submit_many(jobs)
                service.drain()
                results = [t.result(timeout=60.0) for t in tickets]
                if self._record_count_mismatch(
                    report, round_name, jobs, results, profile, workload_seed
                ):
                    return
                for index, (exp, act) in enumerate(zip(direct, results)):
                    report.comparisons += 1
                    mismatches = compare_results(exp, act, trace=self.config.trace)
                    if mismatches and not self._prefilter_forgives(
                        jobs[index], exp, act
                    ):
                        self._record(
                            report, round_name, jobs[index], index,
                            mismatches, profile, workload_seed, None,
                        )
                        return

    def _prefilter_forgives(self, job, direct, actual) -> bool:
        """Whether a service/network mismatch is an *enforced* rejection.

        Under ``prefilter="enforce"`` the service answers reject-class
        pairs with the deterministic seed-only placeholder instead of a
        real alignment.  That divergence is the mode's contract, not a
        conformance violation — provided the direct result would have
        failed the policy's BELLA threshold anyway (i.e. the rejection is
        not a false one).  ``advise`` mode gets no forgiveness: it must
        stay bit-identical.
        """
        service = getattr(self.config, "service", None)
        if service is None or getattr(service, "prefilter", "off") != "enforce":
            return False
        from ..prefilter import PrefilterPolicy, rejected_result

        synthetic = rejected_result(job, self.config.scoring)
        if compare_results(synthetic, actual, trace=False):
            return False  # not the placeholder: a genuine mismatch
        policy = PrefilterPolicy.from_options(service.prefilter_options)
        threshold = policy.threshold(self.config.scoring)
        return not threshold.passes(direct.score, direct.overlap_length)

    def _ensure_server(self):
        """Start (once) and return the shared networked-service server.

        Reusing one server across ``run_jobs`` calls amortises the worker
        spawn cost over every replayed workload — exactly how a real
        deployment would serve them.
        """
        if self._network_server is None:
            from ..distrib import AlignmentServer

            self._network_server = AlignmentServer(config=self.config).start()
        return self._network_server

    def _check_network(self, jobs, oracle, report, profile, workload_seed) -> None:
        """Networked service must be bit-identical to the direct engine.

        Jobs round-trip through the wire codec and the server's service
        (worker processes included when the config transport says so); a
        second round must answer from the server-side cache with the same
        bytes.
        """
        from ..distrib import ServiceClient

        direct = self._config_baseline(jobs, oracle)
        server = self._ensure_server()
        with ServiceClient(server.host, server.port) as client:
            for round_name in ("network", "network-cache"):
                results = client.submit(jobs)
                if self._record_count_mismatch(
                    report, round_name, jobs, results, profile, workload_seed
                ):
                    return
                for index, (exp, act) in enumerate(zip(direct, results)):
                    report.comparisons += 1
                    mismatches = compare_results(exp, act, trace=self.config.trace)
                    if mismatches and not self._prefilter_forgives(
                        jobs[index], exp, act
                    ):
                        self._record(
                            report, round_name, jobs[index], index,
                            mismatches, profile, workload_seed, None,
                        )
                        return

    # ------------------------------------------------------------------ #
    # Shrinking
    def _shrink(
        self,
        job: AlignmentJob,
        mismatches: list[FieldMismatch],
        predicate: "Callable[[list[AlignmentJob]], PredicateResult]",
        batch: list[AlignmentJob],
    ) -> tuple[AlignmentJob, list[FieldMismatch], int]:
        """Minimise a failing case; returns (job, mismatches, minimal_batch).

        Exact-engine failures are usually batch-independent, so the single
        job is tried alone first.  A batch-dependent failure (one that only
        reproduces in company — possible for inter-sequence batched
        kernels) is instead delta-minimised to the smallest job subset that
        still fails, and the job *that actually mismatches within that
        subset* is reported, with ``minimal_batch`` recording how much
        company it needs.
        """
        evals = 0

        def still_fails(candidate: list[AlignmentJob]) -> PredicateResult:
            nonlocal evals
            evals += 1
            return predicate(candidate)

        alone = still_fails([job])
        if alone is None:
            minimal = self._minimize_batch(batch, still_fails)
            outcome = still_fails(minimal)
            if outcome is None:  # pragma: no cover - ddmin invariant
                return job, mismatches, len(batch)
            index, found = outcome
            return minimal[index], found, len(minimal)
        mismatches = alone[1]

        current = job
        improved = True
        while improved and evals < self.max_shrink_evals:
            improved = False
            for candidate in _reduction_candidates(current):
                if evals >= self.max_shrink_evals:
                    break
                found = still_fails([candidate])
                if found is not None:
                    current, mismatches, improved = candidate, found[1], True
                    break
        return current, mismatches, 1

    def _minimize_batch(
        self,
        batch: list[AlignmentJob],
        still_fails: "Callable[[list[AlignmentJob]], PredicateResult]",
    ) -> list[AlignmentJob]:
        """ddmin-style reduction of a batch-dependent failure."""
        current = list(batch)
        chunk = max(1, len(current) // 2)
        evals = 0
        while evals < self.max_shrink_evals:
            reduced = False
            i = 0
            while i < len(current) and evals < self.max_shrink_evals:
                trial = current[:i] + current[i + chunk :]
                evals += 1
                if trial and still_fails(trial) is not None:
                    current = trial
                    reduced = True
                else:
                    i += chunk
            if not reduced:
                if chunk == 1:
                    break
                chunk = max(1, chunk // 2)
        return current


def _reduction_candidates(job: AlignmentJob) -> Iterable[AlignmentJob]:
    """Candidate reductions of one job, most aggressive first.

    Tail bases after the seed and head bases before it are trimmed (head
    trims shift the seed anchor); the seed itself is never altered, so
    every candidate is a valid job.
    """
    q, t, s = job.query, job.target, job.seed
    q_tail = len(q) - s.query_end
    t_tail = len(t) - s.target_end
    for keep in _cut_schedule(q_tail):
        yield AlignmentJob(
            np.ascontiguousarray(q[: s.query_end + keep]), t, s, job.pair_id
        )
    for keep in _cut_schedule(t_tail):
        yield AlignmentJob(
            q, np.ascontiguousarray(t[: s.target_end + keep]), s, job.pair_id
        )
    for keep in _cut_schedule(s.query_pos):
        cut = s.query_pos - keep
        yield AlignmentJob(
            np.ascontiguousarray(q[cut:]),
            t,
            Seed(keep, s.target_pos, s.length),
            job.pair_id,
        )
    for keep in _cut_schedule(s.target_pos):
        cut = s.target_pos - keep
        yield AlignmentJob(
            q,
            np.ascontiguousarray(t[cut:]),
            Seed(s.query_pos, keep, s.length),
            job.pair_id,
        )


def _cut_schedule(extent: int) -> list[int]:
    """How much of an *extent*-base flank to keep, biggest cut first."""
    if extent <= 0:
        return []
    keeps = [0, extent // 2, extent - 1]
    return sorted({k for k in keeps if 0 <= k < extent})
