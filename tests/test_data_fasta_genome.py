"""Tests for FASTA/FASTQ I/O and the synthetic genome generator."""

from __future__ import annotations

import gzip

import numpy as np
import pytest

from repro.data import (
    RepeatSpec,
    SequenceRecord,
    read_fasta,
    read_fastq,
    simulate_genome,
    write_fasta,
    write_fastq,
)
from repro.errors import DatasetError


class TestFastaRoundTrip:
    def test_write_and_read(self, tmp_path):
        records = [
            SequenceRecord("read1", "ACGT" * 30),
            SequenceRecord("read2", "GGGTTTAAA"),
        ]
        path = tmp_path / "test.fasta"
        assert write_fasta(path, records) == 2
        loaded = list(read_fasta(path))
        assert [r.name for r in loaded] == ["read1", "read2"]
        assert [r.sequence for r in loaded] == [r.sequence for r in records]

    def test_multiline_wrapping(self, tmp_path):
        path = tmp_path / "wrap.fasta"
        write_fasta(path, [SequenceRecord("r", "A" * 205)], line_width=50)
        text = path.read_text()
        assert max(len(line) for line in text.splitlines()) <= 50
        assert list(read_fasta(path))[0].sequence == "A" * 205

    def test_gzip_reading(self, tmp_path):
        path = tmp_path / "test.fasta.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(">r1\nACGT\n>r2\nTTTT\n")
        loaded = list(read_fasta(path))
        assert len(loaded) == 2
        assert loaded[1].sequence == "TTTT"

    def test_header_name_stops_at_whitespace(self, tmp_path):
        path = tmp_path / "desc.fasta"
        path.write_text(">read7 length=4 sample\nACGT\n")
        assert list(read_fasta(path))[0].name == "read7"

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "bad.fasta"
        path.write_text("ACGT\n")
        with pytest.raises(DatasetError):
            list(read_fasta(path))

    def test_empty_record_raises(self, tmp_path):
        path = tmp_path / "empty.fasta"
        path.write_text(">r1\n>r2\nACGT\n")
        with pytest.raises(DatasetError):
            list(read_fasta(path))

    def test_invalid_line_width(self, tmp_path):
        with pytest.raises(DatasetError):
            write_fasta(tmp_path / "x.fasta", [SequenceRecord("r", "ACGT")], line_width=0)


class TestFastqRoundTrip:
    def test_write_and_read(self, tmp_path):
        records = [SequenceRecord("r1", "ACGT", "IIII"), SequenceRecord("r2", "GG")]
        path = tmp_path / "test.fastq"
        assert write_fastq(path, records) == 2
        loaded = list(read_fastq(path))
        assert loaded[0].quality == "IIII"
        assert loaded[1].quality == "~~"

    def test_malformed_header_raises(self, tmp_path):
        path = tmp_path / "bad.fastq"
        path.write_text("read1\nACGT\n+\nIIII\n")
        with pytest.raises(DatasetError):
            list(read_fastq(path))

    def test_truncated_record_raises(self, tmp_path):
        path = tmp_path / "trunc.fastq"
        path.write_text("@r1\nACGT\n+\nII\n")
        with pytest.raises(DatasetError):
            list(read_fastq(path))

    def test_quality_length_mismatch_on_write(self, tmp_path):
        with pytest.raises(DatasetError):
            write_fastq(tmp_path / "x.fastq", [SequenceRecord("r", "ACGT", "II")])


class TestSimulateGenome:
    def test_length_and_alphabet(self, rng):
        genome = simulate_genome(5000, rng=rng)
        assert len(genome) == 5000
        assert genome.sequence.max() <= 3
        assert genome.to_string()[:5].isalpha()

    def test_deterministic_with_seed(self, make_rng):
        a = simulate_genome(1000, rng=make_rng(3))
        b = simulate_genome(1000, rng=make_rng(3))
        np.testing.assert_array_equal(a.sequence, b.sequence)

    def test_repeats_are_planted(self, rng):
        spec = RepeatSpec(length=200, copies=3, divergence=0.0)
        genome = simulate_genome(5000, repeats=[spec], rng=rng)
        assert len(genome.repeat_positions) == 3
        start0, end0 = genome.repeat_positions[0]
        start1, end1 = genome.repeat_positions[-1]
        # Identical copies (zero divergence) unless they overlapped each other.
        if end0 <= start1 or end1 <= start0:
            np.testing.assert_array_equal(
                genome.sequence[start0:end0], genome.sequence[start1:end1]
            )

    def test_invalid_length(self):
        with pytest.raises(DatasetError):
            simulate_genome(0)

    def test_repeat_longer_than_genome_rejected(self, rng):
        with pytest.raises(DatasetError):
            simulate_genome(100, repeats=[RepeatSpec(length=200, copies=1)], rng=rng)

    def test_repeat_spec_validation(self):
        with pytest.raises(DatasetError):
            RepeatSpec(length=0, copies=1)
        with pytest.raises(DatasetError):
            RepeatSpec(length=10, copies=1, divergence=1.5)
