"""Content-addressed LRU result cache of the alignment service.

Alignment is a pure function of ``(query, target, seed, scoring, xdrop)``,
so repeated submissions of the same pair — common when an overlapper
re-examines candidate pairs, or when many clients ask about the same hot
reads — can be answered from a cache without touching an engine.  The key
is *content-addressed*: sequences are hashed from their encoded bytes, so
two :class:`~repro.core.job.AlignmentJob` objects holding equal sequences
share one entry regardless of identity or ``pair_id``.

Eviction is LRU over a bounded entry count; hit/miss/eviction counters feed
the :class:`~repro.service.service.ServiceStats` snapshot.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

from ..core.job import AlignmentJob
from ..core.result import SeedAlignmentResult
from ..core.scoring import ScoringScheme

__all__ = ["CacheKey", "CacheStats", "ResultCache", "job_cache_key"]

#: Hashable cache key: sequence digests + seed anchor + scoring + xdrop.
CacheKey = tuple


def _digest(data: bytes) -> str:
    return hashlib.sha1(data).hexdigest()


def job_cache_key(
    job: AlignmentJob, scoring: ScoringScheme, xdrop: int
) -> CacheKey:
    """Content-addressed key of one alignment request.

    Everything the result depends on participates: the encoded sequence
    bytes (digested), the seed anchor and the alignment parameters.
    ``pair_id`` deliberately does not — it is routing metadata, not input.
    """
    seed = job.seed
    return (
        _digest(job.query.tobytes()),
        _digest(job.target.tobytes()),
        seed.query_pos,
        seed.target_pos,
        seed.length,
        scoring.as_tuple(),
        int(xdrop),
    )


@dataclass
class CacheStats:
    """Counters of one cache's lifetime activity."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class ResultCache:
    """Bounded LRU cache of :class:`SeedAlignmentResult` objects.

    Parameters
    ----------
    capacity:
        Maximum number of entries.  ``0`` disables the cache entirely
        (every lookup misses, nothing is stored) — the service uses this to
        turn caching off without branching at every call site.
    """

    def __init__(self, capacity: int = 4096, obs=None) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[CacheKey, SeedAlignmentResult] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if obs is not None:
            self._lookup_counter = obs.counter(
                "repro_cache_lookups_total", "cache lookups, by outcome", ("outcome",)
            )
            self._eviction_counter = obs.counter(
                "repro_cache_evictions_total", "LRU evictions performed"
            )
            self._size_gauge = obs.gauge("repro_cache_size", "entries currently cached")
            self._hit_rate_gauge = obs.gauge(
                "repro_cache_hit_rate", "fraction of lookups answered from cache"
            )
            self._persist_counter = obs.counter(
                "repro_cache_persist_total",
                "cache persist/load operations, by direction",
                ("direction",),
            )
        else:
            self._lookup_counter = None
            self._eviction_counter = None
            self._size_gauge = None
            self._hit_rate_gauge = None
            self._persist_counter = None

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> SeedAlignmentResult | None:
        """Look up *key*, refreshing its recency on a hit."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self._entries.move_to_end(key)
            self.hits += 1
        if self._lookup_counter is not None:
            self._lookup_counter.inc(outcome="miss" if entry is None else "hit")
        self.refresh_gauges()
        return entry

    def put(self, key: CacheKey, result: SeedAlignmentResult) -> None:
        """Store *result* under *key*, evicting the LRU entry when full."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = result
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            if self._eviction_counter is not None:
                self._eviction_counter.inc()
        if self._size_gauge is not None:
            self._size_gauge.set(len(self._entries))

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()

    def persist(self, path: str) -> int:
        """Write every entry to *path* as JSON; returns the entry count.

        Uses the distributed tier's wire codec, so a persisted cache is
        readable by any process — keys round-trip through their canonical
        JSON form and results stay exact.  LRU order is preserved (oldest
        first), so a load into a smaller cache keeps the most recent
        entries.
        """
        import json

        from ..distrib.wire import cache_key_to_json, result_to_wire

        entries = [
            [cache_key_to_json(key), result_to_wire(result)]
            for key, result in self._entries.items()
        ]
        document = {"kind": "result_cache", "entries": entries}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, separators=(",", ":"))
        if self._persist_counter is not None:
            self._persist_counter.inc(len(entries), direction="persist")
        return len(entries)

    def load(self, path: str) -> int:
        """Insert every entry persisted at *path*; returns the count read.

        Entries go through :meth:`put`, so capacity bounds and eviction
        accounting apply exactly as if the results had just been aligned.
        """
        import json

        from ..distrib.wire import cache_key_from_json, result_from_wire

        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        if document.get("kind") != "result_cache":
            raise ValueError(
                f"{path!r} is not a persisted result cache "
                f"(kind={document.get('kind')!r})"
            )
        entries = document.get("entries", [])
        for key_json, payload in entries:
            self.put(cache_key_from_json(key_json), result_from_wire(payload))
        if self._persist_counter is not None:
            self._persist_counter.inc(len(entries), direction="load")
        return len(entries)

    def refresh_gauges(self) -> None:
        """Push the current size and hit rate onto the observability gauges.

        Safe on a fresh cache: with zero lookups the hit rate reports 0.0
        rather than dividing by zero.
        """
        if self._size_gauge is not None:
            self._size_gauge.set(len(self._entries))
        if self._hit_rate_gauge is not None:
            lookups = self.hits + self.misses
            self._hit_rate_gauge.set(self.hits / lookups if lookups else 0.0)

    def stats(self) -> CacheStats:
        """Snapshot of the cache counters."""
        self.refresh_gauges()
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._entries),
            capacity=self.capacity,
        )
