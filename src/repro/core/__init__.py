"""Core X-drop alignment algorithms — the paper's primary contribution.

The public surface of this subpackage:

* :func:`repro.core.xdrop_extend` — vectorised X-drop extension (the LOGAN
  kernel inner loop);
* :func:`repro.core.xdrop_extend_batch` — inter-sequence batched kernel that
  extends a whole batch of pairs per anti-diagonal step (one row per
  alignment, LOGAN's one-block-per-extension layout);
* :func:`repro.core.xdrop_extend_reference` — scalar reference oracle;
* :func:`repro.core.exact_extension_score` — un-pruned full-DP oracle;
* :func:`repro.core.extend_seed` / :class:`repro.core.Seed` — seed-and-extend
  driver used by BELLA and the batch runners;
* :class:`repro.core.ScoringScheme` / :class:`repro.core.AffineScoringScheme`
  — scoring configuration;
* encoding helpers (:func:`repro.core.encode`, :func:`repro.core.decode`,
  :func:`repro.core.reverse_complement`, ...).
"""

from .encoding import (
    ALPHABET,
    WILDCARD_CODE,
    decode,
    encode,
    encode_batch,
    random_sequence,
    reverse,
    reverse_complement,
)
from .result import NEG_INF, ExtensionResult, FullAlignmentResult, SeedAlignmentResult
from .scoring import (
    BLAST_SCORING,
    DEFAULT_SCORING,
    MINIMAP2_SCORING,
    AffineScoringScheme,
    ScoringScheme,
)
from .seed_extend import Seed, extend_seed, seed_score, split_on_seed
from .xdrop import exact_extension_score, xdrop_extend_reference
from .xdrop_batch import BatchKernelStats, xdrop_extend_batch
from .xdrop_vectorized import XDropKernelState, xdrop_extend

__all__ = [
    "ALPHABET",
    "WILDCARD_CODE",
    "NEG_INF",
    "encode",
    "encode_batch",
    "decode",
    "reverse",
    "reverse_complement",
    "random_sequence",
    "ScoringScheme",
    "AffineScoringScheme",
    "DEFAULT_SCORING",
    "BLAST_SCORING",
    "MINIMAP2_SCORING",
    "ExtensionResult",
    "SeedAlignmentResult",
    "FullAlignmentResult",
    "Seed",
    "extend_seed",
    "seed_score",
    "split_on_seed",
    "xdrop_extend",
    "BatchKernelStats",
    "xdrop_extend_batch",
    "xdrop_extend_reference",
    "exact_extension_score",
    "XDropKernelState",
]
