"""Shared fixtures for the test-suite.

Fixtures are deliberately small (sequences of at most a few hundred bases,
a handful of reads) so the whole suite runs in well under a minute while
still exercising every code path; the benchmark harness is where realistic
sizes live.
"""

from __future__ import annotations

import random
import zlib
from typing import Callable

import numpy as np
import pytest

from repro.core import ScoringScheme, random_sequence
from repro.core.job import AlignmentJob
from repro.data import ErrorModel, apply_errors
from repro.data.pairs import PairSetSpec, generate_pair_set


def pytest_runtest_setup(item) -> None:
    """Pin global random state per test, derived from the test's node id.

    No test in this suite should use module-level random state (use the
    ``rng``/``make_rng`` fixtures), but if one ever sneaks in, this makes
    its failures replay deterministically under ``pytest <nodeid>`` instead
    of depending on collection order.
    """
    digest = zlib.crc32(item.nodeid.encode("utf-8"))
    random.seed(digest)
    np.random.seed(digest & 0xFFFFFFFF)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic NumPy generator for test data."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def make_rng() -> Callable[[int], np.random.Generator]:
    """Factory of explicitly seeded NumPy generators.

    The single front door for per-test random state: a test needing its
    own stream (or several independent ones) calls ``make_rng(seed)``
    instead of instantiating ``np.random.default_rng`` inline, so every
    random input is visibly seeded through one fixture.  Session-scoped
    (the factory is stateless), which also keeps it safe to use from
    hypothesis-driven tests.
    """

    def _make(seed: int) -> np.random.Generator:
        return np.random.default_rng(seed)

    return _make


@pytest.fixture
def scoring() -> ScoringScheme:
    """BELLA / LOGAN default scoring scheme."""
    return ScoringScheme(match=1, mismatch=-1, gap=-1)


@pytest.fixture
def similar_pair(rng) -> tuple[np.ndarray, np.ndarray]:
    """A 300 bp pair with ~10 % divergence (a typical aligning pair)."""
    template = random_sequence(300, rng)
    noisy = apply_errors(template, ErrorModel.with_total(0.10), rng)
    return template, noisy


@pytest.fixture
def divergent_pair(rng) -> tuple[np.ndarray, np.ndarray]:
    """Two unrelated 300 bp sequences (the early-termination case)."""
    return random_sequence(300, rng), random_sequence(300, rng)


@pytest.fixture
def small_jobs(rng) -> list[AlignmentJob]:
    """Eight small alignment jobs with mid-read seeds (fast batch fixture)."""
    spec = PairSetSpec(
        num_pairs=8,
        min_length=150,
        max_length=300,
        pairwise_error_rate=0.12,
        seed_length=11,
        seed_placement="middle",
        rng_seed=99,
    )
    return generate_pair_set(spec)


@pytest.fixture
def start_seed_jobs() -> list[AlignmentJob]:
    """Six small jobs seeded at position 0 (the LOGAN benchmark convention)."""
    spec = PairSetSpec(
        num_pairs=6,
        min_length=120,
        max_length=240,
        pairwise_error_rate=0.15,
        seed_length=9,
        seed_placement="start",
        rng_seed=7,
    )
    return generate_pair_set(spec)


@pytest.fixture
def tiny_reads(rng) -> list:
    """A tiny synthetic read set with guaranteed overlaps (for BELLA tests)."""
    from repro.data import simulate_genome, simulate_reads

    genome = simulate_genome(6000, rng=rng)
    return simulate_reads(
        genome,
        num_reads=14,
        mean_length=900,
        length_spread=200,
        error_model=ErrorModel.with_total(0.08),
        rng=rng,
    )
