"""The :class:`AlignmentService` facade: queue -> cache -> batcher -> workers.

The serving layer turns the library's batch engines into a front door for
individually submitted alignment requests:

1. ``submit`` computes the content-addressed cache key; a hit resolves the
   ticket immediately, a miss enqueues it on the bounded submission queue
   (backpressure);
2. the processing loop feeds tickets into the adaptive batcher, which
   coalesces them into length-binned, engine-sized batches;
3. formed batches run on the sharded worker pool (load-balanced by
   estimated DP cells, the paper's host-side policy), results are scattered
   back to the tickets and inserted into the cache.

The service runs in two modes.  *Inline* (default): nothing happens until
:meth:`drain`, which processes everything synchronously — deterministic,
the mode tests and the BELLA pipeline use.  *Background*: :meth:`start`
spawns a daemon thread that forms and dispatches batches as requests
arrive, flushing partially filled bins after the policy's max-wait —
the live-serving mode of the ``repro-service`` CLI.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .._compat import warn_once
from ..core.job import AlignmentJob
from ..core.xdrop_batch import WindowedKernelStats
from ..core.result import SeedAlignmentResult
from ..core.scoring import ScoringScheme
from ..engine import get_engine
from ..engine.base import AlignmentEngine, engine_from_config
from ..errors import ServiceError
from ..obs.provenance import build_provenance
from ..obs.runtime import get_observability
from ..perf.metrics import gcups
from ..prefilter import PREFILTER_OUTCOMES
from .batcher import AdaptiveBatcher, BatchPolicy, FormedBatch
from .cache import CacheStats, ResultCache, job_cache_key
from .queue import AlignmentTicket, SubmissionQueue
from .workers import ShardedWorkerPool, WorkerStats

__all__ = ["ServiceStats", "AlignmentService"]


@dataclass
class ServiceStats:
    """Point-in-time snapshot of a service's counters.

    Attributes
    ----------
    submitted, completed:
        Jobs accepted / jobs resolved (cache hits count as both).
    queue_depth, batcher_pending:
        Work currently waiting in the queue / in the batcher bins.
    batches_formed:
        Batches the batcher has flushed, by any reason.
    flush_reasons:
        Breakdown of flushes: ``size`` / ``wait`` / ``drain``.
    cache:
        Cache counters (hits, misses, evictions, hit rate).
    cells, busy_seconds, throughput_gcups:
        Total aligned DP cells, wall-clock spent inside worker batches, and
        the resulting GCUPS (0.0 before any work ran).
    workers:
        Per-shard accounting (batches, jobs, cells, seconds).
    kernel_live_fraction:
        Mean live-row fraction reported by the batched kernel's compaction
        telemetry over the recent-batch window (``None`` until an engine
        reports kernel stats).
    suggested_batch_size:
        Batch-sizing hint derived from that windowed telemetry: the
        ``max_batch_size`` the compaction stats suggest the batcher should
        target (``None`` without kernel stats).
    prefilter_mode, prefilter_decisions:
        Admission triage mode (``"off"``/``"advise"``/``"enforce"``) and
        the per-outcome decision counts (empty when the prefilter is off).
    autotune_mode, autotune:
        Self-tuning mode (``"off"``/``"advise"``/``"on"``) and the
        :meth:`repro.autotune.AutotuneManager.snapshot` — decision counts,
        per-bin batch sizes, engine knobs, kill-switch state (empty when
        autotune is off).
    """

    submitted: int = 0
    completed: int = 0
    queue_depth: int = 0
    batcher_pending: int = 0
    batches_formed: int = 0
    flush_reasons: dict = field(default_factory=dict)
    cache: CacheStats = field(default_factory=CacheStats)
    cells: int = 0
    busy_seconds: float = 0.0
    throughput_gcups: float = 0.0
    workers: list[WorkerStats] = field(default_factory=list)
    kernel_live_fraction: float | None = None
    suggested_batch_size: int | None = None
    prefilter_mode: str = "off"
    prefilter_decisions: dict = field(default_factory=dict)
    autotune_mode: str = "off"
    autotune: dict = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        """Mean jobs per formed batch (0.0 before the first batch)."""
        aligned = self.completed - self.cache.hits
        if self.batches_formed == 0:
            return 0.0
        return aligned / self.batches_formed

    def to_dict(self) -> dict:
        """JSON-ready representation (used by the CLI and benchmarks)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "queue_depth": self.queue_depth,
            "batcher_pending": self.batcher_pending,
            "batches_formed": self.batches_formed,
            "mean_batch_size": self.mean_batch_size,
            "flush_reasons": dict(self.flush_reasons),
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_evictions": self.cache.evictions,
            "cache_hit_rate": self.cache.hit_rate,
            "cells": self.cells,
            "busy_seconds": self.busy_seconds,
            "throughput_gcups": self.throughput_gcups,
            "workers": [
                {
                    "worker": w.worker_index,
                    "batches": w.batches,
                    "jobs": w.jobs,
                    "cells": w.cells,
                    "seconds": w.seconds,
                }
                for w in self.workers
            ],
            "kernel_live_fraction": self.kernel_live_fraction,
            "suggested_batch_size": self.suggested_batch_size,
            "prefilter_mode": self.prefilter_mode,
            "prefilter_decisions": dict(self.prefilter_decisions),
            "autotune_mode": self.autotune_mode,
            "autotune": dict(self.autotune),
        }


class AlignmentService:
    """Asynchronous batch-alignment service over the engine registry.

    Parameters
    ----------
    engine:
        Registered engine name (built with *scoring*/*xdrop*) or a
        ready-made engine instance.
    scoring, xdrop:
        Alignment parameters; also part of every cache key.
    num_workers:
        Worker shards of the pool (load-balanced by estimated cells).
    policy:
        The :class:`BatchPolicy` of the adaptive batcher.
    cache_capacity:
        LRU result-cache entries (0 disables caching).
    queue_capacity:
        Bound of the submission queue (backpressure limit).
    worker_policy:
        Load-balancing policy of the pool, ``"cells"`` or ``"count"``.
    submit_timeout:
        Seconds ``submit`` may block on a full queue before raising.
    config:
        An :class:`repro.api.AlignConfig`; when given it is the *sole*
        configuration source (mixing it with the loose kwargs above raises)
        and the nested :class:`repro.api.ServiceConfig` supplies every
        serving knob.  The loose-kwarg spelling keeps working but is
        deprecated — it warns once per process.
    """

    def __init__(
        self,
        engine: str | AlignmentEngine = "batched",
        scoring: ScoringScheme | None = None,
        xdrop: int = 100,
        *,
        num_workers: int = 1,
        policy: BatchPolicy | None = None,
        cache_capacity: int = 4096,
        queue_capacity: int = 1024,
        worker_policy: str = "cells",
        submit_timeout: float = 5.0,
        config=None,
    ) -> None:
        if config is not None:
            legacy = (
                engine != "batched"
                or scoring is not None
                or xdrop != 100
                or num_workers != 1
                or policy is not None
                or cache_capacity != 4096
                or queue_capacity != 1024
                or worker_policy != "cells"
                or submit_timeout != 5.0
            )
            if legacy:
                raise ServiceError(
                    "pass either config= or the loose service kwargs, not both"
                )
            svc = config.service
            engine = engine_from_config(config)
            scoring = config.scoring
            xdrop = config.xdrop
            num_workers = svc.num_workers
            policy = BatchPolicy(
                max_batch_size=svc.max_batch_size,
                max_wait_seconds=svc.max_wait_seconds,
                bin_width=config.bin_width,
            )
            cache_capacity = svc.cache_capacity
            queue_capacity = svc.queue_capacity
            worker_policy = svc.worker_policy
            submit_timeout = svc.submit_timeout
            transport = svc.transport
            state_path = svc.state_path
            prefilter_mode = svc.prefilter
            prefilter_options = svc.prefilter_options
            autotune_mode = svc.autotune
            autotune_options = svc.autotune_options
        elif (
            engine != "batched"
            or scoring is not None
            or xdrop != 100
            or num_workers != 1
            or policy is not None
            or cache_capacity != 4096
            or queue_capacity != 1024
            or worker_policy != "cells"
            or submit_timeout != 5.0
        ):
            warn_once(
                "service-loose-kwargs",
                "configuring AlignmentService through loose kwargs is "
                "deprecated; pass config=repro.api.AlignConfig(...) (or use "
                "repro.api.Aligner.open_service)",
            )
        if config is None:
            # The distributed knobs have no loose-kwarg form: the legacy
            # surface always means in-process threads with no durability
            # and no admission triage.
            transport = "thread"
            state_path = None
            prefilter_mode = "off"
            prefilter_options = {}
            autotune_mode = "off"
            autotune_options = {}
        self.config = config
        self.scoring = scoring if scoring is not None else ScoringScheme()
        self.xdrop = int(xdrop)
        if isinstance(engine, str):
            engine = get_engine(engine, scoring=self.scoring, xdrop=self.xdrop)
        self.engine = engine
        self.policy = policy or BatchPolicy()
        # Every service gets a private metrics registry (two services never
        # mix series) sharing the process-wide tracer and flight recorder.
        # ServiceStats is a *view* over this registry.
        self.obs = get_observability().scoped()
        self.queue = SubmissionQueue(capacity=queue_capacity, obs=self.obs)
        self.batcher = AdaptiveBatcher(self.policy, obs=self.obs)
        self.cache = ResultCache(capacity=cache_capacity, obs=self.obs)
        self.transport = transport
        if transport == "process":
            # Spawned worker processes fed through shared memory; they
            # rebuild the engine from the config in their own interpreter.
            from ..distrib.pool import ProcessWorkerPool

            self.pool = ProcessWorkerPool(
                config,
                num_workers=num_workers,
                policy=worker_policy,
                xdrop=self.xdrop,
                obs=self.obs,
            )
        else:
            self.pool = ShardedWorkerPool(
                engine=self.engine,
                num_workers=num_workers,
                policy=worker_policy,
                xdrop=self.xdrop,
                obs=self.obs,
            )
        self.submit_timeout = submit_timeout
        self.prefilter_mode = prefilter_mode
        self.prefilter = None
        if prefilter_mode != "off":
            from ..prefilter import PrefilterPolicy

            self.prefilter = PrefilterPolicy.from_options(prefilter_options)
        self.store = None
        self._key_json = None
        if state_path:
            from ..distrib.store import DurableStore
            from ..distrib.wire import cache_key_to_json

            self.store = DurableStore(state_path, obs=self.obs)
            self._key_json = cache_key_to_json
        self._lock = threading.RLock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._shutdown = False
        self._submitted_c = self.obs.counter(
            "repro_service_submitted_total", "jobs accepted by submit()"
        )
        self._completed_c = self.obs.counter(
            "repro_service_completed_total", "jobs resolved (cache hits included)"
        )
        self._cells_c = self.obs.counter(
            "repro_service_cells_total", "DP cells aligned by the pool"
        )
        self._busy_c = self.obs.counter(
            "repro_service_busy_seconds_total", "wall seconds inside pool batches"
        )
        self._live_fraction_g = self.obs.gauge(
            "repro_kernel_live_fraction",
            "rows-weighted live fraction of the batched kernel (accumulated)",
        )
        self._suggested_batch_g = self.obs.gauge(
            "repro_kernel_suggested_batch_size",
            "batch-size hint derived from kernel compaction telemetry",
        )
        self._prefilter_c = self.obs.counter(
            "repro_prefilter_decisions_total",
            "admission triage decisions, by outcome",
            labelnames=("outcome",),
        )
        # Windowed compaction telemetry over the most recent batches — the
        # signal the controllers (and the stats() hints) read.  A lifetime
        # accumulator would let hours-old traffic outvote the last minute.
        self._kernel_stats = WindowedKernelStats()
        self.autotune_mode = autotune_mode
        self.autotune = None
        if autotune_mode != "off":
            from ..autotune import AutotuneManager, AutotuneOptions

            self.autotune = AutotuneManager(
                mode=autotune_mode,
                options=AutotuneOptions.from_options(autotune_options),
                batcher=self.batcher,
                # Engine-knob overrides only reach a kernel running in
                # this interpreter; process-transport workers rebuild
                # their engines in their own processes, so only the
                # batch-size knob tunes there.
                engine=self.engine if transport != "process" else None,
                base_batch_size=self.policy.max_batch_size,
                obs=self.obs,
            )
        self.crash_dump_path = None  # optional JSON path for crash dumps
        self.last_crash_dump: dict | None = None
        self._recovered_c = self.obs.counter(
            "repro_service_recovered_total",
            "durable jobs re-enqueued at startup (restart recovery)",
        )
        self.recovered_tickets: list[AlignmentTicket] = []
        if self.store is not None:
            self._recover_durable()

    @classmethod
    def from_config(cls, config) -> "AlignmentService":
        """Build a service entirely from an :class:`repro.api.AlignConfig`."""
        return cls(config=config)

    def _recover_durable(self) -> None:
        """Re-enqueue every unfinished job found in the durable store.

        Jobs the previous process had in flight when it died come back
        first (the store counts them as redeliveries).  Recovery can
        exceed the queue bound, so full chunks are drained synchronously
        in between — by the time the constructor returns, every recovered
        job is either queued or already aligned and persisted.
        """
        from ..distrib.wire import cache_key_from_json

        for record in self.store.recover():
            ticket = AlignmentTicket(
                record.job, cache_key=cache_key_from_json(record.cache_key)
            )
            ticket.durable_id = record.row_id
            self._submitted_c.inc()
            self._recovered_c.inc()
            if self.queue.depth >= self.queue.capacity:
                self.drain()
            self.queue.put(ticket, timeout=self.submit_timeout)
            self.recovered_tickets.append(ticket)

    # ------------------------------------------------------------------ #
    # Submission side.
    def submit(self, job: AlignmentJob) -> AlignmentTicket:
        """Accept one job; returns a ticket immediately.

        Cache hits resolve the ticket before it returns.  Misses enqueue
        it: in background mode a full queue blocks the caller
        (backpressure) and raises :class:`ServiceError` after
        ``submit_timeout``; in inline mode — where nothing else could ever
        empty the queue — a full queue triggers a synchronous
        :meth:`drain` instead, so any number of submissions succeeds.
        """
        if self._shutdown:
            raise ServiceError("service has been shut down")
        with self.obs.span("service.submit", pair_id=job.pair_id):
            key = job_cache_key(job, self.scoring, self.xdrop)
            ticket = AlignmentTicket(job, cache_key=key)
            if self.prefilter is not None:
                # Admission triage runs on every submission — before the
                # cache, the durable store and (in the process transport)
                # any shared-memory packing, so rejected pairs never cost
                # more than the sketch.  Under "advise" the outcome is
                # only counted; under "enforce" a reject resolves
                # instantly with the seed-only placeholder and is kept
                # out of the content-addressed cache (its key must keep
                # meaning "real alignment" for every other mode).
                decision = self.prefilter.classify(job, self.scoring)
                ticket.prefilter = decision.outcome
                self._prefilter_c.inc(outcome=decision.outcome)
                if (
                    self.prefilter_mode == "enforce"
                    and decision.outcome == "reject"
                ):
                    from ..prefilter import rejected_result

                    with self._lock:
                        self._submitted_c.inc()
                        self._completed_c.inc()
                    ticket.resolve(
                        rejected_result(job, self.scoring), cache_hit=False
                    )
                    return ticket
            # The cache and counters are shared with the background loop's
            # _dispatch; all access goes through the service lock.
            with self._lock:
                self._submitted_c.inc()
                cached = self.cache.get(key)
                if cached is not None:
                    self._completed_c.inc()
            if cached is not None:
                ticket.resolve(cached, cache_hit=True)
                return ticket
            if self.store is not None:
                key_json = self._key_json(key)
                durable = self.store.lookup_result(key_json)
                if durable is not None:
                    # Restart-surviving hit: warm the in-memory cache so
                    # repeats stay off the disk path.
                    with self._lock:
                        self.cache.put(key, durable)
                        self._completed_c.inc()
                    ticket.resolve(durable, cache_hit=True)
                    return ticket
                ticket.durable_id = self.store.enqueue(key_json, job)
            if not self.running and self.queue.depth >= self.queue.capacity:
                self.drain()
            self.queue.put(ticket, timeout=self.submit_timeout)
            return ticket

    def submit_many(self, jobs: Iterable[AlignmentJob]) -> list[AlignmentTicket]:
        """Submit an iterable of jobs, one ticket each."""
        return [self.submit(job) for job in jobs]

    def map(self, jobs: Sequence[AlignmentJob]) -> list[SeedAlignmentResult]:
        """Submit, drain, and return results in submission order.

        The synchronous convenience used by the BELLA pipeline's
        service-backed path.
        """
        tickets = self.submit_many(jobs)
        self.drain()
        return [t.result(timeout=60.0) for t in tickets]

    # ------------------------------------------------------------------ #
    # Processing side.
    def _dispatch(self, batch: FormedBatch) -> None:
        """Run one formed batch on the pool and resolve its tickets."""
        durable_ids = (
            [t.durable_id for t in batch.tickets if t.durable_id is not None]
            if self.store is not None
            else []
        )
        if durable_ids:
            self.store.mark_inflight(durable_ids)
        try:
            # Align with the exact parameters the cache key was computed
            # from — an engine instance with different defaults must not
            # poison the content-addressed cache.
            with self.obs.span(
                "service.dispatch",
                size=batch.size,
                length_bin=batch.length_bin,
                reason=batch.reason,
            ):
                run = self.pool.run_batch(
                    batch.jobs(), scoring=self.scoring, xdrop=self.xdrop
                )
        except Exception as error:
            if durable_ids:
                # Back to pending: a restart will redeliver these jobs even
                # though this process's tickets fail now.
                self.store.release(durable_ids)
            self._record_crash(error, batch)
            for ticket in batch.tickets:
                ticket.fail(error)
            return
        if len(run.results) != batch.size:
            # A truncated (or padded) result list must fail the whole
            # batch loudly: zipping it against the tickets would silently
            # drop the tail and leave those submitters blocked forever.
            error = ServiceError(
                f"engine returned {len(run.results)} results for a batch "
                f"of {batch.size} jobs (length bin {batch.length_bin}): "
                "refusing to scatter a mismatched batch"
            )
            if durable_ids:
                self.store.release(durable_ids)
            self._record_crash(error, batch)
            for ticket in batch.tickets:
                ticket.fail(error)
            return
        if self.store is not None:
            self.store.complete(
                (ticket.durable_id, self._key_json(ticket.cache_key), result)
                for ticket, result in zip(batch.tickets, run.results)
            )
        with self._lock:
            self._cells_c.inc(run.summary.cells)
            self._busy_c.inc(run.elapsed_seconds)
            self._completed_c.inc(batch.size)
            kernel_stats = run.extras.get("kernel_stats")
            if kernel_stats is not None:
                # Windowed compaction telemetry: stats() turns it into
                # the batch-sizing hint, the autotune controllers act on
                # it.
                self._kernel_stats.observe(kernel_stats)
                self._live_fraction_g.set(
                    self._kernel_stats.rows_weighted_live_fraction
                )
                self._suggested_batch_g.set(
                    self._kernel_stats.suggested_batch_size(
                        self.policy.max_batch_size
                    )
                )
            if self.autotune is not None:
                self.autotune.on_batch(
                    length_bin=batch.length_bin,
                    batch_size=batch.size,
                    kernel_stats=kernel_stats,
                    cells=run.summary.cells,
                    elapsed_seconds=run.elapsed_seconds,
                )
            for ticket, result in zip(batch.tickets, run.results):
                self.cache.put(ticket.cache_key, result)
        for ticket, result in zip(batch.tickets, run.results):
            ticket.resolve(result, cache_hit=False, batch_size=batch.size)

    def _record_crash(self, error: BaseException, batch: FormedBatch) -> None:
        """Feed a worker failure into the flight recorder (when attached).

        The dump lands at :attr:`crash_dump_path` (when set) and is always
        kept on :attr:`last_crash_dump` so the conformance harness and the
        CLI can reference it from their failure reports.
        """
        self.obs.event(
            "worker_crash",
            error=repr(error),
            batch_size=batch.size,
            length_bin=batch.length_bin,
            reason=batch.reason,
        )
        if self.obs.recorder is not None:
            self.last_crash_dump = self.obs.recorder.dump(
                path=self.crash_dump_path,
                reason="worker_crash",
                provenance=self._provenance(),
            )

    def _provenance(self) -> dict:
        """Provenance stamped onto exported snapshots and crash dumps."""
        return build_provenance(config=self.config)

    def _pump(self, now: float) -> list[FormedBatch]:
        """Move queued tickets into the batcher; collect full batches."""
        formed: list[FormedBatch] = []
        for ticket in self.queue.pop(max_items=self.queue.capacity):
            full = self.batcher.add(ticket, now)
            if full is not None:
                formed.append(full)
        return formed

    def drain(self) -> int:
        """Synchronously process everything queued; returns jobs aligned.

        Safe to call whether or not the background thread is running (the
        loop and ``drain`` serialise on one lock).
        """
        aligned = 0
        with self._lock:
            while True:
                batches = self._pump(time.monotonic())
                batches.extend(self.batcher.flush_all())
                if not batches:
                    break
                for batch in batches:
                    self._dispatch(batch)
                    aligned += batch.size
        return aligned

    # ------------------------------------------------------------------ #
    # Lifecycle.
    def start(self) -> "AlignmentService":
        """Start the background processing thread (idempotent)."""
        if self._shutdown:
            raise ServiceError("service has been shut down")
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="alignment-service", daemon=True
            )
            self._thread.start()
        return self

    def _loop(self) -> None:
        poll = max(self.policy.max_wait_seconds / 4, 0.001)
        while not self._stop.is_set():
            with self._lock:
                now = time.monotonic()
                batches = self._pump(now)
                batches.extend(self.batcher.due(now))
                for batch in batches:
                    self._dispatch(batch)
                deadline = self.batcher.next_deadline(time.monotonic())
            wait = poll if deadline is None else max(min(deadline, poll), 0.001)
            # Sleep on the queue so a fresh submission wakes the loop early.
            if self.queue.depth == 0:
                time.sleep(wait)

    @property
    def running(self) -> bool:
        """True while the background thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def shutdown(self, drain: bool = True) -> None:
        """Stop the service; optionally align everything still pending."""
        if self._shutdown:
            return
        if drain:
            self.drain()
        self._shutdown = True
        self._stop.set()
        self.queue.close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if not drain:
            for ticket in self.queue.pop(max_items=self.queue.capacity):
                ticket.fail(ServiceError("service shut down before alignment"))
            for batch in self.batcher.flush_all():
                for ticket in batch.tickets:
                    ticket.fail(ServiceError("service shut down before alignment"))
        pool_shutdown = getattr(self.pool, "shutdown", None)
        if pool_shutdown is not None:  # process pools own OS resources
            pool_shutdown()
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "AlignmentService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=exc_info[0] is None)

    # ------------------------------------------------------------------ #
    def stats(self) -> ServiceStats:
        """Snapshot of every counter (throughput via :func:`gcups`).

        The numbers are read back from the service's private metrics
        registry — :class:`ServiceStats` is a back-compatible *view* over
        the same series :meth:`metrics_snapshot` exports.
        """
        with self._lock:
            kernel_stats = self._kernel_stats
            cells = int(self._cells_c.value())
            busy = self._busy_c.value()
            return ServiceStats(
                submitted=int(self._submitted_c.value()),
                completed=int(self._completed_c.value()),
                queue_depth=self.queue.depth,
                batcher_pending=self.batcher.pending,
                batches_formed=self.batcher.batches_formed,
                flush_reasons=dict(self.batcher.flush_reasons),
                cache=self.cache.stats(),
                cells=cells,
                busy_seconds=busy,
                throughput_gcups=gcups(cells, busy),
                workers=list(self.pool.worker_stats),
                kernel_live_fraction=(
                    kernel_stats.live_fraction
                    if kernel_stats.total_batches > 0
                    else None
                ),
                suggested_batch_size=(
                    kernel_stats.suggested_batch_size(self.policy.max_batch_size)
                    if kernel_stats.total_batches > 0
                    else None
                ),
                prefilter_mode=self.prefilter_mode,
                prefilter_decisions=(
                    {
                        outcome: int(self._prefilter_c.value(outcome=outcome))
                        for outcome in PREFILTER_OUTCOMES
                    }
                    if self.prefilter is not None
                    else {}
                ),
                autotune_mode=self.autotune_mode,
                autotune=(
                    self.autotune.snapshot()
                    if self.autotune is not None
                    else {}
                ),
            )

    def metrics_snapshot(self, provenance: dict | None = None):
        """Provenance-stamped snapshot of the service's metrics registry."""
        return self.obs.registry.snapshot(
            provenance=provenance if provenance is not None else self._provenance()
        )
