"""ksw2-style affine-gap extension alignment with Z-drop termination.

minimap2's alignment kernel ``ksw2`` (Suzuki & Kasahara difference
recurrences, SSE2-vectorised) computes a *global extension* alignment with
affine gap penalties and terminates early with the **Z-drop** test: when the
best score of the current row falls more than ``Z`` below the global best
(corrected by the gap cost of the diagonal drift), the extension stops.
The LOGAN paper benchmarks against ksw2 on a Skylake platform (Table III /
Fig. 9) because it is the closest production heuristic to X-drop.

This module implements the same recurrence family in row-vectorised NumPy:

* ``H(i,j) = max(H(i-1,j-1) + s(i,j), E(i,j), F(i,j))``
* ``E(i,j) = max(E(i,j-1), H(i,j-1) - gap_open) - gap_extend``  (gap in query)
* ``F(i,j) = max(F(i-1,j), H(i-1,j) - gap_open) - gap_extend``  (gap in target)

The within-row ``E``/``H`` coupling unrolls to a prefix maximum (see
``_row_scan``), so each row is a handful of vectorised operations.  An
optional fixed band ``bandwidth`` reproduces ksw2's ``-w`` option; the
Z-drop rule reproduces its early termination.  Scores are exact for the
affine model (validated against a brute-force oracle in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.encoding import SequenceLike, encode
from ..core.result import NEG_INF
from ..core.scoring import AffineScoringScheme
from ..errors import ConfigurationError

__all__ = ["Ksw2Result", "ksw2_extend", "ksw2_extend_affine_oracle"]

_NEG = np.int64(NEG_INF)


@dataclass
class Ksw2Result:
    """Outcome of a ksw2-style extension.

    Mirrors :class:`repro.core.result.ExtensionResult` but also records the
    number of DP rows evaluated before the Z-drop rule fired, which the
    Skylake cost model uses to estimate CPU runtime.
    """

    best_score: int
    query_end: int
    target_end: int
    rows_computed: int
    cells_computed: int
    terminated_early: bool

    def gcups(self, seconds: float) -> float:
        """Cells computed per second in units of 1e9."""
        if seconds <= 0:
            return float("inf")
        return self.cells_computed / seconds / 1e9


def _row_scan(h0: np.ndarray, js: np.ndarray, gap_open: int, gap_extend: int) -> np.ndarray:
    """Resolve the within-row affine recurrence.

    Given ``h0[j] = max(diag + sub, F)`` for the columns ``js`` of one row,
    returns ``H[j] = max(h0[j], E[j])`` where
    ``E[j] = max_{k < j} (h0[k] - gap_open - (j - k) * gap_extend)``.
    """
    if h0.size == 0:
        return h0
    # prefix[j] = max_{k <= j} (h0[k] + k * gap_extend)
    shifted = h0 + js * gap_extend
    prefix = np.maximum.accumulate(shifted)
    e = np.full_like(h0, _NEG)
    if h0.size > 1:
        # E[j] = max_{k<j} (h0[k] + k*ge) - gap_open - j*ge
        e[1:] = prefix[:-1] - gap_open - js[1:] * gap_extend
    return np.maximum(h0, e)


def ksw2_extend(
    query: SequenceLike,
    target: SequenceLike,
    scoring: AffineScoringScheme = AffineScoringScheme(),
    zdrop: int = 400,
    bandwidth: int | None = None,
) -> Ksw2Result:
    """Affine-gap extension of *query* against *target* with Z-drop termination.

    Parameters
    ----------
    query, target:
        Sequences (strings or encoded arrays); the extension starts at
        position (0, 0) like the X-drop kernels.
    scoring:
        Affine scoring scheme (minimap2 map-pb defaults: 2/-4/4/2).
    zdrop:
        Z-drop threshold.  After each row, if the global best exceeds the
        row best by more than ``zdrop`` plus the gap-extend cost of the
        diagonal drift, the extension terminates.  Pass a very large value
        to disable early termination.
    bandwidth:
        Optional fixed band half-width (ksw2 ``-w``); ``None`` means the full
        matrix, which is ksw2's behaviour when the band is set to the read
        length, and is the regime in which its cost explodes for large Z.

    Returns
    -------
    Ksw2Result
    """
    if zdrop < 0:
        raise ConfigurationError(f"zdrop must be non-negative, got {zdrop}")
    if bandwidth is not None and bandwidth < 0:
        raise ConfigurationError(f"bandwidth must be non-negative, got {bandwidth}")
    q = encode(query)
    t = encode(target)
    m, n = len(q), len(t)
    match = np.int64(scoring.match)
    mismatch = np.int64(scoring.mismatch)
    go = int(scoring.gap_open)
    ge = int(scoring.gap_extend)

    # Row 0: H(0, j) = -(go + j*ge) for j >= 1, H(0,0) = 0.
    cols = np.arange(0, n + 1, dtype=np.int64)
    h_prev = np.where(cols == 0, 0, -(go + cols * ge)).astype(np.int64)
    f_prev = np.full(n + 1, _NEG, dtype=np.int64)

    best = 0
    best_i = best_j = 0
    cells = n + 1
    rows = 1
    terminated = False

    for i in range(1, m + 1):
        if bandwidth is None:
            j_lo, j_hi = 0, n
        else:
            j_lo = max(0, i - bandwidth)
            j_hi = min(n, i + bandwidth)
            if j_lo > j_hi:
                break
        js = np.arange(j_lo, j_hi + 1, dtype=np.int64)
        width = js.size
        cells += width
        rows += 1

        # F(i, j): gap in the target (vertical), from the previous row.
        f_cur = np.maximum(f_prev[j_lo : j_hi + 1], h_prev[j_lo : j_hi + 1] - go) - ge

        # Diagonal candidate.
        sub = np.where(
            (t[js - 1] == q[i - 1]) & (t[js - 1] != 4), match, mismatch
        ).astype(np.int64)
        diag = np.where(js >= 1, h_prev[js - 1] + sub, _NEG)

        h0 = np.maximum(diag, f_cur)
        if j_lo == 0:
            # H(i, 0) = -(go + i*ge): a gap spanning the whole query prefix.
            h0[0] = -(go + i * ge)
        h_row = _row_scan(h0, js, go, ge)

        row_arg = int(np.argmax(h_row))
        row_best = int(h_row[row_arg])
        row_best_j = j_lo + row_arg
        if row_best > best:
            best = row_best
            best_i = i
            best_j = row_best_j

        # Z-drop test (ksw2 semantics): allow for the diagonal drift between
        # the global best cell and the current row best cell.
        drift = abs((i - best_i) - (row_best_j - best_j))
        if best - row_best > zdrop + drift * ge:
            terminated = True
            break

        # Prepare the next iteration's previous-row views (full width).
        new_h_prev = np.full(n + 1, _NEG, dtype=np.int64)
        new_f_prev = np.full(n + 1, _NEG, dtype=np.int64)
        new_h_prev[j_lo : j_hi + 1] = h_row
        new_f_prev[j_lo : j_hi + 1] = f_cur
        h_prev, f_prev = new_h_prev, new_f_prev

    return Ksw2Result(
        best_score=int(best),
        query_end=int(best_i),
        target_end=int(best_j),
        rows_computed=int(rows),
        cells_computed=int(cells),
        terminated_early=terminated,
    )


def ksw2_extend_affine_oracle(
    query: SequenceLike,
    target: SequenceLike,
    scoring: AffineScoringScheme = AffineScoringScheme(),
) -> int:
    """Brute-force affine-gap best prefix-extension score (test oracle).

    Straightforward three-matrix Gotoh dynamic programming over the full
    matrix in Python loops — only suitable for short sequences in tests.
    """
    q = encode(query)
    t = encode(target)
    m, n = len(q), len(t)
    go, ge = scoring.gap_open, scoring.gap_extend

    H = [[0] * (n + 1) for _ in range(m + 1)]
    E = [[NEG_INF] * (n + 1) for _ in range(m + 1)]
    F = [[NEG_INF] * (n + 1) for _ in range(m + 1)]
    for j in range(1, n + 1):
        H[0][j] = -(go + j * ge)
        E[0][j] = -(go + j * ge)
    for i in range(1, m + 1):
        H[i][0] = -(go + i * ge)
        F[i][0] = -(go + i * ge)
    best = 0
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            sub = scoring.match if (q[i - 1] == t[j - 1] and q[i - 1] != 4) else scoring.mismatch
            E[i][j] = max(E[i][j - 1] - ge, H[i][j - 1] - go - ge)
            F[i][j] = max(F[i - 1][j] - ge, H[i - 1][j] - go - ge)
            H[i][j] = max(H[i - 1][j - 1] + sub, E[i][j], F[i][j])
            if H[i][j] > best:
                best = H[i][j]
    return int(best)
