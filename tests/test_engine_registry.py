"""Tests of the unified alignment-engine layer.

Covers the registry surface (register/get/list), the uniform batch result,
and — most importantly — property-style parity: random job batches pushed
through every registered exact engine must produce identical scores and end
positions to the scalar reference oracle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bella import BellaPipeline
from repro.core import ScoringScheme, Seed, extend_seed
from repro.core.job import AlignmentJob
from repro.core.xdrop import xdrop_extend_reference
from repro.data import PairSetSpec, generate_pair_set
from repro.engine import (
    EngineBatchResult,
    get_engine,
    list_engines,
    register_engine,
    unregister_engine,
)
from repro.errors import ConfigurationError
from repro.logan import LoganAligner

BUNDLED_ENGINES = {"reference", "vectorized", "batched", "seqan", "ksw2", "logan"}
EXACT_ENGINES = sorted(BUNDLED_ENGINES - {"ksw2"})


def job_batch(rng_seed: int, num_pairs: int = 8, seed_placement: str = "middle"):
    """Deterministic batch of related/unrelated jobs with mid-sequence seeds."""
    return generate_pair_set(
        PairSetSpec(
            num_pairs=num_pairs,
            min_length=120,
            max_length=260,
            pairwise_error_rate=0.15,
            unrelated_fraction=0.25,
            seed_placement=seed_placement,
            rng_seed=rng_seed,
        )
    )


def reference_results(jobs, scoring, xdrop):
    return [
        extend_seed(
            job.query,
            job.target,
            job.seed,
            scoring=scoring,
            xdrop=xdrop,
            kernel=xdrop_extend_reference,
        )
        for job in jobs
    ]


class TestRegistry:
    def test_bundled_engines_registered(self):
        assert BUNDLED_ENGINES <= set(list_engines())

    def test_get_engine_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            get_engine("does-not-exist")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_engine("batched", lambda **kw: None)

    def test_register_and_unregister_custom_engine(self):
        class DummyEngine:
            name = "dummy"
            exact = False

            def __init__(self, **kwargs):
                pass

            def align_batch(self, jobs, scoring=None, xdrop=None):
                raise NotImplementedError

        try:
            register_engine("dummy", DummyEngine)
            assert "dummy" in list_engines()
            assert isinstance(get_engine("dummy"), DummyEngine)
        finally:
            unregister_engine("dummy")
        assert "dummy" not in list_engines()

    def test_register_as_decorator(self):
        try:

            @register_engine("decorated-dummy")
            class Decorated:
                name = "decorated-dummy"
                exact = False

                def align_batch(self, jobs, scoring=None, xdrop=None):
                    raise NotImplementedError

            assert "decorated-dummy" in list_engines()
        finally:
            unregister_engine("decorated-dummy")

    def test_exact_flags(self):
        for name in EXACT_ENGINES:
            assert get_engine(name).exact
        assert not get_engine("ksw2").exact


class TestEngineParity:
    """Every exact engine must reproduce the scalar reference bit-for-bit."""

    @pytest.mark.parametrize("engine_name", EXACT_ENGINES)
    @pytest.mark.parametrize("rng_seed,xdrop", [(1, 15), (2, 40)])
    def test_scores_and_extents_match_reference(self, engine_name, rng_seed, xdrop):
        scoring = ScoringScheme()
        jobs = job_batch(rng_seed)
        oracle = reference_results(jobs, scoring, xdrop)
        batch = get_engine(engine_name, scoring=scoring, xdrop=xdrop).align_batch(jobs)

        assert isinstance(batch, EngineBatchResult)
        assert batch.engine == engine_name
        assert len(batch.results) == len(jobs)
        for got, ref in zip(batch.results, oracle):
            assert got.score == ref.score
            assert got.query_begin == ref.query_begin
            assert got.query_end == ref.query_end
            assert got.target_begin == ref.target_begin
            assert got.target_end == ref.target_end
            assert got.left.best_score == ref.left.best_score
            assert got.right.best_score == ref.right.best_score

    @pytest.mark.parametrize("engine_name", EXACT_ENGINES)
    def test_per_call_override_beats_constructor_default(self, engine_name):
        scoring = ScoringScheme()
        jobs = job_batch(3, num_pairs=4)
        engine = get_engine(engine_name, scoring=scoring, xdrop=5)
        oracle = reference_results(jobs, scoring, 30)
        batch = engine.align_batch(jobs, xdrop=30)
        assert batch.scores() == [r.score for r in oracle]

    def test_batched_engine_work_accounting_matches_reference(self):
        scoring = ScoringScheme()
        jobs = job_batch(4, num_pairs=6)
        oracle = reference_results(jobs, scoring, 25)
        batch = get_engine("batched", scoring=scoring, xdrop=25).align_batch(jobs)
        assert batch.summary.alignments == len(jobs)
        assert batch.summary.cells == sum(r.cells_computed for r in oracle)

    def test_seed_at_start_batches(self):
        scoring = ScoringScheme()
        jobs = job_batch(6, seed_placement="start")
        oracle = reference_results(jobs, scoring, 20)
        for engine_name in ("batched", "vectorized"):
            batch = get_engine(engine_name, scoring=scoring, xdrop=20).align_batch(jobs)
            assert batch.scores() == [r.score for r in oracle]

    def test_batched_engine_workers_chunking_is_score_invariant(self):
        scoring = ScoringScheme()
        jobs = job_batch(9, num_pairs=7)
        serial = get_engine("batched", scoring=scoring, xdrop=25).align_batch(jobs)
        chunked = get_engine(
            "batched", scoring=scoring, xdrop=25, workers=4
        ).align_batch(jobs)
        assert chunked.scores() == serial.scores()
        assert chunked.summary.cells == serial.summary.cells

    def test_ksw2_engine_runs_and_reports_model(self):
        jobs = job_batch(7, num_pairs=4)
        batch = get_engine("ksw2", xdrop=20).align_batch(jobs)
        assert len(batch.results) == len(jobs)
        assert batch.modeled_seconds is not None and batch.modeled_seconds > 0
        assert all(r.score >= 0 for r in batch.results)

    def test_ksw2_engine_honours_custom_substitution_scores(self):
        jobs = job_batch(7, num_pairs=4)
        default = get_engine("ksw2", xdrop=20).align_batch(jobs)
        custom = get_engine(
            "ksw2", scoring=ScoringScheme(match=5, mismatch=-10, gap=-1), xdrop=20
        ).align_batch(jobs)
        assert custom.scores() != default.scores()


class TestConsumersRouteThroughEngines:
    def test_logan_aligner_batched_matches_vectorized(self):
        jobs = job_batch(8, num_pairs=5)
        batched = LoganAligner(xdrop=20, engine="batched").align_batch(jobs)
        vectorized = LoganAligner(xdrop=20, engine="vectorized").align_batch(jobs)
        assert batched.scores() == vectorized.scores()
        for a, b in zip(batched.results, vectorized.results):
            assert np.array_equal(a.left.band_widths, b.left.band_widths)
            assert np.array_equal(a.right.band_widths, b.right.band_widths)
        # Identical traces => identical modeled GPU time.
        assert batched.modeled_seconds == pytest.approx(vectorized.modeled_seconds)

    def test_logan_aligner_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError, match="unknown extension engine"):
            LoganAligner(engine="warp-drive")

    def test_bella_pipeline_accepts_engine_name(self, make_rng):
        reads = self._overlapping_reads(make_rng)
        by_name = BellaPipeline(engine="batched", k=13, xdrop=10, min_overlap=100)
        by_instance = BellaPipeline(
            aligner=get_engine("seqan", xdrop=10), k=13, min_overlap=100
        )
        res_name = by_name.run(reads)
        res_instance = by_instance.run(reads)
        assert res_name.accepted_pairs() == res_instance.accepted_pairs()
        assert [o.score for o in res_name.overlaps] == [
            o.score for o in res_instance.overlaps
        ]

    def test_bella_pipeline_rejects_aligner_and_engine(self):
        with pytest.raises(ConfigurationError, match="not both"):
            BellaPipeline(aligner=get_engine("seqan"), engine="batched")

    def test_bella_pipeline_default_engine_is_seqan(self):
        pipeline = BellaPipeline()
        assert pipeline.aligner.name == "seqan"

    @staticmethod
    def _overlapping_reads(make_rng):
        rng = make_rng(123)
        template = rng.integers(0, 4, 700).astype(np.uint8)
        return [template[0:350], template[175:525], template[350:700]]


class TestEngineBatchResultSurface:
    def test_scores_and_gcups(self):
        jobs = [
            AlignmentJob(
                query="ACGTACGTACGTACGTACGT",
                target="ACGTACGTACGTACGTACGT",
                seed=Seed(0, 0, 4),
            )
        ]
        batch = get_engine("batched", xdrop=10).align_batch(jobs)
        assert batch.scores() == [20]
        assert batch.measured_gcups() >= 0
