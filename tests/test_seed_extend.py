"""Tests for seed-and-extend alignment (repro.core.seed_extend)."""

from __future__ import annotations

import pytest

from repro.core import (
    Seed,
    encode,
    extend_seed,
    random_sequence,
    seed_score,
    split_on_seed,
)
from repro.core.xdrop import xdrop_extend_reference
from repro.errors import AlignmentError


class TestSeed:
    def test_properties(self):
        seed = Seed(query_pos=10, target_pos=20, length=17)
        assert seed.query_end == 27
        assert seed.target_end == 37
        assert seed.diagonal() == -10

    def test_zero_length_rejected(self):
        with pytest.raises(AlignmentError):
            Seed(0, 0, 0)

    def test_negative_positions_rejected(self):
        with pytest.raises(AlignmentError):
            Seed(-1, 0, 5)


class TestSplitOnSeed:
    def test_middle_seed_split(self):
        q = encode("AAAACGTTTT")
        t = encode("CCCACGTGGG")
        seed = Seed(query_pos=4, target_pos=3, length=3)
        (lq, lt), (rq, rt) = split_on_seed(q, t, seed)
        # Left parts are reversed.
        assert list(lq) == list(q[:4][::-1])
        assert list(lt) == list(t[:3][::-1])
        assert list(rq) == list(q[7:])
        assert list(rt) == list(t[6:])

    def test_seed_at_start_gives_empty_left(self):
        q = encode("ACGTACGT")
        (lq, lt), (rq, rt) = split_on_seed(q, q, Seed(0, 0, 4))
        assert len(lq) == 0 and len(lt) == 0
        assert len(rq) == 4

    def test_seed_at_end_gives_empty_right(self):
        q = encode("ACGTACGT")
        (lq, lt), (rq, rt) = split_on_seed(q, q, Seed(4, 4, 4))
        assert len(rq) == 0 and len(rt) == 0
        assert len(lq) == 4

    def test_out_of_bounds_seed_rejected(self):
        q = encode("ACGT")
        with pytest.raises(AlignmentError):
            split_on_seed(q, q, Seed(2, 2, 4))


class TestSeedScore:
    def test_exact_seed(self, scoring):
        q = encode("AAACGTAAA")
        assert seed_score(q, q, Seed(3, 3, 3), scoring) == 3 * scoring.match

    def test_inexact_anchor_penalised(self, scoring):
        q = encode("AAACGTAAA")
        t = encode("AAACCTAAA")
        assert seed_score(q, t, Seed(3, 3, 3), scoring) == 2 * scoring.match + scoring.mismatch


class TestExtendSeed:
    def test_identical_sequences_full_score(self, scoring):
        seq = "ACGTACGTACGTACGT"
        res = extend_seed(seq, seq, Seed(6, 6, 4), scoring, xdrop=20)
        assert res.score == len(seq) * scoring.match
        assert res.query_begin == 0
        assert res.query_end == len(seq)
        assert res.target_begin == 0
        assert res.target_end == len(seq)

    def test_seed_at_start(self, scoring):
        seq = "ACGTACGTACGT"
        res = extend_seed(seq, seq, Seed(0, 0, 4), scoring, xdrop=20)
        assert res.score == len(seq)
        assert res.left.cells_computed == 1  # trivial empty extension

    def test_seed_at_end(self, scoring):
        seq = "ACGTACGTACGT"
        res = extend_seed(seq, seq, Seed(8, 8, 4), scoring, xdrop=20)
        assert res.score == len(seq)
        assert res.right.cells_computed == 1

    def test_score_decomposition(self, scoring, rng):
        q = random_sequence(80, rng)
        t = q.copy()
        t[60] = (t[60] + 1) % 4
        seed = Seed(30, 30, 10)
        res = extend_seed(q, t, seed, scoring, xdrop=30)
        assert res.score == res.left.best_score + res.right.best_score + res.seed_score

    def test_spans_and_overlap_length(self, scoring):
        seq = "ACGTACGTACGTACGT"
        res = extend_seed(seq, seq, Seed(6, 6, 4), scoring, xdrop=20)
        assert res.query_span == len(seq)
        assert res.target_span == len(seq)
        assert res.overlap_length == len(seq)
        assert res.cells_computed == res.left.cells_computed + res.right.cells_computed

    def test_custom_kernel_injection(self, scoring, rng):
        q = random_sequence(60, rng)
        t = q.copy()
        default = extend_seed(q, t, Seed(20, 20, 8), scoring, xdrop=15)
        reference = extend_seed(
            q, t, Seed(20, 20, 8), scoring, xdrop=15, kernel=xdrop_extend_reference
        )
        assert default.score == reference.score

    def test_divergent_pair_scores_near_seed_only(self, scoring, rng):
        q = random_sequence(200, rng)
        t = random_sequence(200, rng)
        kmer = q[90:100].copy()
        t[90:100] = kmer
        res = extend_seed(q, t, Seed(90, 90, 10), scoring, xdrop=5)
        # Extensions on unrelated flanks contribute little beyond the seed.
        assert res.score < 10 + 2 * 10
        assert res.score >= 10
