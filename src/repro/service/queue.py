"""Bounded submission queue and per-job tickets of the alignment service.

Submission is asynchronous: each accepted job yields an
:class:`AlignmentTicket` — a tiny future that the caller can poll
(:meth:`~AlignmentTicket.done`) or block on (:meth:`~AlignmentTicket.result`)
while the service batches and aligns in the background.  The queue is
bounded: when producers outrun the workers, ``put`` blocks (backpressure)
and eventually raises :class:`~repro.errors.ServiceError` instead of letting
memory grow without limit — the behaviour a batch-serving front door needs
under heavy traffic.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Iterable

from ..core.job import AlignmentJob
from ..core.result import SeedAlignmentResult
from ..errors import ServiceError

__all__ = ["AlignmentTicket", "SubmissionQueue"]


class AlignmentTicket:
    """Future for one submitted alignment job.

    Attributes
    ----------
    job:
        The submitted :class:`~repro.core.job.AlignmentJob`.
    cache_key:
        The content-addressed key the service computed at submission time
        (stored so completion does not re-hash the sequences).
    cache_hit:
        True when the result was answered from the cache without aligning.
    batch_size:
        Size of the formed batch this job was aligned in (1 for cache hits).
    durable_id:
        Row id in the durable SQLite queue when the service persists
        submissions (``None`` otherwise); completion deletes the row.
    prefilter:
        Admission triage outcome (``"reject"``/``"duplicate"``/
        ``"contested"``) when the service runs a prefilter, ``None``
        otherwise.
    """

    def __init__(self, job: AlignmentJob, cache_key: Any = None) -> None:
        self.job = job
        self.cache_key = cache_key
        self.cache_hit = False
        self.batch_size = 0
        self.prefilter: str | None = None
        self.durable_id: int | None = None
        self.enqueued_at: float | None = None  # monotonic; set by the queue
        self._event = threading.Event()
        self._result: SeedAlignmentResult | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        """True once a result (or an error) has been delivered."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> SeedAlignmentResult:
        """Block until the alignment finishes and return its result.

        Raises
        ------
        ServiceError
            If no result arrives within *timeout* seconds.
        BaseException
            Whatever error the worker hit, re-raised in the caller.
        """
        if not self._event.wait(timeout):
            raise ServiceError(
                f"alignment result not ready within {timeout} s "
                "(is the service running / drained?)"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    # ------------------------------------------------------------------ #
    # Completion side (called by the service, not by clients).
    def resolve(
        self,
        result: SeedAlignmentResult,
        cache_hit: bool = False,
        batch_size: int = 1,
    ) -> None:
        """Deliver the alignment result and wake any waiter."""
        self._result = result
        self.cache_hit = cache_hit
        self.batch_size = batch_size
        self._event.set()

    def fail(self, error: BaseException) -> None:
        """Deliver an error instead of a result."""
        self._error = error
        self._event.set()


class SubmissionQueue:
    """Thread-safe bounded FIFO of pending tickets.

    Parameters
    ----------
    capacity:
        Maximum number of queued tickets.  ``put`` blocks while the queue is
        full and raises :class:`ServiceError` after *timeout* seconds — the
        explicit backpressure contract of the service front door.
    """

    def __init__(self, capacity: int = 1024, obs=None) -> None:
        if capacity <= 0:
            raise ServiceError(f"queue capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._items: deque[AlignmentTicket] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        # Optional repro.obs.Observability handle; instruments are created
        # up front so the series exist in snapshots taken before traffic.
        self._depth_gauge = (
            obs.gauge("repro_queue_depth", "tickets waiting in the submission queue")
            if obs is not None
            else None
        )
        self._wait_hist = (
            obs.histogram(
                "repro_queue_wait_seconds", "queue residency per popped ticket"
            )
            if obs is not None
            else None
        )

    @property
    def depth(self) -> int:
        """Number of tickets currently queued."""
        with self._lock:
            return len(self._items)

    def close(self) -> None:
        """Reject further ``put`` calls and wake every waiter."""
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    def put(self, ticket: AlignmentTicket, timeout: float | None = 5.0) -> None:
        """Enqueue *ticket*, blocking while the queue is full.

        Raises
        ------
        ServiceError
            If the queue is closed, or stays full past *timeout* seconds.
        """
        with self._not_full:
            if self._closed:
                raise ServiceError("submission queue is closed")
            while len(self._items) >= self.capacity:
                if not self._not_full.wait(timeout):
                    raise ServiceError(
                        f"submission queue full ({self.capacity} jobs) for "
                        f"{timeout} s — backpressure limit reached"
                    )
                if self._closed:
                    raise ServiceError("submission queue is closed")
            ticket.enqueued_at = time.monotonic()
            self._items.append(ticket)
            if self._depth_gauge is not None:
                self._depth_gauge.set(len(self._items))
            self._not_empty.notify()

    def put_many(
        self, tickets: Iterable[AlignmentTicket], timeout: float | None = 5.0
    ) -> None:
        """Enqueue several tickets, applying backpressure per item."""
        for ticket in tickets:
            self.put(ticket, timeout=timeout)

    def pop(self, max_items: int = 1, timeout: float | None = None) -> list[AlignmentTicket]:
        """Dequeue up to *max_items* tickets in FIFO order.

        With ``timeout=None`` the call never blocks: it returns whatever is
        immediately available (possibly nothing).  With a timeout it waits
        up to that long for the first item.
        """
        with self._not_empty:
            if timeout is not None and not self._items and not self._closed:
                self._not_empty.wait(timeout)
            taken: list[AlignmentTicket] = []
            while self._items and len(taken) < max_items:
                taken.append(self._items.popleft())
            if taken:
                if self._depth_gauge is not None:
                    self._depth_gauge.set(len(self._items))
                if self._wait_hist is not None:
                    now = time.monotonic()
                    for ticket in taken:
                        if ticket.enqueued_at is not None:
                            self._wait_hist.observe(now - ticket.enqueued_at)
                self._not_full.notify_all()
            return taken
