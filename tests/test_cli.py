"""Tests for the command-line interface entry points."""

from __future__ import annotations

import json

import pytest

from repro.cli import main_align, main_bella, main_bench, main_fuzz, main_service
from repro.data import SequenceRecord, write_fasta


class TestReproAlign:
    def test_synthetic_run_json(self, capsys):
        exit_code = main_align(
            [
                "--pairs", "4",
                "--min-length", "120",
                "--max-length", "200",
                "--xdrop", "15",
                "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pairs"] == 4
        assert payload["modeled_seconds"] > 0
        assert payload["measured_gcups"] > 0

    def test_baseline_comparison(self, capsys):
        exit_code = main_align(
            [
                "--pairs", "3",
                "--min-length", "100",
                "--max-length", "150",
                "--xdrop", "10",
                "--baseline",
                "--replicate-to", "1000",
                "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scores_identical"] is True
        assert payload["baseline_modeled_seconds"] > 0
        assert payload["modeled_speedup"] > 0

    def test_fasta_inputs(self, tmp_path, capsys):
        q = tmp_path / "q.fasta"
        t = tmp_path / "t.fasta"
        write_fasta(q, [SequenceRecord("a", "ACGTACGTACGTACGT" * 4)])
        write_fasta(t, [SequenceRecord("b", "ACGTACGTACGTACGT" * 4)])
        exit_code = main_align(
            ["--query-fasta", str(q), "--target-fasta", str(t), "--xdrop", "10", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pairs"] == 1
        assert payload["mean_score"] == 64.0

    def test_mismatched_fasta_counts_error(self, tmp_path):
        q = tmp_path / "q.fasta"
        t = tmp_path / "t.fasta"
        write_fasta(q, [SequenceRecord("a", "ACGT"), SequenceRecord("b", "ACGT")])
        write_fasta(t, [SequenceRecord("c", "ACGT")])
        with pytest.raises(SystemExit):
            main_align(["--query-fasta", str(q), "--target-fasta", str(t)])

    def test_human_readable_output(self, capsys):
        assert main_align(["--pairs", "2", "--min-length", "100", "--max-length", "120"]) == 0
        out = capsys.readouterr().out
        assert "modeled_seconds" in out


class TestReproBella:
    def test_dataset_run_json(self, capsys):
        exit_code = main_bella(
            [
                "--dataset", "ecoli_like",
                "--scale", "0.03",
                "--kmer", "13",
                "--xdrop", "10",
                "--aligner", "logan",
                "--min-overlap", "300",
                "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reads"] > 0
        assert payload["aligner"] == "logan"
        assert "alignment" in payload["stage_seconds"] or payload["aligned"] == 0

    def test_fasta_input_with_seqan_kernel(self, tmp_path, capsys):
        # Three overlapping reads carved from one template.
        template = ("ACGT" * 200)
        reads = [
            SequenceRecord("r0", template[0:400]),
            SequenceRecord("r1", template[200:600]),
            SequenceRecord("r2", template[400:800]),
        ]
        path = tmp_path / "reads.fasta"
        write_fasta(path, reads)
        exit_code = main_bella(
            [
                "--fasta", str(path),
                "--kmer", "13",
                "--xdrop", "10",
                "--aligner", "seqan",
                "--min-overlap", "100",
                "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reads"] == 3


class TestEngineDiscovery:
    @pytest.mark.parametrize(
        "entry", [main_align, main_bella, main_bench, main_service, main_fuzz]
    )
    def test_list_engines_flag(self, entry, capsys):
        with pytest.raises(SystemExit) as excinfo:
            entry(["--list-engines"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for name in ("batched", "reference", "seqan", "ksw2", "logan"):
            assert name in out
        assert "inexact" in out  # ksw2's flag is rendered


class TestModuleDispatcher:
    """``python -m repro <tool>`` mirrors the console scripts."""

    def test_usage_and_unknown_tool(self, capsys):
        from repro.__main__ import main

        assert main([]) == 2  # bare invocation is a usage error...
        assert "tools:" in capsys.readouterr().out
        assert main(["--help"]) == 0  # ...but asking for help is not
        assert "tools:" in capsys.readouterr().out
        assert main(["warp-drive"]) == 2
        assert "unknown tool" in capsys.readouterr().err

    def test_dispatches_to_fuzz(self, capsys):
        from repro.__main__ import main

        assert main(["fuzz", "--list-profiles"]) == 0
        assert "pacbio" in capsys.readouterr().out


class TestConfigFile:
    """Every subcommand accepts --config config.json (an AlignConfig)."""

    @pytest.fixture
    def config_path(self, tmp_path):
        from repro.api import AlignConfig, ServiceConfig

        path = tmp_path / "config.json"
        AlignConfig(
            engine="batched",
            xdrop=15,
            service=ServiceConfig(max_batch_size=4),
        ).save(path)
        return str(path)

    def test_align_with_config(self, config_path, capsys):
        exit_code = main_align(
            ["--config", config_path, "--pairs", "3",
             "--min-length", "100", "--max-length", "150", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "batched"
        assert payload["xdrop"] == 15

    def test_bella_with_config(self, config_path, capsys):
        exit_code = main_bella(
            ["--config", config_path, "--dataset", "ecoli_like",
             "--scale", "0.03", "--kmer", "13", "--min-overlap", "300", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "batched"
        assert payload["xdrop"] == 15

    def test_serve_with_config(self, config_path, capsys):
        exit_code = main_service(
            ["serve", "--config", config_path, "--pairs", "4",
             "--min-length", "100", "--max-length", "200",
             "--repeat", "1", "--inline", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "batched"
        assert payload["completed"] == 4

    def test_submit_with_config(self, config_path, capsys):
        exit_code = main_service(
            ["submit", "--config", config_path,
             "--query", "ACGTACGT", "--target", "ACGTACGT", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scores"] == [8]

    def test_bench_accepts_config_flag(self, config_path):
        # Parse-level check only (the harness run is exercised elsewhere):
        # a bad path must be rejected by the loader, proving the flag is
        # wired into the subcommand.
        from repro.errors import ConfigurationError

        with pytest.raises((ConfigurationError, OSError, SystemExit)):
            main_bench(["engines", "--config", config_path + ".missing"])

    def test_flags_override_config(self, config_path, capsys):
        exit_code = main_align(
            ["--config", config_path, "--xdrop", "25", "--pairs", "2",
             "--min-length", "100", "--max-length", "120", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["xdrop"] == 25


class TestReproService:
    def test_serve_synthetic_json(self, capsys):
        exit_code = main_service(
            [
                "serve",
                "--pairs", "8",
                "--min-length", "150",
                "--max-length", "400",
                "--xdrop", "15",
                "--batch-size", "4",
                "--repeat", "2",
                "--inline",
                "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pairs"] == 8
        assert payload["rounds_identical"] is True
        assert payload["batches_formed"] >= 1
        # Round two is answered entirely from the cache.
        assert payload["cache_hits"] == 8
        assert payload["cache_hit_rate"] == pytest.approx(0.5)

    def test_serve_background_thread(self, capsys):
        exit_code = main_service(
            [
                "serve",
                "--pairs", "6",
                "--min-length", "120",
                "--max-length", "300",
                "--xdrop", "15",
                "--batch-size", "3",
                "--max-wait", "0.01",
                "--repeat", "1",
                "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["completed"] == 6

    def test_submit_literal_pair(self, capsys):
        exit_code = main_service(
            [
                "submit",
                "--query", "ACGTACGTACGTACGT",
                "--target", "ACGTACGTACGTACGT",
                "--xdrop", "10",
                "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scores"] == [16]

    def test_submit_fasta_pairs(self, tmp_path, capsys):
        q = tmp_path / "q.fasta"
        t = tmp_path / "t.fasta"
        write_fasta(q, [SequenceRecord("a", "ACGTACGTACGTACGT" * 4)])
        write_fasta(t, [SequenceRecord("b", "ACGTACGTACGTACGT" * 4)])
        exit_code = main_service(
            ["submit", "--query-fasta", str(q), "--target-fasta", str(t),
             "--xdrop", "10", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scores"] == [64]

    def test_submit_without_inputs_errors(self):
        with pytest.raises(SystemExit):
            main_service(["submit"])

    def test_seed_policy_flag_changes_anchor(self, capsys):
        # Sequences that agree only around their centres: the middle policy
        # must anchor on the shared core and outscore the start policy.
        base = ["submit", "--query", "TTTTACGTTTTT", "--target", "GGGGACGTGGGG",
                "--xdrop", "10", "--json"]
        assert main_service(base) == 0
        start = json.loads(capsys.readouterr().out)["scores"]
        assert main_service(["submit", "--seed-policy", "middle"] + base[1:]) == 0
        middle = json.loads(capsys.readouterr().out)["scores"]
        assert middle != start

    def test_legacy_workers_flag_means_shards(self, capsys):
        # Historic repro-service spelling: --workers configured the worker
        # shards (now --num-workers); the shim keeps that behaviour.
        exit_code = main_service(
            ["serve", "--pairs", "4", "--min-length", "100",
             "--max-length", "200", "--workers", "2",
             "--repeat", "1", "--inline", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["workers"]) == 2


class TestReproFuzz:
    FAST = [
        "--count", "16", "--batch", "8", "--quiet",
        "--min-length", "50", "--max-length", "100",
        "--engines", "reference", "--engines", "batched",
    ]

    def test_bounded_run_passes_and_reports(self, capsys):
        exit_code = main_fuzz(["--seed", "0"] + self.FAST + ["--json"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["jobs"] >= 16
        assert payload["service_checked"] is True
        assert payload["failures"] == []

    def test_list_profiles(self, capsys):
        assert main_fuzz(["--list-profiles"]) == 0
        out = capsys.readouterr().out
        for name in ("pacbio", "degenerate", "xdrop_boundary"):
            assert name in out

    def test_no_service_flag(self, capsys):
        exit_code = main_fuzz(
            ["--seed", "1", "--no-service"] + self.FAST + ["--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["service_checked"] is False

    def test_profile_restriction(self, capsys):
        exit_code = main_fuzz(
            ["--seed", "2", "--profiles", "degenerate"] + self.FAST + ["--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["per_profile"]) == {"degenerate"}

    def test_failure_exit_code_and_artifact(self, tmp_path, capsys):
        from repro.engine import register_engine, unregister_engine
        from repro.engine.engines import ReferenceEngine

        class BrokenEngine(ReferenceEngine):
            name = "broken_cli"
            exact = True

            def align_batch(self, jobs, scoring=None, xdrop=None):
                batch = super().align_batch(jobs, scoring=scoring, xdrop=xdrop)
                for res in batch.results:
                    res.score += 1
                return batch

        register_engine("broken_cli", BrokenEngine)
        try:
            artifact = tmp_path / "fuzz-report.json"
            exit_code = main_fuzz(
                ["--seed", "0", "--count", "8", "--batch", "8", "--quiet",
                 "--no-service", "--engines", "reference",
                 "--engines", "broken_cli", "--artifact", str(artifact)]
            )
            assert exit_code == 1
            out = capsys.readouterr().out
            assert "FAILURE" in out and "replay" in out
            payload = json.loads(artifact.read_text())
            assert payload["ok"] is False
            failure = payload["failures"][0]
            assert failure["engine"] == "broken_cli"
            assert failure["shrunk"] is True
            assert failure["query"] and failure["target"]
            assert failure["config"]["xdrop"] == 20  # the fuzz default config
        finally:
            unregister_engine("broken_cli")

    def test_config_flags_reach_the_run(self, capsys):
        exit_code = main_fuzz(
            ["--seed", "3", "--xdrop", "5"] + self.FAST + ["--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
