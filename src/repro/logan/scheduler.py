"""Multi-GPU load balancer (Section IV-C of the paper).

The host divides the batch of alignments into per-device groups before any
kernel launches.  LOGAN balances by *expected work and memory footprint*
rather than by simple counts, "considering both the number of available GPUs
and the length of the sequences", because device memory is the limiting
resource of the single-GPU implementation.

Two policies are provided:

* ``"cells"`` (LOGAN's policy) — greedy longest-processing-time assignment
  by estimated DP cells, which also balances the HBM footprint because both
  scale with sequence length;
* ``"count"`` — naive equal-count round-robin, kept as the ablation baseline
  (``bench_ablation_loadbalance.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.job import AlignmentJob
from ..errors import ConfigurationError

__all__ = ["DeviceAssignment", "LoadBalancer"]


@dataclass
class DeviceAssignment:
    """Jobs assigned to one device.

    Attributes
    ----------
    device_index:
        Index of the device in the :class:`~repro.gpusim.multi_gpu.MultiGpuSystem`.
    job_indices:
        Indices (into the original batch) of the jobs this device aligns.
    estimated_cells:
        Total estimated DP cells of the assigned jobs (the balancing weight).
    """

    device_index: int
    job_indices: list[int]
    estimated_cells: int

    @property
    def num_jobs(self) -> int:
        """Number of jobs assigned to this device."""
        return len(self.job_indices)

    def take(self, jobs: Sequence[AlignmentJob]) -> list[AlignmentJob]:
        """Materialise the assigned jobs from the original batch."""
        return [jobs[i] for i in self.job_indices]


class LoadBalancer:
    """Splits a batch of alignment jobs across GPU devices.

    Parameters
    ----------
    num_devices:
        Number of devices available.
    policy:
        ``"cells"`` (estimated-work balancing, default) or ``"count"``.
    xdrop:
        The X value used to estimate per-job work (band width grows with X).
    gap_penalty:
        Magnitude of the gap penalty, used by the cell estimate.
    """

    def __init__(
        self,
        num_devices: int,
        policy: str = "cells",
        xdrop: int = 100,
        gap_penalty: int = 1,
    ) -> None:
        if num_devices <= 0:
            raise ConfigurationError(f"num_devices must be positive, got {num_devices}")
        if policy not in ("cells", "count"):
            raise ConfigurationError(f"unknown load-balancing policy {policy!r}")
        if xdrop < 0:
            raise ConfigurationError("xdrop must be non-negative")
        self.num_devices = int(num_devices)
        self.policy = policy
        self.xdrop = int(xdrop)
        self.gap_penalty = int(gap_penalty)

    # ------------------------------------------------------------------ #
    def split(self, jobs: Sequence[AlignmentJob]) -> list[DeviceAssignment]:
        """Assign every job to exactly one device.

        Returns one :class:`DeviceAssignment` per device (possibly with an
        empty job list when there are fewer jobs than devices).  The union
        of all ``job_indices`` is exactly ``range(len(jobs))`` — the
        conservation property the tests check.
        """
        if self.policy == "count":
            return self._split_by_count(jobs)
        return self._split_by_cells(jobs)

    # ------------------------------------------------------------------ #
    def _split_by_count(self, jobs: Sequence[AlignmentJob]) -> list[DeviceAssignment]:
        assignments = [
            DeviceAssignment(device_index=d, job_indices=[], estimated_cells=0)
            for d in range(self.num_devices)
        ]
        for index, job in enumerate(jobs):
            dev = index % self.num_devices
            assignments[dev].job_indices.append(index)
            assignments[dev].estimated_cells += job.estimated_cells(
                self.xdrop, self.gap_penalty
            )
        return assignments

    def _split_by_cells(self, jobs: Sequence[AlignmentJob]) -> list[DeviceAssignment]:
        estimates = np.array(
            [job.estimated_cells(self.xdrop, self.gap_penalty) for job in jobs],
            dtype=np.int64,
        )
        assignments = [
            DeviceAssignment(device_index=d, job_indices=[], estimated_cells=0)
            for d in range(self.num_devices)
        ]
        if len(jobs) == 0:
            return assignments
        # Greedy longest-processing-time: place the heaviest job on the
        # currently lightest device.  O(n log n) and within 4/3 of optimal,
        # which is more than enough balance for thousands of similar jobs.
        order = np.argsort(-estimates, kind="stable")
        loads = np.zeros(self.num_devices, dtype=np.int64)
        for index in order:
            dev = int(np.argmin(loads))
            assignments[dev].job_indices.append(int(index))
            cells = int(estimates[index])
            assignments[dev].estimated_cells += cells
            loads[dev] += cells
        # Keep per-device job order deterministic and cache-friendly.
        for assignment in assignments:
            assignment.job_indices.sort()
        return assignments

    # ------------------------------------------------------------------ #
    def imbalance(self, assignments: Sequence[DeviceAssignment]) -> float:
        """Max-over-mean estimated cells across devices (1.0 = perfect)."""
        loads = [a.estimated_cells for a in assignments if a.num_jobs > 0]
        if not loads:
            return 1.0
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean > 0 else 1.0
