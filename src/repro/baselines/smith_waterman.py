"""Exact Smith–Waterman local alignment (quadratic baseline).

The LOGAN paper positions X-drop against the exact quadratic algorithms that
most GPU acceleration work targets (CUDASW++ and friends).  This module
provides a vectorised Smith–Waterman implementation used

* as an accuracy oracle in the test-suite (an X-drop extension score can
  never exceed the best local alignment score of the same pair),
* as the algorithmic core of the CUDASW++ comparison series (Fig. 12),
* in the Fig. 2 search-space comparison (full matrix vs. X-drop band).

The implementation processes the DP matrix row by row; the in-row horizontal
dependency of the linear-gap recurrence is resolved with a prefix-maximum
scan, so the inner loop is pure NumPy.
"""

from __future__ import annotations

import numpy as np

from ..core.encoding import SequenceLike, encode
from ..core.result import FullAlignmentResult
from ..core.scoring import ScoringScheme

__all__ = ["smith_waterman", "smith_waterman_matrix"]


def smith_waterman(
    query: SequenceLike,
    target: SequenceLike,
    scoring: ScoringScheme | None = None,
) -> FullAlignmentResult:
    """Best local alignment score between *query* and *target*.

    Returns the highest-scoring cell of the full (m+1) x (n+1) local-alignment
    matrix together with its coordinates and the number of cells evaluated
    (always ``(m+1)*(n+1)``, which is what makes the exact algorithm
    unattractive for long reads).
    """
    scoring = scoring if scoring is not None else ScoringScheme()
    q = encode(query)
    t = encode(target)
    m, n = len(q), len(t)
    match, mismatch, gap = scoring.as_tuple()

    col = np.arange(0, n + 1, dtype=np.int64)
    col_gap = col * gap
    prev = np.zeros(n + 1, dtype=np.int64)
    best = 0
    best_i = best_j = 0

    for i in range(1, m + 1):
        sub = np.where((t == q[i - 1]) & (t != 4), match, mismatch).astype(np.int64)
        cand = np.empty(n + 1, dtype=np.int64)
        cand[0] = 0
        np.maximum(prev[:-1] + sub, prev[1:] + gap, out=cand[1:])
        np.maximum(cand, 0, out=cand)
        # Resolve H[j] = max(cand[j], H[j-1] + gap) with a prefix-max scan:
        # H[j] = j*gap + cummax(cand[k] - k*gap).
        shifted = cand - col_gap
        np.maximum.accumulate(shifted, out=shifted)
        row = shifted + col_gap
        row_max = int(row.max())
        if row_max > best:
            best = row_max
            best_i = i
            best_j = int(np.argmax(row))
        prev = row

    return FullAlignmentResult(
        best_score=int(best),
        query_end=best_i,
        target_end=best_j,
        cells_computed=(m + 1) * (n + 1),
    )


def smith_waterman_matrix(
    query: SequenceLike,
    target: SequenceLike,
    scoring: ScoringScheme | None = None,
) -> FullAlignmentResult:
    """Smith–Waterman that also returns the full DP matrix.

    Only intended for small sequences (tests, examples, search-space
    visualisation); the matrix costs ``(m+1) * (n+1)`` int64 entries.
    """
    scoring = scoring if scoring is not None else ScoringScheme()
    q = encode(query)
    t = encode(target)
    m, n = len(q), len(t)
    match, mismatch, gap = scoring.as_tuple()
    col = np.arange(0, n + 1, dtype=np.int64)
    col_gap = col * gap

    H = np.zeros((m + 1, n + 1), dtype=np.int64)
    for i in range(1, m + 1):
        sub = np.where((t == q[i - 1]) & (t != 4), match, mismatch).astype(np.int64)
        cand = np.empty(n + 1, dtype=np.int64)
        cand[0] = 0
        np.maximum(H[i - 1, :-1] + sub, H[i - 1, 1:] + gap, out=cand[1:])
        np.maximum(cand, 0, out=cand)
        shifted = cand - col_gap
        np.maximum.accumulate(shifted, out=shifted)
        H[i] = shifted + col_gap

    flat = int(np.argmax(H))
    best_i, best_j = divmod(flat, n + 1)
    return FullAlignmentResult(
        best_score=int(H[best_i, best_j]),
        query_end=int(best_i),
        target_end=int(best_j),
        cells_computed=(m + 1) * (n + 1),
        matrix=H,
    )
