"""Fast shape-regression tests for the paper's headline performance claims.

The full reproductions live in ``benchmarks/``; these tests re-check the same
qualitative shapes at a much smaller scale so that a change that silently
breaks a claim (e.g. a cost-model edit that makes the CPU baseline faster
than LOGAN at large X) is caught by the ordinary test run.
"""

from __future__ import annotations

import pytest

from repro.baselines import Ksw2BatchAligner, SeqAnBatchAligner
from repro.data import PairSetSpec, generate_pair_set
from repro.gpusim import MultiGpuSystem
from repro.logan import LoganAligner

PAPER_PAIRS = 100_000


@pytest.fixture(scope="module")
def shape_jobs():
    spec = PairSetSpec(
        num_pairs=3,
        min_length=900,
        max_length=1500,
        pairwise_error_rate=0.15,
        seed_placement="start",
        rng_seed=77,
    )
    return generate_pair_set(spec)


@pytest.fixture(scope="module")
def logan_runs(shape_jobs):
    """LOGAN runs at a small and a large X, reused across the tests below."""
    replication = PAPER_PAIRS / len(shape_jobs)
    runs = {}
    for x in (10, 1000):
        aligner = LoganAligner(system=MultiGpuSystem.homogeneous(1), xdrop=x)
        runs[x] = aligner.align_batch(shape_jobs, replication=replication)
    return runs


class TestTable2Shape:
    def test_seqan_grows_faster_than_logan_with_x(self, shape_jobs, logan_runs):
        replication = PAPER_PAIRS / len(shape_jobs)
        seqan = {
            x: SeqAnBatchAligner(xdrop=x).modeled_seconds_for(
                run.summary.scaled(replication)
            )
            for x, run in logan_runs.items()
        }
        logan_growth = logan_runs[1000].modeled_seconds / logan_runs[10].modeled_seconds
        seqan_growth = seqan[1000] / seqan[10]
        assert seqan_growth > logan_growth

    def test_logan_beats_seqan_at_large_x(self, shape_jobs, logan_runs):
        replication = PAPER_PAIRS / len(shape_jobs)
        seqan_large = SeqAnBatchAligner(xdrop=1000).modeled_seconds_for(
            logan_runs[1000].summary.scaled(replication)
        )
        assert seqan_large > logan_runs[1000].modeled_seconds

    def test_multi_gpu_helps_at_large_x(self, shape_jobs, logan_runs):
        replication = PAPER_PAIRS / len(shape_jobs)
        six = LoganAligner(system=MultiGpuSystem.homogeneous(6), xdrop=1000).model_existing(
            shape_jobs * 8, list(logan_runs[1000].results) * 8, replication=replication / 8
        )
        assert six.modeled_seconds < logan_runs[1000].modeled_seconds


class TestTable3Shape:
    def test_ksw2_explodes_with_x_while_logan_saturates(self, shape_jobs, logan_runs):
        replication = PAPER_PAIRS / len(shape_jobs)
        ksw2_times = {}
        for x in (10, 1000):
            runner = Ksw2BatchAligner(zdrop=x)
            batch = runner.align_batch(shape_jobs)
            ksw2_times[x] = runner.modeled_seconds_for(batch.summary.scaled(replication))
        ksw2_growth = ksw2_times[1000] / ksw2_times[10]
        logan_growth = logan_runs[1000].modeled_seconds / logan_runs[10].modeled_seconds
        assert ksw2_growth > 3 * logan_growth
        # And at large X LOGAN wins outright.
        assert ksw2_times[1000] > logan_runs[1000].modeled_seconds


class TestGcupsShape:
    def test_modeled_gcups_increase_with_x(self, logan_runs):
        # Wider bands keep more GPU lanes busy: throughput rises with X.
        assert logan_runs[1000].modeled_gcups > logan_runs[10].modeled_gcups

    def test_measured_python_gcups_are_far_below_modeled(self, logan_runs):
        # Sanity check on the honesty of the reporting: the measured pure
        # Python throughput must never be conflated with the modeled V100
        # throughput.
        run = logan_runs[1000]
        assert run.measured_gcups() < run.modeled_gcups
