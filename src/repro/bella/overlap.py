"""Sparse-matrix overlap detection (BELLA stage 2).

BELLA discovers candidate overlaps with a sparse matrix-matrix
multiplication: with ``A`` the (reads x reliable k-mers) occurrence matrix,
``C = A @ A.T`` counts, for every read pair, the number of reliable k-mers
they share; non-zero off-diagonal entries are the candidate overlaps handed
to the alignment stage.  This module implements exactly that with
``scipy.sparse`` CSR matrices, and augments the SpGEMM result with the
shared k-mer *positions* (from the occurrence index) that the seed-selection
stage needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from ..errors import ConfigurationError
from .kmer import KmerIndex

__all__ = ["CandidateOverlap", "OverlapMatrix", "build_occurrence_matrix", "find_candidate_overlaps"]


@dataclass
class CandidateOverlap:
    """A candidate overlap between two reads found by the SpGEMM stage.

    Attributes
    ----------
    read_i, read_j:
        Read indices with ``read_i < read_j``.
    shared_kmers:
        Number of reliable k-mers the two reads share.
    seed_positions:
        List of ``(position_in_i, position_in_j)`` for every shared k-mer
        (first occurrence per read), used by the binning stage to pick the
        seed to extend from.
    """

    read_i: int
    read_j: int
    shared_kmers: int
    seed_positions: list[tuple[int, int]] = field(default_factory=list)

    @property
    def pair(self) -> tuple[int, int]:
        """The (i, j) read-index pair."""
        return (self.read_i, self.read_j)


@dataclass
class OverlapMatrix:
    """Result of the overlap-detection stage.

    Attributes
    ----------
    candidates:
        Candidate overlaps with at least ``min_shared_kmers`` shared k-mers.
    matrix:
        The sparse candidate matrix ``C = A @ A.T`` (upper triangle),
        exposed for inspection and tests.
    num_reads:
        Number of reads.
    """

    candidates: list[CandidateOverlap]
    matrix: sparse.csr_matrix
    num_reads: int

    @property
    def num_candidates(self) -> int:
        """Number of candidate overlaps."""
        return len(self.candidates)


def build_occurrence_matrix(index: KmerIndex) -> sparse.csr_matrix:
    """Build the (reads x reliable k-mers) boolean occurrence matrix ``A``."""
    kmer_ids = {code: column for column, code in enumerate(sorted(index.occurrences))}
    rows: list[int] = []
    cols: list[int] = []
    for code, occurrences in index.occurrences.items():
        column = kmer_ids[code]
        for read_index, _pos in occurrences:
            rows.append(read_index)
            cols.append(column)
    data = np.ones(len(rows), dtype=np.int32)
    return sparse.csr_matrix(
        (data, (rows, cols)), shape=(index.num_reads, len(kmer_ids))
    )


def find_candidate_overlaps(
    index: KmerIndex, min_shared_kmers: int = 1
) -> OverlapMatrix:
    """Run the SpGEMM overlap detection over a reliable-k-mer index.

    Parameters
    ----------
    index:
        The reliable-k-mer occurrence index.
    min_shared_kmers:
        Minimum number of shared reliable k-mers for a pair to become a
        candidate (BELLA default: 1).

    Returns
    -------
    OverlapMatrix
        Candidates sorted by ``(read_i, read_j)``.
    """
    if min_shared_kmers < 1:
        raise ConfigurationError("min_shared_kmers must be at least 1")

    occurrence = build_occurrence_matrix(index)
    candidate_matrix = (occurrence @ occurrence.T).tocsr()
    upper = sparse.triu(candidate_matrix, k=1).tocoo()

    # Collect shared k-mer positions per pair from the occurrence index.
    positions: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for occurrences in index.occurrences.values():
        if len(occurrences) < 2:
            continue
        for a in range(len(occurrences)):
            read_a, pos_a = occurrences[a]
            for b in range(a + 1, len(occurrences)):
                read_b, pos_b = occurrences[b]
                if read_a == read_b:
                    continue
                if read_a < read_b:
                    key, value = (read_a, read_b), (pos_a, pos_b)
                else:
                    key, value = (read_b, read_a), (pos_b, pos_a)
                positions.setdefault(key, []).append(value)

    candidates: list[CandidateOverlap] = []
    for i, j, shared in zip(upper.row, upper.col, upper.data):
        if shared < min_shared_kmers:
            continue
        pair = (int(i), int(j))
        candidates.append(
            CandidateOverlap(
                read_i=pair[0],
                read_j=pair[1],
                shared_kmers=int(shared),
                seed_positions=positions.get(pair, []),
            )
        )
    candidates.sort(key=lambda c: c.pair)
    return OverlapMatrix(
        candidates=candidates, matrix=candidate_matrix, num_reads=index.num_reads
    )
