"""Online self-tuning of the serving stack's batch/kernel knobs.

PR 5 plumbed the batched kernel's compaction telemetry
(:class:`repro.core.xdrop_batch.BatchKernelStats`) up to
:class:`repro.service.ServiceStats`, but nothing acted on it — the service
ran whatever fixed ``max_batch_size`` / ``tile_width`` /
``compact_threshold`` the operator guessed.  This package closes that
loop:

* :class:`BinController` — one feedback controller per batcher length
  bin, consuming *windowed* telemetry
  (:class:`repro.core.xdrop_batch.WindowedKernelStats`) and stepping the
  bin's batch size with hysteresis, a cooldown, and bounded steps;
* :class:`EngineKnobController` — the same discipline for the batched
  kernel's ``tile_width`` / ``compact_threshold`` engine-level overrides;
* :class:`WhatIfPlanner` — a :mod:`repro.gpusim`-backed what-if model
  (the GIPS-framework pattern) that scores a proposed batch-size change
  against the modeled device *before* it is applied;
* :class:`AutotuneManager` — ties the controllers to a live
  :class:`repro.service.AlignmentService`: actuates decisions in ``"on"``
  mode, only counts them in ``"advise"`` mode, and reverts every knob to
  the static configuration (the kill-switch) if measured GCUPS regresses.

Every knob the controllers touch is *result-invariant* by construction —
batch membership, tile width and compaction threshold change when work
happens, never what it computes — so autotuned results stay bit-identical
to the static service (the conformance suite enforces this).
"""

from .controller import BinController, Decision, EngineKnobController
from .manager import AutotuneManager, tunable_knobs
from .options import AUTOTUNE_MODES, AutotuneOptions
from .planner import PlanEstimate, WhatIfPlanner

__all__ = [
    "AUTOTUNE_MODES",
    "AutotuneOptions",
    "BinController",
    "Decision",
    "EngineKnobController",
    "AutotuneManager",
    "PlanEstimate",
    "WhatIfPlanner",
    "tunable_knobs",
]
