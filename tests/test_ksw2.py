"""Tests for the ksw2-style Z-drop baseline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import Ksw2Result, ksw2_extend, ksw2_extend_affine_oracle
from repro.core import AffineScoringScheme, random_sequence
from repro.errors import ConfigurationError

SEQ = st.text(alphabet="ACGT", min_size=1, max_size=30)
AFFINE = AffineScoringScheme(match=2, mismatch=-4, gap_open=4, gap_extend=2)


class TestKsw2Basics:
    def test_identical_sequences(self):
        res = ksw2_extend("ACGTACGT", "ACGTACGT", AFFINE, zdrop=1000)
        assert res.best_score == 8 * 2
        assert res.query_end == 8
        assert res.target_end == 8

    def test_single_mismatch(self):
        res = ksw2_extend("ACGTACGT", "ACGTTCGT", AFFINE, zdrop=1000)
        assert res.best_score == 7 * 2 - 4

    def test_single_insertion_prefers_gap(self):
        # One extra base in the target: 8 matches minus an open+extend gap.
        res = ksw2_extend("ACGTACGT", "ACGTAACGT", AFFINE, zdrop=1000)
        assert res.best_score == 8 * 2 - (4 + 2)

    def test_negative_zdrop_rejected(self):
        with pytest.raises(ConfigurationError):
            ksw2_extend("ACGT", "ACGT", AFFINE, zdrop=-1)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            ksw2_extend("ACGT", "ACGT", AFFINE, zdrop=10, bandwidth=-2)

    def test_gcups_helper(self):
        res = Ksw2Result(0, 0, 0, 1, 1_000_000_000, False)
        assert res.gcups(1.0) == pytest.approx(1.0)
        assert res.gcups(0.0) == float("inf")


class TestKsw2AgainstOracle:
    @settings(max_examples=50, deadline=None)
    @given(q=SEQ, t=SEQ)
    def test_matches_gotoh_oracle_without_pruning(self, q, t):
        fast = ksw2_extend(q, t, AFFINE, zdrop=10**9, bandwidth=None).best_score
        slow = ksw2_extend_affine_oracle(q, t, AFFINE)
        assert fast == slow

    def test_zdrop_never_increases_score(self, rng):
        for _ in range(10):
            q = random_sequence(60, rng)
            t = random_sequence(60, rng)
            unpruned = ksw2_extend(q, t, AFFINE, zdrop=10**9).best_score
            pruned = ksw2_extend(q, t, AFFINE, zdrop=5).best_score
            assert pruned <= unpruned

    def test_band_never_increases_score(self, rng):
        q = random_sequence(80, rng)
        t = q.copy()
        full = ksw2_extend(q, t, AFFINE, zdrop=10**9, bandwidth=None).best_score
        banded = ksw2_extend(q, t, AFFINE, zdrop=10**9, bandwidth=3).best_score
        assert banded <= full


class TestKsw2Termination:
    def test_divergent_sequences_terminate_early(self, rng):
        q = random_sequence(300, rng)
        t = random_sequence(300, rng)
        res = ksw2_extend(q, t, AFFINE, zdrop=20)
        assert res.terminated_early
        assert res.rows_computed < 300

    def test_similar_sequences_do_not_terminate(self, rng):
        q = random_sequence(200, rng)
        res = ksw2_extend(q, q, AFFINE, zdrop=100)
        assert not res.terminated_early
        assert res.rows_computed == 201

    def test_band_reduces_cells(self, rng):
        q = random_sequence(150, rng)
        res_full = ksw2_extend(q, q, AFFINE, zdrop=10**9, bandwidth=None)
        res_band = ksw2_extend(q, q, AFFINE, zdrop=10**9, bandwidth=10)
        assert res_band.cells_computed < res_full.cells_computed
        # Both recover the perfect score because the optimum hugs the diagonal.
        assert res_band.best_score == res_full.best_score

    def test_cells_grow_with_band(self, rng):
        q = random_sequence(200, rng)
        t = q.copy()
        cells = [
            ksw2_extend(q, t, AFFINE, zdrop=10**9, bandwidth=bw).cells_computed
            for bw in (5, 20, 80)
        ]
        assert cells == sorted(cells)
        assert cells[0] < cells[-1]
