"""Baseline algorithms and platform cost models LOGAN is compared against.

* Exact quadratic algorithms: :func:`smith_waterman`, :func:`needleman_wunsch`,
  :func:`banded_smith_waterman` (accuracy oracles and Fig. 2 / Fig. 12 inputs);
* :func:`ksw2_extend` + :class:`Ksw2BatchAligner` — minimap2's Z-drop kernel
  and its 80-thread Skylake configuration (Table III / Fig. 9);
* :class:`SeqAnBatchAligner` — the SeqAn X-drop + OpenMP configuration BELLA
  uses on the 168-thread POWER9 node (Table II / Fig. 8);
* CPU platform specs and cost models (:mod:`repro.baselines.platforms`);
* GPU competitor throughput models (:mod:`repro.baselines.gpu_competitors`).
"""

from .banded import band_cells, banded_smith_waterman
from .gpu_competitors import (
    CUDASW_GPU_ONLY,
    CUDASW_HYBRID_SIMD,
    MANYMAP,
    GpuThroughputModel,
)
from .ksw2 import Ksw2Result, ksw2_extend, ksw2_extend_affine_oracle
from .ksw2_batch import (
    KSW2_SKYLAKE_BAND_MODEL,
    Ksw2BatchAligner,
    Ksw2BatchResult,
    Ksw2CostModel,
)
from .needleman_wunsch import needleman_wunsch, needleman_wunsch_matrix
from .platforms import (
    KSW2_SKYLAKE_MODEL,
    POWER9_PLATFORM,
    SEQAN_POWER9_MODEL,
    SKYLAKE_PLATFORM,
    CpuCostModel,
    CpuPlatformSpec,
)
from .seqan_like import SeqAnBatchAligner, SeqAnBatchResult
from .smith_waterman import smith_waterman, smith_waterman_matrix

__all__ = [
    "smith_waterman",
    "smith_waterman_matrix",
    "needleman_wunsch",
    "needleman_wunsch_matrix",
    "banded_smith_waterman",
    "band_cells",
    "ksw2_extend",
    "ksw2_extend_affine_oracle",
    "Ksw2Result",
    "Ksw2BatchAligner",
    "Ksw2BatchResult",
    "Ksw2CostModel",
    "KSW2_SKYLAKE_BAND_MODEL",
    "SeqAnBatchAligner",
    "SeqAnBatchResult",
    "CpuPlatformSpec",
    "CpuCostModel",
    "POWER9_PLATFORM",
    "SKYLAKE_PLATFORM",
    "SEQAN_POWER9_MODEL",
    "KSW2_SKYLAKE_MODEL",
    "GpuThroughputModel",
    "CUDASW_GPU_ONLY",
    "CUDASW_HYBRID_SIMD",
    "MANYMAP",
]
