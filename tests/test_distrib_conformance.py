"""Networked conformance: every workload profile through the full
distributed path (socket front door -> process workers -> shared memory)
must come back bit-identical to the in-process oracle.

One runner (and therefore one server + one 2-worker process pool) is
shared across all profiles — spawning interpreters per profile would
multiply the suite's wall clock by the profile count.
"""

from __future__ import annotations

import pytest

from repro.api import AlignConfig, ServiceConfig
from repro.testing import ConformanceRunner
from repro.workloads import WorkloadSpec, generate_workload, list_profiles


@pytest.fixture(scope="module")
def runner():
    config = AlignConfig(
        engine="batched",
        xdrop=20,
        service=ServiceConfig(
            num_workers=2,
            transport="process",
            worker_policy="batch",
            max_batch_size=16,
        ),
    )
    with ConformanceRunner(
        config=config,
        engines=["reference"],
        include_service=False,
        include_network=True,
    ) as runner:
        yield runner


def test_every_profile_is_bit_identical_over_the_network(runner):
    profiles = list_profiles()
    assert len(profiles) >= 8
    total = None
    for name in profiles:
        spec = WorkloadSpec(count=3, seed=91, xdrop=20)
        report = runner.run_workload(generate_workload(name, spec))
        assert report.network_checked, name
        assert report.ok, f"{name}: {report.summary()}"
        total = report if total is None else total.merge(report)
    assert total.ok
    assert "+network" in total.summary()


def test_network_failures_would_be_reported(runner):
    # The report plumbing: a run with the network stage enabled marks it
    # checked even when zero mismatches were found, so a green report
    # positively asserts the stage executed rather than silently skipped.
    spec = WorkloadSpec(count=2, seed=17, xdrop=20)
    report = runner.run_workload(generate_workload(list_profiles()[0], spec))
    assert report.network_checked
    assert report.failures == []
