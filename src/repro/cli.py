"""Command-line interface.

Six console scripts are installed with the package:

``repro-align``
    Align a synthetic benchmark pair set (or two FASTA files) with LOGAN and
    optionally the SeqAn-like CPU baseline, printing per-batch timing, GCUPS
    and modeled platform runtimes.

``repro-bella``
    Run the BELLA overlap pipeline on a named synthetic dataset preset (or a
    FASTA file) with a selectable alignment kernel.

``repro-bench``
    Regenerate one of the paper's tables/figures from the benchmark harness
    without going through pytest (useful for quick sweeps), or — as
    ``repro-bench perf`` — run the benchmark subsystem
    (:mod:`repro.bench`): measure the engines/service on fixed workloads,
    gate against the stored baseline trajectory (``BENCH_engines.json`` /
    ``BENCH_service.json``) with a configurable regression tolerance, and
    append the fresh entry to the committed trajectory.

``repro-service``
    Drive the asynchronous alignment service: ``serve`` runs a workload
    through the queue/batcher/cache/worker stack and reports service stats;
    ``submit`` aligns ad-hoc pairs through a short-lived service.

``repro-fuzz``
    Bounded differential conformance fuzzing: replay generated scenario
    workloads (:mod:`repro.workloads`) through every registered engine and
    the service path, asserting bit-identity with the scalar reference and
    printing the shrunk minimal failing pair on a violation.

``repro-obs``
    The telemetry subsystem's front door: ``demo`` runs a small traced
    workload and prints/exports the resulting metrics; ``read`` parses a
    JSON-lines metrics file back into snapshots; ``overhead`` measures the
    cost of full observability against a disabled run on the quick bench
    workload.

Every subcommand shares one declarative configuration surface: the
``alignment configuration`` argument group is generated from the fields of
:class:`repro.api.AlignConfig` (see :func:`repro.api.add_config_arguments`),
and ``--config config.json`` loads a full :class:`~repro.api.AlignConfig`
which individual flags then override.  Every entry point also accepts
``--list-engines`` to print the registered alignment engines (name,
exactness, summary) and exit.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Sequence

import numpy as np

from ._compat import warn_once
from .api import AlignConfig, add_config_arguments, config_from_args, default_seed
from .baselines import SeqAnBatchAligner
from .bella import BellaPipeline
from .core import encode
from .core.job import AlignmentJob
from .data import PairSetSpec, generate_pair_set, load_dataset, read_fasta
from .engine import describe_engines, list_engines
from .logan import LoganAligner

__all__ = [
    "main_align",
    "main_bella",
    "main_bench",
    "main_bench_perf",
    "main_service",
    "main_fuzz",
    "main_obs",
]


class _ListEnginesAction(argparse.Action):
    """``--list-engines``: print the engine registry and exit (like --help)."""

    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        for row in describe_engines():
            exact = {True: "exact", False: "inexact", None: "?"}[row["exact"]]
            status = ""
            if not row["available"]:
                reason = row["reason"] or "optional dependency missing"
                status = f"  [unavailable: {reason}]"
            print(f"{row['name']:>12s}  {exact:<8s} {row['summary']}{status}")
        parser.exit(0)


def _add_engine_discovery(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--list-engines",
        action=_ListEnginesAction,
        help="list registered alignment engines and exit",
    )


def _with_gpus(config: AlignConfig, args: argparse.Namespace) -> AlignConfig:
    """Fold the ``--gpus`` convenience flag into ``engine_options``."""
    gpus = getattr(args, "gpus", None)
    if gpus is None or config.engine != "logan":
        return config
    return config.replace(engine_options={**config.engine_options, "gpus": gpus})




# --------------------------------------------------------------------------- #
# repro-align
# --------------------------------------------------------------------------- #
_ALIGN_DEFAULTS = AlignConfig(engine="logan")


def main_align(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-align``."""
    parser = argparse.ArgumentParser(
        prog="repro-align",
        description="Batch X-drop alignment with the LOGAN GPU execution model.",
    )
    parser.add_argument("--pairs", type=int, default=100, help="number of synthetic pairs")
    parser.add_argument("--min-length", type=int, default=1000)
    parser.add_argument("--max-length", type=int, default=2000)
    parser.add_argument("--error-rate", type=float, default=0.15)
    parser.add_argument("--gpus", type=int, default=None, help="modeled GPU count")
    parser.add_argument("--seed", type=int, default=2020, help="random seed")
    parser.add_argument(
        "--replicate-to",
        type=int,
        default=None,
        help="model a workload of this many pairs using the generated sample",
    )
    parser.add_argument(
        "--baseline",
        action="store_true",
        help="also run the SeqAn-like CPU baseline and report the speed-up",
    )
    parser.add_argument(
        "--query-fasta", type=str, default=None, help="align records of this FASTA"
    )
    parser.add_argument(
        "--target-fasta", type=str, default=None, help="against records of this FASTA"
    )
    parser.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    add_config_arguments(parser, defaults=_ALIGN_DEFAULTS)
    _add_engine_discovery(parser)
    args = parser.parse_args(argv)

    config = _with_gpus(config_from_args(args, _ALIGN_DEFAULTS), args)
    if args.query_fasta and args.target_fasta:
        queries = [r.sequence for r in read_fasta(args.query_fasta)]
        targets = [r.sequence for r in read_fasta(args.target_fasta)]
        if len(queries) != len(targets):
            parser.error("query and target FASTA files must have the same record count")
        jobs = [
            AlignmentJob(
                query=encode(q),
                target=encode(t),
                seed=default_seed(config.seed_policy, len(q), len(t)),
                pair_id=i,
            )
            for i, (q, t) in enumerate(zip(queries, targets))
        ]
    else:
        spec = PairSetSpec(
            num_pairs=args.pairs,
            min_length=args.min_length,
            max_length=args.max_length,
            pairwise_error_rate=args.error_rate,
            seed_placement=config.seed_policy,
            rng_seed=args.seed,
        )
        jobs = generate_pair_set(spec)

    replication = 1.0
    if args.replicate_to:
        replication = max(1.0, args.replicate_to / len(jobs))

    if config.engine == "logan":
        aligner = LoganAligner.from_config(config)
        result = aligner.align_batch(jobs, replication=replication)
        payload = {
            "pairs": len(jobs),
            "engine": config.engine,
            "replication": replication,
            "xdrop": config.xdrop,
            "gpus": aligner.system.num_devices,
            "threads_per_block": result.threads_per_block,
            "measured_seconds": result.elapsed_seconds,
            "measured_gcups": result.measured_gcups(),
            "modeled_seconds": result.modeled_seconds,
            "modeled_gcups": result.modeled_gcups,
            "mean_score": float(np.mean(result.scores())),
        }
    else:
        if args.replicate_to:
            # Workload replication is a property of the LOGAN platform
            # model; other engines run (and report) the sample as-is.
            print(
                "warning: --replicate-to applies only to the logan engine; "
                "running the sample unreplicated",
                file=sys.stderr,
            )
            replication = 1.0
        result = config.build_engine().align_batch(jobs)
        payload = {
            "pairs": len(jobs),
            "engine": config.engine,
            "replication": replication,
            "xdrop": config.xdrop,
            "measured_seconds": result.elapsed_seconds,
            "measured_gcups": result.measured_gcups(),
            "modeled_seconds": result.modeled_seconds,
            "mean_score": float(np.mean(result.scores())),
        }
    if args.baseline:
        baseline = SeqAnBatchAligner(
            scoring=config.scoring, xdrop=config.xdrop, workers=config.workers
        )
        bres = baseline.align_batch(jobs)
        payload["baseline_modeled_seconds"] = baseline.modeled_seconds_for(
            bres.summary.scaled(replication)
        )
        # None for engines without a platform model (keeps --json strict).
        modeled = payload["modeled_seconds"]
        payload["modeled_speedup"] = (
            payload["baseline_modeled_seconds"] / modeled
            if modeled is not None and modeled > 0
            else None
        )
        payload["scores_identical"] = [r.score for r in result.results] == [
            r.score for r in bres.results
        ]

    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key:>26s}: {value}")
    return 0


# --------------------------------------------------------------------------- #
# repro-bella
# --------------------------------------------------------------------------- #
_BELLA_DEFAULTS = AlignConfig(engine="logan", xdrop=25)


def main_bella(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-bella``."""
    parser = argparse.ArgumentParser(
        prog="repro-bella",
        description="Run the BELLA long-read overlap pipeline on a synthetic dataset.",
    )
    parser.add_argument(
        "--dataset",
        choices=["ecoli_like", "celegans_like"],
        default="ecoli_like",
        help="synthetic dataset preset",
    )
    parser.add_argument(
        "--scale", type=float, default=0.1, help="down-scaling factor of the preset"
    )
    parser.add_argument("--fasta", type=str, default=None, help="use reads from this FASTA")
    parser.add_argument("--kmer", "-k", type=int, default=17)
    parser.add_argument(
        "--aligner",
        choices=["seqan", "logan"],
        default=None,
        help="deprecated alias of --engine",
    )
    parser.add_argument("--gpus", type=int, default=None)
    parser.add_argument("--min-overlap", type=int, default=500)
    parser.add_argument(
        "--prefilter",
        choices=["off", "advise", "enforce"],
        default="off",
        help="k-mer-sketch admission triage before the alignment stage",
    )
    parser.add_argument("--json", action="store_true")
    # seed_policy excluded: BELLA derives every seed from shared k-mers.
    add_config_arguments(parser, defaults=_BELLA_DEFAULTS, exclude=("seed_policy",))
    _add_engine_discovery(parser)
    args = parser.parse_args(argv)

    config = config_from_args(args, _BELLA_DEFAULTS, exclude=("seed_policy",))
    if args.engine is None and args.aligner is not None:
        warn_once(
            "cli-bella-aligner",
            "repro-bella --aligner is deprecated; use --engine (or --config)",
        )
        config = config.replace(engine=args.aligner)
    config = _with_gpus(config, args)

    if args.fasta:
        reads = [r.sequence for r in read_fasta(args.fasta)]
        error_rate = 0.15
    else:
        dataset = load_dataset(args.dataset, scale=args.scale)
        reads = dataset.reads
        error_rate = dataset.preset.error_rate

    pipeline = BellaPipeline(
        config=config,
        k=args.kmer,
        error_rate=error_rate,
        min_overlap=args.min_overlap,
        prefilter=args.prefilter,
    )
    result = pipeline.run(reads)

    payload = {
        "reads": len(reads),
        "kmer": args.kmer,
        "xdrop": config.xdrop,
        "aligner": config.engine,
        "engine": config.engine,
        "reliable_kmers": result.index.retained_kmers,
        "pruned_fraction": result.index.pruned_fraction,
        "candidates": result.candidates.num_candidates,
        "aligned": result.num_alignments,
        "accepted": len(result.accepted),
        "prefilter": result.prefilter,
        "alignment_cells": result.work.cells,
        "alignment_modeled_seconds": result.alignment_modeled_seconds,
        "stage_seconds": dict(result.timer.stages),
        "stage_breakdown": result.timer.to_dict(),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            if key == "stage_breakdown":
                continue
            print(f"{key:>26s}: {value}")
        print(result.timer.report())
    return 0


# --------------------------------------------------------------------------- #
# repro-bench
# --------------------------------------------------------------------------- #
def main_bench_perf(argv: Sequence[str] | None = None) -> int:
    """``repro-bench perf``: measure, gate and record the perf trajectory.

    Times the engine layer (and optionally the serving layer) on the fixed
    benchmark workloads, compares the fresh entry against the stored
    baseline in ``BENCH_engines.json`` / ``BENCH_service.json`` with a
    configurable regression tolerance, and — with ``--record`` — appends
    the entry to the committed trajectory.  Exit status 1 on a regression
    beyond the tolerance (the CI perf-smoke gate) or on a score-parity
    violation.
    """
    from .bench import BaselineStore, compare, run_engine_bench, run_service_bench

    parser = argparse.ArgumentParser(
        prog="repro-bench perf",
        description=(
            "Benchmark the alignment engines/service, gate the result "
            "against the stored baseline trajectory, and optionally record it."
        ),
    )
    parser.add_argument("--pairs", type=int, default=256, help="engine batch size")
    parser.add_argument("--xdrop", type=int, default=50, help="X-drop threshold")
    parser.add_argument("--seed", type=int, default=2020, help="workload RNG seed")
    parser.add_argument(
        "--repeats", type=int, default=1, help="timed runs per engine (best kept)"
    )
    parser.add_argument(
        "--engines",
        nargs="*",
        default=None,
        help=(
            "subset of engines to time (default: all available; "
            "quick: reference+batched)"
        ),
    )
    from .workloads import list_profiles

    parser.add_argument(
        "--profile",
        choices=list_profiles(),
        default=None,
        help=(
            "bench a workload-bank profile instead of the default random "
            "pair set (recorded as its own baseline series)"
        ),
    )
    parser.add_argument(
        "--min-length",
        type=int,
        default=None,
        help="profile mode: minimum template length (WorkloadSpec default)",
    )
    parser.add_argument(
        "--max-length",
        type=int,
        default=None,
        help="profile mode: maximum template length (WorkloadSpec default)",
    )
    parser.add_argument(
        "--error-rate",
        type=float,
        default=None,
        help="profile mode: pairwise divergence (WorkloadSpec default)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke scale: small batch, reference+batched engines only",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="also benchmark the serving layer (BENCH_service.json)",
    )
    parser.add_argument(
        "--service-workers",
        type=int,
        default=1,
        help="thread workers of the benchmarked service (default 1)",
    )
    parser.add_argument(
        "--process-workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "with --service: also time a process-transport service_mp row "
            "with N worker processes (0 = skip; starts its own series)"
        ),
    )
    parser.add_argument(
        "--prefilter",
        choices=["off", "advise", "enforce"],
        default="off",
        help=(
            "with --service: run the mixed triage workload and add a "
            "service_prefilter row under this admission mode, recording "
            "reject precision/recall vs ground truth (own series)"
        ),
    )
    parser.add_argument(
        "--autotune",
        choices=["off", "advise", "on"],
        default="off",
        help=(
            "with --service: run the wave-based self-tuning axis instead — "
            "a fixed-knob service spread plus a service_autotune row whose "
            "controllers run in this mode (own series)"
        ),
    )
    parser.add_argument(
        "--autotune-profile",
        choices=["skewed", "mixed"],
        default="skewed",
        help="with --autotune: workload profile of the self-tuning axis",
    )
    parser.add_argument(
        "--autotune-waves",
        type=int,
        default=None,
        metavar="N",
        help=(
            "with --autotune: waves of the self-tuning axis "
            "(default: the profile's own scale)"
        ),
    )
    parser.add_argument(
        "--baseline",
        type=str,
        default="BENCH_engines.json",
        help="engine trajectory file (default: BENCH_engines.json)",
    )
    parser.add_argument(
        "--service-baseline",
        type=str,
        default="BENCH_service.json",
        help="service trajectory file (default: BENCH_service.json)",
    )
    parser.add_argument(
        "--no-compare",
        action="store_true",
        help="skip the regression gate against the stored baseline",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help=(
            "exit nonzero when a series/engine has no recorded baseline "
            "yet (default: report it and pass)"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="fractional regression tolerance of the gate (default 0.30)",
    )
    parser.add_argument(
        "--metric",
        choices=["speedup_vs_scalar", "measured_seconds", "measured_gcups"],
        default="speedup_vs_scalar",
        help="gated metric (default: host-normalised speedup_vs_scalar)",
    )
    parser.add_argument(
        "--record",
        action="store_true",
        help="append the fresh entry to the trajectory file(s)",
    )
    parser.add_argument("--label", type=str, default="", help="entry label")
    parser.add_argument(
        "--artifact",
        type=str,
        default=None,
        metavar="JSON",
        help="write entry + comparison report to this file (CI artifact)",
    )
    parser.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    args = parser.parse_args(argv)

    entry = run_engine_bench(
        pairs=args.pairs,
        xdrop=args.xdrop,
        seed=args.seed,
        engines=args.engines,
        repeats=args.repeats,
        quick=args.quick,
        label=args.label,
        profile=args.profile,
        min_length=args.min_length,
        max_length=args.max_length,
        error_rate=args.error_rate,
    )
    failed = False
    payload: dict = {"engines": entry.to_dict()}

    def gate(bench_entry, store, report_key) -> bool:
        """Compare one entry; a missing baseline is a clear message, not a
        KeyError, and fails the run only under ``--strict``."""
        series = bench_entry.kind + (
            f"/{bench_entry.profile}" if bench_entry.profile else ""
        )
        where = (
            f"(pairs={bench_entry.batch_size}, X={bench_entry.xdrop}, "
            f"seed={bench_entry.rng_seed}) on this host in {store.path}"
        )
        baseline = store.latest_matching(bench_entry)
        if baseline is None:
            msg = (
                f"no baseline recorded for series {series!r} {where}; "
                "run with --record to start the trajectory"
            )
            payload.setdefault("missing_baselines", []).append(msg)
            if not args.json:
                print(msg)
            return args.strict
        report = compare(
            bench_entry, baseline, tolerance=args.tolerance, metric=args.metric
        )
        payload[report_key] = report.to_dict()
        if not args.json:
            print(report.formatted())
        gate_failed = not report.ok
        for row in bench_entry.rows:
            if baseline.row(row.engine) is not None:
                continue
            msg = (
                f"no baseline recorded for series {series!r} engine "
                f"{row.engine!r} {where}; run with --record to add it"
            )
            payload.setdefault("missing_baselines", []).append(msg)
            if not args.json:
                print(msg)
            gate_failed = gate_failed or args.strict
        return gate_failed
    if not args.json:
        print(entry.formatted())
    exact_engines = {
        row["name"] for row in describe_engines() if row["exact"]
    }
    parity_failures = [
        row.engine
        for row in entry.rows
        if row.engine in exact_engines and not row.scores_identical_to_reference
    ]
    payload["parity_failures"] = parity_failures
    for name in parity_failures:
        failed = True
        if not args.json:
            print(f"FAIL: {name} scores diverge from the scalar reference")

    store = BaselineStore(args.baseline)
    if not args.no_compare:
        failed = gate(entry, store, "comparison") or failed
    if args.record:
        store.append(entry)
        if not args.json:
            print(f"recorded entry in {store.path}")

    if args.service:
        service_entry = run_service_bench(
            xdrop=args.xdrop,
            seed=args.seed,
            quick=args.quick,
            label=args.label,
            workers=args.service_workers,
            process_workers=args.process_workers,
            prefilter=args.prefilter,
            autotune=args.autotune,
            autotune_profile=args.autotune_profile,
            autotune_waves=args.autotune_waves,
        )
        payload["service"] = service_entry.to_dict()
        if not args.json:
            print(service_entry.formatted())
        if args.autotune == "on" and not args.quick:
            autotune_extra = service_entry.extra.get("autotune", {})
            payload["autotune_beats_fixed"] = autotune_extra.get(
                "beats_fixed", False
            )
            if not payload["autotune_beats_fixed"]:
                failed = True
                if not args.json:
                    print(
                        "FAIL: service_autotune did not beat every "
                        "fixed-knob service row"
                    )
        service_store = BaselineStore(args.service_baseline)
        if not args.no_compare:
            failed = gate(service_entry, service_store, "service_comparison") or failed
        if args.record:
            service_store.append(service_entry)
            if not args.json:
                print(f"recorded entry in {service_store.path}")

    payload["ok"] = not failed
    if args.artifact:
        with open(args.artifact, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    if args.json:
        print(json.dumps(payload, indent=2))
    return 1 if failed else 0


def main_bench(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-bench``: paper tables/figures, or ``perf``.

    ``repro-bench perf`` dispatches to the benchmark subsystem
    (:mod:`repro.bench`): trajectory measurement, baseline comparison and
    recording.  Every other positional regenerates a paper table/figure
    from the benchmark harness.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "perf":
        return main_bench_perf(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Regenerate one of the paper's tables/figures, or run "
            "'repro-bench perf' for the trajectory benchmark subsystem."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "fig12",
            "fig13",
            "fig2",
            "accuracy",
            "ablation_threads",
            "ablation_memory",
            "ablation_reversal",
            "ablation_reduction",
            "ablation_loadbalance",
            "engines",
        ],
        help="experiment id (see DESIGN.md experiment index)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="work multiplier for the measured sample (1.0 = default laptop scale)",
    )
    parser.add_argument(
        "--engine",
        action="append",
        choices=list_engines(),
        default=None,
        help="restrict the 'engines' experiment to these engines (repeatable)",
    )
    add_config_arguments(parser, exclude=("engine",))
    _add_engine_discovery(parser)
    args = parser.parse_args(argv)
    config = config_from_args(args, exclude=("engine",))
    if config.replace(engine=AlignConfig().engine) != AlignConfig():
        # The harness pins each experiment's parameters to the paper's
        # setup; the shared config only selects engines for the sweep.
        print(
            "warning: repro-bench applies the alignment configuration only "
            "as an engine restriction for the 'engines' experiment; other "
            "config fields (scoring/xdrop/...) are fixed by each experiment",
            file=sys.stderr,
        )

    # The benchmark harness lives next to the repository (benchmarks/), not
    # inside the installed package, so resolve it relative to the current
    # working directory (run `repro-bench` from the repository root).
    import os

    root = os.getcwd()
    if not os.path.exists(os.path.join(root, "benchmarks", "harness.py")):
        parser.error(
            "repro-bench must be run from the repository root "
            "(the directory containing benchmarks/harness.py)"
        )
    if root not in sys.path:
        sys.path.insert(0, root)
    from benchmarks import harness  # deferred: benchmarks ship next to the repo

    engines = args.engine
    if engines is None and args.config:
        # A config file names one engine; restrict the sweep to it.
        engines = [config.engine]
    if args.experiment == "engines" and engines:
        table = harness.run_engines(scale=args.scale, engines=engines)
    else:
        table = harness.run_experiment(args.experiment, scale=args.scale)
    print(table.formatted())
    return 0


# --------------------------------------------------------------------------- #
# repro-service
# --------------------------------------------------------------------------- #
# serve's synthetic workload historically seeded mid-read; submit's literal
# and FASTA pairs extended from the origin.  Per-subcommand defaults keep
# both behaviours while letting --seed-policy / --config override either.
_SERVE_DEFAULTS = AlignConfig(engine="batched", seed_policy="middle")
_SUBMIT_DEFAULTS = AlignConfig(engine="batched", seed_policy="start")


def _service_config_from_args(
    args: argparse.Namespace, defaults: AlignConfig
) -> AlignConfig:
    """Resolve the service subcommand's config from the shared group."""
    # --workers is resolved by hand: the historic repro-service spelling
    # meant worker *shards*, which the shared group now calls --num-workers.
    config = config_from_args(args, defaults, exclude=("workers",))
    if args.workers is not None:
        if args.num_workers is None:
            warn_once(
                "cli-service-workers",
                "repro-service --workers is interpreted as service worker "
                "shards for backwards compatibility; use --num-workers for "
                "shards (or the config file's 'workers' field for engine "
                "worker processes)",
            )
            config = config.replace(
                service=dataclasses.replace(
                    config.service, num_workers=args.workers
                ),
            )
        else:
            config = config.replace(workers=args.workers)
    return config


def _add_service_arguments(
    parser: argparse.ArgumentParser, defaults: AlignConfig
) -> None:
    add_config_arguments(parser, defaults=defaults, include_service=True)
    parser.add_argument("--json", action="store_true")


def main_service(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-service``."""
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Asynchronous alignment service (queue -> batcher -> cache -> workers).",
    )
    _add_engine_discovery(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve",
        help="run a workload through the live service and report stats",
        description=(
            "Submit a synthetic pair set (or two FASTA files) to the service "
            "one job at a time, let the batcher/cache/worker stack align it, "
            "and print the service statistics."
        ),
    )
    serve.add_argument("--pairs", type=int, default=200, help="synthetic pairs")
    serve.add_argument("--min-length", type=int, default=500)
    serve.add_argument("--max-length", type=int, default=1500)
    serve.add_argument("--error-rate", type=float, default=0.15)
    serve.add_argument("--seed", type=int, default=2020)
    serve.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="submission rounds of the same workload (>=2 exercises the cache)",
    )
    serve.add_argument(
        "--query-fasta", type=str, default=None, help="serve records of this FASTA"
    )
    serve.add_argument(
        "--target-fasta", type=str, default=None, help="against records of this FASTA"
    )
    serve.add_argument(
        "--inline",
        action="store_true",
        help="process on drain instead of a background thread (deterministic)",
    )
    serve.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        help="export metrics-registry snapshots to this file",
    )
    serve.add_argument(
        "--metrics-format",
        choices=("jsonl", "prom"),
        default="jsonl",
        help="snapshot format: JSON lines (append) or Prometheus text (rewrite)",
    )
    serve.add_argument(
        "--metrics-interval",
        type=float,
        default=1.0,
        help="seconds between interval exports (background mode)",
    )
    serve.add_argument(
        "--trace",
        action="store_true",
        help="enable span tracing and the flight recorder for this run",
    )
    serve.add_argument(
        "--flight-recorder-out",
        type=str,
        default=None,
        help="write a flight-recorder dump to this file after the run "
        "(implies --trace)",
    )
    serve.add_argument(
        "--listen",
        type=str,
        default=None,
        metavar="HOST:PORT",
        help=(
            "run as a network front door instead of a local workload: bind "
            "this address (port 0 picks a free port), print the bound "
            "address as a JSON line, and serve until SIGINT/SIGTERM"
        ),
    )
    _add_service_arguments(serve, _SERVE_DEFAULTS)

    submit = sub.add_parser(
        "submit",
        help="align ad-hoc pairs through a short-lived service",
        description=(
            "Align literal sequences (--query/--target) or paired FASTA "
            "records through a one-shot service and print the scores."
        ),
    )
    submit.add_argument("--query", type=str, default=None, help="literal query sequence")
    submit.add_argument("--target", type=str, default=None, help="literal target sequence")
    submit.add_argument("--query-fasta", type=str, default=None)
    submit.add_argument("--target-fasta", type=str, default=None)
    submit.add_argument(
        "--connect",
        type=str,
        default=None,
        metavar="HOST:PORT",
        help=(
            "submit to a running 'repro-service serve --listen' server "
            "instead of a one-shot in-process service"
        ),
    )
    _add_service_arguments(submit, _SUBMIT_DEFAULTS)

    args = parser.parse_args(argv)
    if args.command == "serve":
        return _run_serve(args, parser)
    return _run_submit(args, parser)


def _fasta_jobs(
    parser, query_fasta: str, target_fasta: str, seed_policy: str = "start"
) -> list[AlignmentJob]:
    queries = [r.sequence for r in read_fasta(query_fasta)]
    targets = [r.sequence for r in read_fasta(target_fasta)]
    if len(queries) != len(targets):
        parser.error("query and target FASTA files must have the same record count")
    return [
        AlignmentJob(
            query=encode(q),
            target=encode(t),
            seed=default_seed(seed_policy, len(q), len(t)),
            pair_id=i,
        )
        for i, (q, t) in enumerate(zip(queries, targets))
    ]


def _parse_endpoint(value: str, flag: str, parser) -> tuple[str, int]:
    """Split a ``HOST:PORT`` CLI value, tolerating a bare port."""
    host, _, port_text = value.rpartition(":")
    if not host:
        host, port_text = "127.0.0.1", value
    try:
        port = int(port_text)
    except ValueError:
        parser.error(f"{flag} expects HOST:PORT, got {value!r}")
    if not (0 <= port <= 65535):
        parser.error(f"{flag} port out of range: {port}")
    return host, port


def _serve_network(args, parser, config) -> int:
    """``repro-service serve --listen``: run the distributed front door."""
    import os

    from . import obs as obs_mod
    from .distrib import AlignmentServer

    host, port = _parse_endpoint(args.listen, "--listen", parser)
    server = AlignmentServer(config=config, host=host, port=port)
    server.start()
    ready = {
        "listening": {"host": server.host, "port": server.port},
        "pid": os.getpid(),
        "engine": server.service.engine.name,
        "transport": server.service.transport,
    }
    print(json.dumps(ready), flush=True)
    # Blocks until SIGINT/SIGTERM or a client 'shutdown' op, then drains
    # the queue, flushes durable state and joins the workers.
    server.serve_forever(install_signal_handlers=True)
    stats = server.service.stats()
    if args.flight_recorder_out and server.service.obs.recorder is not None:
        server.service.obs.recorder.dump(
            path=args.flight_recorder_out,
            reason="serve_exit",
            provenance=obs_mod.build_provenance(config=config, seed=args.seed),
        )
    payload = {
        "command": "serve",
        "mode": "listen",
        "engine": server.service.engine.name,
        **stats.to_dict(),
    }
    if args.flight_recorder_out:
        payload["flight_recorder_out"] = args.flight_recorder_out
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key:>20s}: {value}")
    return 0


def _run_serve(args, parser) -> int:
    from . import obs as obs_mod
    from .distrib import GracefulShutdown
    from .perf.timers import Timer
    from .service import AlignmentService

    config = _service_config_from_args(args, _SERVE_DEFAULTS)
    if args.trace or args.flight_recorder_out:
        obs_mod.configure(tracing=True, flight_recorder=True)
    if args.listen:
        return _serve_network(args, parser, config)
    if args.query_fasta and args.target_fasta:
        jobs = _fasta_jobs(
            parser, args.query_fasta, args.target_fasta, config.seed_policy
        )
    else:
        jobs = generate_pair_set(
            PairSetSpec(
                num_pairs=args.pairs,
                min_length=args.min_length,
                max_length=args.max_length,
                pairwise_error_rate=args.error_rate,
                seed_placement=config.seed_policy,
                rng_seed=args.seed,
            )
        )

    service = AlignmentService(config=config)
    exporter = None
    if args.metrics_out:
        recorder = service.obs.recorder
        exporter = obs_mod.IntervalExporter(
            service.obs.registry,
            args.metrics_out,
            fmt=args.metrics_format,
            interval=args.metrics_interval,
            provenance=obs_mod.build_provenance(config=config, seed=args.seed),
            on_export=recorder.tick if recorder is not None else None,
        )
    if not args.inline:
        service.start()
        if exporter is not None:
            exporter.start()
    timer = Timer()
    interrupted = False
    # SIGINT/SIGTERM between rounds stops submitting and falls through to
    # the normal drain/flush/shutdown path instead of dying mid-flight.
    with timer, GracefulShutdown() as stop:
        rounds = []
        for _ in range(max(1, args.repeat)):
            if stop.requested.is_set():
                interrupted = True
                break
            tickets = service.submit_many(jobs)
            service.drain()
            rounds.append([t.result(timeout=60.0).score for t in tickets])
            if exporter is not None:
                exporter.export_now()
    stats = service.stats()
    if exporter is not None:
        exporter.stop(final_export=True)
    if args.flight_recorder_out and service.obs.recorder is not None:
        service.obs.recorder.dump(
            path=args.flight_recorder_out,
            reason="serve_exit",
            provenance=obs_mod.build_provenance(config=config, seed=args.seed),
        )
    service.shutdown()

    payload = {
        "command": "serve",
        "engine": service.engine.name,
        "pairs": len(jobs),
        "rounds": len(rounds),
        "wall_seconds": timer.elapsed,
        "mean_score": float(np.mean(rounds[0])) if rounds and rounds[0] else 0.0,
        "rounds_identical": all(r == rounds[0] for r in rounds),
        "interrupted": interrupted,
        **stats.to_dict(),
    }
    if exporter is not None:
        payload["metrics_out"] = args.metrics_out
        payload["metrics_exports"] = exporter.exports
    if args.flight_recorder_out:
        payload["flight_recorder_out"] = args.flight_recorder_out
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key:>20s}: {value}")
    return 0


def _run_submit(args, parser) -> int:
    from .service import AlignmentService

    config = _service_config_from_args(args, _SUBMIT_DEFAULTS)
    if args.query and args.target:
        jobs = [
            AlignmentJob(
                query=encode(args.query),
                target=encode(args.target),
                seed=default_seed(
                    config.seed_policy, len(args.query), len(args.target)
                ),
            )
        ]
    elif args.query_fasta and args.target_fasta:
        jobs = _fasta_jobs(
            parser, args.query_fasta, args.target_fasta, config.seed_policy
        )
    else:
        parser.error("submit needs --query/--target or --query-fasta/--target-fasta")

    if args.connect:
        from .distrib import ServiceClient

        host, port = _parse_endpoint(args.connect, "--connect", parser)
        with ServiceClient(host, port) as client:
            identity = client.ping()
            results, cached = client.submit_detailed(jobs)
        engine_name = identity.get("engine", "remote")
    else:
        cached = None
        with AlignmentService(config=config) as service:
            tickets = service.submit_many(jobs)
            service.drain()
            results = [t.result(timeout=60.0) for t in tickets]
        engine_name = service.engine.name

    payload = {
        "command": "submit",
        "engine": engine_name,
        "pairs": len(jobs),
        "scores": [r.score for r in results],
        "query_extents": [[r.query_begin, r.query_end] for r in results],
        "target_extents": [[r.target_begin, r.target_end] for r in results],
    }
    if args.connect:
        payload["connected"] = args.connect
        payload["cached"] = cached
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key:>20s}: {value}")
    return 0


# --------------------------------------------------------------------------- #
# repro-fuzz
# --------------------------------------------------------------------------- #
_FUZZ_DEFAULTS = AlignConfig(engine="batched", xdrop=20)


def main_fuzz(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-fuzz``: bounded differential conformance runs.

    Exit status is 0 when every comparison was bit-identical (exact
    engines) / deterministic (inexact ones), 1 when any conformance
    violation was found — the shrunk minimal failing pair, its workload
    seed and the JSON config are printed (and written to ``--artifact``
    when given) so the failure replays from its printed form.
    """
    from .testing import run_fuzz
    from .workloads import describe_profiles, list_profiles

    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description=(
            "Differential conformance fuzzing: generated scenario workloads "
            "replayed through every registered engine and the alignment "
            "service, checked bit-for-bit against the scalar reference."
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="root fuzz seed")
    parser.add_argument(
        "--count",
        type=int,
        default=None,
        help="stop after checking at least this many jobs (default 500 "
        "when --time is not given)",
    )
    parser.add_argument(
        "--time",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop after this wall-clock budget",
    )
    parser.add_argument(
        "--batch", type=int, default=25, help="jobs generated per fuzz round"
    )
    parser.add_argument("--min-length", type=int, default=40)
    parser.add_argument("--max-length", type=int, default=160)
    parser.add_argument(
        "--profiles",
        action="append",
        choices=list_profiles(),
        default=None,
        help="restrict to these workload profiles (repeatable; default all)",
    )
    parser.add_argument(
        "--engines",
        action="append",
        choices=list_engines(),
        default=None,
        help="engines under test (repeatable; default every registered engine)",
    )
    parser.add_argument(
        "--no-service",
        action="store_true",
        help="skip the AlignmentService conformance path",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failures without minimising them",
    )
    parser.add_argument(
        "--artifact",
        type=str,
        default=None,
        metavar="JSON",
        help="write the full fuzz report (incl. shrunk failures) to this file",
    )
    parser.add_argument(
        "--list-profiles",
        action="store_true",
        help="list registered workload profiles and exit",
    )
    parser.add_argument("--quiet", action="store_true", help="no per-round progress")
    parser.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    # The config group's --engine selects the *service/config* engine; the
    # engines under differential test are the repeatable --engines above.
    add_config_arguments(parser, defaults=_FUZZ_DEFAULTS)
    _add_engine_discovery(parser)
    args = parser.parse_args(argv)

    if args.list_profiles:
        for row in describe_profiles():
            print(f"{row['name']:>16s}  {row['summary']}")
        return 0

    config = config_from_args(args, _FUZZ_DEFAULTS)
    progress = None
    if not args.quiet and not args.json:
        progress = lambda line: print(line, file=sys.stderr)  # noqa: E731

    report = run_fuzz(
        config,
        seed=args.seed,
        count=args.count,
        time_budget=args.time,
        batch_size=args.batch,
        min_length=args.min_length,
        max_length=args.max_length,
        profiles=args.profiles,
        engines=args.engines,
        include_service=not args.no_service,
        shrink=not args.no_shrink,
        progress=progress,
    )

    if args.artifact:
        with open(args.artifact, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def main_obs(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-obs``: telemetry demo, reader, and overhead gate.

    ``demo`` runs a small mixed workload through the alignment service with
    tracing and the flight recorder enabled, then prints the resulting
    metrics snapshot (Prometheus text or JSON).  ``read`` parses a
    JSON-lines metrics file written by ``repro-service serve --metrics-out``
    back into snapshots and summarises the series.  ``overhead`` times the
    quick engine benchmark with observability disabled and again with full
    tracing + flight recorder, printing the relative cost against the
    subsystem's < 5 % budget (``--check`` turns the budget into the exit
    status).
    """
    from . import obs as obs_mod

    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect and exercise the unified telemetry subsystem.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser(
        "demo",
        help="run a small traced workload and print its metrics snapshot",
    )
    demo.add_argument("--pairs", type=int, default=48, help="workload size")
    demo.add_argument("--seed", type=int, default=2020, help="workload RNG seed")
    demo.add_argument(
        "--format",
        choices=("prom", "json"),
        default="prom",
        help="snapshot rendering (Prometheus text or JSON)",
    )
    demo.add_argument(
        "--out",
        type=str,
        default=None,
        metavar="FILE",
        help="also write the rendered snapshot to this file",
    )
    demo.add_argument(
        "--flight-recorder-out",
        type=str,
        default=None,
        metavar="JSON",
        help="dump the flight recorder ring to this file on exit",
    )

    read = sub.add_parser(
        "read",
        help="summarise a JSON-lines metrics file (repro-service --metrics-out)",
    )
    read.add_argument("path", type=str, help="JSON-lines metrics file")
    read.add_argument(
        "--series",
        action="append",
        default=None,
        metavar="NAME",
        help="only show these series (repeatable; default: all)",
    )
    read.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    overhead = sub.add_parser(
        "overhead",
        help="measure full-observability cost vs a disabled run (< 5 %% budget)",
    )
    overhead.add_argument("--pairs", type=int, default=64, help="workload size")
    overhead.add_argument("--seed", type=int, default=2020, help="workload RNG seed")
    overhead.add_argument(
        "--repeats", type=int, default=3, help="runs per mode (best-of)"
    )
    overhead.add_argument(
        "--budget",
        type=float,
        default=0.05,
        help="relative overhead budget (default 0.05 = 5%%)",
    )
    overhead.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when the measured overhead exceeds the budget",
    )

    args = parser.parse_args(argv)
    if args.command == "demo":
        return _run_obs_demo(args, obs_mod)
    if args.command == "read":
        return _run_obs_read(args, obs_mod)
    return _run_obs_overhead(args, obs_mod)


def _obs_demo_workload(pairs: int, seed: int) -> "list[AlignmentJob]":
    return generate_pair_set(
        PairSetSpec(
            num_pairs=pairs,
            min_length=200,
            max_length=600,
            pairwise_error_rate=0.15,
            unrelated_fraction=0.1,
            seed_placement="middle",
            rng_seed=seed,
        )
    )


def _run_obs_demo(args, obs_mod) -> int:
    from .api import ServiceConfig
    from .service import AlignmentService

    obs_mod.configure(tracing=True, flight_recorder=True)
    try:
        jobs = _obs_demo_workload(args.pairs, args.seed)
        config = AlignConfig(
            engine="batched",
            service=ServiceConfig(cache_capacity=4 * len(jobs)),
        )
        service = AlignmentService(config=config)
        try:
            tickets = service.submit_many(jobs)
            service.drain()
            for ticket in tickets:
                ticket.result(timeout=120.0)
            # A resubmission round so the demo snapshot shows cache hits.
            tickets = service.submit_many(jobs)
            service.drain()
            for ticket in tickets:
                ticket.result(timeout=120.0)
            snapshot = service.metrics_snapshot()
        finally:
            service.shutdown()
        if args.format == "prom":
            rendered = obs_mod.render_prometheus(snapshot)
        else:
            rendered = json.dumps(snapshot.to_dict(), indent=2, sort_keys=True) + "\n"
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(rendered)
        print(rendered, end="")
        recorder = obs_mod.get_observability().recorder
        if recorder is not None:
            print(
                f"# flight recorder: {recorder.span_count} spans, "
                f"{recorder.event_count} events",
                file=sys.stderr,
            )
            if args.flight_recorder_out:
                recorder.dump(
                    path=args.flight_recorder_out,
                    reason="obs_demo",
                    provenance=obs_mod.build_provenance(
                        config=config, seed=args.seed
                    ),
                )
                print(
                    f"# flight recorder dump: {args.flight_recorder_out}",
                    file=sys.stderr,
                )
        return 0
    finally:
        obs_mod.reset()


def _run_obs_read(args, obs_mod) -> int:
    try:
        snapshots = obs_mod.read_jsonl(args.path)
    except OSError as error:
        print(f"error: cannot read {args.path}: {error}", file=sys.stderr)
        return 1
    if not snapshots:
        print(f"{args.path}: no snapshots")
        return 0
    last = snapshots[-1]
    wanted = set(args.series) if args.series else None
    samples = [
        s
        for s in sorted(
            last.series, key=lambda s: (s.name, sorted(s.labels.items()))
        )
        if wanted is None or s.name in wanted
    ]
    if args.json:
        payload = {
            "path": args.path,
            "snapshots": len(snapshots),
            "series": [s.to_dict() for s in samples],
            "provenance": last.provenance,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{args.path}: {len(snapshots)} snapshot(s); latest:")
    for sample in samples:
        labels = ",".join(f"{k}={v}" for k, v in sorted(sample.labels.items()))
        suffix = f"{{{labels}}}" if labels else ""
        if sample.kind == "histogram" and sample.histogram is not None:
            print(
                f"  {sample.name}{suffix}  count={sample.histogram['count']} "
                f"sum={sample.histogram['sum']:.6g}"
            )
        else:
            print(f"  {sample.name}{suffix}  {sample.value:.6g}")
    if last.provenance:
        sha = last.provenance.get("git_sha", "")
        print(f"  (provenance: git_sha={sha or 'unknown'})")
    return 0


def _run_obs_overhead(args, obs_mod) -> int:
    from .bench.runner import engine_bench_jobs
    from .engine import get_engine

    jobs = engine_bench_jobs(args.pairs, args.seed)

    def best_seconds() -> float:
        engine = get_engine("batched")
        best = None
        for _ in range(max(1, args.repeats)):
            batch = engine.align_batch(jobs)
            if best is None or batch.elapsed_seconds < best:
                best = batch.elapsed_seconds
        return float(best)

    obs_mod.reset()
    engine = get_engine("batched")
    engine.align_batch(jobs)  # warm-up outside both measured modes
    baseline = best_seconds()
    obs_mod.configure(tracing=True, flight_recorder=True)
    try:
        enabled = best_seconds()
    finally:
        obs_mod.reset()
    overhead = (enabled - baseline) / baseline if baseline > 0 else 0.0
    print(
        f"disabled: {baseline:.4f}s  enabled: {enabled:.4f}s  "
        f"overhead: {100 * overhead:+.2f}%  (budget {100 * args.budget:.1f}%)"
    )
    if args.check and overhead > args.budget:
        print("overhead budget exceeded", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main_align())
