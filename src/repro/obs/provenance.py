"""Run provenance: config hash, seed, git SHA stamped onto every export.

Follows the benchmark-reproducibility checklist (SNIPPETS.md snippet 2):
an exported series is only reproducible when it records what produced it —
the configuration (hashed canonically), the workload seed, and the harness
git SHA.  Everything here degrades gracefully: outside a git checkout the
SHA is ``None``, never an exception.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import sys
from functools import lru_cache
from typing import Any, Mapping

__all__ = ["git_sha", "config_hash", "build_provenance"]


@lru_cache(maxsize=1)
def git_sha() -> str | None:
    """The repository HEAD SHA, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _canonical(obj: Any) -> Any:
    """Reduce *obj* to JSON-serialisable canonical form for hashing."""
    if hasattr(obj, "to_dict"):
        return obj.to_dict()
    if isinstance(obj, Mapping):
        return {str(k): _canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    return obj


def config_hash(config: Any) -> str | None:
    """Short stable digest of a configuration object.

    Accepts anything with ``to_dict()`` (e.g. :class:`repro.api.AlignConfig`),
    a plain mapping, or ``None`` (returns ``None``).
    """
    if config is None:
        return None
    payload = json.dumps(_canonical(config), sort_keys=True, default=str)
    return hashlib.sha1(payload.encode()).hexdigest()[:12]


def build_provenance(
    config: Any = None,
    seed: int | None = None,
    **extra: Any,
) -> dict[str, Any]:
    """The provenance dict stamped onto snapshots and flight-recorder dumps."""
    import numpy as np

    payload: dict[str, Any] = {
        "git_sha": git_sha(),
        "config_hash": config_hash(config),
        "seed": seed,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
    }
    payload.update(extra)
    return payload
