"""Distributed serving tier: process workers, durable state, network front door.

This package extends the in-process serving layer (``repro.service``) across
three boundaries the coordinator previously never crossed:

* **Process boundary** — :class:`ProcessWorkerPool` spawns ``multiprocessing``
  workers and feeds them whole packed job blocks through shared memory
  (``repro.distrib.shm``), so the GIL no longer serialises engine dispatch.
  Results come back as packed ``int64`` tables; per-worker metric deltas and
  flight-recorder dumps ride along and are merged at the coordinator.
* **Restart boundary** — :class:`DurableStore` keeps the submission queue and
  the result cache in a WAL-mode SQLite file.  Jobs that were in flight when
  the process died are redelivered on the next start; completed results
  survive restarts and are content-addressed with the exact cache key the
  in-memory :class:`~repro.service.ResultCache` uses.
* **Network boundary** — :class:`AlignmentServer` / :class:`ServiceClient`
  speak a length-prefixed JSON protocol (``repro.distrib.wire``) so a client
  process can submit batches to a running ``repro-service serve --listen``
  server and read merged metrics back.

Everything stays bit-identical to the in-process path: the conformance
harness replays all workload profiles through the networked multi-process
tier and compares against the single-process oracle.
"""

from .client import ServiceClient
from .pool import ProcessWorkerPool
from .server import AlignmentServer, GracefulShutdown
from .store import DurableStore

__all__ = [
    "AlignmentServer",
    "DurableStore",
    "GracefulShutdown",
    "ProcessWorkerPool",
    "ServiceClient",
]
