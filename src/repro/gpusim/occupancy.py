"""Occupancy calculator: how many blocks/warps fit on one SM.

The LOGAN paper's central memory-placement decision (Section IV-B) is driven
by occupancy: if every block reserved 64 KiB of shared memory for its
anti-diagonals, only one block would fit per SM and inter-sequence
parallelism would collapse; storing anti-diagonals in HBM removes that
constraint and lets the thread- and block-count limits dominate.  This module
computes the resident-block count for a launch configuration so both the
paper's choice and its ablation (``bench_ablation_memory.py``) can be
evaluated quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, ResourceModelError
from .device import DeviceSpec

__all__ = ["OccupancyResult", "occupancy"]


@dataclass(frozen=True)
class OccupancyResult:
    """Resident blocks/warps per SM for one launch configuration.

    Attributes
    ----------
    blocks_per_sm:
        Blocks concurrently resident on one SM.
    warps_per_sm:
        Resident warps per SM (scheduled threads, not necessarily active).
    active_warps_per_sm:
        Resident warps weighted by the fraction of threads doing useful
        work (callers pass the average active-thread count).
    limiting_factor:
        Which resource capped the count: ``"threads"``, ``"blocks"``,
        ``"shared_memory"`` or ``"registers"``.
    occupancy_fraction:
        ``warps_per_sm`` divided by the device's maximum resident warps.
    """

    blocks_per_sm: int
    warps_per_sm: int
    active_warps_per_sm: float
    limiting_factor: str
    occupancy_fraction: float


def occupancy(
    device: DeviceSpec,
    threads_per_block: int,
    shared_mem_per_block_bytes: int = 0,
    registers_per_thread: int = 32,
    active_threads_per_block: float | None = None,
) -> OccupancyResult:
    """Compute the occupancy of a launch configuration on *device*.

    Parameters
    ----------
    device:
        Device specification.
    threads_per_block:
        Threads scheduled per block (LOGAN schedules these proportionally
        to X rather than always using 1024).
    shared_mem_per_block_bytes:
        Static + dynamic shared memory reserved per block.  LOGAN reserves
        only the small reduction scratch (``threads * 4`` bytes); the
        ablation configuration reserves the full anti-diagonal buffers.
    registers_per_thread:
        Register pressure per thread (the LOGAN kernel is light; 32 is a
        conservative default).
    active_threads_per_block:
        Average number of threads doing useful work per block (the
        anti-diagonal width, typically ``< threads_per_block`` for small X).
        Defaults to all scheduled threads.

    Raises
    ------
    ResourceModelError
        If the configuration cannot run at all (more threads per block than
        the hardware maximum, or more shared memory than one block may use).
    """
    if threads_per_block <= 0:
        raise ConfigurationError(
            f"threads_per_block must be positive, got {threads_per_block}"
        )
    if shared_mem_per_block_bytes < 0 or registers_per_thread < 0:
        raise ConfigurationError("resource requests must be non-negative")
    if threads_per_block > device.max_threads_per_block:
        raise ResourceModelError(
            f"{threads_per_block} threads per block exceeds the device limit "
            f"of {device.max_threads_per_block}"
        )
    if shared_mem_per_block_bytes > device.shared_mem_per_block_max_bytes:
        raise ResourceModelError(
            f"{shared_mem_per_block_bytes} bytes of shared memory per block "
            f"exceeds the device limit of "
            f"{device.shared_mem_per_block_max_bytes} bytes"
        )

    limits: dict[str, float] = {}
    limits["threads"] = device.max_threads_per_sm // threads_per_block
    limits["blocks"] = device.max_blocks_per_sm
    if shared_mem_per_block_bytes > 0:
        limits["shared_memory"] = (
            device.shared_mem_per_sm_bytes // shared_mem_per_block_bytes
        )
    if registers_per_thread > 0:
        limits["registers"] = device.registers_per_sm // (
            registers_per_thread * threads_per_block
        )

    limiting_factor = min(limits, key=lambda k: limits[k])
    blocks_per_sm = int(limits[limiting_factor])
    if blocks_per_sm <= 0:
        raise ResourceModelError(
            f"launch configuration ({threads_per_block} threads, "
            f"{shared_mem_per_block_bytes} B shared memory, "
            f"{registers_per_thread} regs/thread) cannot fit a single block "
            f"on an SM of {device.name}"
        )

    warp_size = device.warp_size
    warps_per_block = -(-threads_per_block // warp_size)  # ceil division
    warps_per_sm = blocks_per_sm * warps_per_block

    if active_threads_per_block is None:
        active_threads_per_block = float(threads_per_block)
    active_threads_per_block = min(
        float(active_threads_per_block), float(threads_per_block)
    )
    active_warps_per_block = max(1.0, active_threads_per_block / warp_size)
    active_warps_per_sm = blocks_per_sm * min(
        float(warps_per_block), active_warps_per_block
    )

    max_resident_warps = device.max_threads_per_sm // warp_size
    return OccupancyResult(
        blocks_per_sm=blocks_per_sm,
        warps_per_sm=int(warps_per_sm),
        active_warps_per_sm=float(active_warps_per_sm),
        limiting_factor=limiting_factor,
        occupancy_fraction=min(1.0, warps_per_sm / max_resident_warps),
    )
