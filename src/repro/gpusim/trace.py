"""Work traces: the interface between the alignment kernel and the GPU model.

The vectorised X-drop kernel records, for every extension it performs, the
width of every anti-diagonal it computed (the ``band_widths`` array of an
:class:`~repro.core.result.ExtensionResult`).  That trace is *exact* — it is
the work the real CUDA kernel would perform for the same input and X — and
it is all the GPU execution model needs:

* instruction counts follow from the widths, the scheduled thread count and
  the per-cell operation count;
* memory traffic follows from the widths and the sequence lengths;
* the critical path follows from the number of anti-diagonals per block.

``BlockWorkTrace`` describes one GPU block (one extension).  ``KernelWorkload``
is a collection of block traces plus an optional replication factor, so a
workload measured on a laptop-scale sample can stand in for the paper's
100 K-pair batch (every sampled block counted ``replication`` times).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..core.result import ExtensionResult
from ..errors import ConfigurationError

__all__ = ["BlockWorkTrace", "KernelWorkload"]


@dataclass
class BlockWorkTrace:
    """Per-block (per-extension) work description.

    Attributes
    ----------
    band_widths:
        Width of every anti-diagonal the block computes, in cells.
    query_length, target_length:
        Lengths of the two sequences the block reads (drives compulsory HBM
        traffic and the HBM footprint of the anti-diagonal buffers).
    """

    band_widths: np.ndarray
    query_length: int
    target_length: int

    def __post_init__(self) -> None:
        self.band_widths = np.asarray(self.band_widths, dtype=np.int64)
        if self.band_widths.ndim != 1:
            raise ConfigurationError("band_widths must be one-dimensional")
        if self.query_length < 0 or self.target_length < 0:
            raise ConfigurationError("sequence lengths must be non-negative")

    @classmethod
    def from_extension(
        cls, result: ExtensionResult, query_length: int, target_length: int
    ) -> "BlockWorkTrace":
        """Build a trace from an :class:`ExtensionResult` produced with ``trace=True``."""
        if result.band_widths is None:
            raise ConfigurationError(
                "ExtensionResult has no band_widths; run the kernel with trace=True"
            )
        return cls(
            band_widths=result.band_widths,
            query_length=int(query_length),
            target_length=int(target_length),
        )

    @property
    def cells(self) -> int:
        """Total DP cells computed by this block."""
        return int(self.band_widths.sum())

    @property
    def anti_diagonals(self) -> int:
        """Number of anti-diagonal iterations (the block's serial critical path)."""
        return int(self.band_widths.size)

    @property
    def max_band_width(self) -> int:
        """Widest anti-diagonal of this block."""
        return int(self.band_widths.max()) if self.band_widths.size else 0

    @property
    def sequence_bytes(self) -> int:
        """Bytes of sequence data this block must read at least once."""
        return int(self.query_length + self.target_length)

    def buffer_bytes(self, value_bytes: int = 4) -> int:
        """HBM footprint of the three anti-diagonal buffers for this block.

        LOGAN sizes the buffers for the longest possible anti-diagonal of
        the extension (the shorter sequence length plus one).
        """
        longest = min(self.query_length, self.target_length) + 1
        return 3 * longest * value_bytes


@dataclass
class KernelWorkload:
    """A batch of block traces to be launched as one GPU kernel.

    Attributes
    ----------
    blocks:
        The sampled block traces.
    replication:
        How many real blocks each sampled trace represents.  ``1.0`` means
        the workload is exactly the list of blocks; ``500.0`` means the
        kernel model should account for ``500 * len(blocks)`` blocks with
        the same per-block work distribution.
    """

    blocks: list[BlockWorkTrace] = field(default_factory=list)
    replication: float = 1.0

    def __post_init__(self) -> None:
        if self.replication <= 0:
            raise ConfigurationError("replication must be positive")

    def add(self, trace: BlockWorkTrace) -> None:
        """Append one block trace."""
        self.blocks.append(trace)

    def extend(self, traces: Iterable[BlockWorkTrace]) -> None:
        """Append many block traces."""
        self.blocks.extend(traces)

    @property
    def sampled_blocks(self) -> int:
        """Number of sampled (actually traced) blocks."""
        return len(self.blocks)

    @property
    def total_blocks(self) -> int:
        """Number of blocks the workload represents after replication."""
        return int(round(len(self.blocks) * self.replication))

    @property
    def total_cells(self) -> int:
        """DP cells across the represented workload."""
        return int(round(sum(b.cells for b in self.blocks) * self.replication))

    @property
    def total_anti_diagonals(self) -> int:
        """Anti-diagonal iterations across the represented workload."""
        return int(
            round(sum(b.anti_diagonals for b in self.blocks) * self.replication)
        )

    @property
    def total_sequence_bytes(self) -> int:
        """Sequence bytes across the represented workload."""
        return int(
            round(sum(b.sequence_bytes for b in self.blocks) * self.replication)
        )

    @property
    def max_anti_diagonals(self) -> int:
        """Longest per-block critical path in the workload."""
        return max((b.anti_diagonals for b in self.blocks), default=0)

    @property
    def mean_band_width(self) -> float:
        """Cell-weighted mean anti-diagonal width (average active threads)."""
        cells = sum(b.cells for b in self.blocks)
        diags = sum(b.anti_diagonals for b in self.blocks)
        return cells / diags if diags else 0.0

    @property
    def max_band_width(self) -> int:
        """Widest anti-diagonal across the workload."""
        return max((b.max_band_width for b in self.blocks), default=0)

    def buffer_bytes(self, value_bytes: int = 4) -> int:
        """Total HBM footprint of anti-diagonal buffers across the workload."""
        return int(
            round(
                sum(b.buffer_bytes(value_bytes) for b in self.blocks)
                * self.replication
            )
        )

    def split(self, parts: Sequence[float]) -> list["KernelWorkload"]:
        """Split the workload into sub-workloads with the given weight fractions.

        Used by tests of the load balancer; the real balancer splits jobs
        before tracing, but this helper lets the model reason about "what if
        this workload were spread over N devices with these shares".
        """
        total = float(sum(parts))
        if total <= 0:
            raise ConfigurationError("split weights must sum to a positive value")
        return [
            KernelWorkload(blocks=list(self.blocks), replication=self.replication * p / total)
            for p in parts
        ]
