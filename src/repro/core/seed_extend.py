"""Seed-and-extend alignment built on the X-drop extension kernel.

LOGAN is used inside seed-and-extend pipelines (BELLA, BLAST-style search):
a short exact match (the *seed*, typically a shared k-mer) anchors the
alignment, and the X-drop kernel extends it independently to the left and to
the right (Fig. 5 of the paper).  The left extension runs on the *reversed*
prefixes so that both extensions read their sequences forward — the same
host-side transformation LOGAN applies to obtain coalesced GPU memory
accesses (Fig. 6).

This module provides the seed representation and the host-side split /
reverse / extend / recombine logic shared by the CPU baseline and the
GPU-model batch runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import AlignmentError
from .encoding import SequenceLike, encode
from .result import ExtensionResult, SeedAlignmentResult
from .scoring import ScoringScheme
from .xdrop_vectorized import xdrop_extend

__all__ = ["Seed", "split_on_seed", "seed_score", "extend_seed"]

#: Signature shared by every extension kernel in the library.
ExtensionKernel = Callable[..., ExtensionResult]


@dataclass(frozen=True)
class Seed:
    """An exact-match anchor between a query and a target sequence.

    Attributes
    ----------
    query_pos, target_pos:
        0-based positions of the first seed base on the query and target.
    length:
        Seed length in bases (k for a k-mer seed; BELLA uses k = 17).
    """

    query_pos: int
    target_pos: int
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise AlignmentError(f"seed length must be positive, got {self.length}")
        if self.query_pos < 0 or self.target_pos < 0:
            raise AlignmentError(
                f"seed positions must be non-negative, got "
                f"({self.query_pos}, {self.target_pos})"
            )

    @property
    def query_end(self) -> int:
        """0-based exclusive end of the seed on the query."""
        return self.query_pos + self.length

    @property
    def target_end(self) -> int:
        """0-based exclusive end of the seed on the target."""
        return self.target_pos + self.length

    def diagonal(self) -> int:
        """Seed diagonal (query_pos - target_pos), used by BELLA's binning."""
        return self.query_pos - self.target_pos


def split_on_seed(
    query: SequenceLike, target: SequenceLike, seed: Seed
) -> tuple[tuple[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Split a pair of sequences into left- and right-extension sub-pairs.

    Returns ``((left_query, left_target), (right_query, right_target))``
    where the left pair is already reversed (ready to be extended "forward"
    by the kernel).  Either pair may contain empty arrays when the seed
    touches an end of a sequence; callers must treat an empty extension as a
    zero-score extension rather than invoking the kernel.
    """
    q = encode(query)
    t = encode(target)
    if seed.query_end > len(q) or seed.target_end > len(t):
        raise AlignmentError(
            f"seed {seed} does not fit in sequences of length "
            f"{len(q)} / {len(t)}"
        )
    left_q = np.ascontiguousarray(q[: seed.query_pos][::-1])
    left_t = np.ascontiguousarray(t[: seed.target_pos][::-1])
    right_q = np.ascontiguousarray(q[seed.query_end :])
    right_t = np.ascontiguousarray(t[seed.target_end :])
    return (left_q, left_t), (right_q, right_t)


def seed_score(
    query: SequenceLike, target: SequenceLike, seed: Seed, scoring: ScoringScheme
) -> int:
    """Score of the seed region itself under *scoring*.

    For a genuine exact-match seed this is ``length * match``; computing it
    from the sequences keeps the accounting honest when a caller supplies an
    inexact anchor.
    """
    q = encode(query)
    t = encode(target)
    qs = q[seed.query_pos : seed.query_end]
    ts = t[seed.target_pos : seed.target_end]
    return int(scoring.substitution(qs, ts).sum())


def _extend_or_empty(
    kernel: ExtensionKernel,
    q: np.ndarray,
    t: np.ndarray,
    scoring: ScoringScheme,
    xdrop: int,
    trace: bool,
) -> ExtensionResult:
    """Run *kernel* unless either side is empty, in which case the extension
    trivially scores zero (a single origin cell)."""
    if len(q) == 0 or len(t) == 0:
        return ExtensionResult(
            best_score=0,
            query_end=0,
            target_end=0,
            anti_diagonals=1,
            cells_computed=1,
            terminated_early=False,
            band_widths=np.asarray([1], dtype=np.int64) if trace else None,
        )
    return kernel(q, t, scoring=scoring, xdrop=xdrop, trace=trace)


def extend_seed(
    query: SequenceLike,
    target: SequenceLike,
    seed: Seed,
    scoring: ScoringScheme | None = None,
    xdrop: int = 100,
    kernel: ExtensionKernel = xdrop_extend,
    trace: bool = False,
) -> SeedAlignmentResult:
    """Seed-and-extend alignment of *query* against *target* around *seed*.

    Parameters
    ----------
    query, target:
        The full sequences (strings or encoded arrays).
    seed:
        The exact-match anchor to extend from.
    scoring:
        Linear-gap scoring scheme.
    xdrop:
        X-drop threshold applied independently to both extensions.
    kernel:
        The extension kernel to use — the vectorised LOGAN kernel by default,
        or :func:`repro.core.xdrop.xdrop_extend_reference` for the oracle.
    trace:
        Forward per-anti-diagonal band traces into the extension results.

    Returns
    -------
    SeedAlignmentResult
        Combined score ``left + seed + right`` with alignment extents on
        both sequences.
    """
    scoring = scoring if scoring is not None else ScoringScheme()
    q = encode(query)
    t = encode(target)
    (left_q, left_t), (right_q, right_t) = split_on_seed(q, t, seed)

    left = _extend_or_empty(kernel, left_q, left_t, scoring, xdrop, trace)
    right = _extend_or_empty(kernel, right_q, right_t, scoring, xdrop, trace)
    anchor = seed_score(q, t, seed, scoring)

    return SeedAlignmentResult(
        score=int(left.best_score + right.best_score + anchor),
        left=left,
        right=right,
        seed_score=anchor,
        query_begin=seed.query_pos - left.query_end,
        query_end=seed.query_end + right.query_end,
        target_begin=seed.target_pos - left.target_end,
        target_end=seed.target_end + right.target_end,
    )
