"""repro — a laptop-scale reproduction of LOGAN (IPDPS 2020).

LOGAN is the first high-performance multi-GPU implementation of the X-drop
pairwise-alignment heuristic.  This package re-implements the full system in
pure Python/NumPy:

* :mod:`repro.api` — **the public front door**: the typed, validating
  :class:`repro.api.AlignConfig` (one declarative object consumed by every
  layer, JSON round-trippable) and the :class:`repro.api.Aligner` session
  facade (``align`` / ``align_batch`` / ``align_iter`` / ``open_service``);
* :mod:`repro.core` — the X-drop extension algorithm (scalar reference,
  per-pair vectorised kernel and inter-sequence batched kernel), scoring
  schemes, seed-and-extend;
* :mod:`repro.engine` — the unified alignment-engine layer: a registry that
  exposes every batch aligner behind one
  ``align_batch(jobs, scoring, xdrop)`` interface
  (:func:`repro.get_engine`, :func:`repro.list_engines`);
* :mod:`repro.baselines` — Smith–Waterman, Needleman–Wunsch, banded SW,
  ksw2-style Z-drop, SeqAn-like CPU batch runner, CUDASW++/manymap
  throughput models;
* :mod:`repro.gpusim` — an execution/performance model of an NVIDIA V100
  class GPU (SMs, warp schedulers, occupancy, HBM) used in place of real
  CUDA hardware;
* :mod:`repro.logan` — the LOGAN kernel/batch/host/multi-GPU layers built on
  the GPU model;
* :mod:`repro.service` — the asynchronous alignment service: a bounded
  submission queue, an adaptive length-binned batcher, a content-addressed
  result cache and a load-balanced sharded worker pool over the engine
  registry (:class:`repro.AlignmentService`);
* :mod:`repro.bella` — the BELLA long-read overlapper substrate (k-mers,
  SpGEMM overlap detection, adaptive threshold, pipeline);
* :mod:`repro.data` — FASTA/FASTQ I/O, synthetic genomes and long reads,
  benchmark pair sets and named datasets;
* :mod:`repro.workloads` — the scenario workload bank: named, seedable
  generators (PacBio/ONT error profiles, homopolymers, tandem/inverted
  repeats, length skew, degenerate and X-drop-boundary adversaries)
  producing job batches with ground-truth metadata;
* :mod:`repro.testing` — the differential conformance/fuzz harness
  (:class:`repro.testing.ConformanceRunner`, :func:`repro.testing.run_fuzz`)
  replaying workloads through every engine and the service with
  shrink-on-failure reporting (``repro-fuzz`` CLI, CI ``fuzz-smoke``);
* :mod:`repro.roofline` — the adapted instruction Roofline model (Eq. 1);
* :mod:`repro.perf` — timers, GCUPS/speed-up metrics, process-pool helpers;
* :mod:`repro.obs` — the unified telemetry subsystem: labelled metrics
  registry (always live), opt-in structured tracing with context
  propagation, a flight-recorder crash ring, JSON-lines/Prometheus
  exporters and provenance stamping (``repro-obs`` CLI, CI
  ``metrics-smoke``);
* :mod:`repro.autotune` — the closed telemetry loop: per-length-bin
  feedback controllers over windowed kernel telemetry that actuate
  batch size and kernel knobs online, a ``gpusim``-backed what-if
  planner gating growths, and a GCUPS-regression kill switch
  (``ServiceConfig(autotune=...)``, CI ``autotune-smoke``).

Quickstart
----------

The supported entry point is :mod:`repro.api` — one config, one facade:

>>> from repro.api import Aligner, AlignConfig
>>> aligner = Aligner(AlignConfig(engine="batched", xdrop=10))
>>> aligner.align("ACGTACGTTT", "ACGTACGTAA").score
8

The lower layers stay importable for direct use:

>>> from repro import xdrop_extend, ScoringScheme
>>> res = xdrop_extend("ACGTACGTTT", "ACGTACGTAA", ScoringScheme(), xdrop=10)
>>> res.best_score
8

Batch alignment goes through the engine registry:

>>> from repro import get_engine, list_engines
>>> sorted(list_engines())[:3]
['batched', 'ksw2', 'logan']
"""

from __future__ import annotations

from .core import (
    DEFAULT_SCORING,
    AffineScoringScheme,
    ExtensionResult,
    Seed,
    SeedAlignmentResult,
    ScoringScheme,
    decode,
    encode,
    exact_extension_score,
    extend_seed,
    random_sequence,
    reverse_complement,
    xdrop_extend,
    BatchKernelStats,
    xdrop_extend_batch,
    xdrop_extend_reference,
)
from .api import AlignConfig, Aligner, ServiceConfig
from .engine import describe_engines, get_engine, list_engines, register_engine
from .service import AlignmentService

__version__ = "1.6.0"

__all__ = [
    "__version__",
    "Aligner",
    "AlignConfig",
    "ServiceConfig",
    "ScoringScheme",
    "AffineScoringScheme",
    "DEFAULT_SCORING",
    "ExtensionResult",
    "SeedAlignmentResult",
    "Seed",
    "encode",
    "decode",
    "random_sequence",
    "reverse_complement",
    "xdrop_extend",
    "BatchKernelStats",
    "xdrop_extend_batch",
    "xdrop_extend_reference",
    "exact_extension_score",
    "extend_seed",
    "get_engine",
    "list_engines",
    "describe_engines",
    "register_engine",
    "AlignmentService",
]
