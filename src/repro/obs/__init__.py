"""Unified telemetry subsystem: metrics, tracing, and a flight recorder.

``repro.obs`` is the single observability surface of the library — the
pipeline the ROADMAP's ops-grade-stats and telemetry-loop items build on:

* :mod:`repro.obs.metrics` — labelled counters / gauges / fixed-bucket
  histograms behind a thread-safe :class:`MetricsRegistry`, snapshotted
  into immutable :class:`MetricsSnapshot` objects.
* :mod:`repro.obs.tracing` — lightweight structured spans with per-thread
  context propagation; a disabled :class:`Tracer` hands out one shared
  no-op span, so hot paths pay ~nothing.
* :mod:`repro.obs.recorder` — a :class:`FlightRecorder` ring buffer of
  recent spans, events and metric deltas, dumped to JSON on worker crash
  or on demand (and into conformance failure reports).
* :mod:`repro.obs.export` — JSON-lines and Prometheus text exporters,
  driven per interval or on demand (``repro-service serve
  --metrics-out``).
* :mod:`repro.obs.provenance` — config hash / seed / git SHA stamped onto
  every export, per the benchmark-reproducibility checklist.
* :mod:`repro.obs.runtime` — the process-global bundle and the
  :func:`configure` switch.

Quick tour::

    import repro.obs as obs

    obs.configure(tracing=True, flight_recorder=True)
    ob = obs.get_observability()
    requests = ob.counter("myapp_requests_total", "requests served")
    with ob.span("handle", route="/align"):
        requests.inc()
    print(obs.render_prometheus(ob.registry.snapshot()))
"""

from .export import IntervalExporter, read_jsonl, render_prometheus, write_jsonl
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    SeriesSample,
    diff_counters,
)
from .provenance import build_provenance, config_hash, git_sha
from .recorder import FlightRecorder
from .runtime import (
    LIVE_FRACTION_BUCKETS,
    Observability,
    configure,
    emit_kernel_batch,
    get_observability,
    reset,
)
from .tracing import NULL_SPAN, Span, SpanCollector, Tracer

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "SeriesSample",
    "DEFAULT_BUCKETS",
    "diff_counters",
    # tracing
    "Span",
    "SpanCollector",
    "Tracer",
    "NULL_SPAN",
    # recorder
    "FlightRecorder",
    # export
    "IntervalExporter",
    "render_prometheus",
    "write_jsonl",
    "read_jsonl",
    # provenance
    "build_provenance",
    "config_hash",
    "git_sha",
    # runtime
    "Observability",
    "configure",
    "get_observability",
    "reset",
    "emit_kernel_batch",
    "LIVE_FRACTION_BUCKETS",
]
