"""Benchmark read-pair generator (the paper's 100 K-pair workload).

Section VI-A: "we generate a set of 100K read pairs with read length between
2,500 and 7,500 characters and an error rate of ~15 % between two reads of a
given pair".  This module reproduces that generator at configurable scale:

* each pair derives from a common template sequence, with each read carrying
  half of the pairwise error budget, so the *pairwise* divergence matches
  the requested rate;
* each pair carries a seed (exact-match anchor).  The LOGAN benchmark
  harness seeds at position 0 and extends across the whole pair; BELLA seeds
  in the overlap interior.  Both conventions are supported;
* an optional fraction of *unrelated* pairs exercises the X-drop early
  termination path (the case the heuristic exists for).

The generator returns :class:`~repro.core.job.AlignmentJob` objects ready to
feed any batch aligner in the library, plus the spec used so benchmarks can
extrapolate a laptop-scale sample to the paper's pair count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.encoding import random_sequence
from ..core.job import AlignmentJob
from ..core.seed_extend import Seed
from ..errors import DatasetError
from .reads import ErrorModel, apply_errors

__all__ = ["PairSetSpec", "PAPER_100K_SPEC", "generate_pair_set"]


@dataclass(frozen=True)
class PairSetSpec:
    """Specification of a benchmark pair set.

    Attributes
    ----------
    num_pairs:
        Number of read pairs to generate.
    min_length, max_length:
        Read length range (uniform).
    pairwise_error_rate:
        Expected divergence between the two reads of a pair (~0.15 in the
        paper; each read receives half of it relative to the template).
    seed_length:
        Length of the exact-match seed (BELLA uses k = 17).
    seed_placement:
        ``"start"`` — seed at position (0, 0), the LOGAN benchmark
        convention where the extension sweeps the whole pair;
        ``"middle"`` — seed planted mid-overlap, the BELLA convention with a
        left and a right extension of similar size.
    unrelated_fraction:
        Fraction of pairs whose reads are independent random sequences
        (no true alignment; X-drop should terminate almost immediately).
    rng_seed:
        Seed of the NumPy generator, for reproducible benchmark inputs.
    """

    num_pairs: int = 1000
    min_length: int = 2500
    max_length: int = 7500
    pairwise_error_rate: float = 0.15
    seed_length: int = 17
    seed_placement: str = "start"
    unrelated_fraction: float = 0.0
    rng_seed: int = 2020

    def __post_init__(self) -> None:
        if self.num_pairs <= 0:
            raise DatasetError("num_pairs must be positive")
        if self.min_length <= 0 or self.max_length < self.min_length:
            raise DatasetError("invalid read length range")
        if not 0.0 <= self.pairwise_error_rate < 1.0:
            raise DatasetError("pairwise_error_rate must be in [0, 1)")
        if self.seed_length <= 0 or self.seed_length > self.min_length:
            raise DatasetError("seed_length must be in [1, min_length]")
        if self.seed_placement not in ("start", "middle"):
            raise DatasetError(f"unknown seed placement {self.seed_placement!r}")
        if not 0.0 <= self.unrelated_fraction <= 1.0:
            raise DatasetError("unrelated_fraction must be in [0, 1]")

    def scaled(self, num_pairs: int) -> "PairSetSpec":
        """Copy of the spec with a different pair count (same distribution)."""
        return PairSetSpec(
            num_pairs=num_pairs,
            min_length=self.min_length,
            max_length=self.max_length,
            pairwise_error_rate=self.pairwise_error_rate,
            seed_length=self.seed_length,
            seed_placement=self.seed_placement,
            unrelated_fraction=self.unrelated_fraction,
            rng_seed=self.rng_seed,
        )

    @property
    def mean_length(self) -> float:
        """Mean read length of the distribution."""
        return 0.5 * (self.min_length + self.max_length)


#: The paper's synthetic workload: 100 K pairs, 2.5-7.5 kb, ~15 % error.
PAPER_100K_SPEC = PairSetSpec(num_pairs=100_000)


def _make_related_pair(
    spec: PairSetSpec, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, Seed]:
    """One pair of reads derived from a common template, plus its seed."""
    length = int(rng.integers(spec.min_length, spec.max_length + 1))
    template = random_sequence(length, rng)
    per_read_error = ErrorModel.with_total(spec.pairwise_error_rate / 2.0)

    if spec.seed_placement == "start":
        seed_start = 0
    else:
        upper = max(1, length - spec.seed_length)
        lo = int(0.25 * upper)
        hi = max(lo + 1, int(0.75 * upper))
        seed_start = int(rng.integers(lo, hi))

    k = spec.seed_length
    prefix = template[:seed_start]
    kmer = template[seed_start : seed_start + k]
    suffix = template[seed_start + k :]

    def mutate(part: np.ndarray) -> np.ndarray:
        if len(part) == 0:
            return part.copy()
        return apply_errors(part, per_read_error, rng)

    query_parts = [mutate(prefix), kmer.copy(), mutate(suffix)]
    target_parts = [mutate(prefix), kmer.copy(), mutate(suffix)]
    query = np.concatenate([p for p in query_parts if len(p)])
    target = np.concatenate([p for p in target_parts if len(p)])
    seed = Seed(
        query_pos=len(query_parts[0]),
        target_pos=len(target_parts[0]),
        length=k,
    )
    return query, target, seed


def _make_unrelated_pair(
    spec: PairSetSpec, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, Seed]:
    """Two independent reads sharing only a planted seed k-mer."""
    len_q = int(rng.integers(spec.min_length, spec.max_length + 1))
    len_t = int(rng.integers(spec.min_length, spec.max_length + 1))
    query = random_sequence(len_q, rng)
    target = random_sequence(len_t, rng)
    k = spec.seed_length
    if spec.seed_placement == "start":
        q_pos = t_pos = 0
    else:
        q_pos = int(rng.integers(0, max(1, len_q - k)))
        t_pos = int(rng.integers(0, max(1, len_t - k)))
    kmer = random_sequence(k, rng)
    query[q_pos : q_pos + k] = kmer
    target[t_pos : t_pos + k] = kmer
    return query, target, Seed(query_pos=q_pos, target_pos=t_pos, length=k)


def generate_pair_set(spec: PairSetSpec) -> list[AlignmentJob]:
    """Generate the benchmark pair set described by *spec*.

    The result is deterministic for a given spec (including ``rng_seed``).
    """
    rng = np.random.default_rng(spec.rng_seed)
    jobs: list[AlignmentJob] = []
    num_unrelated = int(round(spec.num_pairs * spec.unrelated_fraction))
    for index in range(spec.num_pairs):
        if index < num_unrelated:
            query, target, seed = _make_unrelated_pair(spec, rng)
        else:
            query, target, seed = _make_related_pair(spec, rng)
        jobs.append(AlignmentJob(query=query, target=target, seed=seed, pair_id=index))
    return jobs
