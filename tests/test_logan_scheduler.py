"""Tests for the multi-GPU load balancer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Seed, random_sequence
from repro.core.job import AlignmentJob
from repro.errors import ConfigurationError
from repro.logan import LoadBalancer


def _jobs_with_lengths(lengths, rng):
    jobs = []
    for i, length in enumerate(lengths):
        seq = random_sequence(int(length), rng)
        jobs.append(AlignmentJob(query=seq, target=seq.copy(), seed=Seed(0, 0, 5), pair_id=i))
    return jobs


class TestLoadBalancerValidation:
    def test_invalid_device_count(self):
        with pytest.raises(ConfigurationError):
            LoadBalancer(num_devices=0)

    def test_invalid_policy(self):
        with pytest.raises(ConfigurationError):
            LoadBalancer(num_devices=2, policy="random")

    def test_invalid_xdrop(self):
        with pytest.raises(ConfigurationError):
            LoadBalancer(num_devices=2, xdrop=-5)


class TestSplitConservation:
    @pytest.mark.parametrize("policy", ["cells", "count"])
    @pytest.mark.parametrize("devices", [1, 2, 3, 6, 8])
    def test_every_job_assigned_exactly_once(self, policy, devices, rng):
        jobs = _jobs_with_lengths(rng.integers(50, 400, size=23), rng)
        balancer = LoadBalancer(num_devices=devices, policy=policy, xdrop=50)
        assignments = balancer.split(jobs)
        assert len(assignments) == devices
        seen = sorted(i for a in assignments for i in a.job_indices)
        assert seen == list(range(len(jobs)))

    def test_fewer_jobs_than_devices(self, rng):
        jobs = _jobs_with_lengths([100, 200], rng)
        balancer = LoadBalancer(num_devices=6, xdrop=20)
        assignments = balancer.split(jobs)
        non_empty = [a for a in assignments if a.num_jobs]
        assert len(non_empty) == 2

    def test_empty_job_list(self):
        balancer = LoadBalancer(num_devices=4)
        assignments = balancer.split([])
        assert all(a.num_jobs == 0 for a in assignments)

    @settings(max_examples=20, deadline=None)
    @given(
        lengths=st.lists(st.integers(min_value=20, max_value=500), min_size=1, max_size=40),
        devices=st.integers(min_value=1, max_value=8),
    )
    def test_conservation_property(self, make_rng, lengths, devices):
        rng = make_rng(0)
        jobs = _jobs_with_lengths(lengths, rng)
        balancer = LoadBalancer(num_devices=devices, xdrop=30)
        assignments = balancer.split(jobs)
        seen = sorted(i for a in assignments for i in a.job_indices)
        assert seen == list(range(len(jobs)))


class TestBalanceQuality:
    def test_cells_policy_balances_skewed_lengths(self, rng):
        # A few huge jobs plus many small ones: work-aware balancing should
        # spread the cells far better than naive round-robin by count.
        lengths = [3000] * 4 + [100] * 36
        jobs = _jobs_with_lengths(lengths, rng)
        smart = LoadBalancer(num_devices=4, policy="cells", xdrop=1000)
        naive = LoadBalancer(num_devices=4, policy="count", xdrop=1000)
        smart_imbalance = smart.imbalance(smart.split(jobs))
        naive_imbalance = naive.imbalance(naive.split(jobs))
        assert smart_imbalance <= naive_imbalance
        assert smart_imbalance < 1.3

    def test_uniform_jobs_are_evenly_counted(self, rng):
        jobs = _jobs_with_lengths([200] * 24, rng)
        balancer = LoadBalancer(num_devices=6, policy="cells", xdrop=20)
        assignments = balancer.split(jobs)
        counts = [a.num_jobs for a in assignments]
        assert max(counts) - min(counts) <= 1

    def test_imbalance_of_empty_assignments_is_one(self):
        balancer = LoadBalancer(num_devices=2)
        assert balancer.imbalance(balancer.split([])) == 1.0

    def test_estimated_cells_recorded(self, rng):
        jobs = _jobs_with_lengths([100, 200, 300], rng)
        balancer = LoadBalancer(num_devices=2, xdrop=10)
        assignments = balancer.split(jobs)
        total = sum(a.estimated_cells for a in assignments)
        expected = sum(j.estimated_cells(10, 1) for j in jobs)
        assert total == expected


class TestServiceFacingEdgeCases:
    """Edge cases the serving layer's sharded worker pool now exercises."""

    @pytest.mark.parametrize("policy", ["cells", "count"])
    def test_empty_batch_every_policy(self, policy):
        balancer = LoadBalancer(num_devices=3, policy=policy)
        assignments = balancer.split([])
        assert len(assignments) == 3
        assert all(a.num_jobs == 0 and a.estimated_cells == 0 for a in assignments)
        assert balancer.imbalance(assignments) == 1.0

    @pytest.mark.parametrize("policy", ["cells", "count"])
    @pytest.mark.parametrize("devices", [4, 7, 16])
    def test_more_workers_than_jobs(self, policy, devices, rng):
        jobs = _jobs_with_lengths([150, 300, 450], rng)
        balancer = LoadBalancer(num_devices=devices, policy=policy, xdrop=25)
        assignments = balancer.split(jobs)
        seen = sorted(i for a in assignments for i in a.job_indices)
        assert seen == list(range(len(jobs)))
        # No worker receives more than one job when workers outnumber jobs.
        assert max(a.num_jobs for a in assignments) == 1

    def test_take_materialises_assigned_jobs(self, rng):
        jobs = _jobs_with_lengths([100, 200, 300, 400], rng)
        balancer = LoadBalancer(num_devices=2, xdrop=10)
        assignments = balancer.split(jobs)
        for assignment in assignments:
            taken = assignment.take(jobs)
            assert all(
                taken[k] is jobs[i]
                for k, i in enumerate(assignment.job_indices)
            )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_cells_never_worse_than_count_on_skewed_lengths(self, seed, make_rng):
        # Parity check backing the service's default "cells" policy: on
        # skewed length distributions (a few huge jobs, many small ones),
        # LPT-by-cells must never produce a worse max-shard than naive
        # round-robin by count.
        rng = make_rng(seed)
        lengths = list(rng.integers(2000, 5000, size=3)) + list(
            rng.integers(80, 300, size=29)
        )
        jobs = _jobs_with_lengths(lengths, rng)
        for devices in (2, 4, 6):
            smart = LoadBalancer(num_devices=devices, policy="cells", xdrop=500)
            naive = LoadBalancer(num_devices=devices, policy="count", xdrop=500)
            smart_max = max(a.estimated_cells for a in smart.split(jobs))
            naive_max = max(a.estimated_cells for a in naive.split(jobs))
            assert smart_max <= naive_max
