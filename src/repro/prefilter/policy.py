"""Admission triage: classify candidate pairs before the X-drop kernel.

The :class:`PrefilterPolicy` combines three cheap signals to sort every
candidate pair into one of three admission outcomes:

``duplicate``
    Sketch distance at or below ``duplicate_distance`` — the pair is
    near-identical, so its alignment is a textbook content-address hit:
    route it through the normal cache/durable-store path rather than
    skipping it (the first copy still aligns; the rest are free).
``reject``
    The pair provably cannot pass the BELLA :class:`AdaptiveThreshold`
    (overlap-bound or score-bound, exact arithmetic on lengths), or its
    sketch distance is at or above ``reject_distance`` (heuristic,
    validated against the workload bank's ground truth).  Under an
    ``enforce`` admission mode such a pair gets the instant
    :func:`rejected_result` — seed-only, zero extension work.
``contested``
    Everything else, including pairs where a sketch carries no signal
    (sequence shorter than ``k`` or all wildcards): the expensive kernel
    is the only way to know, so the pair is admitted.

The provable bounds mirror ``repro.bella.threshold.AdaptiveThreshold``:
a pair whose maximum possible overlap length ``(lq + lt) // 2`` is below
``min_overlap`` can never satisfy ``passes()``, and one whose maximum
possible score ``match * min(lq, lt)`` is below the threshold at
``min_overlap`` has no feasible passing (score, overlap) point at all.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping

from ..bella.threshold import AdaptiveThreshold
from ..core.job import AlignmentJob
from ..core.result import ExtensionResult, SeedAlignmentResult
from ..core.scoring import ScoringScheme
from ..errors import ConfigurationError
from .sketch import (
    MAX_SKETCH_K,
    KmerSketch,
    sketch_distance,
    sketch_sequence,
)

__all__ = [
    "PREFILTER_MODES",
    "PREFILTER_OUTCOMES",
    "PrefilterDecision",
    "PrefilterPolicy",
    "rejected_result",
]

#: Admission modes a service/pipeline can run the policy under.
PREFILTER_MODES = ("off", "advise", "enforce")

#: The three triage outcomes, in the order surfaced by stats payloads.
PREFILTER_OUTCOMES = ("reject", "duplicate", "contested")

_METRICS = ("d2", "d2star")


@dataclass(frozen=True)
class PrefilterDecision:
    """One pair's triage verdict.

    ``distance`` is ``None`` when either sketch was empty (no k-mer
    signal); ``reason`` names which rule fired: ``"sketch-distance"``,
    ``"overlap-bound"``, ``"score-bound"``, ``"no-sketch"``, or
    ``"admitted"``.
    """

    outcome: str
    distance: float | None
    reason: str


@dataclass(frozen=True)
class PrefilterPolicy:
    """Thresholds and sketch parameters for admission triage.

    ``error_rate``, ``slack`` and ``min_overlap`` describe the BELLA
    acceptance threshold the triage is protecting — they must match the
    downstream :class:`AdaptiveThreshold` for the provable bounds to be
    sound.  ``reject_distance``/``duplicate_distance`` bracket the d2
    scale: empirically, 15%-error reads off one template sit near 0.3
    at k=7 while unrelated or hopelessly diverged pairs crowd 0.45-0.5.
    """

    k: int = 7
    metric: str = "d2"
    reject_distance: float = 0.45
    duplicate_distance: float = 0.02
    error_rate: float = 0.15
    slack: float = 0.7
    min_overlap: int = 500

    def __post_init__(self) -> None:
        if not 1 <= self.k <= MAX_SKETCH_K:
            raise ConfigurationError(
                f"prefilter k must be in [1, {MAX_SKETCH_K}], got {self.k}"
            )
        if self.metric not in _METRICS:
            raise ConfigurationError(
                f"prefilter metric must be one of {_METRICS}, "
                f"got {self.metric!r}"
            )
        if not 0.0 <= self.duplicate_distance < self.reject_distance <= 1.0:
            raise ConfigurationError(
                "prefilter distances must satisfy 0 <= duplicate_distance"
                f" < reject_distance <= 1; got duplicate="
                f"{self.duplicate_distance}, reject={self.reject_distance}"
            )
        if not 0.0 <= self.error_rate < 1.0:
            raise ConfigurationError(
                f"prefilter error_rate must be in [0, 1), got "
                f"{self.error_rate}"
            )
        if self.min_overlap < 0:
            raise ConfigurationError(
                f"prefilter min_overlap must be >= 0, got {self.min_overlap}"
            )

    @classmethod
    def from_options(
        cls, options: Mapping[str, Any] | None
    ) -> "PrefilterPolicy":
        """Build a policy from a loose option mapping (CLI / config dict)."""
        opts = dict(options or {})
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(opts) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown prefilter option(s) {unknown}; "
                f"available: {sorted(known)}"
            )
        return cls(**opts)

    def threshold(self, scoring: ScoringScheme) -> AdaptiveThreshold:
        """The BELLA acceptance threshold this policy is calibrated to."""
        return AdaptiveThreshold(
            error_rate=self.error_rate,
            scoring=scoring,
            slack=self.slack,
            min_overlap=self.min_overlap,
        )

    def sketch(self, sequence) -> KmerSketch:
        """Sketch one sequence with this policy's k."""
        return sketch_sequence(sequence, self.k)

    def distance(self, a: KmerSketch, b: KmerSketch) -> float:
        """Distance between two sketches under this policy's metric."""
        return sketch_distance(a, b, self.metric)

    def classify(
        self, job: AlignmentJob, scoring: ScoringScheme
    ) -> PrefilterDecision:
        """Triage one candidate pair.

        Duplicate detection runs first so that short identical pairs —
        which the overlap bound would also reject — keep their cheap
        content-address routing.
        """
        qs = self.sketch(job.query)
        ts = self.sketch(job.target)
        dist: float | None
        if qs.empty or ts.empty:
            dist = None
        else:
            dist = self.distance(qs, ts)
        if dist is not None and dist <= self.duplicate_distance:
            return PrefilterDecision("duplicate", dist, "sketch-distance")
        lq = len(job.query)
        lt = len(job.target)
        if (lq + lt) // 2 < self.min_overlap:
            return PrefilterDecision("reject", dist, "overlap-bound")
        thr = self.threshold(scoring)
        if scoring.match * min(lq, lt) < thr.threshold_for(self.min_overlap):
            return PrefilterDecision("reject", dist, "score-bound")
        if dist is not None and dist >= self.reject_distance:
            return PrefilterDecision("reject", dist, "sketch-distance")
        return PrefilterDecision(
            "contested", dist, "admitted" if dist is not None else "no-sketch"
        )

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def rejected_result(
    job: AlignmentJob, scoring: ScoringScheme
) -> SeedAlignmentResult:
    """The instant result an enforced rejection resolves to.

    Seed-only: both extensions are empty, the score is just the exact
    seed match, and the alignment spans exactly the seed.  Deterministic
    in the job and scoring alone, so the conformance harness can
    reconstruct it to tell an enforced rejection from a real mismatch.
    """
    empty = ExtensionResult(
        best_score=0,
        query_end=0,
        target_end=0,
        anti_diagonals=0,
        cells_computed=0,
    )
    seed_score = scoring.match * job.seed.length
    return SeedAlignmentResult(
        score=seed_score,
        left=empty,
        right=empty,
        seed_score=seed_score,
        query_begin=job.seed.query_pos,
        query_end=job.seed.query_pos + job.seed.length,
        target_begin=job.seed.target_pos,
        target_end=job.seed.target_pos + job.seed.length,
    )
