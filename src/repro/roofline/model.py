"""Instruction Roofline model adapted to the X-drop kernel (Section VII).

The paper analyses LOGAN with an *instruction* Roofline: the y-axis is warp
giga-instructions per second (warp GIPS) because the kernel performs only
integer work, the x-axis is operational intensity in warp instructions per
byte of HBM traffic, and two ceilings bound the achievable performance:

* the hardware ceilings — peak warp GIPS, the INT32-only ceiling
  (220.8 warp GIPS on a V100) and the memory roof ``bandwidth * OI``;
* the *adapted* ceiling of Eq. (1), which lowers the INT32 roof by the
  average fraction of INT32 lanes the kernel can actually keep busy given
  its per-iteration parallelism (anti-diagonal width x blocks) — scheduling
  1024 threads for a 40-cell anti-diagonal cannot reach the raw ceiling no
  matter how well tuned the code is.

This module computes all of those ceilings from a
:class:`~repro.gpusim.device.DeviceSpec` and the per-iteration work trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..gpusim.device import DeviceSpec

__all__ = ["RooflineCeilings", "roofline_ceilings", "adapted_ceiling", "attainable_gips"]


@dataclass(frozen=True)
class RooflineCeilings:
    """The ceilings of the instruction Roofline plot for one device/kernel.

    Attributes
    ----------
    peak_warp_gips:
        Theoretical warp-instruction issue ceiling of the device.
    int32_warp_gips:
        INT32-only ceiling (16 of 32 lanes per scheduler).
    adapted_warp_gips:
        Eq. (1) ceiling: the INT32 roof averaged over the kernel's
        iterations, accounting for partially-filled warps and blocks.
    memory_bandwidth_gbps:
        HBM bandwidth defining the sloped memory roof.
    ridge_point:
        Operational intensity at which the memory roof meets the INT32 roof.
    """

    peak_warp_gips: float
    int32_warp_gips: float
    adapted_warp_gips: float
    memory_bandwidth_gbps: float

    @property
    def ridge_point(self) -> float:
        """OI (warp instructions / byte) where memory and INT32 roofs intersect."""
        return self.int32_warp_gips / self.memory_bandwidth_gbps

    def roof_at(self, operational_intensity: float, adapted: bool = True) -> float:
        """Attainable warp GIPS at a given operational intensity."""
        if operational_intensity < 0:
            raise ConfigurationError("operational intensity must be non-negative")
        compute_roof = self.adapted_warp_gips if adapted else self.int32_warp_gips
        return min(compute_roof, self.memory_bandwidth_gbps * operational_intensity)


def adapted_ceiling(
    device: DeviceSpec,
    per_iteration_ops: Sequence[float] | np.ndarray,
    blocks: int,
    threads_per_block: int,
) -> float:
    """Eq. (1) of the paper: the ceiling adapted to the kernel's parallelism.

    ``Ceiling = (1/N) * sum_i [ f * N_op,i * B / ceil(T * B / MAXR) ]``

    where ``N`` is the number of parallel iterations (anti-diagonals), ``f``
    the theoretical INT32 ceiling per *operation slot*, ``N_op,i`` the number
    of operations each block must execute at iteration ``i`` normalised by
    the work one fully-occupied scheduling round can retire, ``B`` the number
    of scheduled blocks, ``T`` the threads per block and ``MAXR`` the number
    of INT32 cores on the device.

    Interpreted concretely: at every iteration the device would like to
    retire ``T * B`` lanes of work per scheduling round but only ``MAXR``
    INT32 lanes exist, so the round takes ``ceil(T * B / MAXR)`` issue slots;
    if the iteration only carries ``N_op,i`` active lanes per block, the
    achieved fraction of the ceiling is ``N_op,i * B / (T * B)`` of the ideal
    — averaging over iterations yields the attainable ceiling.

    Parameters
    ----------
    device:
        Device specification (provides ``f`` and ``MAXR``).
    per_iteration_ops:
        Active lanes (cells) per block at every iteration — for LOGAN, the
        anti-diagonal width trace, averaged over blocks.
    blocks:
        Number of scheduled blocks ``B``.
    threads_per_block:
        Scheduled threads per block ``T``.
    """
    if blocks <= 0 or threads_per_block <= 0:
        raise ConfigurationError("blocks and threads_per_block must be positive")
    ops = np.asarray(per_iteration_ops, dtype=np.float64)
    if ops.size == 0:
        raise ConfigurationError("per_iteration_ops must not be empty")
    if np.any(ops < 0):
        raise ConfigurationError("per_iteration_ops must be non-negative")

    f = device.int32_peak_warp_gips
    maxr = device.total_int32_cores
    # Issue rounds a fully-populated iteration needs on MAXR INT32 lanes.
    rounds = max(1.0, float(np.ceil(threads_per_block * blocks / maxr)))
    # Active lanes per block are bounded by the scheduled thread count.
    active = np.minimum(ops, threads_per_block)
    # Eq. (1): ceiling_i = f * N_op,i * B / ceil(T * B / MAXR), normalised by
    # the lanes a saturated launch would retire per round (T * B / rounds) so
    # the ceiling equals f when every scheduled lane is busy.
    lanes_per_round = threads_per_block * blocks / rounds
    per_iteration_ceiling = f * (active * blocks / rounds) / lanes_per_round
    return float(per_iteration_ceiling.mean())


def roofline_ceilings(
    device: DeviceSpec,
    per_iteration_ops: Sequence[float] | np.ndarray,
    blocks: int,
    threads_per_block: int,
) -> RooflineCeilings:
    """All ceilings needed to draw the Fig. 13 Roofline for one kernel run."""
    return RooflineCeilings(
        peak_warp_gips=device.peak_warp_gips,
        int32_warp_gips=device.int32_peak_warp_gips,
        adapted_warp_gips=adapted_ceiling(
            device, per_iteration_ops, blocks, threads_per_block
        ),
        memory_bandwidth_gbps=device.hbm_bandwidth_gbps,
    )


def attainable_gips(
    ceilings: RooflineCeilings, operational_intensity: float, adapted: bool = True
) -> float:
    """Convenience wrapper around :meth:`RooflineCeilings.roof_at`."""
    return ceilings.roof_at(operational_intensity, adapted=adapted)
