"""Benchmark harness reproducing every table and figure of the LOGAN paper.

Run with ``pytest benchmarks/ --benchmark-only``.  Each ``bench_*.py`` file
regenerates one paper artefact (see the experiment index in DESIGN.md), prints
the reproduced rows next to the paper's published numbers and archives a JSON
copy under ``benchmarks/results/``.
"""
