"""Tests for the scalar X-drop reference and the exact-extension oracle."""

from __future__ import annotations

import pytest

from repro.core import (
    exact_extension_score,
    random_sequence,
    xdrop_extend_reference,
)
from repro.errors import ConfigurationError


class TestXdropReferenceBasics:
    def test_identical_sequences_score_full_length(self, scoring):
        seq = "ACGTACGTACGT"
        res = xdrop_extend_reference(seq, seq, scoring, xdrop=10)
        assert res.best_score == len(seq)
        assert res.query_end == len(seq)
        assert res.target_end == len(seq)
        assert not res.terminated_early

    def test_single_base_match(self, scoring):
        res = xdrop_extend_reference("A", "A", scoring, xdrop=5)
        assert res.best_score == 1

    def test_single_base_mismatch(self, scoring):
        res = xdrop_extend_reference("A", "C", scoring, xdrop=5)
        assert res.best_score == 0

    def test_completely_different_sequences_terminate_early(self, scoring):
        res = xdrop_extend_reference("A" * 50, "C" * 50, scoring, xdrop=3)
        assert res.best_score == 0
        assert res.terminated_early
        # Early termination explores far fewer cells than the full matrix.
        assert res.cells_computed < 51 * 51 / 4

    def test_xdrop_zero_prunes_aggressively(self, scoring):
        # With X = 0, the two gap cells of the first anti-diagonal already
        # drop below the running best (0), the band empties and the
        # extension stops at the origin — the most aggressive pruning the
        # heuristic allows (Zhang et al. semantics).
        res = xdrop_extend_reference("ACGT", "ACGT", scoring, xdrop=0)
        assert res.best_score == 0
        assert res.terminated_early
        # With X = 2 the diagonal survives and the full match is recovered.
        assert xdrop_extend_reference("ACGT", "ACGT", scoring, xdrop=2).best_score == 4

    def test_negative_xdrop_rejected(self, scoring):
        with pytest.raises(ConfigurationError):
            xdrop_extend_reference("ACGT", "ACGT", scoring, xdrop=-1)

    def test_prefix_extension_semantics(self, scoring):
        # Best alignment uses only a prefix: long poly-A head then garbage.
        query = "AAAAAAAAAA" + "CCCC"
        target = "AAAAAAAAAA" + "GGGG"
        res = xdrop_extend_reference(query, target, scoring, xdrop=2)
        assert res.best_score == 10
        assert res.query_end == 10
        assert res.target_end == 10

    def test_trace_records_band_widths(self, scoring):
        res = xdrop_extend_reference("ACGTACGT", "ACGTACGT", scoring, xdrop=5, trace=True)
        assert res.band_widths is not None
        assert len(res.band_widths) == res.anti_diagonals
        assert res.band_widths.sum() == res.cells_computed
        assert res.band_widths[0] == 1

    def test_no_trace_by_default(self, scoring):
        res = xdrop_extend_reference("ACGT", "ACGT", scoring, xdrop=5)
        assert res.band_widths is None

    def test_gap_handling(self, scoring):
        # target has one extra base in the middle: score = matches - gap.
        query = "ACGTACGT"
        target = "ACGTTACGT"
        res = xdrop_extend_reference(query, target, scoring, xdrop=20)
        assert res.best_score == 8 - 1

    def test_asymmetric_lengths(self, scoring):
        res = xdrop_extend_reference("ACG", "ACGTACGTACGT", scoring, xdrop=10)
        assert res.best_score == 3

    def test_cells_bounded_by_full_matrix(self, scoring, rng):
        q = random_sequence(40, rng)
        t = random_sequence(60, rng)
        res = xdrop_extend_reference(q, t, scoring, xdrop=5)
        assert res.cells_computed <= (40 + 1) * (60 + 1)


class TestExactExtensionOracle:
    def test_identical(self, scoring):
        res = exact_extension_score("ACGTACGT", "ACGTACGT", scoring)
        assert res.best_score == 8
        assert res.cells_computed == 9 * 9

    def test_empty_extension_is_zero(self, scoring):
        assert exact_extension_score("AAAA", "CCCC", scoring).best_score == 0

    def test_brute_force_equivalence_small(self, scoring, rng):
        # Compare against a plain O(mn) Python DP on tiny inputs.
        for _ in range(20):
            m, n = int(rng.integers(1, 15)), int(rng.integers(1, 15))
            q = random_sequence(m, rng)
            t = random_sequence(n, rng)
            H = [[0] * (n + 1) for _ in range(m + 1)]
            for i in range(m + 1):
                H[i][0] = i * scoring.gap
            for j in range(n + 1):
                H[0][j] = j * scoring.gap
            best = 0
            for i in range(1, m + 1):
                for j in range(1, n + 1):
                    s = scoring.match if q[i - 1] == t[j - 1] else scoring.mismatch
                    H[i][j] = max(
                        H[i - 1][j - 1] + s,
                        H[i - 1][j] + scoring.gap,
                        H[i][j - 1] + scoring.gap,
                    )
                    best = max(best, H[i][j])
            assert exact_extension_score(q, t, scoring).best_score == best

    def test_never_negative(self, scoring, rng):
        q = random_sequence(30, rng)
        t = random_sequence(30, rng)
        assert exact_extension_score(q, t, scoring).best_score >= 0


class TestXdropAgainstOracle:
    @pytest.mark.parametrize("xdrop", [0, 1, 3, 10, 50])
    def test_never_exceeds_exact(self, scoring, rng, xdrop):
        for _ in range(10):
            q = random_sequence(int(rng.integers(5, 80)), rng)
            t = random_sequence(int(rng.integers(5, 80)), rng)
            heuristic = xdrop_extend_reference(q, t, scoring, xdrop=xdrop)
            exact = exact_extension_score(q, t, scoring)
            assert heuristic.best_score <= exact.best_score

    def test_large_x_recovers_exact_score(self, scoring, rng):
        for _ in range(10):
            q = random_sequence(int(rng.integers(5, 60)), rng)
            t = random_sequence(int(rng.integers(5, 60)), rng)
            big_x = scoring.worst_case_drop(min(len(q), len(t)))
            heuristic = xdrop_extend_reference(q, t, scoring, xdrop=big_x)
            exact = exact_extension_score(q, t, scoring)
            assert heuristic.best_score == exact.best_score

    def test_score_monotone_in_x(self, scoring, similar_pair):
        q, t = similar_pair
        scores = [
            xdrop_extend_reference(q, t, scoring, xdrop=x).best_score
            for x in (0, 2, 5, 10, 25, 50, 100)
        ]
        assert scores == sorted(scores)

    def test_cells_monotone_in_x(self, scoring, similar_pair):
        q, t = similar_pair
        cells = [
            xdrop_extend_reference(q, t, scoring, xdrop=x).cells_computed
            for x in (0, 2, 5, 10, 25, 50)
        ]
        assert cells == sorted(cells)
