"""Parity tests for the inter-sequence batched X-drop kernel.

The batch kernel must reproduce the scalar reference *exactly* on every row
of a batch: scores, end positions, cell counts, anti-diagonal counts, early
termination flags and band traces ("equivalent accuracy", Section VI of the
paper, extended to the work accounting consumed by the GPU model).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ScoringScheme, random_sequence
from repro.core.xdrop import xdrop_extend_reference
from repro.core.xdrop_batch import xdrop_extend_batch
from repro.data import ErrorModel, apply_errors
from repro.errors import ConfigurationError, SequenceError


def random_pairs(rng, count, max_len=220, related_fraction=0.6):
    """Mixed batch: related pairs, unrelated pairs, tiny and long sequences."""
    pairs = []
    for _ in range(count):
        query = random_sequence(int(rng.integers(1, max_len)), rng=rng)
        if rng.random() < related_fraction:
            target = apply_errors(query, ErrorModel.with_total(0.15), rng)
        else:
            target = random_sequence(int(rng.integers(1, max_len)), rng=rng)
        if rng.random() < 0.2:
            query = query.copy()
            query[rng.integers(0, len(query))] = 4  # wildcard N
        pairs.append((query, target))
    return pairs


def assert_matches_reference(pairs, scoring, xdrop):
    batch = xdrop_extend_batch(pairs, scoring, xdrop=xdrop, trace=True)
    assert len(batch) == len(pairs)
    for got, (query, target) in zip(batch, pairs):
        ref = xdrop_extend_reference(query, target, scoring, xdrop=xdrop, trace=True)
        assert got.best_score == ref.best_score
        assert got.query_end == ref.query_end
        assert got.target_end == ref.target_end
        assert got.cells_computed == ref.cells_computed
        assert got.anti_diagonals == ref.anti_diagonals
        assert got.terminated_early == ref.terminated_early
        assert np.array_equal(got.band_widths, ref.band_widths)


class TestBatchKernelParity:
    @pytest.mark.parametrize("xdrop", [0, 3, 25, 100])
    def test_random_batches_match_reference(self, xdrop, make_rng):
        rng = make_rng(xdrop + 11)
        pairs = random_pairs(rng, 24)
        assert_matches_reference(pairs, ScoringScheme(), xdrop)

    def test_nondefault_scoring(self, make_rng):
        rng = make_rng(5)
        pairs = random_pairs(rng, 12)
        assert_matches_reference(pairs, ScoringScheme(match=2, mismatch=-3, gap=-2), 30)

    def test_singleton_batch_matches_per_pair(self, make_rng):
        rng = make_rng(9)
        pairs = random_pairs(rng, 1)
        assert_matches_reference(pairs, ScoringScheme(), 40)

    def test_string_inputs(self):
        pairs = [("ACGTACGTTT", "ACGTACGTAA"), ("AAAA", "TTTT")]
        results = xdrop_extend_batch(pairs, ScoringScheme(), xdrop=10)
        assert results[0].best_score == 8
        assert results[1].best_score == 0

    def test_identical_sequences_full_score(self, make_rng):
        seq = random_sequence(150, rng=make_rng(2))
        results = xdrop_extend_batch([(seq, seq)] * 3, ScoringScheme(), xdrop=50)
        for res in results:
            assert res.best_score == 150
            assert res.query_end == res.target_end == 150
            assert not res.terminated_early


class TestBatchKernelEdges:
    def test_empty_batch(self):
        assert xdrop_extend_batch([], ScoringScheme(), xdrop=10) == []

    def test_empty_sequences_rejected(self):
        # Same contract as the per-pair kernels: empty extensions are the
        # caller's responsibility (seed-flush tasks never reach a kernel).
        empty = np.zeros(0, dtype=np.uint8)
        with pytest.raises(SequenceError):
            xdrop_extend_batch([(empty, "ACGT")], ScoringScheme(), xdrop=10)

    def test_negative_xdrop_rejected(self):
        with pytest.raises(ConfigurationError):
            xdrop_extend_batch([("ACGT", "ACGT")], ScoringScheme(), xdrop=-1)

    def test_trace_disabled_by_default(self):
        results = xdrop_extend_batch([("ACGT", "ACGT")], ScoringScheme(), xdrop=10)
        assert results[0].band_widths is None

    def test_widely_varying_lengths(self, make_rng):
        rng = make_rng(17)
        base = random_sequence(400, rng=rng)
        pairs = [
            (base[:5], base[:400]),
            (base[:400], base[:5]),
            (base, apply_errors(base, ErrorModel.with_total(0.1), rng)),
            (base[:60], random_sequence(350, rng=rng)),
        ]
        assert_matches_reference(pairs, ScoringScheme(), 35)
