"""Bounded differential fuzzing over the workload bank.

``run_fuzz`` drives the :class:`~repro.testing.conformance.ConformanceRunner`
round-robin across every (or a chosen subset of) workload profile, with a
fresh derived seed per round, until a job-count or wall-clock budget is
exhausted.  The run is fully deterministic for a given root seed: round
``r`` of profile ``p`` always generates the same jobs, so any failure the
fuzzer prints can be replayed from ``(seed, profile, workload_seed)``
alone — the contract the ``repro-fuzz`` CLI and the CI ``fuzz-smoke`` job
build on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..workloads import WorkloadSpec, generate_workload, list_profiles
from .conformance import ConformanceFailure, ConformanceRunner, FieldMismatch

__all__ = ["FuzzReport", "run_fuzz", "derive_round_seed"]


def derive_round_seed(root_seed: int, round_index: int) -> int:
    """Deterministic, well-mixed per-round workload seed."""
    return int(
        np.random.SeedSequence([int(root_seed), int(round_index)]).generate_state(1)[0]
    )


@dataclass
class FuzzReport:
    """Outcome of one bounded fuzz run."""

    seed: int
    profiles: list[str]
    engines: list[str]
    rounds: int = 0
    jobs: int = 0
    comparisons: int = 0
    elapsed_seconds: float = 0.0
    service_checked: bool = False
    per_profile: dict[str, int] = field(default_factory=dict)
    failures: list[ConformanceFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no conformance violation was found."""
        return not self.failures

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (CLI ``--json`` / CI artifact)."""
        return {
            "seed": self.seed,
            "profiles": list(self.profiles),
            "engines": list(self.engines),
            "rounds": self.rounds,
            "jobs": self.jobs,
            "comparisons": self.comparisons,
            "elapsed_seconds": self.elapsed_seconds,
            "service_checked": self.service_checked,
            "per_profile": dict(self.per_profile),
            "ok": self.ok,
            "failures": [f.to_dict() for f in self.failures],
        }

    def summary(self) -> str:
        """Printable multi-line report."""
        head = (
            f"fuzz: seed={self.seed} rounds={self.rounds} jobs={self.jobs} "
            f"comparisons={self.comparisons}"
            f"{' +service' if self.service_checked else ''} "
            f"in {self.elapsed_seconds:.1f}s -> "
            f"{'OK' if self.ok else f'{len(self.failures)} FAILURE(S)'}"
        )
        lines = [head]
        lines.append(
            "  profiles: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.per_profile.items()))
        )
        for failure in self.failures:
            lines.append(failure.describe())
            lines.append("replay:")
            lines.append(failure.replay_hint())
        return "\n".join(lines)


def run_fuzz(
    config=None,
    *,
    seed: int = 0,
    count: int | None = None,
    time_budget: float | None = None,
    batch_size: int = 25,
    min_length: int = 40,
    max_length: int = 160,
    profiles: Sequence[str] | None = None,
    engines: Sequence[str] | None = None,
    include_service: bool = True,
    shrink: bool = True,
    progress: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Run bounded differential fuzzing and return the aggregate report.

    Parameters
    ----------
    config:
        :class:`repro.api.AlignConfig` shared by every engine and the
        service path (``scoring``/``xdrop``/``trace`` plus the serving
        knobs).  Defaults to ``AlignConfig()``.
    seed:
        Root seed; round ``r`` uses :func:`derive_round_seed`.
    count, time_budget:
        Stop once at least *count* jobs were checked, or *time_budget*
        seconds elapsed — whichever comes first when both are given.
        With neither given, ``count`` defaults to 500.
    batch_size:
        Jobs generated per (round, profile).
    min_length, max_length:
        Template length range of the generated workloads.
    profiles:
        Workload profiles to cycle through (default: every registered one).
    engines:
        Engines under test (default: every registered one).
    include_service, shrink:
        Forwarded to the :class:`ConformanceRunner`.
    progress:
        Optional per-round callback receiving a one-line status string.
    """
    if config is None:
        from ..api import AlignConfig

        config = AlignConfig()
    if count is None and time_budget is None:
        count = 500
    available = list_profiles()
    names = [str(p).lower() for p in (profiles if profiles else available)]
    unknown = sorted(set(names) - set(available))
    if unknown:
        raise ConfigurationError(
            f"unknown workload profile(s) {', '.join(map(repr, unknown))}; "
            f"available: {', '.join(available)}"
        )

    runner = ConformanceRunner(
        config=config,
        engines=engines,
        include_service=include_service,
        shrink=shrink,
    )
    report = FuzzReport(seed=int(seed), profiles=names, engines=runner.engine_names)
    started = time.perf_counter()
    round_index = 0
    while True:
        elapsed = time.perf_counter() - started
        if count is not None and report.jobs >= count:
            break
        if time_budget is not None and elapsed >= time_budget:
            break
        profile = names[round_index % len(names)]
        spec = WorkloadSpec(
            count=batch_size,
            seed=derive_round_seed(seed, round_index),
            min_length=min_length,
            max_length=max_length,
            xdrop=config.xdrop,
            scoring=config.scoring,
        )
        try:
            workload = generate_workload(profile, spec)
            round_report = runner.run_workload(workload)
        except Exception as error:
            # A crash anywhere in a round is a recorded failure, never an
            # abort: the campaign must always end with a report (and the
            # CI artifact) carrying the round's seed for replay.
            report.rounds += 1
            report.failures.append(
                ConformanceFailure(
                    engine="(fuzz-round)",
                    mismatches=[
                        FieldMismatch(
                            "exception",
                            "a completed round",
                            f"{type(error).__name__}: {error}",
                        )
                    ],
                    query="",
                    target="",
                    seed=(0, 0, 1),
                    config=config.to_dict(),
                    job_index=-1,
                    profile=profile,
                    workload_seed=spec.seed,
                )
            )
            if progress is not None:
                progress(f"round {round_index}: {profile} CRASHED ({error})")
            round_index += 1
            continue
        report.rounds += 1
        report.jobs += round_report.jobs
        report.comparisons += round_report.comparisons
        report.service_checked = report.service_checked or round_report.service_checked
        report.per_profile[profile] = (
            report.per_profile.get(profile, 0) + round_report.jobs
        )
        report.failures.extend(round_report.failures)
        if progress is not None:
            progress(
                f"round {round_index}: {profile} x{round_report.jobs} "
                f"({'ok' if round_report.ok else 'FAIL'}) "
                f"total={report.jobs} jobs"
            )
        round_index += 1
    report.elapsed_seconds = time.perf_counter() - started
    return report
