"""Tests for the instruction Roofline model, instrumentation and report."""

from __future__ import annotations

import json

import pytest

from repro.core import ScoringScheme, random_sequence, xdrop_extend
from repro.errors import ConfigurationError
from repro.gpusim import (
    BlockWorkTrace,
    KernelExecutionModel,
    KernelWorkload,
    TESLA_V100,
)
from repro.roofline import (
    adapted_ceiling,
    analyze_kernel,
    build_series,
    render_ascii,
    roofline_ceilings,
)


@pytest.fixture
def traced_workload(rng) -> KernelWorkload:
    blocks = []
    for _ in range(5):
        length = int(rng.integers(100, 200))
        q = random_sequence(length, rng)
        res = xdrop_extend(q, q, ScoringScheme(), xdrop=30, trace=True)
        blocks.append(BlockWorkTrace.from_extension(res, length, length))
    return KernelWorkload(blocks=blocks, replication=2000.0)


class TestAdaptedCeiling:
    def test_full_occupancy_reaches_int32_ceiling(self):
        # Every anti-diagonal keeps all scheduled threads busy.
        ceiling = adapted_ceiling(
            TESLA_V100, per_iteration_ops=[128] * 100, blocks=100_000, threads_per_block=128
        )
        assert ceiling == pytest.approx(TESLA_V100.int32_peak_warp_gips)

    def test_half_occupancy_halves_the_ceiling(self):
        ceiling = adapted_ceiling(
            TESLA_V100, per_iteration_ops=[64] * 100, blocks=100_000, threads_per_block=128
        )
        assert ceiling == pytest.approx(TESLA_V100.int32_peak_warp_gips / 2)

    def test_ceiling_never_exceeds_int32_roof(self, rng):
        ops = rng.integers(1, 5000, size=200)
        ceiling = adapted_ceiling(TESLA_V100, ops, blocks=1000, threads_per_block=1024)
        assert ceiling <= TESLA_V100.int32_peak_warp_gips + 1e-9

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            adapted_ceiling(TESLA_V100, [], blocks=10, threads_per_block=64)
        with pytest.raises(ConfigurationError):
            adapted_ceiling(TESLA_V100, [1, 2], blocks=0, threads_per_block=64)
        with pytest.raises(ConfigurationError):
            adapted_ceiling(TESLA_V100, [-1], blocks=10, threads_per_block=64)


class TestRooflineCeilings:
    def test_ceiling_ordering(self):
        ceilings = roofline_ceilings(
            TESLA_V100, per_iteration_ops=[100] * 50, blocks=10_000, threads_per_block=128
        )
        assert ceilings.adapted_warp_gips <= ceilings.int32_warp_gips
        assert ceilings.int32_warp_gips < ceilings.peak_warp_gips
        assert ceilings.ridge_point > 0

    def test_roof_at(self):
        ceilings = roofline_ceilings(
            TESLA_V100, per_iteration_ops=[128] * 10, blocks=1000, threads_per_block=128
        )
        # Deep in the memory-bound region the roof is the bandwidth line.
        assert ceilings.roof_at(0.001) == pytest.approx(0.9, rel=0.01)
        # Far right the roof is the compute ceiling.
        assert ceilings.roof_at(100.0) == pytest.approx(ceilings.adapted_warp_gips)
        with pytest.raises(ConfigurationError):
            ceilings.roof_at(-1.0)


class TestAnalyzeKernel:
    def test_analysis_fields(self, traced_workload):
        model = KernelExecutionModel(TESLA_V100)
        timing = model.execute(traced_workload, threads_per_block=64)
        analysis = analyze_kernel(TESLA_V100, timing, traced_workload, label="X=30")
        assert analysis.point.operational_intensity > 0
        assert analysis.point.warp_gips > 0
        assert analysis.point.label == "X=30"
        assert analysis.attainable_gips > 0
        assert 0 <= analysis.efficiency <= 1.5

    def test_paper_claim_compute_bound_and_near_ceiling(self, traced_workload):
        # Fig. 13: the batched kernel is compute bound (OI right of the
        # ridge) and lands close to the adapted ceiling.
        model = KernelExecutionModel(TESLA_V100)
        timing = model.execute(traced_workload, threads_per_block=64)
        analysis = analyze_kernel(TESLA_V100, timing, traced_workload)
        assert analysis.is_compute_bound
        assert analysis.efficiency > 0.4

    def test_empty_workload_rejected(self):
        KernelExecutionModel(TESLA_V100)
        with pytest.raises(ConfigurationError):
            analyze_kernel(TESLA_V100, None, KernelWorkload())  # type: ignore[arg-type]


class TestRooflineReport:
    def test_series_and_json(self, traced_workload):
        model = KernelExecutionModel(TESLA_V100)
        timing = model.execute(traced_workload, threads_per_block=64)
        analysis = analyze_kernel(TESLA_V100, timing, traced_workload)
        series = build_series(analysis)
        assert len(series.operational_intensity) == len(series.int32_roof)
        assert max(series.int32_roof) <= TESLA_V100.int32_peak_warp_gips + 1e-9
        payload = json.loads(series.to_json())
        assert payload["point_label"] == "LOGAN"

    def test_series_validation(self, traced_workload):
        model = KernelExecutionModel(TESLA_V100)
        timing = model.execute(traced_workload, threads_per_block=64)
        analysis = analyze_kernel(TESLA_V100, timing, traced_workload)
        with pytest.raises(ConfigurationError):
            build_series(analysis, oi_min=10, oi_max=1)
        with pytest.raises(ConfigurationError):
            build_series(analysis, samples=1)

    def test_ascii_rendering(self, traced_workload):
        model = KernelExecutionModel(TESLA_V100)
        timing = model.execute(traced_workload, threads_per_block=64)
        analysis = analyze_kernel(TESLA_V100, timing, traced_workload)
        art = render_ascii(build_series(analysis))
        assert "*" in art
        assert "=" in art
        assert "warp GIPS" in art
        with pytest.raises(ConfigurationError):
            render_ascii(build_series(analysis), width=5, height=5)
