"""Batch alignment job containers shared by every batch runner.

A *job* is one candidate pair to align: the two sequences plus the seed that
anchors the extension.  BELLA's overlap stage produces jobs; the SeqAn-like
CPU runner, the ksw2 runner and the LOGAN GPU-model runner all consume the
same job type, which is what makes the aligner pluggable inside the BELLA
pipeline (Section V of the paper).

``BatchWorkSummary`` aggregates the work accounting of a finished batch —
cells, iterations, alignments — in the exact units the CPU and GPU cost
models charge for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..perf.metrics import gcups as _gcups
from .encoding import encode
from .result import SeedAlignmentResult
from .seed_extend import Seed

__all__ = ["AlignmentJob", "BatchWorkSummary", "summarize_results"]


@dataclass
class AlignmentJob:
    """One pairwise alignment task: two sequences and a seed anchor.

    Attributes
    ----------
    query, target:
        The sequences, stored encoded (``uint8``).  Construction accepts
        strings and encodes them once so downstream kernels never re-encode.
    seed:
        The exact-match anchor from which the X-drop extensions start.
    pair_id:
        Opaque identifier carried through to the result (BELLA uses the
        (row, column) index of the candidate overlap matrix).
    """

    query: np.ndarray
    target: np.ndarray
    seed: Seed
    pair_id: int = 0

    def __post_init__(self) -> None:
        self.query = encode(self.query)
        self.target = encode(self.target)

    @property
    def query_length(self) -> int:
        """Length of the query sequence in bases."""
        return int(len(self.query))

    @property
    def target_length(self) -> int:
        """Length of the target sequence in bases."""
        return int(len(self.target))

    def estimated_cells(self, xdrop: int, gap_penalty: int = 1) -> int:
        """Cheap upper-ish estimate of DP cells this job will evaluate.

        Used by the multi-GPU load balancer to split a batch before any
        alignment has run: the band half-width is roughly ``X / |gap|`` and
        the extension sweeps about ``query_length + target_length``
        anti-diagonals, clipped by the full-matrix size.
        """
        band = 2 * max(1, xdrop // max(1, abs(gap_penalty))) + 1
        sweep = self.query_length + self.target_length
        full = (self.query_length + 1) * (self.target_length + 1)
        return int(min(band * sweep, full))


@dataclass
class BatchWorkSummary:
    """Aggregate work performed by a batch of alignments.

    Attributes
    ----------
    alignments:
        Number of seed alignments performed (each has two extensions).
    extensions:
        Number of X-drop extensions executed (``<= 2 * alignments``; seeds
        flush against a sequence end produce a trivial empty extension).
    cells:
        Total DP cells evaluated.
    iterations:
        Total anti-diagonal (or DP-row) iterations executed.
    max_band_width:
        Widest anti-diagonal encountered (drives thread scheduling on the
        GPU and SIMD efficiency on the CPU).
    """

    alignments: int = 0
    extensions: int = 0
    cells: int = 0
    iterations: int = 0
    max_band_width: int = 0

    def merge(self, other: "BatchWorkSummary") -> "BatchWorkSummary":
        """Return a new summary combining *self* and *other*."""
        return BatchWorkSummary(
            alignments=self.alignments + other.alignments,
            extensions=self.extensions + other.extensions,
            cells=self.cells + other.cells,
            iterations=self.iterations + other.iterations,
            max_band_width=max(self.max_band_width, other.max_band_width),
        )

    def scaled(self, factor: float) -> "BatchWorkSummary":
        """Summary scaled to a larger batch of the same pair distribution.

        Used to extrapolate a measured laptop-scale run to the paper's
        100 K-pair (or 235 M-alignment) workload: the per-pair work
        distribution is identical, only the number of pairs changes.
        """
        return BatchWorkSummary(
            alignments=int(round(self.alignments * factor)),
            extensions=int(round(self.extensions * factor)),
            cells=int(round(self.cells * factor)),
            iterations=int(round(self.iterations * factor)),
            max_band_width=self.max_band_width,
        )

    def gcups(self, seconds: float) -> float:
        """Giga cell updates per second for this work executed in *seconds*.

        Delegates to :func:`repro.perf.metrics.gcups` (one clamp rule for
        the whole library: degenerate durations return ``0.0``, never
        ``inf``, so serialised reports stay valid JSON).
        """
        return _gcups(self.cells, seconds)


def summarize_results(results: Iterable[SeedAlignmentResult]) -> BatchWorkSummary:
    """Build a :class:`BatchWorkSummary` from per-alignment results."""
    summary = BatchWorkSummary()
    for res in results:
        summary.alignments += 1
        summary.extensions += 2
        summary.cells += res.left.cells_computed + res.right.cells_computed
        summary.iterations += res.left.anti_diagonals + res.right.anti_diagonals
        for ext in (res.left, res.right):
            if ext.band_widths is not None and len(ext.band_widths):
                summary.max_band_width = max(
                    summary.max_band_width, int(ext.band_widths.max())
                )
    return summary
