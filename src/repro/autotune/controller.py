"""Feedback controllers over windowed kernel telemetry.

Both controllers follow the same discipline — the control-theory
hygiene that keeps an online tuner from oscillating or running away:

* **windowed signal** — decisions read a
  :class:`repro.core.xdrop_batch.WindowedKernelStats` ring buffer, never
  lifetime accumulators, so the signal tracks *current* traffic;
* **dead band** — nothing moves while the live fraction sits between
  ``low_live_fraction`` and ``high_live_fraction``;
* **hysteresis** — reversing the previous direction requires the signal
  to clear the band edge by an extra margin;
* **cooldown** — after any decision the controller sits out a few
  batches, and its window restarts after an *applied* one (telemetry
  gathered under the old knob value does not describe the new one);
* **bounded steps** — knobs move geometrically (halve/double, one
  ``compact_step``) inside hard bounds, so even a pathological signal
  walks a knob to a bound and stops, never past it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.xdrop_batch import BatchKernelStats, WindowedKernelStats
from .options import AutotuneOptions

__all__ = ["Decision", "BinController", "EngineKnobController"]


@dataclass
class Decision:
    """One proposed (and later resolved) knob change.

    ``action`` starts as ``"proposed"`` and is resolved by the manager to
    ``"applied"`` (actuated), ``"advised"`` (advise mode — counted only),
    ``"vetoed"`` (the what-if planner predicted no gain) or
    ``"reverted"`` (kill-switch rollback record).
    """

    knob: str
    current: float
    proposed: float
    signal: float
    reason: str
    length_bin: int | None = None
    predicted_payoff: float | None = None
    action: str = "proposed"

    def to_dict(self) -> dict:
        return {
            "knob": self.knob,
            "current": self.current,
            "proposed": self.proposed,
            "signal": self.signal,
            "reason": self.reason,
            "length_bin": self.length_bin,
            "predicted_payoff": self.predicted_payoff,
            "action": self.action,
        }


@dataclass
class _KnobState:
    """Per-knob cooldown + last decision direction (for hysteresis)."""

    cooldown: int = 0
    last_direction: int = 0


class BinController:
    """Per-length-bin batch-size controller.

    The proposal mirrors the kernel's own clamped hint
    (:meth:`WindowedKernelStats.suggested_batch_size` — halve on a low
    windowed live fraction, double on a high one) but reads the band
    edges from :class:`AutotuneOptions` rather than the hint's built-in
    defaults, so a deployment can widen or narrow the dead band.  On top
    of the geometric step the controller adds exactly the pieces a raw
    hint lacks: windowing, a minimum sample count, hysteresis, cooldown,
    and hard bounds derived from the static configuration.
    """

    def __init__(
        self, length_bin: int, base_batch_size: int, options: AutotuneOptions
    ) -> None:
        self.length_bin = length_bin
        self.base_batch_size = int(base_batch_size)
        self.options = options
        self.batch_size = self.base_batch_size
        self.max_bound = options.batch_size_bound(self.base_batch_size)
        # A base below the configured floor must stay reachable: the
        # controller never forces a bin *up* just because the operator
        # chose a small static batch.
        self.min_bound = min(options.min_batch_size, self.base_batch_size)
        self.window = WindowedKernelStats(options.window)
        self.proposals = 0
        self._state = _KnobState()

    def observe(self, stats: BatchKernelStats) -> Decision | None:
        """Fold one batch's telemetry in; maybe return a proposal."""
        self.window.observe(stats)
        if self._state.cooldown > 0:
            self._state.cooldown -= 1
            return None
        if self.window.batches < self.options.min_window_batches:
            return None
        fraction = self.window.rows_weighted_live_fraction
        opts = self.options
        # Hysteresis: reversing the last move needs the signal to clear
        # the band edge by the extra margin, not just cross it.
        grow_edge = opts.high_live_fraction + (
            opts.hysteresis if self._state.last_direction < 0 else 0.0
        )
        shrink_edge = opts.low_live_fraction - (
            opts.hysteresis if self._state.last_direction > 0 else 0.0
        )
        proposed = self.batch_size
        if fraction > grow_edge:
            proposed = min(self.batch_size * 2, self.max_bound)
        elif fraction < shrink_edge:
            proposed = max(self.batch_size // 2, self.min_bound)
        if proposed == self.batch_size:
            return None
        growing = proposed > self.batch_size
        self.proposals += 1
        return Decision(
            knob="batch_size",
            current=self.batch_size,
            proposed=proposed,
            signal=fraction,
            reason=(
                "windowed live fraction "
                f"{fraction:.3f} {'above' if growing else 'below'} the "
                f"{'growth' if growing else 'shrink'} band edge"
            ),
            length_bin=self.length_bin,
        )

    def commit(self, decision: Decision) -> None:
        """The decision was applied: adopt it and restart the window."""
        self._state.last_direction = (
            1 if decision.proposed > self.batch_size else -1
        )
        self.batch_size = int(decision.proposed)
        self._state.cooldown = self.options.cooldown_batches
        # Telemetry gathered under the old batch size does not describe
        # the new one — restart the window.
        self.window = WindowedKernelStats(self.options.window)

    def reject(self, decision: Decision) -> None:
        """The decision was advised/vetoed: keep state, still cool down."""
        self._state.cooldown = self.options.cooldown_batches

    def reset(self) -> None:
        """Kill-switch rollback: back to the static batch size."""
        self.batch_size = self.base_batch_size
        self._state = _KnobState()
        self.window = WindowedKernelStats(self.options.window)


class EngineKnobController:
    """Service-wide controller of the kernel's engine-level overrides.

    ``tile_width`` follows the observed union-band window: a window wider
    than the tile pays a fold pass per extra tile every step (grow the
    tile), a tile far wider than any window is inert (shrink it back).
    ``compact_threshold`` follows the live fraction: a padding-heavy
    window compacts too late (raise the threshold), a uniformly live one
    relaxes any raise back down — but never below the *static* threshold
    it started from.  Going below the static value trades a bounded cost
    (occasional compaction copies) for an unbounded one (dead rows carried
    for the rest of every sweep), which measurement shows is a net loss on
    skewed traffic, so the controller treats the static value as a floor.
    Both knobs are result-invariant kernel tuning — the conformance
    property PR 2 established — so stepping them online can change speed
    only, never output bits.
    """

    #: Knobs this controller can drive, in decision order.
    KNOBS = ("tile_width", "compact_threshold")

    def __init__(
        self,
        options: AutotuneOptions,
        tile_width: int,
        compact_threshold: float,
    ) -> None:
        self.options = options
        self.tile_width = int(tile_width)
        self.compact_threshold = float(compact_threshold)
        #: Relaxing ``compact_threshold`` stops here, never below the
        #: static starting point (see class docstring).
        self.base_compact_threshold = float(compact_threshold)
        self.window = WindowedKernelStats(options.window)
        self.proposals = 0
        self._states = {knob: _KnobState() for knob in self.KNOBS}

    def observe(self, stats: BatchKernelStats) -> list[Decision]:
        """Fold one batch's telemetry in; return any knob proposals."""
        self.window.observe(stats)
        for state in self._states.values():
            if state.cooldown > 0:
                state.cooldown -= 1
        if self.window.batches < self.options.min_window_batches:
            return []
        merged = self.window.merged()
        decisions = []
        tile = self._propose_tile(merged)
        if tile is not None:
            decisions.append(tile)
        compact = self._propose_compact(merged)
        if compact is not None:
            decisions.append(compact)
        self.proposals += len(decisions)
        return decisions

    def _propose_tile(self, merged: BatchKernelStats) -> Decision | None:
        if self._states["tile_width"].cooldown > 0:
            return None
        opts = self.options
        peak = merged.peak_window
        if peak <= 0:
            return None
        proposed = self.tile_width
        if peak > self.tile_width and self.tile_width < opts.max_tile_width:
            proposed = min(self.tile_width * 2, opts.max_tile_width)
            reason = (
                f"peak union window {peak} exceeds the tile "
                f"({self.tile_width} cols): widen to cut fold passes"
            )
        elif (
            peak < self.tile_width // 2
            and self.tile_width > opts.min_tile_width
        ):
            proposed = max(self.tile_width // 2, opts.min_tile_width)
            reason = (
                f"peak union window {peak} is under half the tile "
                f"({self.tile_width} cols): shrink back"
            )
        if proposed == self.tile_width:
            return None
        return Decision(
            knob="tile_width",
            current=self.tile_width,
            proposed=proposed,
            signal=float(peak),
            reason=reason,
        )

    def _propose_compact(self, merged: BatchKernelStats) -> Decision | None:
        if self._states["compact_threshold"].cooldown > 0:
            return None
        opts = self.options
        if merged.row_steps == 0:
            return None
        fraction = merged.rows_weighted_live_fraction
        proposed = self.compact_threshold
        if (
            fraction < opts.low_live_fraction
            and self.compact_threshold < opts.max_compact_threshold
        ):
            proposed = min(
                round(self.compact_threshold + opts.compact_step, 4),
                opts.max_compact_threshold,
            )
            reason = (
                f"windowed live fraction {fraction:.3f} is padding-heavy: "
                "compact earlier"
            )
        else:
            floor = max(opts.min_compact_threshold, self.base_compact_threshold)
            if (
                fraction > opts.high_live_fraction
                and self.compact_threshold > floor
            ):
                proposed = max(
                    round(self.compact_threshold - opts.compact_step, 4),
                    floor,
                )
                reason = (
                    f"windowed live fraction {fraction:.3f} is uniformly "
                    "live: relax the raised threshold back toward the "
                    "static value"
                )
        if proposed == self.compact_threshold:
            return None
        return Decision(
            knob="compact_threshold",
            current=self.compact_threshold,
            proposed=proposed,
            signal=fraction,
            reason=reason,
        )

    def commit(self, decision: Decision) -> None:
        """The decision was applied: adopt it and restart the window."""
        state = self._states[decision.knob]
        state.last_direction = 1 if decision.proposed > decision.current else -1
        if decision.knob == "tile_width":
            self.tile_width = int(decision.proposed)
        else:
            self.compact_threshold = float(decision.proposed)
        state.cooldown = self.options.cooldown_batches
        self.window = WindowedKernelStats(self.options.window)

    def reject(self, decision: Decision) -> None:
        """The decision was advised/vetoed: keep state, still cool down."""
        self._states[decision.knob].cooldown = self.options.cooldown_batches
