"""Tests of the asynchronous alignment service (repro.service).

Covers each stage in isolation — cache, queue, batcher, worker pool — and
the acceptance criterion end-to-end: jobs submitted individually through
the service must produce results bit-identical to one direct
``align_batch`` call on the batched engine, with real multi-job batches
formed and cache hits on resubmission.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.bella import BellaPipeline
from repro.core import ScoringScheme, Seed
from repro.core.job import AlignmentJob
from repro.data import PairSetSpec, generate_pair_set
from repro.engine import get_engine
from repro.errors import ServiceError
from repro.service import (
    AdaptiveBatcher,
    AlignmentService,
    AlignmentTicket,
    BatchPolicy,
    ResultCache,
    ShardedWorkerPool,
    SubmissionQueue,
    job_cache_key,
)

SCORING = ScoringScheme()


def mixed_jobs(num_pairs=16, rng_seed=11, min_length=120, max_length=700):
    """Deterministic mixed-length batch with mid-read seeds."""
    return generate_pair_set(
        PairSetSpec(
            num_pairs=num_pairs,
            min_length=min_length,
            max_length=max_length,
            pairwise_error_rate=0.15,
            unrelated_fraction=0.2,
            seed_placement="middle",
            rng_seed=rng_seed,
        )
    )


def tiny_job(text="ACGTACGTACGTACGT"):
    return AlignmentJob(query=text, target=text, seed=Seed(0, 0, 4))


class TestResultCache:
    def test_key_is_content_addressed(self):
        a = tiny_job()
        b = tiny_job()  # equal content, different object / pair_id
        b.pair_id = 99
        assert job_cache_key(a, SCORING, 10) == job_cache_key(b, SCORING, 10)

    def test_key_depends_on_parameters(self):
        job = tiny_job()
        base = job_cache_key(job, SCORING, 10)
        assert job_cache_key(job, SCORING, 20) != base
        assert job_cache_key(job, ScoringScheme(match=2), 10) != base
        other = AlignmentJob(
            query="ACGTACGTACGTACGT", target="ACGTACGTACGTACGT", seed=Seed(4, 4, 4)
        )
        assert job_cache_key(other, SCORING, 10) != base

    def test_hit_miss_counters(self):
        cache = ResultCache(capacity=4)
        key = job_cache_key(tiny_job(), SCORING, 10)
        assert cache.get(key) is None
        cache.put(key, "result")
        assert cache.get(key) == "result"
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats().evictions == 1

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)

    def test_fresh_cache_gauge_refresh_is_safe(self):
        """Regression: zero-lookup snapshots must not divide by zero."""
        from repro.obs import get_observability

        obs = get_observability().scoped()
        cache = ResultCache(capacity=4, obs=obs)
        cache.refresh_gauges()
        stats = cache.stats()  # snapshot before any get()
        assert stats.lookups == 0
        assert stats.hit_rate == 0.0
        snap = obs.registry.snapshot()
        assert snap.value("repro_cache_hit_rate") == 0.0

    def test_hit_rate_gauge_tracks_lookups(self):
        from repro.obs import get_observability

        obs = get_observability().scoped()
        cache = ResultCache(capacity=4, obs=obs)
        cache.get("a")  # miss
        cache.put("a", 1)
        cache.get("a")  # hit
        snap = obs.registry.snapshot()
        assert snap.value("repro_cache_hit_rate") == pytest.approx(0.5)


class TestCacheKeyConfigRegression:
    """Two configs must never collide on one content-addressed key.

    Regression guard: the key has to include the *full* scoring scheme and
    the X-drop threshold, not just the sequence digests — otherwise a
    cache shared across parameter changes would serve results computed
    under a different configuration.
    """

    def test_full_scoring_scheme_participates(self):
        job = tiny_job()
        keys = {
            job_cache_key(job, ScoringScheme(match=1, mismatch=-1, gap=-1), 10),
            job_cache_key(job, ScoringScheme(match=2, mismatch=-1, gap=-1), 10),
            job_cache_key(job, ScoringScheme(match=1, mismatch=-2, gap=-1), 10),
            job_cache_key(job, ScoringScheme(match=1, mismatch=-1, gap=-2), 10),
        }
        assert len(keys) == 4  # every scoring field changes the address

    def test_xdrop_participates(self):
        job = tiny_job()
        assert len({job_cache_key(job, SCORING, x) for x in (0, 1, 10, 100)}) == 4

    def test_shared_cache_does_not_collide_across_configs(self):
        # Same sequences under two configs -> two distinct entries in one
        # physical cache, each lookup returning its own result.
        cache = ResultCache(capacity=8)
        job = tiny_job()
        key_a = job_cache_key(job, SCORING, 10)
        key_b = job_cache_key(job, ScoringScheme(match=2, mismatch=-2, gap=-2), 10)
        key_c = job_cache_key(job, SCORING, 99)
        cache.put(key_a, "result-a")
        cache.put(key_b, "result-b")
        cache.put(key_c, "result-c")
        assert cache.get(key_a) == "result-a"
        assert cache.get(key_b) == "result-b"
        assert cache.get(key_c) == "result-c"
        assert len(cache) == 3

    def test_engine_instance_with_other_defaults_cannot_poison_cache(self):
        # The service aligns with ITS OWN scoring/xdrop even when handed an
        # engine instance constructed with different defaults, so cached
        # results always match what the cache key claims.
        jobs = mixed_jobs(num_pairs=6, rng_seed=37, min_length=120, max_length=300)
        expected = get_engine("batched", scoring=SCORING, xdrop=7).align_batch(jobs)
        mismatched_engine = get_engine("batched", scoring=SCORING, xdrop=500)

        def work(results):
            # X changes the explored band, so the per-extension work
            # accounting is a reliable fingerprint of the threshold used.
            return [
                (r.left.cells_computed, r.right.cells_computed) for r in results
            ]

        # Precondition: the two thresholds genuinely disagree on this batch.
        assert work(mismatched_engine.align_batch(jobs).results) != work(
            expected.results
        )
        service = AlignmentService(engine=mismatched_engine, scoring=SCORING, xdrop=7)
        results = service.map(jobs)
        assert [r.score for r in results] == expected.scores()
        assert work(results) == work(expected.results)
        # And the cache serves the xdrop=7 results, not xdrop=500 ones.
        again = service.map(jobs)
        assert service.stats().cache.hits == len(jobs)
        assert work(again) == work(expected.results)
        service.shutdown()


class TestSubmissionQueue:
    def test_fifo_order_and_depth(self):
        queue = SubmissionQueue(capacity=8)
        tickets = [AlignmentTicket(tiny_job()) for _ in range(3)]
        queue.put_many(tickets)
        assert queue.depth == 3
        assert queue.pop(max_items=2) == tickets[:2]
        assert queue.pop(max_items=5) == tickets[2:]
        assert queue.pop() == []

    def test_backpressure_timeout(self):
        queue = SubmissionQueue(capacity=1)
        queue.put(AlignmentTicket(tiny_job()))
        with pytest.raises(ServiceError, match="backpressure"):
            queue.put(AlignmentTicket(tiny_job()), timeout=0.05)

    def test_blocked_put_resumes_after_pop(self):
        queue = SubmissionQueue(capacity=1)
        queue.put(AlignmentTicket(tiny_job()))
        done = threading.Event()

        def producer():
            queue.put(AlignmentTicket(tiny_job()), timeout=5.0)
            done.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.02)
        assert not done.is_set()  # still blocked on the full queue
        queue.pop()
        assert done.wait(2.0)
        thread.join(timeout=2.0)

    def test_closed_queue_rejects(self):
        queue = SubmissionQueue(capacity=2)
        queue.close()
        with pytest.raises(ServiceError, match="closed"):
            queue.put(AlignmentTicket(tiny_job()))

    def test_invalid_capacity(self):
        with pytest.raises(ServiceError):
            SubmissionQueue(capacity=0)


class TestAdaptiveBatcher:
    def _ticket(self, length):
        seq = "ACGT" * (length // 4 + 1)
        return AlignmentTicket(
            AlignmentJob(query=seq[:length], target=seq[:length], seed=Seed(0, 0, 4))
        )

    def test_size_triggered_flush(self):
        batcher = AdaptiveBatcher(BatchPolicy(max_batch_size=3, bin_width=0))
        assert batcher.add(self._ticket(100), now=0.0) is None
        assert batcher.add(self._ticket(100), now=0.0) is None
        batch = batcher.add(self._ticket(100), now=0.0)
        assert batch is not None and batch.size == 3 and batch.reason == "size"
        assert batcher.pending == 0

    def test_length_binning_separates_classes(self):
        batcher = AdaptiveBatcher(BatchPolicy(max_batch_size=8, bin_width=500))
        batcher.add(self._ticket(100), now=0.0)   # bin 0 (total 200)
        batcher.add(self._ticket(400), now=0.0)   # bin 1 (total 800)
        batches = batcher.flush_all()
        assert len(batches) == 2
        assert {b.reason for b in batches} == {"drain"}

    def test_wait_triggered_flush(self):
        batcher = AdaptiveBatcher(BatchPolicy(max_batch_size=8, max_wait_seconds=0.5))
        batcher.add(self._ticket(100), now=10.0)
        assert batcher.due(now=10.2) == []
        assert batcher.next_deadline(now=10.2) == pytest.approx(0.3)
        due = batcher.due(now=10.6)
        assert len(due) == 1 and due[0].reason == "wait"
        assert batcher.next_deadline(now=10.6) is None

    def test_invalid_policy(self):
        with pytest.raises(ServiceError):
            BatchPolicy(max_batch_size=0)
        with pytest.raises(ServiceError):
            BatchPolicy(max_wait_seconds=-1.0)


class TestShardedWorkerPool:
    def test_results_stay_in_job_order(self):
        jobs = mixed_jobs(num_pairs=10, rng_seed=5)
        engine = get_engine("batched", scoring=SCORING, xdrop=30)
        pool = ShardedWorkerPool(engine, num_workers=3, xdrop=30)
        run = pool.run_batch(jobs)
        direct = engine.align_batch(jobs)
        assert [r.score for r in run.results] == direct.scores()
        assert run.summary.cells == direct.summary.cells
        assert run.shards_used == 3

    def test_more_workers_than_jobs(self):
        jobs = mixed_jobs(num_pairs=2, rng_seed=6)
        engine = get_engine("batched", scoring=SCORING, xdrop=20)
        pool = ShardedWorkerPool(engine, num_workers=6, xdrop=20)
        run = pool.run_batch(jobs)
        assert len(run.results) == 2
        assert run.shards_used == 2

    def test_empty_batch(self):
        pool = ShardedWorkerPool(get_engine("batched"), num_workers=2)
        run = pool.run_batch([])
        assert run.results == [] and run.shards_used == 0

    def test_per_worker_accounting(self):
        jobs = mixed_jobs(num_pairs=8, rng_seed=7)
        engine = get_engine("batched", scoring=SCORING, xdrop=25)
        pool = ShardedWorkerPool(engine, num_workers=2, xdrop=25)
        run = pool.run_batch(jobs)
        assert sum(w.jobs for w in pool.worker_stats) == len(jobs)
        assert sum(w.cells for w in pool.worker_stats) == run.summary.cells

    def test_invalid_worker_count(self):
        with pytest.raises(ServiceError):
            ShardedWorkerPool(get_engine("batched"), num_workers=0)


class TestAlignmentServiceEndToEnd:
    """The PR's acceptance criterion."""

    def test_individual_submissions_match_direct_batch(self):
        jobs = mixed_jobs(num_pairs=20, rng_seed=13)
        direct = get_engine("batched", scoring=SCORING, xdrop=30).align_batch(jobs)

        service = AlignmentService(
            engine="batched",
            scoring=SCORING,
            xdrop=30,
            num_workers=2,
            policy=BatchPolicy(max_batch_size=6, bin_width=600),
        )
        tickets = [service.submit(job) for job in jobs]
        service.drain()
        results = [t.result(timeout=30.0) for t in tickets]

        # Bit-identical to the direct batch call.
        for got, ref in zip(results, direct.results):
            assert got.score == ref.score
            assert got.query_begin == ref.query_begin
            assert got.query_end == ref.query_end
            assert got.target_begin == ref.target_begin
            assert got.target_end == ref.target_end
            assert got.left.best_score == ref.left.best_score
            assert got.right.best_score == ref.right.best_score

        stats = service.stats()
        assert stats.completed == len(jobs)
        # At least one genuinely multi-job batch was formed.
        assert stats.batches_formed >= 1
        assert max(t.batch_size for t in tickets) > 1
        assert stats.cells == direct.summary.cells

        # Resubmission: nonzero cache hit rate, identical results, no new work.
        tickets2 = [service.submit(job) for job in jobs]
        service.drain()
        assert all(t.cache_hit for t in tickets2)
        assert [t.result().score for t in tickets2] == direct.scores()
        stats2 = service.stats()
        assert stats2.cache.hit_rate > 0
        assert stats2.cells == stats.cells  # nothing re-aligned
        service.shutdown()

    def test_background_thread_mode(self):
        jobs = mixed_jobs(num_pairs=9, rng_seed=17)
        direct = get_engine("batched", scoring=SCORING, xdrop=25).align_batch(jobs)
        service = AlignmentService(
            engine="batched",
            scoring=SCORING,
            xdrop=25,
            policy=BatchPolicy(max_batch_size=4, max_wait_seconds=0.01),
        ).start()
        try:
            tickets = service.submit_many(jobs)
            # No drain(): the background loop must flush via size/wait.
            results = [t.result(timeout=30.0) for t in tickets]
            assert [r.score for r in results] == direct.scores()
        finally:
            service.shutdown()
        assert not service.running

    def test_map_convenience(self):
        jobs = mixed_jobs(num_pairs=6, rng_seed=19)
        with AlignmentService(engine="batched", scoring=SCORING, xdrop=20) as svc:
            results = svc.map(jobs)
        direct = get_engine("batched", scoring=SCORING, xdrop=20).align_batch(jobs)
        assert [r.score for r in results] == direct.scores()

    def test_submit_after_shutdown_raises(self):
        service = AlignmentService(engine="batched")
        service.shutdown()
        with pytest.raises(ServiceError, match="shut down"):
            service.submit(tiny_job())

    def test_stats_snapshot_shape(self):
        service = AlignmentService(engine="batched", num_workers=2)
        service.map(mixed_jobs(num_pairs=4, rng_seed=23))
        payload = service.stats().to_dict()
        for key in (
            "submitted",
            "completed",
            "batches_formed",
            "cache_hit_rate",
            "throughput_gcups",
            "workers",
        ):
            assert key in payload
        assert payload["throughput_gcups"] >= 0
        assert len(payload["workers"]) == 2
        service.shutdown()

    def test_inline_overflow_drains_instead_of_deadlocking(self):
        # Inline mode has no background consumer, so a full queue must
        # trigger a synchronous drain rather than a backpressure timeout:
        # submitting far more jobs than queue_capacity has to succeed.
        service = AlignmentService(
            engine="batched",
            scoring=SCORING,
            xdrop=20,
            queue_capacity=3,
            submit_timeout=0.1,
            policy=BatchPolicy(max_batch_size=64),
        )
        jobs = mixed_jobs(num_pairs=8, rng_seed=29)
        results = service.map(jobs)
        direct = get_engine("batched", scoring=SCORING, xdrop=20).align_batch(jobs)
        assert [r.score for r in results] == direct.scores()
        service.shutdown()

    def test_background_submit_counters_are_consistent(self):
        jobs = mixed_jobs(num_pairs=12, rng_seed=31)
        service = AlignmentService(
            engine="batched",
            scoring=SCORING,
            xdrop=20,
            policy=BatchPolicy(max_batch_size=3, max_wait_seconds=0.005),
        ).start()
        try:
            tickets = service.submit_many(jobs + jobs)  # duplicates race the loop
            for t in tickets:
                t.result(timeout=30.0)
            # Give the loop no chance to be mid-dispatch, then check books.
            service.drain()
            stats = service.stats()
            assert stats.submitted == 24
            assert stats.completed == 24
        finally:
            service.shutdown()


class TestServiceUnderLoad:
    """Concurrent producers hammering a background service.

    The serving contract under load: no ticket is ever dropped (every one
    resolves), the cache/submission books balance exactly, and every
    result is bit-identical to one direct ``align_batch`` call.
    """

    NUM_PRODUCERS = 4

    @staticmethod
    def _skewed_jobs():
        # A few huge jobs among many small ones (the distribution the
        # "cells" balancer exists for), mid-read seeds.
        big = mixed_jobs(num_pairs=3, rng_seed=41, min_length=900, max_length=1200)
        small = mixed_jobs(num_pairs=21, rng_seed=43, min_length=80, max_length=220)
        return big + small

    def test_no_dropped_tickets_and_bit_identical_results(self):
        jobs = self._skewed_jobs()
        direct = get_engine("batched", scoring=SCORING, xdrop=25).align_batch(jobs)
        service = AlignmentService(
            engine="batched",
            scoring=SCORING,
            xdrop=25,
            num_workers=2,
            policy=BatchPolicy(max_batch_size=5, max_wait_seconds=0.005),
        ).start()
        try:
            per_thread: list[list] = [[] for _ in range(self.NUM_PRODUCERS)]
            errors: list[BaseException] = []

            def producer(slot: int) -> None:
                try:
                    # Each producer submits the full skewed workload, one
                    # job at a time, racing the background loop.
                    for job in jobs:
                        per_thread[slot].append(service.submit(job))
                except BaseException as error:  # pragma: no cover - fail loud
                    errors.append(error)

            threads = [
                threading.Thread(target=producer, args=(slot,), daemon=True)
                for slot in range(self.NUM_PRODUCERS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            assert not errors
            assert all(not t.is_alive() for t in threads)

            # No dropped tickets: every single one resolves...
            all_tickets = [t for bucket in per_thread for t in bucket]
            assert len(all_tickets) == self.NUM_PRODUCERS * len(jobs)
            results = [t.result(timeout=30.0) for t in all_tickets]
            assert all(t.done() for t in all_tickets)

            # ...bit-identically to the direct batch call, per producer.
            for bucket in per_thread:
                got = [t.result(timeout=1.0) for t in bucket]
                for res, ref in zip(got, direct.results):
                    assert res.score == ref.score
                    assert res.query_begin == ref.query_begin
                    assert res.query_end == ref.query_end
                    assert res.target_begin == ref.target_begin
                    assert res.target_end == ref.target_end
                    assert res.left.best_score == ref.left.best_score
                    assert res.right.best_score == ref.right.best_score
            assert len(results) == len(all_tickets)

            service.drain()  # settle any jobs still in the batcher bins
            stats = service.stats()
            # Cache-hit accounting balances exactly: every submission is
            # either a hit or a miss, everything submitted completed, and
            # nothing waits in the queue or the bins.
            total = self.NUM_PRODUCERS * len(jobs)
            assert stats.submitted == total
            assert stats.completed == total
            assert stats.cache.hits + stats.cache.misses == stats.cache.lookups
            assert stats.cache.lookups == total
            assert stats.queue_depth == 0 and stats.batcher_pending == 0
            # Every distinct pair misses at least once; whether duplicate
            # submissions hit depends on the race between producers and the
            # dispatch loop, so only the lower bound is deterministic here
            # (guaranteed hits are asserted by the settle-then-resubmit
            # test below).
            assert stats.cache.misses >= len(jobs)
        finally:
            service.shutdown()

    def test_resubmission_after_settle_is_all_hits(self):
        jobs = self._skewed_jobs()[:12]
        service = AlignmentService(
            engine="batched", scoring=SCORING, xdrop=25,
            policy=BatchPolicy(max_batch_size=4, max_wait_seconds=0.005),
        ).start()
        try:
            for t in service.submit_many(jobs):
                t.result(timeout=30.0)
            before = service.stats()

            hits: list[bool] = []
            lock = threading.Lock()

            def producer() -> None:
                tickets = [service.submit(job) for job in jobs]
                resolved = [t.result(timeout=30.0) for t in tickets]
                assert len(resolved) == len(jobs)
                with lock:
                    hits.extend(t.cache_hit for t in tickets)

            threads = [
                threading.Thread(target=producer, daemon=True)
                for _ in range(self.NUM_PRODUCERS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)

            # The workload is fully cached: every concurrent resubmission
            # is a hit, and no new alignment work happens.
            assert len(hits) == self.NUM_PRODUCERS * len(jobs)
            assert all(hits)
            after = service.stats()
            assert after.cache.hits == before.cache.hits + len(hits)
            assert after.cells == before.cells
        finally:
            service.shutdown()


class TestServiceBackedPipeline:
    def test_pipeline_via_service_matches_engine_path(self, tiny_reads):
        engine_pipeline = BellaPipeline(engine="batched", k=13, xdrop=15, min_overlap=300)
        expected = engine_pipeline.run(tiny_reads)

        service = AlignmentService(engine="batched", xdrop=15)
        service_pipeline = BellaPipeline(
            service=service, k=13, xdrop=15, min_overlap=300
        )
        got = service_pipeline.run(tiny_reads)
        assert got.accepted_pairs() == expected.accepted_pairs()
        assert [o.score for o in got.overlaps] == [o.score for o in expected.overlaps]

        # A second run over the same reads is served from the cache.
        service_pipeline.run(tiny_reads)
        assert service.stats().cache.hits > 0
        service.shutdown()

    def test_service_conflicts_with_engine(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="not both"):
            BellaPipeline(service=AlignmentService(), engine="batched")


class TestDispatchResultCountGuard:
    """Regression: a mismatched engine result list must fail the batch.

    Before the guard, ``_dispatch`` zipped a truncated result list against
    the batch's tickets — the zip stopped at the shorter side, silently
    dropping the tail and leaving those submitters blocked forever.
    """

    def truncate_pool(self, service):
        """Fault-inject the worker pool: drop the last result of a batch."""
        orig = service.pool.run_batch

        def run_batch(jobs, **kwargs):
            run = orig(jobs, **kwargs)
            if len(run.results) > 1:
                run.results.pop()
            return run

        service.pool.run_batch = run_batch
        return orig

    def test_truncated_results_fail_every_ticket_loudly(self):
        jobs = mixed_jobs(num_pairs=6, rng_seed=19)
        service = AlignmentService(
            engine="batched",
            scoring=SCORING,
            xdrop=30,
            policy=BatchPolicy(max_batch_size=16, bin_width=0),
        )
        try:
            self.truncate_pool(service)
            tickets = service.submit_many(jobs)
            service.drain()
            for ticket in tickets:
                with pytest.raises(
                    ServiceError, match="refusing to scatter"
                ) as excinfo:
                    ticket.result(timeout=10.0)
                # The error names both counts so the log is diagnosable.
                assert "5 results" in str(excinfo.value)
                assert "batch of 6" in str(excinfo.value)
            # No ticket was resolved from the truncated list.
            assert service.stats().completed == 0
        finally:
            service.shutdown()

    def test_service_survives_and_serves_after_the_failure(self):
        jobs = mixed_jobs(num_pairs=4, rng_seed=23)
        service = AlignmentService(
            engine="batched",
            scoring=SCORING,
            xdrop=30,
            policy=BatchPolicy(max_batch_size=8, bin_width=0),
        )
        try:
            original = self.truncate_pool(service)
            failed = service.submit_many(jobs)
            service.drain()
            for ticket in failed:
                with pytest.raises(ServiceError):
                    ticket.result(timeout=10.0)
            # Heal the pool: the same service keeps serving correctly.
            service.pool.run_batch = original
            direct = get_engine(
                "batched", scoring=SCORING, xdrop=30
            ).align_batch(jobs)
            retried = service.submit_many(jobs)
            service.drain()
            scores = [t.result(timeout=10.0).score for t in retried]
            assert scores == direct.scores()
        finally:
            service.shutdown()

    def test_durable_rows_are_released_for_redelivery(self, tmp_path):
        from repro.api import AlignConfig, ServiceConfig

        jobs = mixed_jobs(num_pairs=4, rng_seed=29)
        config = AlignConfig(
            engine="batched",
            scoring=SCORING,
            xdrop=30,
            bin_width=0,  # one bin -> the four jobs form one batch
            service=ServiceConfig(
                max_batch_size=8,
                cache_capacity=0,
                state_path=str(tmp_path / "state.sqlite"),
            ),
        )
        service = AlignmentService(config=config)
        try:
            self.truncate_pool(service)
            tickets = service.submit_many(jobs)
            pending_before = service.store.pending_count()
            service.drain()
            for ticket in tickets:
                with pytest.raises(ServiceError):
                    ticket.result(timeout=10.0)
            # The rows went inflight for the dispatch, then back to
            # pending when the mismatched batch was refused — a restart
            # redelivers them instead of losing them.
            assert service.store.pending_count() == pending_before
        finally:
            service.shutdown()
