"""Fig. 12 — GCUPS of GPU-based aligners as a function of GPU count.

Paper reference: LOGAN reaches ~181 GCUPS on one V100 and scales to several
hundred GCUPS on 8 GPUs (3.2x more than GPU-only CUDASW++); manymap is a
flat 96.5 GCUPS line (single-GPU only); CUDASW++ attains ~70 GCUPS GPU-only
and ~105 GCUPS in hybrid mode per GPU.

The reproduction checks the ordering claims: LOGAN's curve rises with GPU
count, beats GPU-only CUDASW++ at every point and beats manymap from a
small GPU count onwards.
"""

from __future__ import annotations


def test_fig12_gcups_comparison(run_experiment):
    table = run_experiment("fig12")
    logan = table.column("logan_gcups")
    manymap = table.column("manymap_gcups")
    cudasw_gpu = table.column("cudasw_gpu_gcups")

    # LOGAN throughput increases with the number of GPUs.
    assert logan[-1] > logan[0]
    assert all(b >= a * 0.95 for a, b in zip(logan, logan[1:]))
    # manymap stays flat (single-GPU code).
    assert max(manymap) == min(manymap)
    # With all 8 GPUs LOGAN clearly outperforms both competitor curves.
    assert logan[-1] > cudasw_gpu[-1]
    assert logan[-1] > manymap[-1]
    # Multi-GPU scaling is sub-linear (load-balancer overhead), as in the paper.
    assert logan[-1] < 8 * logan[0]
