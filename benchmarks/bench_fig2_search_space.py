"""Fig. 2 — search space of X-drop vs banded alignment vs full DP.

Paper reference (Section III, Fig. 2): the X-drop search space is a "rugged
band" that adapts to the score landscape and terminates early on diverging
sequences, while a fixed band explores its full corridor regardless and the
exact algorithms explore the entire quadratic matrix.  The concrete paper
example is a pair with >50 % substitutions and no indels: X-drop terminates
almost immediately, banded SW still sweeps the whole band.
"""

from __future__ import annotations


def test_fig2_search_space(run_experiment):
    table = run_experiment("fig2")
    similar = table.rows[0].values
    divergent = table.rows[1].values

    # Everything explores less than the full quadratic matrix.
    for row in (similar, divergent):
        assert row["xdrop_cells"] < row["full_sw_cells"]
        assert row["banded_cells"] < row["full_sw_cells"]

    # On the divergent pair X-drop terminates early: it explores a small
    # fraction of what the fixed band explores...
    assert divergent["xdrop_cells"] < 0.4 * divergent["banded_cells"]
    # ...and far less than it explores on the similar pair.
    assert divergent["xdrop_cells"] < 0.6 * similar["xdrop_cells"]
    # The banded algorithm does the same work regardless of divergence.
    assert divergent["banded_cells"] == similar["banded_cells"]
    # On the similar pair both heuristics recover the same high score.
    assert similar["xdrop_score"] >= 0.95 * similar["banded_score"]
