"""Accuracy — the paper's "equivalent accuracy" claim (Section VI).

LOGAN's scores must equal SeqAn's X-drop scores for every pair and every X
(both implement the same recurrence), and for large X both approach the
exact un-pruned extension score.
"""

from __future__ import annotations


def test_accuracy_equivalence(run_experiment):
    table = run_experiment("accuracy")
    for row in table.rows:
        # Every single pair scores identically to the SeqAn-style reference.
        assert row.values["identical_to_seqan"] == row.values["pairs"]
        # X-drop can only under-estimate the exact extension score.
        assert row.values["fraction_of_exact"] <= 1.0 + 1e-9
    # The fraction of the exact score recovered grows with X and approaches 1.
    fractions = table.column("fraction_of_exact")
    assert fractions == sorted(fractions)
    assert fractions[-1] > 0.95
