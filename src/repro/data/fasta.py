"""Minimal FASTA/FASTQ reading and writing.

BELLA consumes FASTA/FASTQ long-read files; the reproduction needs the same
round-trip so the example pipelines can operate on files rather than
in-memory arrays.  Only the features the pipeline needs are implemented:
multi-line FASTA, four-line FASTQ, gzip-transparent reading, and writing.
"""

from __future__ import annotations

import gzip
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Union

from ..errors import DatasetError

__all__ = ["SequenceRecord", "read_fasta", "read_fastq", "write_fasta", "write_fastq"]

PathLike = Union[str, Path]


@dataclass
class SequenceRecord:
    """One named sequence (and optional quality string) from a file."""

    name: str
    sequence: str
    quality: str | None = None

    def __len__(self) -> int:
        return len(self.sequence)


def _open_text(path: PathLike) -> io.TextIOBase:
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"))
    return open(path, "rt", encoding="ascii")


def read_fasta(path: PathLike) -> Iterator[SequenceRecord]:
    """Iterate over the records of a (possibly gzipped) FASTA file.

    Raises
    ------
    DatasetError
        If the file does not start with a ``>`` header or contains an empty
        record.
    """
    name: str | None = None
    chunks: list[str] = []
    with _open_text(path) as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    if not chunks:
                        raise DatasetError(f"empty FASTA record {name!r} in {path}")
                    yield SequenceRecord(name=name, sequence="".join(chunks))
                name = line[1:].split()[0] if len(line) > 1 else ""
                chunks = []
            else:
                if name is None:
                    raise DatasetError(
                        f"{path}: line {line_number} precedes the first FASTA header"
                    )
                chunks.append(line)
    if name is not None:
        if not chunks:
            raise DatasetError(f"empty FASTA record {name!r} in {path}")
        yield SequenceRecord(name=name, sequence="".join(chunks))


def read_fastq(path: PathLike) -> Iterator[SequenceRecord]:
    """Iterate over the records of a (possibly gzipped) four-line FASTQ file."""
    with _open_text(path) as handle:
        while True:
            header = handle.readline()
            if not header:
                return
            header = header.strip()
            if not header:
                continue
            if not header.startswith("@"):
                raise DatasetError(f"{path}: malformed FASTQ header {header!r}")
            sequence = handle.readline().strip()
            plus = handle.readline().strip()
            quality = handle.readline().strip()
            if not sequence or not plus.startswith("+") or len(quality) != len(sequence):
                raise DatasetError(f"{path}: truncated FASTQ record {header!r}")
            yield SequenceRecord(
                name=header[1:].split()[0], sequence=sequence, quality=quality
            )


def write_fasta(
    path: PathLike, records: Iterable[SequenceRecord], line_width: int = 80
) -> int:
    """Write records to a FASTA file; returns the number of records written."""
    if line_width <= 0:
        raise DatasetError(f"line_width must be positive, got {line_width}")
    count = 0
    with open(path, "wt", encoding="ascii") as handle:
        for record in records:
            handle.write(f">{record.name}\n")
            seq = record.sequence
            for start in range(0, len(seq), line_width):
                handle.write(seq[start : start + line_width] + "\n")
            count += 1
    return count


def write_fastq(path: PathLike, records: Iterable[SequenceRecord]) -> int:
    """Write records to a FASTQ file (quality defaults to maximum)."""
    count = 0
    with open(path, "wt", encoding="ascii") as handle:
        for record in records:
            quality = record.quality or "~" * len(record.sequence)
            if len(quality) != len(record.sequence):
                raise DatasetError(
                    f"record {record.name!r}: quality length does not match sequence"
                )
            handle.write(f"@{record.name}\n{record.sequence}\n+\n{quality}\n")
            count += 1
    return count
