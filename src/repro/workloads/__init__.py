"""Scenario workload bank: named, seedable generators of alignment jobs.

The bank turns "as many scenarios as you can imagine" into a subsystem:
every profile is a deterministic generator of
:class:`~repro.core.job.AlignmentJob` batches with ground-truth metadata,
registered by name so the conformance harness (:mod:`repro.testing`), the
``repro-fuzz`` CLI and the pytest tier-2 matrix all enumerate the same
families.  See :mod:`repro.workloads.profiles` for the scenario catalogue
and :mod:`repro.workloads.bank` for the registry.
"""

from .bank import (
    Workload,
    WorkloadBank,
    WorkloadProfile,
    describe_profiles,
    generate_workload,
    list_profiles,
    register_profile,
    unregister_profile,
)
from .profiles import WorkloadSpec

__all__ = [
    "Workload",
    "WorkloadBank",
    "WorkloadProfile",
    "WorkloadSpec",
    "describe_profiles",
    "generate_workload",
    "list_profiles",
    "register_profile",
    "unregister_profile",
]
