"""Wire format for the distributed tier: framing + JSON codecs.

Every boundary in ``repro.distrib`` that cannot share memory — the network
socket and the durable SQLite store — speaks the same representation: plain
JSON objects for jobs, results and cache keys, and (on sockets) frames of
UTF-8 JSON prefixed by a 4-byte big-endian length.

The codecs are exact.  ``job_from_wire(job_to_wire(job))`` re-encodes the
identical uint8 sequence buffers, and ``result_from_wire(result_to_wire(r))``
reproduces every score, coordinate and work counter — including optional
per-sweep band widths when tracing is on — so the conformance harness can
compare networked results bit-for-bit against the in-process oracle.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

from ..core.encoding import decode
from ..core.job import AlignmentJob
from ..core.result import ExtensionResult, SeedAlignmentResult
from ..core.seed_extend import Seed
from ..errors import ServiceError

__all__ = [
    "MAX_FRAME_BYTES",
    "cache_key_from_json",
    "cache_key_to_json",
    "job_from_wire",
    "job_to_wire",
    "recv_frame",
    "result_from_wire",
    "result_to_wire",
    "send_frame",
]

# Generous ceiling: a frame is one request/response, i.e. at most one batch
# of sequences plus JSON overhead.  Guards against garbage length prefixes.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LENGTH = struct.Struct(">I")


# ---------------------------------------------------------------------------
# Framing


def send_frame(sock: socket.socket, payload: dict[str, Any]) -> None:
    """Serialise ``payload`` as JSON and send it length-prefixed."""
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ServiceError(
            f"frame of {len(data)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte wire limit"
        )
    sock.sendall(_LENGTH.pack(len(data)) + data)


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Receive one length-prefixed JSON frame; ``None`` on clean EOF."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServiceError(
            f"peer announced a {length}-byte frame, over the "
            f"{MAX_FRAME_BYTES}-byte wire limit"
        )
    data = _recv_exact(sock, length)
    if data is None:
        raise ServiceError("connection closed mid-frame")
    payload = json.loads(data.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ServiceError("wire frames must be JSON objects")
    return payload


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if chunks:
                raise ServiceError("connection closed mid-frame")
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------------
# Jobs


def job_to_wire(job: AlignmentJob) -> dict[str, Any]:
    """One job as a JSON-able dict (sequences decoded back to ACGTN text)."""
    return {
        "query": decode(job.query),
        "target": decode(job.target),
        "seed": [job.seed.query_pos, job.seed.target_pos, job.seed.length],
        "pair_id": int(job.pair_id),
    }


def job_from_wire(payload: dict[str, Any]) -> AlignmentJob:
    try:
        q_pos, t_pos, length = payload["seed"]
        return AlignmentJob(
            query=payload["query"],
            target=payload["target"],
            seed=Seed(int(q_pos), int(t_pos), int(length)),
            pair_id=int(payload.get("pair_id", 0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed job on the wire: {exc}") from exc


# ---------------------------------------------------------------------------
# Results


def _extension_to_wire(ext: ExtensionResult) -> dict[str, Any]:
    out: dict[str, Any] = {
        "best_score": int(ext.best_score),
        "query_end": int(ext.query_end),
        "target_end": int(ext.target_end),
        "anti_diagonals": int(ext.anti_diagonals),
        "cells_computed": int(ext.cells_computed),
        "terminated_early": bool(ext.terminated_early),
    }
    if ext.band_widths is not None:
        out["band_widths"] = [int(w) for w in ext.band_widths]
    return out


def _extension_from_wire(payload: dict[str, Any]) -> ExtensionResult:
    widths = payload.get("band_widths")
    return ExtensionResult(
        best_score=int(payload["best_score"]),
        query_end=int(payload["query_end"]),
        target_end=int(payload["target_end"]),
        anti_diagonals=int(payload["anti_diagonals"]),
        cells_computed=int(payload["cells_computed"]),
        terminated_early=bool(payload["terminated_early"]),
        band_widths=None if widths is None else widths,
    )


def result_to_wire(result: SeedAlignmentResult) -> dict[str, Any]:
    """One alignment result as a JSON-able dict, exact to the last counter."""
    return {
        "score": int(result.score),
        "seed_score": int(result.seed_score),
        "query_begin": int(result.query_begin),
        "query_end": int(result.query_end),
        "target_begin": int(result.target_begin),
        "target_end": int(result.target_end),
        "left": _extension_to_wire(result.left),
        "right": _extension_to_wire(result.right),
    }


def result_from_wire(payload: dict[str, Any]) -> SeedAlignmentResult:
    try:
        return SeedAlignmentResult(
            score=int(payload["score"]),
            left=_extension_from_wire(payload["left"]),
            right=_extension_from_wire(payload["right"]),
            seed_score=int(payload["seed_score"]),
            query_begin=int(payload["query_begin"]),
            query_end=int(payload["query_end"]),
            target_begin=int(payload["target_begin"]),
            target_end=int(payload["target_end"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed result on the wire: {exc}") from exc


# ---------------------------------------------------------------------------
# Cache keys

# A cache key is the tuple produced by ``repro.service.job_cache_key``:
# (query_sha, target_sha, query_pos, target_pos, seed_len, scoring, xdrop)
# with ``scoring`` itself a (match, mismatch, gap) tuple.  The JSON string is
# canonical (no whitespace, fixed order) so it can serve as a SQLite primary
# key and survive a round trip unchanged.


def cache_key_to_json(key: tuple) -> str:
    """Canonical JSON string for a cache key (stable across processes)."""
    query_sha, target_sha, q_pos, t_pos, seed_len, scoring, xdrop = key
    return json.dumps(
        [
            str(query_sha),
            str(target_sha),
            int(q_pos),
            int(t_pos),
            int(seed_len),
            [int(v) for v in scoring],
            int(xdrop),
        ],
        separators=(",", ":"),
    )


def cache_key_from_json(text: str) -> tuple:
    try:
        query_sha, target_sha, q_pos, t_pos, seed_len, scoring, xdrop = (
            json.loads(text)
        )
        return (
            str(query_sha),
            str(target_sha),
            int(q_pos),
            int(t_pos),
            int(seed_len),
            tuple(int(v) for v in scoring),
            int(xdrop),
        )
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"malformed cache key {text!r}: {exc}") from exc
