"""Append-only baseline store for performance trajectories.

A :class:`BaselineStore` wraps one JSON file (``BENCH_engines.json`` /
``BENCH_service.json`` at the repository root) holding::

    {
      "schema": "repro-bench-trajectory/1",
      "trajectory": [ <BenchEntry dict>, ... ]     # oldest first
    }

Entries are only ever appended — the stored trajectory is the project's
recorded performance history, diffable in version control.  The legacy
single-snapshot formats the pre-subsystem scripts wrote are read
transparently as a one-entry trajectory, so the first recorded baseline
(the pre-compaction kernel) remains the comparison anchor.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import ConfigurationError
from .schema import BenchEntry, BenchResult

__all__ = ["BaselineStore"]

_SCHEMA = "repro-bench-trajectory/1"


def _legacy_engines_entry(data: dict) -> BenchEntry:
    """Convert the pre-subsystem ``BENCH_engines.json`` snapshot."""
    return BenchEntry(
        kind="engines",
        label="legacy snapshot (pre-bench-subsystem)",
        timestamp="legacy",
        batch_size=int(data.get("batch_size", 0)),
        xdrop=int(data.get("xdrop", 0)),
        rng_seed=int(data.get("rng_seed", 0)),
        scoring={k: int(v) for k, v in dict(data.get("scoring", {})).items()},
        rows=[BenchResult.from_dict(row) for row in data.get("engines", [])],
    )


def _legacy_service_entry(data: dict) -> BenchEntry:
    """Convert the pre-subsystem ``BENCH_service.json`` snapshot."""
    workload = dict(data.get("workload", {}))
    rows = []
    per_job_seconds = float(
        dict(data.get("rows", {})).get("per_job", {}).get("seconds", 0.0)
    )
    for name, row in dict(data.get("rows", {})).items():
        seconds = float(row.get("seconds", 0.0))
        rows.append(
            BenchResult(
                engine=name,
                measured_seconds=seconds,
                measured_gcups=float(row.get("gcups", 0.0)),
                speedup_vs_scalar=(
                    per_job_seconds / seconds if seconds > 0 else 0.0
                ),
                scores_identical_to_reference=True,
                cells=int(workload.get("cells", 0)),
            )
        )
    return BenchEntry(
        kind="service",
        label="legacy snapshot (pre-bench-subsystem)",
        timestamp="legacy",
        batch_size=int(workload.get("pairs", 0)),
        xdrop=int(workload.get("xdrop", 0)),
        rng_seed=int(workload.get("rng_seed", 0)),
        # The legacy script always benchmarked the default scoring scheme
        # (it recorded no scoring field).
        scoring={"match": 1, "mismatch": -1, "gap": -1},
        quick=bool(workload.get("smoke", False)),
        rows=rows,
        extra={"service_config": dict(data.get("service_config", {}))},
    )


class BaselineStore:
    """Reads/appends one trajectory file; never rewrites recorded entries.

    Parameters
    ----------
    path:
        The JSON file (created on first :meth:`append` if missing).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------ #
    def load(self) -> list[BenchEntry]:
        """The stored trajectory, oldest first (empty for a missing file)."""
        if not self.path.exists():
            return []
        try:
            data = json.loads(self.path.read_text())
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"baseline store {self.path} is not valid JSON: {error}"
            ) from error
        if isinstance(data, dict) and "trajectory" in data:
            return [BenchEntry.from_dict(e) for e in data["trajectory"]]
        # Legacy single-snapshot formats become a one-entry trajectory.
        if isinstance(data, dict) and "engines" in data:
            return [_legacy_engines_entry(data)]
        if isinstance(data, dict) and "rows" in data:
            return [_legacy_service_entry(data)]
        raise ConfigurationError(
            f"baseline store {self.path} has an unrecognised layout "
            "(expected a trajectory or a legacy benchmark snapshot)"
        )

    def latest(self, kind: str | None = None) -> BenchEntry | None:
        """Most recent entry (optionally restricted to one ``kind``)."""
        entries = self.load()
        for entry in reversed(entries):
            if kind is None or entry.kind == kind:
                return entry
        return None

    def latest_matching(self, entry: BenchEntry) -> BenchEntry | None:
        """Most recent stored entry with *entry*'s workload signature.

        Only entries measuring the *same* workload (kind, batch size, X,
        seed, scoring, quick flag) are comparable; ``None`` means nothing
        comparable is stored yet (first recording of this signature).
        """
        entries = self.load()
        for stored in reversed(entries):
            if stored.signature() == entry.signature():
                return stored
        return None

    # ------------------------------------------------------------------ #
    def append(self, entry: BenchEntry) -> None:
        """Append *entry* and persist the full trajectory."""
        trajectory = self.load()
        trajectory.append(entry)
        payload = {
            "schema": _SCHEMA,
            "trajectory": [e.to_dict() for e in trajectory],
        }
        self.path.write_text(json.dumps(payload, indent=2) + "\n")
