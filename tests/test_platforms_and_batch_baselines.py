"""Tests for CPU platform cost models and the SeqAn/ksw2 batch runners."""

from __future__ import annotations

import pytest

from repro.baselines import (
    KSW2_SKYLAKE_BAND_MODEL,
    POWER9_PLATFORM,
    SEQAN_POWER9_MODEL,
    SKYLAKE_PLATFORM,
    CpuCostModel,
    CpuPlatformSpec,
    Ksw2BatchAligner,
    Ksw2CostModel,
    SeqAnBatchAligner,
)
from repro.core import AffineScoringScheme
from repro.errors import ConfigurationError


class TestCpuPlatformSpec:
    def test_power9_topology(self):
        assert POWER9_PLATFORM.cores == 42
        assert POWER9_PLATFORM.threads == 168

    def test_skylake_topology(self):
        assert SKYLAKE_PLATFORM.cores == 40
        assert SKYLAKE_PLATFORM.threads == 80

    def test_invalid_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            CpuPlatformSpec("bad", sockets=0, cores_per_socket=4, threads_per_core=1, clock_ghz=2.0)

    def test_invalid_clock_rejected(self):
        with pytest.raises(ConfigurationError):
            CpuPlatformSpec("bad", sockets=1, cores_per_socket=4, threads_per_core=1, clock_ghz=0.0)


class TestCpuCostModel:
    def test_time_scales_with_cells(self):
        model = SEQAN_POWER9_MODEL
        t1 = model.seconds(cells=10**9, iterations=10**6, alignments=10**5)
        t2 = model.seconds(cells=2 * 10**9, iterations=10**6, alignments=10**5)
        assert t2 > t1

    def test_time_scales_inverse_with_threads(self):
        few = CpuCostModel(POWER9_PLATFORM, threads=21, ns_per_cell=4.5,
                           ns_per_iteration=55.0, ns_per_alignment=12_000.0)
        many = SEQAN_POWER9_MODEL
        work = dict(cells=10**9, iterations=10**6, alignments=10**4)
        assert few.seconds(**work) > many.seconds(**work)

    def test_threads_beyond_platform_rejected(self):
        with pytest.raises(ConfigurationError):
            CpuCostModel(POWER9_PLATFORM, threads=500, ns_per_cell=1.0,
                         ns_per_iteration=1.0, ns_per_alignment=1.0)

    def test_negative_work_rejected(self):
        with pytest.raises(ConfigurationError):
            SEQAN_POWER9_MODEL.seconds(cells=-1, iterations=0, alignments=0)

    def test_gcups(self):
        assert SEQAN_POWER9_MODEL.gcups(cells=10**9, iterations=0, alignments=0) > 0

    def test_invalid_efficiency(self):
        with pytest.raises(ConfigurationError):
            CpuCostModel(POWER9_PLATFORM, threads=8, ns_per_cell=1, ns_per_iteration=1,
                         ns_per_alignment=1, parallel_efficiency=0.0)


class TestKsw2CostModel:
    def test_band_degrades_per_cell_cost(self):
        model = KSW2_SKYLAKE_BAND_MODEL
        work = dict(cells=10**9, rows=10**6, alignments=10**4)
        assert model.seconds(band=2000, **work) > model.seconds(band=10, **work)

    def test_invalid_band_halfcost(self):
        with pytest.raises(ConfigurationError):
            Ksw2CostModel(SKYLAKE_PLATFORM, band_halfcost=0)

    def test_negative_band_rejected(self):
        with pytest.raises(ConfigurationError):
            KSW2_SKYLAKE_BAND_MODEL.seconds(cells=1, rows=1, alignments=1, band=-1)


class TestSeqAnBatchAligner:
    def test_align_batch_produces_results_and_summary(self, small_jobs, scoring):
        aligner = SeqAnBatchAligner(scoring=scoring, xdrop=15)
        result = aligner.align_batch(small_jobs)
        assert len(result.results) == len(small_jobs)
        assert result.summary.alignments == len(small_jobs)
        assert result.summary.cells > 0
        assert result.elapsed_seconds > 0
        assert result.modeled_seconds > 0
        assert result.measured_gcups() > 0
        assert result.modeled_gcups() > result.measured_gcups()

    def test_scores_positive_for_related_pairs(self, small_jobs, scoring):
        aligner = SeqAnBatchAligner(scoring=scoring, xdrop=25)
        result = aligner.align_batch(small_jobs)
        assert all(r.score > 0 for r in result.results)

    def test_modeled_seconds_for_extrapolated_summary(self, small_jobs, scoring):
        aligner = SeqAnBatchAligner(scoring=scoring, xdrop=15)
        result = aligner.align_batch(small_jobs)
        base = aligner.modeled_seconds_for(result.summary)
        scaled = aligner.modeled_seconds_for(result.summary.scaled(10))
        assert scaled == pytest.approx(10 * base, rel=0.01)


class TestKsw2BatchAligner:
    def test_align_batch(self, small_jobs):
        aligner = Ksw2BatchAligner(zdrop=50)
        result = aligner.align_batch(small_jobs)
        assert len(result.results) == len(small_jobs)
        assert len(result.scores) == len(small_jobs)
        assert result.summary.cells > 0
        assert result.band == 50
        assert result.modeled_seconds > 0
        assert result.modeled_gcups() > 0

    def test_bandwidth_defaults_to_zdrop(self):
        assert Ksw2BatchAligner(zdrop=123).bandwidth == 123
        assert Ksw2BatchAligner(zdrop=123, bandwidth=7).bandwidth == 7

    def test_scores_positive_for_related_pairs(self, small_jobs):
        aligner = Ksw2BatchAligner(
            scoring=AffineScoringScheme(), zdrop=100, bandwidth=100
        )
        result = aligner.align_batch(small_jobs)
        assert all(score > 0 for score in result.scores)
