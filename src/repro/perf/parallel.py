"""Process-pool helpers for inter-sequence parallelism on the CPU.

The paper exploits *inter-sequence* parallelism by assigning one GPU block
per alignment; the CPU analogue used by BELLA is an OpenMP parallel-for over
alignments.  In pure Python the equivalent is a process pool (threads would
serialise on the GIL for the NumPy-light portions), with jobs submitted in
chunks so the pickling overhead is amortised — the standard mpi4py/HPC
idiom of communicating few, large messages rather than many small ones.

``parallel_map`` degrades gracefully to an in-process loop when ``workers=1``
or when the input is small, so library code can call it unconditionally.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

__all__ = ["parallel_map", "available_workers", "chunk_evenly"]

T = TypeVar("T")
R = TypeVar("R")

# Populated in worker processes by _init_worker; holds (func, args) so each
# task submission only has to pickle the item, not the closure.
_WORKER_STATE: dict = {}


def available_workers(requested: int | None = None) -> int:
    """Number of worker processes to use.

    ``None`` or ``0`` means "use every available core"; negative values are
    clamped to 1.  The result is additionally capped by ``REPRO_MAX_WORKERS``
    when that environment variable is set (useful on shared CI machines).
    """
    cores = os.cpu_count() or 1
    if requested is None or requested == 0:
        workers = cores
    else:
        workers = max(1, int(requested))
    cap = os.environ.get("REPRO_MAX_WORKERS")
    if cap:
        try:
            workers = min(workers, max(1, int(cap)))
        except ValueError:
            pass
    return min(workers, cores)


def chunk_evenly(items: Sequence[T], chunks: int) -> list[list[T]]:
    """Split *items* into at most *chunks* contiguous, nearly-equal lists.

    The first ``len(items) % chunks`` lists receive one extra element, so
    sizes differ by at most one — the same splitting rule the multi-GPU load
    balancer uses for its naive (count-based) mode.
    """
    if chunks <= 0:
        raise ValueError(f"chunks must be positive, got {chunks}")
    n = len(items)
    chunks = min(chunks, n) if n else 1
    base, extra = divmod(n, chunks)
    out: list[list[T]] = []
    start = 0
    for c in range(chunks):
        size = base + (1 if c < extra else 0)
        out.append(list(items[start : start + size]))
        start += size
    return out


def _init_worker(func: Callable, args: tuple) -> None:
    _WORKER_STATE["func"] = func
    _WORKER_STATE["args"] = args


def _run_chunk(chunk: list) -> list:
    func = _WORKER_STATE["func"]
    args = _WORKER_STATE["args"]
    return [func(item, *args) for item in chunk]


def parallel_map(
    func: Callable[..., R],
    items: Sequence[T],
    args: tuple = (),
    workers: int = 1,
    min_items_per_worker: int = 4,
) -> list[R]:
    """Apply ``func(item, *args)`` to every item, optionally across processes.

    Parameters
    ----------
    func:
        A module-level (picklable) callable.
    items:
        The work items; results are returned in the same order.
    args:
        Extra positional arguments passed to every call.
    workers:
        Worker processes; ``1`` runs in-process (no pool, no pickling).
    min_items_per_worker:
        A pool is only spun up when there are at least this many items per
        worker; below that the fixed fork/pickle cost dominates.
    """
    items = list(items)
    workers = available_workers(workers)
    if workers <= 1 or len(items) < workers * min_items_per_worker:
        return [func(item, *args) for item in items]

    chunks = chunk_evenly(items, workers * 4)
    results: list[R] = []
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_init_worker, initargs=(func, args)
    ) as pool:
        for chunk_result in pool.map(_run_chunk, chunks):
            results.extend(chunk_result)
    return results
