#!/usr/bin/env python
"""Batch alignment with the LOGAN GPU execution model (the Table II scenario).

Generates a laptop-scale sample of the paper's synthetic 100 K-pair workload,
aligns it with the LOGAN batch aligner, and reports

* measured Python wall-clock and GCUPS of the real alignment work,
* the modeled runtime of the same batch on 1 and 6 NVIDIA V100s,
* the modeled runtime of SeqAn's X-drop on 168 POWER9 threads (the paper's
  CPU baseline) for the identical work trace, and
* the resulting speed-ups — the reproduction of the paper's headline claim.

Run with::

    python examples/batch_alignment_gpu_model.py [num_pairs] [xdrop]
"""

from __future__ import annotations

import sys

from repro.baselines import SeqAnBatchAligner
from repro.data import PairSetSpec, generate_pair_set
from repro.gpusim import MultiGpuSystem
from repro.logan import LoganAligner

PAPER_PAIRS = 100_000


def main(num_pairs: int = 8, xdrop: int = 100) -> None:
    spec = PairSetSpec(
        num_pairs=num_pairs,
        min_length=2500,
        max_length=7500,
        pairwise_error_rate=0.15,
        seed_placement="start",
        rng_seed=2020,
    )
    jobs = generate_pair_set(spec)
    replication = PAPER_PAIRS / len(jobs)
    print(f"aligning {len(jobs)} sampled pairs (standing in for {PAPER_PAIRS:,}) "
          f"at X={xdrop}")
    print()

    # One modeled V100 -------------------------------------------------------
    one_gpu = LoganAligner(system=MultiGpuSystem.homogeneous(1), xdrop=xdrop)
    result1 = one_gpu.align_batch(jobs, replication=replication)
    print(f"measured Python run     : {result1.elapsed_seconds:8.2f} s "
          f"({result1.measured_gcups():.4f} GCUPS)")
    print(f"modeled 1x V100         : {result1.modeled_seconds:8.2f} s "
          f"({result1.modeled_gcups:.1f} GCUPS, {result1.threads_per_block} threads/block)")

    # Six modeled V100s (re-modeled from the same results, no re-alignment) --
    six_gpu = LoganAligner(system=MultiGpuSystem.homogeneous(6), xdrop=xdrop)
    result6 = six_gpu.model_existing(jobs, result1.results, replication=replication)
    print(f"modeled 6x V100         : {result6.modeled_seconds:8.2f} s "
          f"({result6.modeled_gcups:.1f} GCUPS, "
          f"imbalance {result6.multi_gpu.load_imbalance:.2f})")

    # The paper's CPU baseline, modeled from the identical work trace --------
    seqan = SeqAnBatchAligner(xdrop=xdrop)
    seqan_seconds = seqan.modeled_seconds_for(result1.summary.scaled(replication))
    print(f"modeled SeqAn, 168 thr. : {seqan_seconds:8.2f} s")
    print()
    print(f"speed-up vs SeqAn, 1 GPU: {seqan_seconds / result1.modeled_seconds:6.1f}x")
    print(f"speed-up vs SeqAn, 6 GPU: {seqan_seconds / result6.modeled_seconds:6.1f}x")

    # Accuracy: identical scores to the SeqAn-style reference ---------------
    reference = seqan.align_batch(jobs)
    identical = [r.score for r in reference.results] == result1.scores()
    print()
    print(f"scores identical to the SeqAn-style reference: {identical}")
    print(f"per-device breakdown    : "
          f"{[round(t, 3) for t in result6.multi_gpu.per_device_seconds]} s "
          f"+ {result6.multi_gpu.host_overhead_seconds:.2f} s balancer overhead "
          f"+ {result6.host_seconds:.2f} s host preprocessing")


if __name__ == "__main__":
    pairs = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    x = int(sys.argv[2]) if len(sys.argv) > 2 else 100
    main(pairs, x)
