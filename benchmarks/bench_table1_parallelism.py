"""Table I — impact of intra- and inter-sequence parallelism (X = 100).

Paper reference (Table I): a single un-parallelised alignment takes 1.5 s on
the GPU; intra-sequence parallelism (128 threads) improves it ~9x; adding
inter-sequence parallelism (one block per alignment, 100 K blocks) improves
the 100 K-pair batch by a further ~4 orders of magnitude over running the
pairs sequentially.

The reproduced table reports the same four rows from the V100 execution
model and checks the two ordering claims (intra > none, intra+inter >>
sequential intra).
"""

from __future__ import annotations


def test_table1_parallelism_levels(run_experiment):
    table = run_experiment("table1")
    modeled = {int(row.parameter): row.values["modeled_s"] for row in table.rows}

    # Intra-sequence parallelism beats the single-thread configuration.
    assert modeled[2] < modeled[1]
    # The batched intra+inter configuration beats 100 K sequential
    # single-pair launches by orders of magnitude.
    assert modeled[4] < modeled[3] / 50
    # And it is within a sane range of the paper's 7.35 s.
    assert 0.5 < modeled[4] < 60
