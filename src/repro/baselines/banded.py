"""Banded Smith–Waterman — the fixed-band heuristic the paper contrasts with X-drop.

Section III / Fig. 2 of the paper distinguishes the X-drop search space (a
"rugged band" whose width adapts to the score landscape and which terminates
early on diverging sequences) from the classical *banded* alignment, which
explores a fixed-width corridor around the main diagonal regardless of how
the score evolves.

This module implements that fixed-band local alignment so the benchmark
``bench_fig2_search_space.py`` can compare explored-cell counts of the two
approaches on both similar and divergent read pairs.
"""

from __future__ import annotations

import numpy as np

from ..core.encoding import SequenceLike, encode
from ..core.result import NEG_INF, FullAlignmentResult
from ..core.scoring import ScoringScheme
from ..errors import ConfigurationError

__all__ = ["banded_smith_waterman", "band_cells"]


def band_cells(m: int, n: int, bandwidth: int) -> int:
    """Number of DP cells inside a fixed band of half-width *bandwidth*.

    The band contains the cells ``(i, j)`` with ``|i - j| <= bandwidth``;
    this helper is used by cost models and by tests without running the DP.
    """
    if bandwidth < 0:
        raise ConfigurationError(f"bandwidth must be non-negative, got {bandwidth}")
    total = 0
    for i in range(0, m + 1):
        j_lo = max(0, i - bandwidth)
        j_hi = min(n, i + bandwidth)
        if j_hi >= j_lo:
            total += j_hi - j_lo + 1
    return total


def banded_smith_waterman(
    query: SequenceLike,
    target: SequenceLike,
    scoring: ScoringScheme | None = None,
    bandwidth: int = 128,
) -> FullAlignmentResult:
    """Local alignment restricted to the band ``|i - j| <= bandwidth``.

    Cells outside the band are treated as unreachable.  Unlike X-drop the
    band never narrows and the computation never terminates early: the cost
    is ``O(bandwidth * (m + n))`` regardless of how dissimilar the sequences
    are — exactly the behaviour Fig. 2 of the paper illustrates.
    """
    if bandwidth < 0:
        raise ConfigurationError(f"bandwidth must be non-negative, got {bandwidth}")
    scoring = scoring if scoring is not None else ScoringScheme()
    q = encode(query)
    t = encode(target)
    m, n = len(q), len(t)
    match, mismatch, gap = scoring.as_tuple()

    neg = np.int64(NEG_INF)
    prev = np.full(n + 1, neg, dtype=np.int64)
    # Row 0: only columns within the band of row 0 are reachable local cells.
    j_hi0 = min(n, bandwidth)
    prev[: j_hi0 + 1] = 0

    best = 0
    best_i = best_j = 0
    cells = j_hi0 + 1

    cur = np.full(n + 1, neg, dtype=np.int64)
    for i in range(1, m + 1):
        j_lo = max(0, i - bandwidth)
        j_hi = min(n, i + bandwidth)
        if j_lo > j_hi:
            break
        cur[:] = neg
        width = j_hi - j_lo + 1
        cells += width

        js = np.arange(j_lo, j_hi + 1)
        sub = np.where((t[js - 1] == q[i - 1]) & (t[js - 1] != 4), match, mismatch)
        sub = sub.astype(np.int64)
        # js - 1 may be -1 for j_lo == 0; that lane is the local-alignment
        # "restart" cell and is floored to zero below anyway.
        diag = prev[js - 1] + sub
        up = prev[js] + gap
        cand = np.maximum(np.maximum(diag, up), 0)
        if j_lo == 0:
            cand[0] = 0
        # Horizontal scan within the banded row.
        col_gap = js * gap
        shifted = cand - col_gap
        np.maximum.accumulate(shifted, out=shifted)
        row_vals = shifted + col_gap
        # A run entering from the left edge of the band starts from -inf, so
        # no extra boundary term is needed.
        cur[j_lo : j_hi + 1] = row_vals
        row_max = int(row_vals.max())
        if row_max > best:
            best = row_max
            best_i = i
            best_j = j_lo + int(np.argmax(row_vals))
        prev, cur = cur, prev

    return FullAlignmentResult(
        best_score=int(best),
        query_end=best_i,
        target_end=best_j,
        cells_computed=int(cells),
    )
