#!/usr/bin/env python
"""Telemetry tour: metrics, tracing, the flight recorder, and exporters.

Walks the whole :mod:`repro.obs` surface on a small served workload:

* the always-live metrics registry — queue depth, batcher occupancy,
  cache hit rate, per-shard worker heat, kernel live fraction — exported
  as Prometheus text and JSON-lines snapshots with provenance,
* opt-in structured tracing: one trace tree per submission, spans nested
  ``service.submit -> service.dispatch -> pool.shard -> engine.align_batch``,
* the flight recorder: a bounded ring of recent spans/events/deltas,
  dumped to JSON when a (deliberately) crashed worker needs explaining,
* the guarantee the whole subsystem is built on: observability off or on,
  alignment results are bit-identical.

Run from the repository root::

    PYTHONPATH=src python examples/observability_tour.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import obs
from repro.api import AlignConfig, ServiceConfig
from repro.data import PairSetSpec, generate_pair_set
from repro.engine import get_engine
from repro.service import AlignmentService

XDROP = 50

jobs = generate_pair_set(
    PairSetSpec(
        num_pairs=32,
        min_length=200,
        max_length=700,
        pairwise_error_rate=0.15,
        seed_placement="middle",
        rng_seed=7,
    )
)

# ---------------------------------------------------------------- #
# 0. Baseline scores with every deep-telemetry switch off.
baseline = get_engine("batched", xdrop=XDROP).align_batch(jobs).scores()

# ---------------------------------------------------------------- #
# 1. Switch the process-global bundle on: spans + crash ring.
ob = obs.configure(tracing=True, flight_recorder=True)
collector = ob.tracer.collect()  # list-backed sink, handy for inspection

config = AlignConfig(
    engine="batched",
    xdrop=XDROP,
    bin_width=500,
    service=ServiceConfig(num_workers=2, max_batch_size=16,
                          cache_capacity=4 * len(jobs)),
)

with AlignmentService(config=config) as service:
    # Two rounds: the second is answered from the result cache.
    for _ in range(2):
        tickets = [service.submit(job) for job in jobs]
        service.drain()
        scores = [t.result().score for t in tickets]

    # 2. The service's scoped registry, frozen with provenance.
    snapshot = service.metrics_snapshot()

assert scores == baseline, "observability must not change results"

print("=== metrics snapshot (selected series) ===")
for name in (
    "repro_service_submitted_total",
    "repro_batches_formed_total",
    "repro_cache_hit_rate",
    "repro_kernel_live_fraction",
    "repro_queue_depth",
):
    for sample in snapshot.series:
        if sample.name == name:
            labels = ",".join(f"{k}={v}" for k, v in sorted(sample.labels.items()))
            print(f"  {name}{'{' + labels + '}' if labels else ''} = {sample.value}")
print(f"  provenance: git_sha={snapshot.provenance.get('git_sha', '')[:12]} "
      f"config_hash={snapshot.provenance.get('config_hash', '')[:12]}")

# ---------------------------------------------------------------- #
# 3. Exporters: Prometheus text and JSON lines round trip.
with tempfile.TemporaryDirectory() as tmp:
    jsonl = Path(tmp) / "metrics.jsonl"
    obs.write_jsonl(jsonl, snapshot)
    restored = obs.read_jsonl(jsonl)[0]
    assert restored.value("repro_cache_hit_rate") == snapshot.value(
        "repro_cache_hit_rate"
    )
prom_lines = obs.render_prometheus(snapshot).splitlines()
print(f"\n=== prometheus exposition: {len(prom_lines)} lines, e.g. ===")
for line in prom_lines[:4]:
    print(f"  {line}")

# ---------------------------------------------------------------- #
# 4. The trace tree: spans nest without explicit plumbing.
dispatches = collector.named("service.dispatch")
engine_spans = collector.named("engine.align_batch")
print(f"\n=== tracing: {len(collector)} spans collected ===")
print(f"  service.dispatch spans : {len(dispatches)}")
print(f"  engine.align_batch     : {len(engine_spans)} "
      f"(parented: {sum(1 for s in engine_spans if s.parent_id)})")

# ---------------------------------------------------------------- #
# 5. Flight recorder: crash a worker on purpose, read the dump.
with AlignmentService(config=config) as service:
    def explode(jobs, scoring=None, xdrop=None):
        raise RuntimeError("deliberate crash for the tour")

    service.pool.run_batch = explode
    doomed = [service.submit(job) for job in jobs[:4]]
    service.drain()
    failed = 0
    for ticket in doomed:
        try:
            ticket.result(timeout=60.0)
        except RuntimeError:
            failed += 1
    dump = service.last_crash_dump

print(f"\n=== flight recorder ===")
print(f"  failed tickets         : {failed}")
print(f"  dump reason            : {dump['reason']}")
print(f"  retained spans/events  : {len(dump['spans'])}/{len(dump['events'])}")
print(f"  crash event            : {dump['events'][-1]['error']}")

obs.reset()  # leave the process-global bundle as we found it
print("\nresults bit-identical with observability on: True")
