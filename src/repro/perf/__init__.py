"""Performance utilities: timers, metrics and CPU process-pool helpers."""

from .metrics import BenchRow, BenchTable, gcups, speedup
from .parallel import available_workers, chunk_evenly, parallel_map
from .timers import StageTimer, Timer

__all__ = [
    "Timer",
    "StageTimer",
    "gcups",
    "speedup",
    "BenchRow",
    "BenchTable",
    "parallel_map",
    "available_workers",
    "chunk_evenly",
]
