#!/usr/bin/env python
"""Instruction Roofline analysis of the LOGAN kernel (Section VII / Fig. 13).

Aligns a sample batch at X=100, instruments the modeled kernel launch
(warp instructions, HBM bytes, modeled time), derives the adapted ceiling of
Eq. (1) from the anti-diagonal width trace, and renders the Roofline as an
ASCII plot plus a JSON series that can be re-plotted with any tool.

Run with::

    python examples/roofline_analysis.py
"""

from __future__ import annotations

from repro.data import PairSetSpec, generate_pair_set
from repro.gpusim import BlockWorkTrace, KernelWorkload, MultiGpuSystem, TESLA_V100
from repro.logan import LoganAligner
from repro.roofline import analyze_kernel, build_series, render_ascii

PAPER_PAIRS = 100_000
XDROP = 100


def main() -> None:
    spec = PairSetSpec(
        num_pairs=8, min_length=2500, max_length=7500,
        pairwise_error_rate=0.15, seed_placement="start", rng_seed=13,
    )
    jobs = generate_pair_set(spec)
    replication = PAPER_PAIRS / len(jobs)

    aligner = LoganAligner(system=MultiGpuSystem.homogeneous(1), xdrop=XDROP)
    batch = aligner.align_batch(jobs, replication=replication)
    timing = batch.kernel_timings[0][0]

    workload = KernelWorkload(replication=replication)
    for job, result in zip(jobs, batch.results):
        ext = result.right
        if ext.band_widths is not None and ext.cells_computed > 1:
            workload.add(BlockWorkTrace(ext.band_widths, job.query_length, job.target_length))

    analysis = analyze_kernel(TESLA_V100, timing, workload, label=f"LOGAN X={XDROP}")
    series = build_series(analysis)

    print(render_ascii(series))
    print()
    print(f"operational intensity : {analysis.point.operational_intensity:8.2f} warp instr/byte")
    print(f"achieved performance  : {analysis.point.warp_gips:8.1f} warp GIPS")
    print(f"adapted ceiling (Eq.1): {analysis.ceilings.adapted_warp_gips:8.1f} warp GIPS")
    print(f"INT32 ceiling         : {analysis.ceilings.int32_warp_gips:8.1f} warp GIPS")
    print(f"ridge point           : {analysis.ceilings.ridge_point:8.3f} warp instr/byte")
    print(f"compute bound?        : {analysis.is_compute_bound}")
    print(f"efficiency vs adapted : {analysis.efficiency:8.1%}")
    print()
    print("The kernel sits right of the ridge point (compute bound) and close to")
    print("the adapted ceiling — the paper's conclusion that LOGAN is near-optimal")
    print("given the parallelism available per anti-diagonal.")


if __name__ == "__main__":
    main()
