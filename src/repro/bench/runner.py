"""Deterministic benchmark runners for the engine and service layers.

Both runners build the same fixed-seed synthetic workloads the historic
``benchmarks/bench_engines.py`` / ``benchmarks/bench_service.py`` scripts
used, so freshly measured entries are directly comparable with the
trajectory recorded before the subsystem existed.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..core.job import AlignmentJob
from ..core.scoring import ScoringScheme
from ..data import PairSetSpec, generate_pair_set
from ..engine import available_engines, get_engine, list_engines
from ..errors import ConfigurationError
from ..obs.provenance import build_provenance
from ..obs.runtime import get_observability
from ..perf.metrics import gcups
from ..perf.timers import Timer
from .schema import BenchEntry, BenchResult

__all__ = [
    "engine_bench_jobs",
    "service_bench_jobs",
    "run_engine_bench",
    "run_service_bench",
]

#: Workload shrink factors of ``quick`` mode (CI smoke scale).
_QUICK_PAIRS = 64
_QUICK_ENGINES = ("reference", "batched")


def engine_bench_jobs(pairs: int, rng_seed: int) -> list[AlignmentJob]:
    """The fixed engine-benchmark batch: 300-600 bp pairs, mid-read seeds."""
    return generate_pair_set(
        PairSetSpec(
            num_pairs=pairs,
            min_length=300,
            max_length=600,
            pairwise_error_rate=0.15,
            unrelated_fraction=0.1,
            seed_placement="middle",
            rng_seed=rng_seed,
        )
    )


def service_bench_jobs(pairs: int, rng_seed: int) -> list[AlignmentJob]:
    """The fixed service-benchmark workload: 200-900 bp, mid-read seeds."""
    return generate_pair_set(
        PairSetSpec(
            num_pairs=pairs,
            min_length=200,
            max_length=900,
            pairwise_error_rate=0.15,
            unrelated_fraction=0.1,
            seed_placement="middle",
            rng_seed=rng_seed,
        )
    )


def run_engine_bench(
    pairs: int = 256,
    xdrop: int = 50,
    seed: int = 2020,
    engines: Sequence[str] | None = None,
    scoring: ScoringScheme | None = None,
    repeats: int = 1,
    quick: bool = False,
    label: str = "",
    profile: str | None = None,
    min_length: int | None = None,
    max_length: int | None = None,
    error_rate: float | None = None,
) -> BenchEntry:
    """Time the requested engines on one fixed-seed batch.

    The scalar ``reference`` engine is always executed — it is the speed-up
    denominator and the score oracle — even when *engines* excludes it from
    the reported rows.  Exact engines are checked for bit-identical scores.
    With ``repeats > 1`` each engine reports its fastest run (noise floor
    for the regression gate).  ``quick`` shrinks the workload to the CI
    smoke scale and restricts the default engine set to
    ``reference``/``batched``; otherwise the default set is every
    *available* engine (optional engines whose dependency is missing are
    skipped unless named explicitly, which raises with the reason).

    With *profile* set, the batch comes from the workload bank
    (:func:`repro.workloads.generate_workload`) instead of the default
    random pair set; ``min_length``/``max_length``/``error_rate`` override
    the :class:`~repro.workloads.WorkloadSpec` defaults and are recorded in
    the entry signature so profile series never pair with mismatched
    baselines.
    """
    if pairs <= 0:
        raise ConfigurationError(f"pairs must be positive, got {pairs}")
    if repeats <= 0:
        raise ConfigurationError(f"repeats must be positive, got {repeats}")
    if profile is None and (
        min_length is not None or max_length is not None or error_rate is not None
    ):
        raise ConfigurationError(
            "min_length/max_length/error_rate tune the profile workload; "
            "pass profile=<name> to use them"
        )
    if quick:
        pairs = min(pairs, _QUICK_PAIRS)
    scoring = scoring if scoring is not None else ScoringScheme()
    names = list(engines) if engines else (
        list(_QUICK_ENGINES) if quick else available_engines()
    )
    unknown = sorted(set(names) - set(list_engines()))
    if unknown:
        raise ConfigurationError(
            f"unknown engine(s) {', '.join(map(repr, unknown))}; "
            f"available: {', '.join(list_engines())}"
        )
    workload_params: dict[str, Any] = {}
    if profile is None:
        jobs = engine_bench_jobs(pairs, seed)
    else:
        from ..workloads import WorkloadSpec, generate_workload

        spec_kwargs = dict(count=pairs, seed=seed, xdrop=xdrop, scoring=scoring)
        if min_length is not None:
            spec_kwargs["min_length"] = int(min_length)
        if max_length is not None:
            spec_kwargs["max_length"] = int(max_length)
        if error_rate is not None:
            spec_kwargs["error_rate"] = float(error_rate)
        spec = WorkloadSpec(**spec_kwargs)
        jobs = generate_workload(profile, spec).jobs
        workload_params = {
            "min_length": spec.min_length,
            "max_length": spec.max_length,
            "error_rate": spec.error_rate,
        }

    def best_run(name: str):
        engine = get_engine(name, scoring=scoring, xdrop=xdrop)
        best = None
        for _ in range(repeats):
            batch = engine.align_batch(jobs)
            if best is None or batch.elapsed_seconds < best.elapsed_seconds:
                best = batch
        return best

    ref_batch = best_run("reference")
    ref_scores = ref_batch.scores()

    rows: list[BenchResult] = []
    for name in names:
        batch = ref_batch if name == "reference" else best_run(name)
        kernel_stats = batch.extras.get("kernel_stats")
        rows.append(
            BenchResult(
                engine=name,
                measured_seconds=batch.elapsed_seconds,
                measured_gcups=batch.measured_gcups(),
                speedup_vs_scalar=(
                    ref_batch.elapsed_seconds / batch.elapsed_seconds
                    if batch.elapsed_seconds > 0
                    else float("inf")
                ),
                scores_identical_to_reference=batch.scores() == ref_scores,
                modeled_seconds=batch.modeled_seconds,
                cells=batch.summary.cells,
                kernel=kernel_stats.to_dict() if kernel_stats is not None else None,
            )
        )
    return BenchEntry(
        kind="engines",
        label=label,
        batch_size=len(jobs),
        xdrop=xdrop,
        rng_seed=seed,
        scoring={
            "match": scoring.match,
            "mismatch": scoring.mismatch,
            "gap": scoring.gap,
        },
        quick=quick,
        profile=profile or "",
        rows=rows,
        extra={"workload": workload_params} if workload_params else {},
        metrics=get_observability()
        .registry.snapshot(provenance=build_provenance(seed=seed))
        .to_dict(),
    )


#: Segments of the admission-triage benchmark workload and the ground
#: truth of each: ``True`` means the BELLA threshold can never accept the
#: pair (so rejecting it is correct), per the profile's metadata — the
#: ``length_skew`` short side is far below ``min_overlap`` and
#: ``unrelated`` pairs share nothing but the planted seed.  Spurious
#: candidates dominate real overlap traffic (they are why BELLA prunes
#: k-mers at all), so the mix is triage-heavy.
_PREFILTER_SEGMENTS = (
    ("pacbio", False),
    ("ont", False),
    ("length_skew", True),
    ("unrelated", True),
    ("unrelated", True),
    ("unrelated", True),
)


def _prefilter_bench_jobs(
    pairs: int, seed: int, xdrop: int, scoring: ScoringScheme
) -> tuple[list[AlignmentJob], list[str]]:
    """The mixed triage workload: related, skewed and spurious segments.

    Returns the jobs plus the per-job profile label; ground truth comes
    from :data:`_PREFILTER_SEGMENTS`.  Lengths are production-like
    (600-1200 bp) so related pairs clear the default ``min_overlap``.
    """
    from ..workloads import WorkloadSpec, generate_workload

    per_segment = max(1, pairs // len(_PREFILTER_SEGMENTS))
    jobs: list[AlignmentJob] = []
    labels: list[str] = []
    for offset, (profile, _) in enumerate(_PREFILTER_SEGMENTS):
        spec = WorkloadSpec(
            count=per_segment,
            seed=seed + offset,
            min_length=600,
            max_length=1200,
            xdrop=xdrop,
            scoring=scoring,
        )
        for job in generate_workload(profile, spec).jobs:
            jobs.append(job)
            labels.append(profile)
    for pair_id, job in enumerate(jobs):
        job.pair_id = pair_id
    return jobs, labels


#: The autotune bench's fixed-knob sweep, as multiples of the configured
#: batch size: the operator guesses the self-tuned row must beat.
_AUTOTUNE_FIXED_FACTORS = (0.5, 1.0, 2.0)

#: The static batch size the autotune bench configures its services with.
#: Deliberately conservative — the scenario the axis measures is a
#: latency-cautious static default whose throughput headroom (up to the
#: controller's 4x bound) the tuner must find online.  The fixed-knob
#: rows bracket this base with :data:`_AUTOTUNE_FIXED_FACTORS`.
_AUTOTUNE_BASE_BATCH_SIZE = 24

#: Segments of the autotune bench's "mixed" profile: uniform short reads,
#: noisier mid-length reads, and the long skewed tail — populations whose
#: best knob settings differ, which is what per-bin tuning exploits.
_AUTOTUNE_MIXED_SEGMENTS = ("pacbio", "ont", "length_skew")

#: Default (pairs per wave, waves) per autotune profile.  The mixed
#: profile spreads each wave across three segments and several length
#: bins, so waves must carry more pairs for grown batches to actually
#: form, and more waves amortise the early-wave adaptation cost.
_AUTOTUNE_PROFILE_SCALE = {"skewed": (192, 8), "mixed": (288, 12)}

#: Controller pacing used by the autotune bench rows: the workload is a
#: handful of waves, so the windows must fill (and decisions land) within
#: the first couple of waves for adaptation to pay inside the measurement.
_AUTOTUNE_BENCH_OPTIONS = {
    "window": 4,
    "min_window_batches": 1,
    "cooldown_batches": 0,
    # Compaction keeps the windowed live fraction pinned well above 0.5,
    # so the growth edge sits below the ~0.78-0.93 range the bench
    # profiles actually produce; the stock 0.85 edge leaves mixed-profile
    # bins stranded in the dead band.
    "high_live_fraction": 0.75,
}


def _autotune_bench_jobs(
    profile: str, pairs: int, seed: int, xdrop: int, scoring: ScoringScheme
) -> list[AlignmentJob]:
    """One wave of the autotune benchmark workload.

    ``skewed`` is the pure ``length_skew`` bank; ``mixed`` interleaves
    the :data:`_AUTOTUNE_MIXED_SEGMENTS` populations.  Waves with
    different *seed* values generate distinct pairs, so the result cache
    never answers a later wave and every row measures alignment work.
    """
    from ..workloads import WorkloadSpec, generate_workload

    if profile == "skewed":
        segments = ("length_skew",)
    elif profile == "mixed":
        segments = _AUTOTUNE_MIXED_SEGMENTS
    else:
        raise ConfigurationError(
            f"autotune bench profile must be 'skewed' or 'mixed', "
            f"got {profile!r}"
        )
    per_segment = max(1, pairs // len(segments))
    jobs: list[AlignmentJob] = []
    for offset, segment in enumerate(segments):
        spec = WorkloadSpec(
            count=per_segment,
            seed=seed + 1000 * offset,
            min_length=200,
            max_length=900,
            xdrop=xdrop,
            scoring=scoring,
        )
        jobs.extend(generate_workload(segment, spec).jobs)
    for pair_id, job in enumerate(jobs):
        job.pair_id = pair_id
    return jobs


def _run_autotune_bench(
    profile: str,
    mode: str,
    pairs: int,
    xdrop: int,
    seed: int,
    batch_size: int,
    workers: int,
    quick: bool,
    label: str,
    options: dict | None,
    waves: int,
) -> BenchEntry:
    """The ``autotune`` axis of :func:`run_service_bench`.

    The workload arrives in *waves* (distinct fixed-seed generations of
    the same *profile*), so a controller that adapts during the early
    waves serves the later ones with tuned knobs — the closest a
    deterministic benchmark gets to live traffic.  Rows:

    * ``direct`` — every wave as one engine batch (offline upper bound);
    * ``service_fixed_bs<N>`` — the same waves through static services
      at the :data:`_AUTOTUNE_FIXED_FACTORS` spread of batch sizes with
      default kernel knobs (the operator-guess baselines);
    * ``service_autotune`` — the waves through a service with
      ``autotune=mode``; its ``extra["autotune"]`` records the decision
      history, the knobs it settled on, the planner's predicted payoffs,
      and whether it beat every fixed row (``beats_fixed``).

    ``speedup_vs_scalar`` on every service row is the speed-up over the
    *default-batch-size fixed row* — the static configuration the tuned
    service started from.
    """
    from ..api import AlignConfig, ServiceConfig
    from ..service import AlignmentService

    if quick:
        pairs = min(pairs, 36)
        waves = min(waves, 3)
    scoring = ScoringScheme()
    wave_jobs = [
        _autotune_bench_jobs(profile, pairs, seed + wave, xdrop, scoring)
        for wave in range(waves)
    ]
    engine = get_engine("batched", scoring=scoring, xdrop=xdrop)

    direct_timer = Timer()
    direct_scores: list[int] = []
    cells = 0
    with direct_timer:
        for jobs in wave_jobs:
            batch = engine.align_batch(jobs)
            direct_scores.extend(batch.scores())
            cells += batch.summary.cells

    def run_waves(service: AlignmentService) -> tuple[float, list[int]]:
        timer = Timer()
        scores: list[int] = []
        with timer:
            for jobs in wave_jobs:
                tickets = service.submit_many(jobs)
                service.drain()
                scores.extend(t.result(timeout=120.0).score for t in tickets)
        return timer.elapsed, scores

    def service_config(**service_kwargs) -> AlignConfig:
        return AlignConfig(
            engine="batched",
            scoring=scoring,
            xdrop=xdrop,
            bin_width=500,
            service=ServiceConfig(
                num_workers=workers,
                cache_capacity=0,
                **service_kwargs,
            ),
        )

    fixed_sizes = sorted(
        {max(1, int(round(batch_size * f))) for f in _AUTOTUNE_FIXED_FACTORS}
    )
    fixed_seconds: dict[int, float] = {}
    fixed_identical: dict[int, bool] = {}
    for size in fixed_sizes:
        with AlignmentService(
            config=service_config(max_batch_size=size)
        ) as fixed:
            elapsed, scores = run_waves(fixed)
        fixed_seconds[size] = elapsed
        fixed_identical[size] = scores == direct_scores

    tuned_options = dict(_AUTOTUNE_BENCH_OPTIONS)
    tuned_options.update(options or {})
    tuned = AlignmentService(
        config=service_config(
            max_batch_size=batch_size,
            autotune=mode,
            autotune_options=tuned_options,
        )
    )
    try:
        tuned_elapsed, tuned_scores = run_waves(tuned)
        tuned_stats = tuned.stats()
        metrics = tuned.metrics_snapshot(
            provenance=build_provenance(seed=seed)
        ).to_dict()
    finally:
        tuned.shutdown()

    baseline_seconds = fixed_seconds[
        min(fixed_sizes, key=lambda s: abs(s - batch_size))
    ]

    def row(name: str, seconds: float, identical: bool) -> BenchResult:
        return BenchResult(
            engine=name,
            measured_seconds=seconds,
            measured_gcups=gcups(cells, seconds),
            speedup_vs_scalar=(
                baseline_seconds / seconds if seconds > 0 else float("inf")
            ),
            scores_identical_to_reference=identical,
            cells=cells,
        )

    rows = [row("direct", direct_timer.elapsed, True)]
    for size in fixed_sizes:
        rows.append(
            row(
                f"service_fixed_bs{size}",
                fixed_seconds[size],
                fixed_identical[size],
            )
        )
    rows.append(
        row(
            "service_autotune",
            tuned_elapsed,
            tuned_scores == direct_scores,
        )
    )

    snapshot = tuned_stats.autotune
    decisions = (
        tuned.autotune.decisions if tuned.autotune is not None else []
    )
    predicted = [
        d.predicted_payoff
        for d in decisions
        if d.action == "applied" and d.predicted_payoff is not None
    ]
    best_fixed = min(fixed_seconds.values())
    extra = {
        "service_config": {
            "batch_size": batch_size,
            "workers": workers,
            "bin_width": 500,
            "fixed_batch_sizes": fixed_sizes,
        },
        "kernel_live_fraction": tuned_stats.kernel_live_fraction,
        "suggested_batch_size": tuned_stats.suggested_batch_size,
        "autotune": {
            "mode": mode,
            "profile": profile,
            "waves": len(wave_jobs),
            "pairs_per_wave": len(wave_jobs[0]),
            "options": tuned_options,
            "snapshot": snapshot,
            "fixed_seconds": {
                str(size): fixed_seconds[size] for size in fixed_sizes
            },
            "autotune_seconds": tuned_elapsed,
            "beats_fixed": tuned_elapsed < best_fixed,
            "speedup_vs_best_fixed": (
                best_fixed / tuned_elapsed if tuned_elapsed > 0 else float("inf")
            ),
            "predicted_payoffs": predicted,
            # Measured payoff of the whole tuned run over the static
            # config it started from — the number the planner's
            # predictions are judged against in examples/tests.
            "measured_payoff": (
                baseline_seconds / tuned_elapsed if tuned_elapsed > 0 else None
            ),
        },
        # The autotune axis measures a different (wave-based, profiled)
        # workload than the default series; fork the baseline signature.
        "workload": {
            "autotune": mode,
            "autotune_profile": profile,
            "waves": len(wave_jobs),
        },
    }
    return BenchEntry(
        kind="service",
        label=label,
        batch_size=sum(len(jobs) for jobs in wave_jobs),
        xdrop=xdrop,
        rng_seed=seed,
        scoring={
            "match": scoring.match,
            "mismatch": scoring.mismatch,
            "gap": scoring.gap,
        },
        quick=quick,
        rows=rows,
        extra=extra,
        metrics=metrics,
    )


def run_service_bench(
    pairs: int | None = None,
    xdrop: int = 50,
    seed: int = 2020,
    batch_size: int = 48,
    workers: int = 1,
    quick: bool = False,
    label: str = "",
    process_workers: int = 0,
    prefilter: str = "off",
    prefilter_options: dict | None = None,
    autotune: str = "off",
    autotune_profile: str = "skewed",
    autotune_options: dict | None = None,
    autotune_waves: int | None = None,
    autotune_batch_size: int = _AUTOTUNE_BASE_BATCH_SIZE,
) -> BenchEntry:
    """Time the serving layer three ways on one fixed-seed workload.

    Rows: ``direct`` (one engine batch — the offline upper bound),
    ``per_job`` (one engine call per request — what the service replaces)
    and ``service`` (individual submissions through the adaptive batcher,
    plus a cache-served resubmission round recorded in ``extra``).  The
    ``speedup_vs_scalar`` column of the service rows is the speed-up over
    *per-job submission* — the serving layer's own scalar baseline.

    With ``process_workers > 0`` a fourth row, ``service_mp``, times the
    same workload through the distributed tier: a process-transport
    service with the ``batch`` dispatch policy (whole formed batches
    round-robined across worker processes).  Worker spawn happens before
    the timed round, and a separately-seeded warm-up batch per worker
    excludes interpreter start-up from the measurement.  Entries with a
    process row carry ``extra["workload"]`` so they form their own
    baseline series and never shift the default-series trajectory.

    With ``prefilter != "off"`` the workload switches to the mixed
    triage bank (:func:`_prefilter_bench_jobs` — related pacbio/ont
    segments plus skewed and unrelated spurious-candidate segments with
    per-job ground truth) and a ``service_prefilter`` row times the same
    submissions through a service running the admission policy.  The
    entry's ``extra["prefilter"]`` records the per-outcome decision
    counts, reject precision/recall against the segment ground truth,
    the false-rejection count and the speed-up over the no-prefilter
    service row; such entries also fork their own baseline series.

    With ``autotune != "off"`` the run is the self-tuning axis instead
    (see :func:`_run_autotune_bench`): a wave-based ``skewed`` or
    ``mixed`` profile workload through a spread of fixed-knob services
    and one autotuned service, recording a ``service_autotune`` row that
    is expected to beat every fixed row.  The axis runs at its own
    conservative static base (``autotune_batch_size``, default
    :data:`_AUTOTUNE_BASE_BATCH_SIZE`) rather than ``batch_size`` — the
    scenario it measures is a latency-cautious default whose throughput
    headroom the tuner finds online.
    """
    from ..api import AlignConfig, ServiceConfig
    from ..service import AlignmentService

    if autotune != "off":
        scale = _AUTOTUNE_PROFILE_SCALE.get(autotune_profile, (192, 6))
        return _run_autotune_bench(
            profile=autotune_profile,
            mode=autotune,
            pairs=pairs if pairs is not None else scale[0],
            xdrop=xdrop,
            seed=seed,
            batch_size=autotune_batch_size,
            workers=workers,
            quick=quick,
            label=label,
            options=autotune_options,
            waves=autotune_waves if autotune_waves is not None else scale[1],
        )
    if pairs is None:
        pairs = 192
    if quick:
        pairs = min(pairs, 24)
        batch_size = min(batch_size, 8)
    scoring = ScoringScheme()
    labels: list[str] | None = None
    if prefilter != "off":
        jobs, labels = _prefilter_bench_jobs(pairs, seed, xdrop, scoring)
    else:
        jobs = service_bench_jobs(pairs, seed)
    engine = get_engine("batched", scoring=scoring, xdrop=xdrop)

    direct_timer = Timer()
    with direct_timer:
        direct = engine.align_batch(jobs)

    per_job_timer = Timer()
    per_job_scores = []
    with per_job_timer:
        for job in jobs:
            per_job_scores.append(engine.align_batch([job]).scores()[0])

    service = AlignmentService(
        config=AlignConfig(
            engine="batched",
            scoring=scoring,
            xdrop=xdrop,
            bin_width=500,
            service=ServiceConfig(
                num_workers=workers,
                max_batch_size=batch_size,
                cache_capacity=4 * len(jobs),
            ),
        )
    )
    service_timer = Timer()
    with service_timer:
        tickets = service.submit_many(jobs)
        service.drain()
        service_scores = [t.result(timeout=120.0).score for t in tickets]
    resubmit_timer = Timer()
    with resubmit_timer:
        tickets2 = service.submit_many(jobs)
        service.drain()
        resubmit_scores = [t.result(timeout=120.0).score for t in tickets2]
    stats = service.stats()
    metrics = service.metrics_snapshot(
        provenance=build_provenance(seed=seed)
    ).to_dict()
    service.shutdown()

    mp_timer = None
    mp_scores: list[int] = []
    if process_workers > 0:
        mp_service = AlignmentService(
            config=AlignConfig(
                engine="batched",
                scoring=scoring,
                xdrop=xdrop,
                bin_width=500,
                service=ServiceConfig(
                    num_workers=process_workers,
                    max_batch_size=batch_size,
                    cache_capacity=4 * len(jobs),
                    transport="process",
                    worker_policy="batch",
                ),
            )
        )
        try:
            # One warm batch per worker (round-robin dispatch) so spawn
            # and first-touch costs stay out of the timed round.  Warm
            # jobs use a different seed so the cache cannot answer the
            # measured submissions.
            for round_index in range(process_workers):
                warm = service_bench_jobs(
                    max(2, batch_size // 4), seed + 1 + round_index
                )
                warm_tickets = mp_service.submit_many(warm)
                mp_service.drain()
                for ticket in warm_tickets:
                    ticket.result(timeout=120.0)
            mp_timer = Timer()
            with mp_timer:
                mp_tickets = mp_service.submit_many(jobs)
                mp_service.drain()
                mp_scores = [t.result(timeout=120.0).score for t in mp_tickets]
        finally:
            mp_service.shutdown()

    pf_timer = None
    pf_results: list = []
    pf_tickets: list = []
    pf_stats = None
    if prefilter != "off":
        pf_service = AlignmentService(
            config=AlignConfig(
                engine="batched",
                scoring=scoring,
                xdrop=xdrop,
                bin_width=500,
                service=ServiceConfig(
                    num_workers=workers,
                    max_batch_size=batch_size,
                    cache_capacity=4 * len(jobs),
                    prefilter=prefilter,
                    prefilter_options=dict(prefilter_options or {}),
                ),
            )
        )
        try:
            pf_timer = Timer()
            with pf_timer:
                pf_tickets = pf_service.submit_many(jobs)
                pf_service.drain()
                pf_results = [t.result(timeout=120.0) for t in pf_tickets]
            pf_stats = pf_service.stats()
        finally:
            pf_service.shutdown()

    cells = direct.summary.cells

    def row(name: str, seconds: float, identical: bool) -> BenchResult:
        return BenchResult(
            engine=name,
            measured_seconds=seconds,
            measured_gcups=gcups(cells, seconds),
            speedup_vs_scalar=(
                per_job_timer.elapsed / seconds if seconds > 0 else float("inf")
            ),
            scores_identical_to_reference=identical,
            cells=cells,
        )

    rows = [
        row("direct", direct_timer.elapsed, True),
        row("per_job", per_job_timer.elapsed, per_job_scores == direct.scores()),
        row("service", service_timer.elapsed, service_scores == direct.scores()),
        row(
            "service_resubmit",
            resubmit_timer.elapsed,
            resubmit_scores == direct.scores(),
        ),
    ]
    extra = {
        "service_config": {
            "batch_size": batch_size,
            "workers": workers,
            "bin_width": 500,
        },
        "batches_formed": stats.batches_formed,
        "mean_batch_size": stats.mean_batch_size,
        "cache_hit_rate": stats.cache.hit_rate,
        "kernel_live_fraction": stats.kernel_live_fraction,
        "suggested_batch_size": stats.suggested_batch_size,
    }
    if mp_timer is not None:
        rows.append(
            row("service_mp", mp_timer.elapsed, mp_scores == direct.scores())
        )
        extra["service_config"]["process_workers"] = process_workers
        # Presence of extra["workload"] changes BenchEntry.signature(), so
        # process-transport runs start their own baseline series instead
        # of gating (or loosening) the default thread-transport one.
        extra["workload"] = {
            "workers": workers,
            "process_workers": process_workers,
            "worker_policy": "batch",
        }
    if pf_timer is not None:
        from ..prefilter import PrefilterPolicy

        policy = PrefilterPolicy.from_options(prefilter_options)
        threshold = policy.threshold(scoring)
        truth_reject = [
            dict(_PREFILTER_SEGMENTS)[lab] for lab in labels
        ]
        rejected = [t.prefilter == "reject" for t in pf_tickets]
        true_rejections = sum(
            r and t for r, t in zip(rejected, truth_reject)
        )
        false_rejections = sum(
            r and not t for r, t in zip(rejected, truth_reject)
        )
        # The row's parity bit: in enforce mode rejected pairs answer the
        # placeholder by design, so "identical" means every admitted pair
        # matched the direct score AND every rejection was sound (the
        # direct result fails the policy's BELLA threshold).
        sound = all(
            not threshold.passes(d.score, d.overlap_length)
            if r
            else a.score == d.score
            for r, a, d in zip(rejected, pf_results, direct.results)
        )
        rows.append(row("service_prefilter", pf_timer.elapsed, sound))
        by_label: dict[str, int] = {}
        for lab, r in zip(labels, rejected):
            if r:
                by_label[lab] = by_label.get(lab, 0) + 1
        extra["prefilter"] = {
            "mode": prefilter,
            "policy": policy.to_dict(),
            "decisions": dict(pf_stats.prefilter_decisions),
            "rejected_by_label": by_label,
            "reject_precision": (
                true_rejections / sum(rejected) if sum(rejected) else 1.0
            ),
            "reject_recall": (
                true_rejections / sum(truth_reject)
                if sum(truth_reject)
                else 1.0
            ),
            "false_rejections": false_rejections,
            "speedup_vs_service": (
                service_timer.elapsed / pf_timer.elapsed
                if pf_timer.elapsed > 0
                else float("inf")
            ),
            "segments": [name for name, _ in _PREFILTER_SEGMENTS],
        }
        # Triage entries measure a different workload than the default
        # series; extra["workload"] forks the baseline signature so the
        # perf gate keeps comparing like with like.
        workload = extra.setdefault("workload", {})
        workload["prefilter"] = prefilter
        workload["prefilter_segments"] = len(_PREFILTER_SEGMENTS)
    entry = BenchEntry(
        kind="service",
        label=label,
        batch_size=len(jobs),
        xdrop=xdrop,
        rng_seed=seed,
        scoring={
            "match": scoring.match,
            "mismatch": scoring.mismatch,
            "gap": scoring.gap,
        },
        quick=quick,
        rows=rows,
        extra=extra,
        metrics=metrics,
    )
    return entry
