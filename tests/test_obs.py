"""Unit tests of the telemetry subsystem (:mod:`repro.obs`).

Covers the metrics core (counters/gauges/histograms, labels, snapshots,
diffs), structured tracing (parent propagation, error capture, the no-op
disabled path), the flight recorder ring, both exporters, provenance
stamping, the runtime bundle — and the multi-threaded hammer tests the
thread-safety claims are gated on.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs import (
    NULL_SPAN,
    FlightRecorder,
    IntervalExporter,
    MetricsRegistry,
    MetricsSnapshot,
    Tracer,
    build_provenance,
    config_hash,
    diff_counters,
    read_jsonl,
    render_prometheus,
    write_jsonl,
)


@pytest.fixture(autouse=True)
def _fresh_global_obs():
    """Isolate every test from the process-global bundle."""
    obs.reset()
    yield
    obs.reset()


# --------------------------------------------------------------------------- #
# Metrics core.
# --------------------------------------------------------------------------- #
class TestCounters:
    def test_unlabelled_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total")
        c.inc()
        c.inc(4)
        assert c.value() == 5.0

    def test_labelled_counter_keeps_series_apart(self):
        reg = MetricsRegistry()
        c = reg.counter("batches_total", labelnames=("engine",))
        c.inc(engine="batched")
        c.inc(2, engine="reference")
        assert c.value(engine="batched") == 1.0
        assert c.value(engine="reference") == 2.0
        assert c.total() == 3.0

    def test_counter_rejects_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("x").inc(-1)

    def test_label_mismatch_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("y", labelnames=("engine",))
        with pytest.raises(ConfigurationError):
            c.inc(shard="0")

    def test_redeclaration_with_other_kind_rejected(self):
        reg = MetricsRegistry()
        reg.counter("z")
        with pytest.raises(ConfigurationError):
            reg.gauge("z")

    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("same") is reg.counter("same")


class TestGaugesAndHistograms:
    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value() == 12.0

    def test_histogram_buckets_and_sum(self):
        reg = MetricsRegistry()
        h = reg.histogram("wait", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        series = h.series()
        assert series["count"] == 3
        assert series["sum"] == pytest.approx(55.5)
        # counts are per-bucket: <=1, <=10, +Inf overflow
        assert series["counts"] == [1, 1, 1]


class TestSnapshots:
    def test_unlabelled_instruments_appear_before_first_update(self):
        """Pre-seeded series: a dashboard scrape sees zeros, not gaps."""
        reg = MetricsRegistry()
        reg.counter("evictions_total")
        reg.gauge("queue_depth")
        reg.histogram("wait_seconds")
        snap = reg.snapshot()
        assert snap.value("evictions_total") == 0.0
        assert snap.value("queue_depth") == 0.0
        assert snap.get("wait_seconds") is not None

    def test_snapshot_roundtrips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("c", labelnames=("k",)).inc(3, k="a")
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot(provenance={"seed": 7})
        restored = MetricsSnapshot.from_dict(json.loads(snap.to_json()))
        assert restored.value("c", k="a") == 3.0
        assert restored.provenance == {"seed": "7"} or restored.provenance == {
            "seed": 7
        }
        hist = restored.get("h")
        assert hist is not None and hist.histogram["count"] == 1

    def test_diff_counters_skips_gauges(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        g = reg.gauge("g")
        old = reg.snapshot()
        c.inc(5)
        g.set(99)
        deltas = diff_counters(old, reg.snapshot())
        assert deltas == [{"name": "c", "labels": {}, "delta": 5.0}]


# --------------------------------------------------------------------------- #
# Tracing.
# --------------------------------------------------------------------------- #
class TestTracing:
    def test_disabled_tracer_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is NULL_SPAN
        with tracer.span("still_nothing") as span:
            span.set_attribute("ignored", 1)  # must not raise

    def test_parent_propagates_through_nesting(self):
        tracer = Tracer(enabled=True)
        collected = tracer.collect()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        names = [s.name for s in collected]
        assert names == ["inner", "outer"]  # children finish first
        assert all(s.duration is not None and s.duration >= 0 for s in collected)

    def test_exception_marks_span_as_error(self):
        tracer = Tracer(enabled=True)
        collected = tracer.collect()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = collected.named("doomed")
        assert span.status == "error"
        assert "ValueError" in span.error

    def test_sibling_threads_get_independent_stacks(self):
        tracer = Tracer(enabled=True)
        collected = tracer.collect()

        def worker():
            with tracer.span("thread_root"):
                pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = collected.named("thread_root")
        assert len(roots) == 4
        assert all(s.parent_id is None for s in roots)

    def test_broken_sink_never_breaks_work(self):
        tracer = Tracer(enabled=True)

        def bad_sink(span):
            raise RuntimeError("sink bug")

        tracer.add_sink(bad_sink)
        with tracer.span("survives"):
            pass  # must not raise


# --------------------------------------------------------------------------- #
# Flight recorder.
# --------------------------------------------------------------------------- #
class TestFlightRecorder:
    def test_ring_is_bounded_per_signal(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record_event("tick", i=i)
        assert rec.event_count == 4

    def test_chatty_spans_cannot_evict_events(self):
        rec = FlightRecorder(capacity=4)
        tracer = Tracer(enabled=True, sinks=(rec.record_span,))
        rec.record_event("crash")
        for _ in range(20):
            with tracer.span("noise"):
                pass
        assert rec.span_count == 4
        assert rec.event_count == 1

    def test_tick_records_counter_deltas(self):
        reg = MetricsRegistry()
        rec = FlightRecorder(capacity=8, registry=reg)
        c = reg.counter("work_total")
        rec.tick()
        c.inc(3)
        rec.tick()
        doc = rec.dump(reason="test")
        assert doc["metric_deltas"], "second tick must record the +3 delta"
        (delta,) = doc["metric_deltas"][-1]["deltas"]
        assert delta == {"name": "work_total", "labels": {}, "delta": 3.0}

    def test_dump_writes_self_describing_document(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        rec = FlightRecorder(capacity=8, registry=reg)
        rec.record_event("worker_crash", error="boom")
        out = tmp_path / "dump.json"
        doc = rec.dump(path=out, reason="worker_crash", provenance={"seed": 1})
        on_disk = json.loads(out.read_text())
        assert on_disk["kind"] == "flight_recorder_dump"
        assert on_disk["reason"] == "worker_crash"
        assert on_disk["events"][0]["kind"] == "worker_crash"
        assert doc["metrics"] is not None
        assert rec.dumps == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


# --------------------------------------------------------------------------- #
# Exporters.
# --------------------------------------------------------------------------- #
class TestExporters:
    def test_jsonl_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        path = tmp_path / "m.jsonl"
        write_jsonl(path, reg.snapshot())
        reg.counter("c").inc()
        write_jsonl(path, reg.snapshot())
        snaps = read_jsonl(path)
        assert [s.value("c") for s in snaps] == [2.0, 3.0]

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("repro_jobs_total", help="jobs", labelnames=("engine",)).inc(
            5, engine="batched"
        )
        reg.gauge("repro_depth").set(3)
        reg.histogram("repro_wait", buckets=(1.0,)).observe(0.5)
        text = render_prometheus(reg.snapshot())
        assert '# TYPE repro_jobs_total counter' in text
        assert 'repro_jobs_total{engine="batched"} 5.0' in text
        assert "repro_depth 3.0" in text  # no _total suffix on gauges
        assert 'repro_wait_bucket{le="+Inf"} 1' in text
        assert "repro_wait_count 1" in text

    def test_counter_total_suffix_not_doubled(self):
        reg = MetricsRegistry()
        reg.counter("already_total").inc()
        reg.counter("bare").inc()
        text = render_prometheus(reg.snapshot())
        assert "already_total 1.0" in text
        assert "already_total_total" not in text
        assert "bare_total 1.0" in text

    def test_interval_exporter_manual_and_background(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        path = tmp_path / "m.jsonl"
        seen = []
        exporter = IntervalExporter(
            reg, path, interval=0.05, provenance={"run": "t"}, on_export=seen.append
        )
        exporter.export_now()
        exporter.start()
        exporter.stop(final_export=True)
        assert exporter.exports >= 2
        snaps = read_jsonl(path)
        assert len(snaps) == exporter.exports
        assert all(s.provenance.get("run") == "t" for s in snaps)
        assert len(seen) == exporter.exports

    def test_prom_mode_rewrites_file(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        path = tmp_path / "metrics.prom"
        exporter = IntervalExporter(reg, path, fmt="prom")
        exporter.export_now()
        exporter.export_now()
        assert path.read_text().count("# TYPE c counter") == 1

    def test_invalid_fmt_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            IntervalExporter(MetricsRegistry(), tmp_path / "x", fmt="xml")


# --------------------------------------------------------------------------- #
# Provenance.
# --------------------------------------------------------------------------- #
class TestProvenance:
    def test_build_provenance_core_fields(self):
        prov = build_provenance(seed=7, run="unit")
        assert prov["seed"] == 7
        assert prov["run"] == "unit"
        assert "git_sha" in prov
        assert "python" in prov

    def test_config_hash_is_order_insensitive(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})


# --------------------------------------------------------------------------- #
# Runtime bundle.
# --------------------------------------------------------------------------- #
class TestRuntime:
    def test_disabled_by_default(self):
        ob = obs.get_observability()
        assert not ob.enabled
        assert ob.recorder is None
        assert ob.span("x") is NULL_SPAN

    def test_configure_round_trip(self):
        ob = obs.configure(tracing=True, flight_recorder=True)
        assert ob.enabled and ob.recorder is not None
        with ob.span("traced"):
            pass
        assert ob.recorder.span_count == 1
        obs.configure(tracing=False, flight_recorder=False)
        assert not ob.enabled and ob.recorder is None

    def test_scoped_bundle_shares_tracer_not_registry(self):
        ob = obs.configure(tracing=True)
        scoped = ob.scoped()
        assert scoped.tracer is ob.tracer
        assert scoped.registry is not ob.registry
        scoped.counter("private").inc()
        assert "private" not in ob.registry.names()

    def test_emit_kernel_batch_lands_on_global_registry(self):
        obs.emit_kernel_batch("test", pairs=4, cells=100, steps=12, dtype="int16")
        snap = obs.get_observability().registry.snapshot()
        assert snap.value("repro_kernel_pairs_total", kernel="test") == 4.0
        assert snap.value("repro_kernel_cells_total", kernel="test") == 100.0
        assert (
            snap.value("repro_kernel_dtype_total", kernel="test", dtype="int16")
            == 1.0
        )


# --------------------------------------------------------------------------- #
# Thread-safety hammers (satellite: concurrency guarantees).
# --------------------------------------------------------------------------- #
class TestConcurrency:
    THREADS = 8
    PER_THREAD = 500

    def _hammer(self, fn):
        barrier = threading.Barrier(self.THREADS)
        errors = []

        def run():
            try:
                barrier.wait()
                for i in range(self.PER_THREAD):
                    fn(i)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=run) for _ in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_concurrent_counter_increments_all_land(self):
        reg = MetricsRegistry()
        c = reg.counter("hammer_total", labelnames=("t",))
        self._hammer(lambda i: c.inc(t=str(i % 4)))
        assert c.total() == self.THREADS * self.PER_THREAD

    def test_concurrent_histogram_observations_all_land(self):
        reg = MetricsRegistry()
        h = reg.histogram("hammer_hist", buckets=(10.0, 100.0))
        self._hammer(lambda i: h.observe(float(i)))
        assert h.series()["count"] == self.THREADS * self.PER_THREAD

    def test_concurrent_instrument_creation_is_single_instance(self):
        reg = MetricsRegistry()
        instruments = []
        self._hammer(lambda i: instruments.append(reg.counter("shared")))
        assert all(ins is instruments[0] for ins in instruments)

    def test_snapshot_under_load_is_consistent(self):
        """Snapshots taken mid-hammer parse and stay monotonic."""
        reg = MetricsRegistry()
        c = reg.counter("load_total")
        stop = threading.Event()
        snaps: list[MetricsSnapshot] = []

        def snapshotter():
            while not stop.is_set():
                snaps.append(reg.snapshot())

        watcher = threading.Thread(target=snapshotter)
        watcher.start()
        try:
            self._hammer(lambda i: c.inc())
        finally:
            stop.set()
            watcher.join()
        snaps.append(reg.snapshot())
        values = [s.value("load_total", default=0.0) for s in snaps]
        assert values == sorted(values), "counter must never appear to decrease"
        assert values[-1] == self.THREADS * self.PER_THREAD

    def test_traced_spans_under_load_all_reach_recorder_sink(self):
        tracer = Tracer(enabled=True)
        collected = tracer.collect()

        def traced(i):
            with tracer.span("hammered", i=i):
                pass

        self._hammer(traced)
        assert len(collected) == self.THREADS * self.PER_THREAD


# --------------------------------------------------------------------------- #
# Batcher gauge consistency.
# --------------------------------------------------------------------------- #


class TestBatcherPendingGauge:
    """``repro_batcher_pending`` must equal ``pending`` after every mutation.

    The batcher has two code paths that refresh the gauge — the still-pending
    admission branch in :meth:`add` and the flush path in ``_flush_bin`` — and
    a per-bin limit override that changes which of the two fires.  This test
    walks every path and asserts the invariant after each step, so a future
    refactor cannot silently leave the gauge stale on one of them.
    """

    def _ticket(self, length=100):
        from repro.core.job import AlignmentJob, Seed
        from repro.service.queue import AlignmentTicket

        seq = "ACGT" * (length // 4 + 1)
        return AlignmentTicket(
            AlignmentJob(query=seq[:length], target=seq[:length], seed=Seed(0, 0, 4))
        )

    def _gauge_value(self, bundle):
        return bundle.registry.snapshot().value("repro_batcher_pending")

    def test_gauge_tracks_pending_through_every_flush_path(self):
        from repro.service.batcher import AdaptiveBatcher, BatchPolicy

        bundle = obs.get_observability().scoped()
        batcher = AdaptiveBatcher(
            BatchPolicy(max_batch_size=3, bin_width=0, max_wait_seconds=0.5),
            obs=bundle,
        )

        def check():
            assert self._gauge_value(bundle) == batcher.pending

        check()  # declared at 0 before any traffic
        # Still-pending admissions refresh via the non-flush branch of add().
        batcher.add(self._ticket(), now=0.0)
        check()
        batcher.add(self._ticket(), now=0.0)
        check()
        # Third admission trips the size flush; gauge drops back to zero.
        formed = batcher.add(self._ticket(), now=0.0)
        assert formed is not None and formed.reason == "size"
        check()
        assert batcher.pending == 0

        # Wait-bound flush (due) refreshes through _flush_bin as well.
        batcher.add(self._ticket(), now=10.0)
        check()
        assert batcher.due(now=10.6)
        check()
        assert batcher.pending == 0

        # A per-bin autotune override moves the size-flush boundary: one
        # admission stays pending under limit 2, the second flushes.
        batcher.set_bin_limit(0, 2)
        batcher.add(self._ticket(), now=20.0)
        check()
        assert batcher.add(self._ticket(), now=20.0) is not None
        check()

        # Drain path: two bins pending, flush_all empties both.
        batcher.clear_bin_limits()
        batcher.add(self._ticket(), now=30.0)
        batcher.add(self._ticket(), now=30.0)
        check()
        assert len(batcher.flush_all()) == 1
        check()
        assert batcher.pending == 0 and self._gauge_value(bundle) == 0
