"""Tests for BELLA's k-mer analysis stage."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bella import build_kmer_index, count_kmers, pack_kmers, reliable_kmer_range
from repro.core import random_sequence
from repro.errors import ConfigurationError

SEQ = st.text(alphabet="ACGT", min_size=5, max_size=80)


class TestPackKmers:
    def test_simple_packing(self):
        codes, positions = pack_kmers("ACGT", 2)
        # AC=0b0001=1, CG=0b0110=6, GT=0b1011=11
        assert codes.tolist() == [1, 6, 11]
        assert positions.tolist() == [0, 1, 2]

    def test_kmers_with_n_are_skipped(self):
        codes, positions = pack_kmers("ACNGT", 2)
        assert positions.tolist() == [0, 3]

    def test_sequence_shorter_than_k(self):
        codes, positions = pack_kmers("ACG", 5)
        assert len(codes) == 0 and len(positions) == 0

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            pack_kmers("ACGT", 0)
        with pytest.raises(ConfigurationError):
            pack_kmers("ACGT", 32)

    @settings(max_examples=30, deadline=None)
    @given(seq=SEQ, k=st.integers(min_value=1, max_value=8))
    def test_codes_are_injective_over_kmers(self, seq, k):
        if len(seq) < k:
            return
        codes, positions = pack_kmers(seq, k)
        kmers = [seq[p : p + k] for p in positions.tolist()]
        mapping = {}
        for code, kmer in zip(codes.tolist(), kmers):
            assert mapping.setdefault(code, kmer) == kmer

    def test_identical_kmers_same_code(self):
        codes, _ = pack_kmers("ACGACG", 3)
        assert codes[0] == codes[3]


class TestCountKmers:
    def test_counts_across_reads(self):
        counts = count_kmers(["ACGT", "ACGA"], 3)
        acg = pack_kmers("ACG", 3)[0][0]
        assert counts[int(acg)] == 2

    def test_counts_within_read(self):
        counts = count_kmers(["ACGACGACG"], 3)
        acg = int(pack_kmers("ACG", 3)[0][0])
        assert counts[acg] == 3


class TestReliableRange:
    def test_returns_sensible_bounds(self):
        lower, upper = reliable_kmer_range(coverage=15, error_rate=0.15, k=17)
        assert lower == 2
        assert upper >= 8

    def test_higher_coverage_raises_upper(self):
        _, low_cov = reliable_kmer_range(10, 0.1, 17)
        _, high_cov = reliable_kmer_range(60, 0.1, 17)
        assert high_cov >= low_cov

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            reliable_kmer_range(0, 0.1, 17)
        with pytest.raises(ConfigurationError):
            reliable_kmer_range(10, 1.5, 17)
        with pytest.raises(ConfigurationError):
            reliable_kmer_range(10, 0.1, 0)


class TestBuildKmerIndex:
    def test_shared_kmers_are_indexed(self):
        reads = ["AAACGTACGTAAA", "TTTCGTACGTTTT", "GGGGGGGGGGGGG"]
        index = build_kmer_index(reads, k=5, lower=2)
        assert index.num_reads == 3
        # "CGTAC", "GTACG", "TACGT" are shared between reads 0 and 1.
        shared_codes = [
            code for code, occ in index.occurrences.items() if len(occ) >= 2
        ]
        assert len(shared_codes) >= 3
        for code in shared_codes:
            readset = {read for read, _ in index.occurrences[code]}
            assert readset == {0, 1}

    def test_singleton_kmers_pruned(self):
        reads = ["ACGTACGTACGT", "TGCATGCATGCA"]
        index = build_kmer_index(reads, k=6, lower=2)
        assert index.retained_kmers == 0
        assert index.pruned_fraction == 1.0

    def test_upper_bound_prunes_repeats(self):
        reads = ["ACGTACGT"] * 10 + ["TTTTTTTT"]
        index = build_kmer_index(reads, k=4, lower=2, upper=5)
        # k-mers of the repeated read occur in 10 reads > upper -> pruned.
        assert all(len(occ) <= 5 for occ in index.occurrences.values())

    def test_first_position_per_read_is_kept(self):
        reads = ["ACGACGACG", "ACGTTTTTT"]
        index = build_kmer_index(reads, k=3, lower=2)
        acg = int(pack_kmers("ACG", 3)[0][0])
        positions = dict(index.occurrences[acg])
        assert positions[0] == 0  # first occurrence in read 0
        assert positions[1] == 0

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            build_kmer_index(["ACGT"], k=2, lower=0)
        with pytest.raises(ConfigurationError):
            build_kmer_index(["ACGT"], k=2, lower=3, upper=2)

    def test_accepts_encoded_reads(self, rng):
        reads = [random_sequence(60, rng) for _ in range(4)]
        index = build_kmer_index(reads, k=9, lower=1)
        assert index.total_kmers > 0
