"""GPU device specifications for the execution/performance model.

Real CUDA hardware is not available in this reproduction, so the LOGAN
kernel runs against an explicit *model* of the device.  A
:class:`DeviceSpec` captures the architectural parameters the paper reasons
about in Sections IV and VII: streaming multiprocessors (SMs), the four warp
schedulers per SM, the INT32 core count that bounds integer issue rate, the
shared-memory capacities that drive the HBM-vs-shared-memory design decision,
HBM bandwidth/capacity, and the host link.

The :data:`TESLA_V100` preset reproduces the numbers used in the paper's
Roofline analysis: 80 SMs x 4 schedulers x 1.53 GHz = 489.6 warp GIPS peak
issue rate, with the INT32 ceiling at 220.8 warp GIPS (the paper's quoted
value).  An :data:`TESLA_A100` preset is included for "what-if" studies and
for exercising the model with a second configuration in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError

__all__ = ["DeviceSpec", "TESLA_V100", "TESLA_A100"]

_KIB = 1024
_GIB = 1024**3


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural description of a GPU used by the execution model.

    Attributes
    ----------
    name:
        Marketing name of the device.
    num_sms:
        Streaming multiprocessors.
    warp_schedulers_per_sm:
        Processing blocks per SM, each dispatching one instruction per cycle.
    warp_size:
        Threads per warp.
    int32_cores_per_scheduler:
        INT32 ALUs per scheduler; a 32-lane integer warp instruction
        therefore occupies the scheduler for ``warp_size / int32_cores``
        cycles.
    clock_ghz:
        Boost clock used for peak-rate calculations.
    max_threads_per_block, max_threads_per_sm, max_blocks_per_sm:
        Occupancy limits.
    shared_mem_per_sm_kib, shared_mem_per_block_max_kib:
        Shared-memory capacities (96 KiB per SM on the V100, of which a
        single block may opt into at most 64 KiB) — the constraint that
        pushes LOGAN's anti-diagonals into HBM (Section IV-B).
    registers_per_sm:
        32-bit registers per SM (occupancy limit).
    hbm_bandwidth_gbps:
        Device-memory bandwidth in GB/s.
    hbm_capacity_gib:
        Device-memory capacity in GiB; the limiting resource for the batch
        size and the quantity the multi-GPU load balancer balances.
    l2_cache_mib:
        Last-level cache size in MiB, used to decide whether anti-diagonal
        buffers generate HBM traffic or stay cache-resident.
    pcie_bandwidth_gbps:
        Host link bandwidth per device (NVLink on the POWER9 system, PCIe on
        the Skylake system; the default is a conservative common value).
    int32_ceiling_gips_override:
        If set, the INT32 ceiling reported by :meth:`int32_peak_warp_gips`
        uses this value instead of the derived one.  The V100 preset pins it
        to the paper's 220.8 warp GIPS figure.
    """

    name: str
    num_sms: int
    warp_schedulers_per_sm: int
    warp_size: int
    int32_cores_per_scheduler: int
    clock_ghz: float
    max_threads_per_block: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    shared_mem_per_sm_kib: int
    shared_mem_per_block_max_kib: int
    registers_per_sm: int
    hbm_bandwidth_gbps: float
    hbm_capacity_gib: float
    l2_cache_mib: float
    pcie_bandwidth_gbps: float = 16.0
    int32_ceiling_gips_override: float | None = None

    def __post_init__(self) -> None:
        positive_fields = [
            ("num_sms", self.num_sms),
            ("warp_schedulers_per_sm", self.warp_schedulers_per_sm),
            ("warp_size", self.warp_size),
            ("int32_cores_per_scheduler", self.int32_cores_per_scheduler),
            ("clock_ghz", self.clock_ghz),
            ("max_threads_per_block", self.max_threads_per_block),
            ("max_threads_per_sm", self.max_threads_per_sm),
            ("max_blocks_per_sm", self.max_blocks_per_sm),
            ("shared_mem_per_sm_kib", self.shared_mem_per_sm_kib),
            ("shared_mem_per_block_max_kib", self.shared_mem_per_block_max_kib),
            ("registers_per_sm", self.registers_per_sm),
            ("hbm_bandwidth_gbps", self.hbm_bandwidth_gbps),
            ("hbm_capacity_gib", self.hbm_capacity_gib),
            ("l2_cache_mib", self.l2_cache_mib),
            ("pcie_bandwidth_gbps", self.pcie_bandwidth_gbps),
        ]
        for field_name, value in positive_fields:
            if value <= 0:
                raise ConfigurationError(f"{field_name} must be positive, got {value}")
        if self.max_threads_per_block > self.max_threads_per_sm:
            raise ConfigurationError(
                "max_threads_per_block cannot exceed max_threads_per_sm"
            )
        if self.shared_mem_per_block_max_kib > self.shared_mem_per_sm_kib:
            raise ConfigurationError(
                "shared_mem_per_block_max_kib cannot exceed shared_mem_per_sm_kib"
            )

    # ------------------------------------------------------------------ #
    # Derived peak rates (Section VII of the paper).
    # ------------------------------------------------------------------ #
    @property
    def peak_warp_gips(self) -> float:
        """Peak warp-instruction issue rate in GIPS (all schedulers busy)."""
        return self.num_sms * self.warp_schedulers_per_sm * self.clock_ghz

    @property
    def int32_peak_warp_gips(self) -> float:
        """INT32 warp-instruction ceiling in GIPS.

        Only ``int32_cores_per_scheduler`` of the ``warp_size`` lanes can
        execute integer operations each cycle, so an integer-only kernel is
        bounded by this fraction of the peak issue rate.  The V100 preset
        overrides the derived value with the paper's 220.8 figure.
        """
        if self.int32_ceiling_gips_override is not None:
            return self.int32_ceiling_gips_override
        fraction = self.int32_cores_per_scheduler / self.warp_size
        return self.peak_warp_gips * fraction

    @property
    def int32_warp_issue_cycles(self) -> float:
        """Cycles a 32-lane integer warp instruction occupies one scheduler."""
        return self.warp_size / self.int32_cores_per_scheduler

    @property
    def total_int32_cores(self) -> int:
        """Total INT32 ALUs on the device (``MAXR`` in Eq. 1 of the paper)."""
        return (
            self.num_sms
            * self.warp_schedulers_per_sm
            * self.int32_cores_per_scheduler
        )

    @property
    def hbm_capacity_bytes(self) -> int:
        """HBM capacity in bytes."""
        return int(self.hbm_capacity_gib * _GIB)

    @property
    def shared_mem_per_sm_bytes(self) -> int:
        """Shared memory per SM in bytes."""
        return self.shared_mem_per_sm_kib * _KIB

    @property
    def shared_mem_per_block_max_bytes(self) -> int:
        """Maximum shared memory a single block may reserve, in bytes."""
        return self.shared_mem_per_block_max_kib * _KIB

    @property
    def l2_cache_bytes(self) -> int:
        """Last-level cache capacity in bytes."""
        return int(self.l2_cache_mib * _KIB * _KIB)

    @property
    def ridge_point(self) -> float:
        """Operational intensity (warp instructions / byte) at the roofline ridge."""
        return self.int32_peak_warp_gips / self.hbm_bandwidth_gbps

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """Copy of the spec with selected fields replaced (for ablations)."""
        return replace(self, **kwargs)


#: NVIDIA Tesla V100 (SXM2, 16 GB HBM2) — the device used throughout the paper.
TESLA_V100 = DeviceSpec(
    name="NVIDIA Tesla V100 (16 GB)",
    num_sms=80,
    warp_schedulers_per_sm=4,
    warp_size=32,
    int32_cores_per_scheduler=16,
    clock_ghz=1.53,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    shared_mem_per_sm_kib=96,
    shared_mem_per_block_max_kib=64,
    registers_per_sm=65536,
    hbm_bandwidth_gbps=900.0,
    hbm_capacity_gib=16.0,
    l2_cache_mib=6.0,
    pcie_bandwidth_gbps=16.0,
    int32_ceiling_gips_override=220.8,
)

#: NVIDIA A100 (40 GB) — included for what-if studies; not used by the paper.
TESLA_A100 = DeviceSpec(
    name="NVIDIA A100 (40 GB)",
    num_sms=108,
    warp_schedulers_per_sm=4,
    warp_size=32,
    int32_cores_per_scheduler=16,
    clock_ghz=1.41,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    shared_mem_per_sm_kib=164,
    shared_mem_per_block_max_kib=163,
    registers_per_sm=65536,
    hbm_bandwidth_gbps=1555.0,
    hbm_capacity_gib=40.0,
    l2_cache_mib=40.0,
    pcie_bandwidth_gbps=25.0,
)
