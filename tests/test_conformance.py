"""Tests of the differential conformance/fuzz harness (repro.testing).

The tier-2 matrix (`-m tier2`) replays every workload-bank profile
through every registered engine and the service path; the remaining
tests exercise the harness machinery itself — shrink-on-failure with an
injected off-by-one engine, fuzz determinism and bounds.
"""

from __future__ import annotations

import pytest

from repro.api import AlignConfig
from repro.engine import available_engines, register_engine, unregister_engine
from repro.engine.engines import ReferenceEngine
from repro.errors import ConfigurationError
from repro.testing import (
    ConformanceRunner,
    compare_results,
    derive_round_seed,
    run_fuzz,
)
from repro.workloads import WorkloadSpec, generate_workload, list_profiles

CONFIG = AlignConfig(engine="batched", xdrop=15)
SMALL = WorkloadSpec(count=4, seed=11, min_length=50, max_length=120, xdrop=15)


# --------------------------------------------------------------------------- #
# Tier-2 matrix: workload bank x engine grid, plus the service path
# --------------------------------------------------------------------------- #
@pytest.mark.tier2
@pytest.mark.parametrize("engine", sorted(set(available_engines()) - {"reference"}))
@pytest.mark.parametrize("profile", list_profiles())
class TestConformanceMatrix:
    def test_profile_engine_conformance(self, profile, engine):
        runner = ConformanceRunner(
            CONFIG, engines=["reference", engine], include_service=False
        )
        report = runner.run_workload(generate_workload(profile, SMALL))
        assert report.ok, report.summary()


@pytest.mark.tier2
@pytest.mark.parametrize("profile", list_profiles())
class TestServiceConformance:
    def test_service_path_bit_identical(self, profile):
        runner = ConformanceRunner(
            CONFIG, engines=["reference"], include_service=True
        )
        report = runner.run_workload(generate_workload(profile, SMALL))
        assert report.ok, report.summary()
        assert report.service_checked


@pytest.mark.tier2
def test_trace_conformance_on_one_profile():
    """Band traces are part of the exactness contract when tracing is on."""
    config = AlignConfig(engine="batched", xdrop=15, trace=True)
    runner = ConformanceRunner(
        config, engines=["reference", "vectorized", "batched"], include_service=False
    )
    report = runner.run_workload(generate_workload("pacbio", SMALL))
    assert report.ok, report.summary()


# --------------------------------------------------------------------------- #
# Harness machinery
# --------------------------------------------------------------------------- #
class _OffByOneEngine(ReferenceEngine):
    """Reference clone with an injected off-by-one on targets >= 40 bp."""

    name = "offbyone"
    exact = True
    THRESHOLD = 40

    def align_batch(self, jobs, scoring=None, xdrop=None):
        batch = super().align_batch(jobs, scoring=scoring, xdrop=xdrop)
        for job, res in zip(jobs, batch.results):
            if job.target_length >= self.THRESHOLD:
                res.score += 1
        return batch


@pytest.fixture
def offbyone_engine():
    register_engine("offbyone", _OffByOneEngine)
    yield "offbyone"
    unregister_engine("offbyone")


class TestShrinkOnFailure:
    def test_injected_bug_is_caught_and_shrunk(self, offbyone_engine):
        runner = ConformanceRunner(
            CONFIG, engines=["reference", offbyone_engine], include_service=False
        )
        workload = generate_workload(
            "pacbio", WorkloadSpec(count=8, seed=21, min_length=80, max_length=160)
        )
        report = runner.run_workload(workload)
        assert not report.ok
        failure = report.failures[0]
        assert failure.engine == offbyone_engine
        assert failure.shrunk and failure.minimal_batch == 1
        # The shrinker must land exactly on the bug's boundary: the target
        # is pinned at the threshold, everything else trimmed away.
        assert len(failure.target) == _OffByOneEngine.THRESHOLD
        assert len(failure.query) < 80
        assert any(m.field == "score" for m in failure.mismatches)
        # Replayability: profile, workload seed and config travel along.
        assert failure.profile == "pacbio"
        assert failure.workload_seed == 21
        assert failure.config["xdrop"] == CONFIG.xdrop
        assert "AlignmentJob" in failure.replay_hint()

    def test_shrunk_failure_replays_standalone(self, offbyone_engine):
        runner = ConformanceRunner(
            CONFIG, engines=["reference", offbyone_engine], include_service=False
        )
        workload = generate_workload(
            "ont", WorkloadSpec(count=6, seed=33, min_length=80, max_length=160)
        )
        failure = runner.run_workload(workload).failures[0]
        # Rebuild the minimal pair from the printed failure alone.
        from repro.core.job import AlignmentJob
        from repro.core.seed_extend import Seed

        qpos, tpos, k = failure.seed
        job = AlignmentJob(failure.query, failure.target, Seed(qpos, tpos, k))
        replay = ConformanceRunner(
            AlignConfig.from_dict(failure.config),
            engines=["reference", offbyone_engine],
            include_service=False,
            shrink=False,
        ).run_jobs([job])
        assert not replay.ok

    def test_fuzz_surfaces_injected_bug(self, offbyone_engine):
        report = run_fuzz(
            CONFIG,
            seed=0,
            count=40,
            batch_size=8,
            min_length=60,
            max_length=120,
            engines=["reference", offbyone_engine],
            include_service=False,
        )
        assert not report.ok
        assert report.failures[0].shrunk
        payload = report.to_dict()
        assert payload["ok"] is False
        assert payload["failures"][0]["engine"] == offbyone_engine

    def test_exhaustive_report_summary_mentions_failure(self, offbyone_engine):
        runner = ConformanceRunner(
            CONFIG, engines=["reference", offbyone_engine], include_service=False
        )
        report = runner.run_workload(
            generate_workload("pacbio", WorkloadSpec(count=4, seed=2))
        )
        text = report.summary()
        assert "FAILURE" in text and offbyone_engine in text


class _CrashingEngine(ReferenceEngine):
    """Raises on targets >= 60 bp (a crash, not a wrong answer)."""

    name = "crashy"
    exact = True

    def align_batch(self, jobs, scoring=None, xdrop=None):
        for job in jobs:
            if job.target_length >= 60:
                raise RuntimeError("kernel exploded")
        return super().align_batch(jobs, scoring=scoring, xdrop=xdrop)


class _DroppingEngine(ReferenceEngine):
    """Silently drops the last result of every batch."""

    name = "droppy"
    exact = True

    def align_batch(self, jobs, scoring=None, xdrop=None):
        batch = super().align_batch(jobs, scoring=scoring, xdrop=xdrop)
        if len(batch.results) > 1:
            batch.results.pop()
        return batch


class TestCrashAndCountViolations:
    def test_engine_exception_is_recorded_not_raised(self):
        register_engine("crashy", _CrashingEngine)
        try:
            runner = ConformanceRunner(
                CONFIG, engines=["reference", "crashy"], include_service=False
            )
            workload = generate_workload(
                "pacbio", WorkloadSpec(count=6, seed=5, min_length=80, max_length=120)
            )
            report = runner.run_workload(workload)  # must not raise
            assert not report.ok
            failure = report.failures[0]
            assert failure.engine == "crashy"
            assert any(m.field == "exception" for m in failure.mismatches)
            # The isolated crashing pair travels with the failure.
            assert len(failure.target) >= 60
            assert failure.workload_seed == 5
        finally:
            unregister_engine("crashy")

    def test_fuzz_always_produces_a_report_on_crash(self):
        register_engine("crashy", _CrashingEngine)
        try:
            report = run_fuzz(
                CONFIG, seed=0, count=12, batch_size=6,
                min_length=80, max_length=120,
                engines=["reference", "crashy"], include_service=False,
            )
            assert not report.ok
            assert report.to_dict()["failures"]  # artifact payload exists
        finally:
            unregister_engine("crashy")

    def test_dropped_results_fail_as_count_mismatch(self):
        register_engine("droppy", _DroppingEngine)
        try:
            runner = ConformanceRunner(
                CONFIG, engines=["reference", "droppy"], include_service=False,
                shrink=False,
            )
            report = runner.run_workload(generate_workload("pacbio", SMALL))
            assert not report.ok
            failure = report.failures[0]
            assert failure.engine == "droppy"
            assert any(m.field == "result_count" for m in failure.mismatches)
        finally:
            unregister_engine("droppy")


class TestRunnerSurface:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="available"):
            ConformanceRunner(CONFIG, engines=["warp-drive"])

    def test_empty_jobs_short_circuit(self):
        report = ConformanceRunner(CONFIG).run_jobs([])
        assert report.ok and report.jobs == 0

    def test_compare_results_is_reflexive(self):
        from repro.engine import get_engine

        jobs = generate_workload("pacbio", SMALL).jobs
        results = get_engine("reference", xdrop=15).align_batch(jobs).results
        for res in results:
            assert compare_results(res, res, trace=True) == []

    def test_inexact_engine_gets_determinism_check_only(self):
        # ksw2 is not score-exact by design; the runner must not flag it.
        runner = ConformanceRunner(
            CONFIG, engines=["reference", "ksw2"], include_service=False
        )
        report = runner.run_workload(generate_workload("pacbio", SMALL))
        assert report.ok, report.summary()

    def test_report_merge_accumulates(self):
        runner = ConformanceRunner(CONFIG, engines=["reference"], include_service=False)
        a = runner.run_workload(generate_workload("pacbio", SMALL))
        b = runner.run_workload(generate_workload("ont", SMALL))
        merged = a.merge(b)
        assert merged.jobs == 8


class TestFuzzRunner:
    def test_deterministic_round_seeds(self):
        assert derive_round_seed(0, 0) == derive_round_seed(0, 0)
        assert derive_round_seed(0, 1) != derive_round_seed(0, 0)
        assert derive_round_seed(1, 0) != derive_round_seed(0, 0)

    def test_count_bound_and_profile_rotation(self):
        report = run_fuzz(
            CONFIG,
            seed=3,
            count=30,
            batch_size=6,
            engines=["reference", "batched"],
            include_service=False,
        )
        assert report.ok
        assert report.jobs >= 30
        assert report.rounds == 5
        assert len(report.per_profile) == 5  # first five profiles of the cycle

    def test_time_bound_stops(self):
        report = run_fuzz(
            CONFIG,
            seed=4,
            time_budget=0.0,  # at least one check of the clock, zero rounds
            batch_size=4,
            engines=["reference"],
            include_service=False,
        )
        assert report.rounds == 0 and report.ok

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError, match="available"):
            run_fuzz(CONFIG, count=1, profiles=["nope"])

    def test_fuzz_is_reproducible(self):
        kwargs = dict(
            seed=5, count=16, batch_size=8, min_length=50, max_length=100,
            engines=["reference", "vectorized"], include_service=False,
        )
        a = run_fuzz(CONFIG, **kwargs)
        b = run_fuzz(CONFIG, **kwargs)
        assert a.ok and b.ok
        assert a.jobs == b.jobs and a.comparisons == b.comparisons
        assert a.per_profile == b.per_profile


# --------------------------------------------------------------------------- #
# Autotune bit-identity: tuned services must change only *when* batches
# flush, never what they compute.
# --------------------------------------------------------------------------- #

def _autotune_config() -> AlignConfig:
    from repro.api import ServiceConfig

    # Small batch bound + instant controller pacing so decisions actually
    # fire inside a 4-job workload, exercising mid-run bin-limit changes.
    return AlignConfig(
        engine="batched",
        xdrop=15,
        bin_width=500,
        service=ServiceConfig(
            max_batch_size=2,
            cache_capacity=0,
            autotune="on",
            autotune_options={
                "window": 2,
                "min_window_batches": 1,
                "cooldown_batches": 0,
            },
        ),
    )


def test_autotuned_service_bit_identical_on_one_profile():
    """Tier-1 canary for the tier-2 autotune matrix below."""
    runner = ConformanceRunner(
        _autotune_config(), engines=["reference"], include_service=True
    )
    report = runner.run_workload(generate_workload("length_skew", SMALL))
    assert report.ok, report.summary()
    assert report.service_checked


@pytest.mark.tier2
@pytest.mark.parametrize("profile", list_profiles())
class TestAutotunedServiceConformance:
    def test_autotuned_service_bit_identical(self, profile):
        runner = ConformanceRunner(
            _autotune_config(),
            engines=["reference"],
            include_service=True,
            include_network=True,
        )
        report = runner.run_workload(generate_workload(profile, SMALL))
        assert report.ok, report.summary()
        assert report.service_checked
