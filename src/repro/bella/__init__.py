"""BELLA: long-read many-to-many overlap detection and alignment substrate."""

from .binning import SeedChoice, choose_seed, estimate_overlap_length
from .kmer import KmerIndex, build_kmer_index, count_kmers, pack_kmers, reliable_kmer_range
from .overlap import (
    CandidateOverlap,
    OverlapMatrix,
    build_occurrence_matrix,
    find_candidate_overlaps,
)
from .pipeline import BellaOverlap, BellaPipeline, BellaResult
from .threshold import AdaptiveThreshold

__all__ = [
    "pack_kmers",
    "count_kmers",
    "reliable_kmer_range",
    "build_kmer_index",
    "KmerIndex",
    "CandidateOverlap",
    "OverlapMatrix",
    "build_occurrence_matrix",
    "find_candidate_overlaps",
    "SeedChoice",
    "choose_seed",
    "estimate_overlap_length",
    "AdaptiveThreshold",
    "BellaPipeline",
    "BellaResult",
    "BellaOverlap",
]
