"""Tests for BELLA's SpGEMM overlap detection and seed binning stages."""

from __future__ import annotations

import pytest

from repro.bella import (
    CandidateOverlap,
    build_kmer_index,
    build_occurrence_matrix,
    choose_seed,
    estimate_overlap_length,
    find_candidate_overlaps,
)
from repro.core import random_sequence
from repro.errors import ConfigurationError


def _overlapping_reads(rng, n_reads=6, read_len=300, step=150):
    """Reads tiled over a synthetic genome so neighbours overlap by half."""
    genome = random_sequence(step * (n_reads + 1) + read_len, rng)
    return [genome[i * step : i * step + read_len] for i in range(n_reads)]


class TestOccurrenceMatrix:
    def test_shape_and_counts(self, rng):
        reads = _overlapping_reads(rng)
        index = build_kmer_index(reads, k=15, lower=2)
        matrix = build_occurrence_matrix(index)
        assert matrix.shape[0] == len(reads)
        assert matrix.shape[1] == index.retained_kmers
        assert matrix.nnz == sum(len(o) for o in index.occurrences.values())


class TestFindCandidateOverlaps:
    def test_neighbouring_reads_are_candidates(self, rng):
        reads = _overlapping_reads(rng)
        index = build_kmer_index(reads, k=15, lower=2)
        overlaps = find_candidate_overlaps(index)
        pairs = {c.pair for c in overlaps.candidates}
        for i in range(len(reads) - 1):
            assert (i, i + 1) in pairs

    def test_distant_reads_share_nothing(self, rng):
        reads = _overlapping_reads(rng)
        index = build_kmer_index(reads, k=15, lower=2)
        overlaps = find_candidate_overlaps(index)
        pairs = {c.pair for c in overlaps.candidates}
        assert (0, len(reads) - 1) not in pairs

    def test_candidates_sorted_and_unique(self, rng):
        reads = _overlapping_reads(rng)
        index = build_kmer_index(reads, k=15, lower=2)
        overlaps = find_candidate_overlaps(index)
        pairs = [c.pair for c in overlaps.candidates]
        assert pairs == sorted(pairs)
        assert len(pairs) == len(set(pairs))
        assert all(i < j for i, j in pairs)

    def test_shared_counts_match_positions(self, rng):
        reads = _overlapping_reads(rng)
        index = build_kmer_index(reads, k=15, lower=2)
        overlaps = find_candidate_overlaps(index)
        for cand in overlaps.candidates:
            assert cand.shared_kmers == len(cand.seed_positions)

    def test_min_shared_kmers_filter(self, rng):
        reads = _overlapping_reads(rng)
        index = build_kmer_index(reads, k=15, lower=2)
        all_pairs = find_candidate_overlaps(index, min_shared_kmers=1).num_candidates
        strict = find_candidate_overlaps(index, min_shared_kmers=30).num_candidates
        assert strict <= all_pairs

    def test_invalid_min_shared(self, rng):
        reads = _overlapping_reads(rng)
        index = build_kmer_index(reads, k=15, lower=2)
        with pytest.raises(ConfigurationError):
            find_candidate_overlaps(index, min_shared_kmers=0)


class TestEstimateOverlapLength:
    def test_centre_seed(self):
        assert estimate_overlap_length(100, 100, 300, 300) == 300

    def test_offset_seed(self):
        # Read i suffix overlaps read j prefix.
        assert estimate_overlap_length(200, 50, 300, 300) == 50 + 100

    def test_invalid_lengths(self):
        with pytest.raises(ConfigurationError):
            estimate_overlap_length(0, 0, 0, 10)


class TestChooseSeed:
    def test_consensus_bin_wins(self):
        # Ten k-mers on the true diagonal (~ +100) and two repeat-induced
        # outliers far away: the consensus diagonal must win.
        true_diag = [(100 + 10 * i, 10 * i) for i in range(10)]
        outliers = [(5, 280), (8, 290)]
        cand = CandidateOverlap(
            read_i=0, read_j=1, shared_kmers=12, seed_positions=true_diag + outliers
        )
        choice = choose_seed(cand, kmer_length=17, len_i=400, len_j=400, bin_width=64)
        assert choice.bin_support == 10
        assert 64 <= choice.bin_diagonal <= 128
        picked_diag = choice.seed.query_pos - choice.seed.target_pos
        assert picked_diag == 100

    def test_overlap_estimate_reflects_seed(self):
        cand = CandidateOverlap(0, 1, 1, [(150, 50)])
        choice = choose_seed(cand, kmer_length=17, len_i=300, len_j=300, bin_width=100)
        assert choice.overlap_estimate == 50 + 150

    def test_no_positions_rejected(self):
        cand = CandidateOverlap(0, 1, 0, [])
        with pytest.raises(ConfigurationError):
            choose_seed(cand, kmer_length=17, len_i=300, len_j=300)

    def test_invalid_bin_width(self):
        cand = CandidateOverlap(0, 1, 1, [(0, 0)])
        with pytest.raises(ConfigurationError):
            choose_seed(cand, kmer_length=17, len_i=10, len_j=10, bin_width=0)

    def test_seed_is_within_reads(self, rng):
        positions = [(int(rng.integers(0, 200)), int(rng.integers(0, 200))) for _ in range(20)]
        cand = CandidateOverlap(0, 1, len(positions), positions)
        choice = choose_seed(cand, kmer_length=17, len_i=250, len_j=250)
        assert 0 <= choice.seed.query_pos <= 250 - 1
        assert 0 <= choice.seed.target_pos <= 250 - 1
