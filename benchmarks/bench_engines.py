#!/usr/bin/env python
"""Reproducible engine micro-benchmark (wrapper over :mod:`repro.bench`).

Times every registered alignment engine on one fixed-seed batch (default:
256 jobs, the batch size of the acceptance criterion), prints the entry,
gates it against the stored trajectory in ``BENCH_engines.json`` and — with
``--record`` — appends it.  Exact engines are additionally checked for
bit-identical scores against the reference.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_engines.py [--pairs 256] [--record]

The headline reproduction of the paper's Table I story: the inter-sequence
``batched`` engine must be at least 3x faster than the scalar per-job loop
(with active-row compaction + tiling it lands near 10x on mid-seed pairs)
while producing identical scores.  The full history lives in the
trajectory file; ``repro-bench perf`` is the subsystem's first-class CLI.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import BaselineStore, compare, run_engine_bench  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_engines.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Time every alignment engine.")
    parser.add_argument("--pairs", type=int, default=256, help="batch size")
    parser.add_argument("--xdrop", type=int, default=50, help="X-drop threshold")
    parser.add_argument("--seed", type=int, default=2020, help="batch RNG seed")
    parser.add_argument(
        "--engines", nargs="*", default=None, help="subset of engines to time"
    )
    parser.add_argument(
        "--repeats", type=int, default=1, help="timed runs per engine (best kept)"
    )
    parser.add_argument(
        "--record",
        action="store_true",
        help="append the entry to the BENCH_engines.json trajectory",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.30, help="regression gate tolerance"
    )
    args = parser.parse_args(argv)

    entry = run_engine_bench(
        pairs=args.pairs,
        xdrop=args.xdrop,
        seed=args.seed,
        engines=args.engines,
        repeats=args.repeats,
    )
    print(entry.formatted())

    store = BaselineStore(OUTPUT)
    report = compare(entry, store.latest_matching(entry), tolerance=args.tolerance)
    print(report.formatted())
    if args.record:
        store.append(entry)
        print(f"recorded entry in {OUTPUT}")

    failed = not report.ok
    batched = entry.row("batched")
    if batched is not None:
        if not batched.scores_identical_to_reference:
            print("FAIL: batched engine scores diverge from the scalar reference")
            failed = True
        if batched.speedup_vs_scalar < 3.0:
            print(
                "FAIL: batched engine speed-up "
                f"{batched.speedup_vs_scalar:.2f}x is below the 3x floor"
            )
            failed = True
        if not failed:
            print(
                f"OK: batched engine {batched.speedup_vs_scalar:.1f}x faster than "
                "the scalar loop with identical scores"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
