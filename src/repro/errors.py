"""Exception hierarchy for the LOGAN reproduction library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything coming out of the package with a single ``except``
clause while still being able to discriminate between configuration problems,
data problems and resource-model problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """Raised when a user-supplied configuration value is invalid.

    Examples include a negative X-drop threshold, a zero-length scoring
    alphabet, or a GPU device specification with no streaming
    multiprocessors.
    """


class SequenceError(ReproError):
    """Raised when an input sequence cannot be interpreted.

    Sequences must be non-empty strings or ``uint8`` arrays over the DNA
    alphabet (``ACGTN``, case-insensitive).  Anything else raises this error
    at encoding time rather than producing silently wrong alignments.
    """


class AlignmentError(ReproError):
    """Raised when an alignment kernel is asked to do something impossible.

    For instance extending from a seed that lies outside either sequence, or
    batching zero alignments onto a GPU model.
    """


class ResourceModelError(ReproError):
    """Raised when the GPU execution model cannot place a kernel.

    Typical causes: a block requesting more shared memory than the device
    has per SM, more threads per block than the hardware maximum, or a batch
    whose anti-diagonal buffers exceed device HBM capacity on every device of
    a multi-GPU system.
    """


class DatasetError(ReproError):
    """Raised for malformed FASTA/FASTQ input or impossible dataset presets."""


class ServiceError(ReproError):
    """Raised by the asynchronous alignment service.

    Typical causes: submitting to a service that has been shut down, or a
    bounded submission queue staying full past the backpressure timeout.
    """
