"""Alignment-free k-mer-sketch prefilter and admission triage.

Production overlap traffic is dominated by pairs that either align
trivially or not at all; this package supplies the cheap triage that
keeps the expensive X-drop kernel for the contested middle.  See
:mod:`repro.prefilter.sketch` for the d2/d2star sketch distances and
:mod:`repro.prefilter.policy` for the three-way admission policy wired
into :class:`repro.bella.pipeline.BellaPipeline` and
:class:`repro.service.AlignmentService`.
"""

from .policy import (
    PREFILTER_MODES,
    PREFILTER_OUTCOMES,
    PrefilterDecision,
    PrefilterPolicy,
    rejected_result,
)
from .sketch import (
    MAX_SKETCH_K,
    KmerSketch,
    d2_distance,
    d2star_distance,
    sketch_distance,
    sketch_sequence,
)

__all__ = [
    "MAX_SKETCH_K",
    "PREFILTER_MODES",
    "PREFILTER_OUTCOMES",
    "KmerSketch",
    "PrefilterDecision",
    "PrefilterPolicy",
    "d2_distance",
    "d2star_distance",
    "rejected_result",
    "sketch_distance",
    "sketch_sequence",
]
