#!/usr/bin/env python
"""BELLA overlap detection with LOGAN as the alignment kernel (Section V).

Simulates a small long-read dataset from a synthetic genome (with planted
repeats, the classic source of spurious candidate overlaps), runs the full
BELLA pipeline twice — once with the SeqAn-style CPU kernel and once with the
LOGAN GPU-model kernel — and verifies the two produce identical overlap sets
while reporting how the alignment stage dominates the pipeline runtime.

Run with::

    python examples/bella_overlap_pipeline.py
"""

from __future__ import annotations

from repro.bella import BellaPipeline
from repro.data import ErrorModel, RepeatSpec, simulate_genome, simulate_reads, true_overlap

import numpy as np


def main() -> None:
    rng = np.random.default_rng(7)
    genome = simulate_genome(
        length=40_000,
        repeats=[RepeatSpec(length=1500, copies=3, divergence=0.03)],
        rng=rng,
    )
    reads = simulate_reads(
        genome,
        num_reads=60,
        mean_length=1800,
        length_spread=600,
        error_model=ErrorModel.with_total(0.12),
        rng=rng,
    )
    print(f"dataset: {len(reads)} reads, genome {len(genome):,} bp, "
          f"~{sum(len(r) for r in reads) / len(genome):.1f}x coverage, "
          f"{len(genome.repeat_positions)} planted repeat copies")

    from repro.api import AlignConfig

    # Two pipelines differing only in the alignment kernel — the same
    # AlignConfig with a different engine name.
    seqan_pipeline = BellaPipeline(
        config=AlignConfig(engine="seqan", xdrop=25),
        k=15, error_rate=0.12, min_overlap=500,
    )
    logan_pipeline = BellaPipeline(
        config=AlignConfig(engine="logan", xdrop=25, engine_options={"gpus": 6}),
        k=15,
        error_rate=0.12,
        min_overlap=500,
    )

    seqan_result = seqan_pipeline.run(reads)
    logan_result = logan_pipeline.run(reads)

    print()
    print(f"reliable k-mers        : {seqan_result.index.retained_kmers:,} "
          f"({seqan_result.index.pruned_fraction:.0%} pruned)")
    print(f"candidate overlaps     : {seqan_result.candidates.num_candidates:,}")
    print(f"aligned candidates     : {seqan_result.num_alignments:,}")
    print(f"accepted overlaps      : {len(seqan_result.accepted):,}")
    print(f"alignment stage share  : {seqan_result.timer.fraction('alignment'):.0%} "
          f"of the pipeline wall-clock (the paper reports ~90%)")
    print()

    same_pairs = seqan_result.accepted_pairs() == logan_result.accepted_pairs()
    same_scores = [o.score for o in seqan_result.overlaps] == [
        o.score for o in logan_result.overlaps
    ]
    print(f"BELLA+SeqAn and BELLA+LOGAN produce identical overlaps: {same_pairs}")
    print(f"... and identical alignment scores                    : {same_scores}")
    print(f"modeled alignment stage (POWER9, 168 threads) : "
          f"{seqan_result.alignment_modeled_seconds:10.4f} s")
    print(f"modeled alignment stage (6x V100, LOGAN)      : "
          f"{logan_result.alignment_modeled_seconds:10.4f} s")

    # Recall / precision against the simulator's ground truth.
    truth = {
        (i, j)
        for i in range(len(reads))
        for j in range(i + 1, len(reads))
        if true_overlap(reads[i], reads[j]) >= 800
    }
    found = logan_result.accepted_pairs()
    tp = len(found & truth)
    print()
    print(f"ground-truth overlaps >= 800 bp : {len(truth)}")
    print(f"recall    : {tp / max(1, len(truth)):.2f}")
    print(f"precision : {tp / max(1, len(found)):.2f}")


if __name__ == "__main__":
    main()
