"""``python -m repro <tool>`` — console-script dispatch without installation.

The package ships six console entry points (``repro-align``,
``repro-bella``, ``repro-bench``, ``repro-service``, ``repro-fuzz``,
``repro-obs``); when the package is used straight off ``PYTHONPATH=src``
— the CI and laptop workflow — this module provides the same surface:

.. code-block:: console

   python -m repro fuzz --seed 0 --count 500
   python -m repro align --pairs 10 --json
"""

from __future__ import annotations

import sys

from .cli import (
    main_align,
    main_bella,
    main_bench,
    main_fuzz,
    main_obs,
    main_service,
)

_TOOLS = {
    "align": main_align,
    "bella": main_bella,
    "bench": main_bench,
    "service": main_service,
    "fuzz": main_fuzz,
    "obs": main_obs,
}


def main(argv: list[str] | None = None) -> int:
    """Dispatch ``python -m repro <tool> [args...]`` to the tool's main."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        names = ", ".join(sorted(_TOOLS))
        print(f"usage: python -m repro <tool> [args...]\n\ntools: {names}")
        return 0 if argv else 2
    tool = _TOOLS.get(argv[0])
    if tool is None:
        names = ", ".join(sorted(_TOOLS))
        print(f"unknown tool {argv[0]!r}; available: {names}", file=sys.stderr)
        return 2
    return tool(argv[1:])


if __name__ == "__main__":
    sys.exit(main())
