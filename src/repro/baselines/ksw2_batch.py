"""Batch runner and Skylake cost model for the ksw2 baseline.

Reproduces the configuration of Table III / Fig. 9: ksw2 (the SSE2-vectorised
Z-drop extension kernel of minimap2) running one alignment per thread across
80 Skylake hardware threads.  Following LOGAN's published benchmark harness,
the Z-drop threshold is swept with the same values as X and the band width is
set proportional to it — both parameters control how far from the main
diagonal the search is allowed to wander, which is what makes the two
heuristics comparable.

The cost model is *band-aware*: ksw2's striped SSE2 kernel is extremely fast
on narrow bands but loses efficiency as the band (and therefore the working
set per row) grows — rows stop fitting in L1/L2, the striped layout needs
more passes, and the lazy-F loop triggers more often.  This is what produces
the runtime explosion the paper reports for large X (3213 s at X = 5000
versus 7 s at X = 10) while LOGAN saturates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.job import AlignmentJob, BatchWorkSummary
from ..core.scoring import AffineScoringScheme
from ..core.seed_extend import split_on_seed
from ..errors import ConfigurationError
from ..perf.parallel import parallel_map
from ..perf.timers import Timer
from .ksw2 import Ksw2Result, ksw2_extend
from .platforms import SKYLAKE_PLATFORM, CpuPlatformSpec

__all__ = ["Ksw2CostModel", "KSW2_SKYLAKE_BAND_MODEL", "Ksw2BatchResult", "Ksw2BatchAligner"]


@dataclass(frozen=True)
class Ksw2CostModel:
    """Band-aware runtime model for ksw2 on a multi-threaded CPU.

    ``time = (cells * ns_per_cell * (1 + band / band_halfcost)
              + rows * ns_per_row + alignments * ns_per_alignment)
             / (threads * parallel_efficiency)``

    The ``(1 + band / band_halfcost)`` factor models the striped-SIMD
    efficiency loss at wide bands described in the module docstring;
    ``band_halfcost`` is the band width at which the per-cell cost doubles.
    """

    platform: CpuPlatformSpec
    threads: int = 80
    ns_per_cell: float = 0.9
    ns_per_row: float = 40.0
    ns_per_alignment: float = 3_400_000.0
    band_halfcost: float = 60.0
    parallel_efficiency: float = 0.75

    def __post_init__(self) -> None:
        if self.threads <= 0 or self.threads > self.platform.threads:
            raise ConfigurationError(
                f"threads must be in [1, {self.platform.threads}] for "
                f"{self.platform.name!r}, got {self.threads}"
            )
        if self.band_halfcost <= 0:
            raise ConfigurationError("band_halfcost must be positive")
        if not 0 < self.parallel_efficiency <= 1:
            raise ConfigurationError("parallel_efficiency must be in (0, 1]")

    def seconds(
        self, cells: int, rows: int, alignments: int, band: float
    ) -> float:
        """Modeled wall-clock seconds for a batch with the given work totals."""
        if min(cells, rows, alignments) < 0 or band < 0:
            raise ConfigurationError("work totals must be non-negative")
        cell_ns = self.ns_per_cell * (1.0 + band / self.band_halfcost)
        total_ns = (
            cells * cell_ns
            + rows * self.ns_per_row
            + alignments * self.ns_per_alignment
        )
        return total_ns / (self.threads * self.parallel_efficiency) / 1e9


#: ksw2 on 80 Skylake threads, calibrated so the 100 K-pair workload lands
#: near Table III (≈7 s floor at small X, thousands of seconds at X=5000).
KSW2_SKYLAKE_BAND_MODEL = Ksw2CostModel(platform=SKYLAKE_PLATFORM)


@dataclass
class Ksw2BatchResult:
    """Results and accounting of a ksw2 batch run."""

    results: list[tuple[Ksw2Result, Ksw2Result]]
    summary: BatchWorkSummary
    scores: list[int]
    elapsed_seconds: float
    modeled_seconds: float
    band: int

    def measured_gcups(self) -> float:
        """GCUPS of the measured Python run."""
        return self.summary.gcups(self.elapsed_seconds)

    def modeled_gcups(self) -> float:
        """GCUPS of the modeled Skylake run."""
        return self.summary.gcups(self.modeled_seconds)


def _align_one_ksw2(
    job: AlignmentJob,
    scoring: AffineScoringScheme,
    zdrop: int,
    band: int,
) -> tuple[Ksw2Result, Ksw2Result, int]:
    """Worker: left + right ksw2 extensions around the job's seed."""
    (left_q, left_t), (right_q, right_t) = split_on_seed(job.query, job.target, job.seed)
    empty = Ksw2Result(0, 0, 0, 1, 1, False)
    left = (
        ksw2_extend(left_q, left_t, scoring, zdrop=zdrop, bandwidth=band)
        if len(left_q) and len(left_t)
        else empty
    )
    right = (
        ksw2_extend(right_q, right_t, scoring, zdrop=zdrop, bandwidth=band)
        if len(right_q) and len(right_t)
        else empty
    )
    seed_pts = job.seed.length * scoring.match
    return left, right, left.best_score + right.best_score + seed_pts


class Ksw2BatchAligner:
    """Batch seed-and-extend aligner using the ksw2-style Z-drop kernel.

    Parameters
    ----------
    scoring:
        Affine scoring scheme (minimap2 map-pb defaults).
    zdrop:
        Z-drop threshold, swept with the same values as X in the paper.
    bandwidth:
        Fixed band half-width.  ``None`` (default) sets it equal to the
        Z-drop threshold, the mapping used in LOGAN's benchmark harness.
    cost_model:
        Skylake cost model for the modeled 80-thread runtime.
    workers:
        Local worker processes for the measured run.
    """

    def __init__(
        self,
        scoring: AffineScoringScheme = AffineScoringScheme(),
        zdrop: int = 100,
        bandwidth: int | None = None,
        cost_model: Ksw2CostModel = KSW2_SKYLAKE_BAND_MODEL,
        workers: int = 1,
    ) -> None:
        self.scoring = scoring
        self.zdrop = int(zdrop)
        self.bandwidth = int(bandwidth) if bandwidth is not None else int(zdrop)
        self.cost_model = cost_model
        self.workers = max(1, int(workers))

    def align_batch(self, jobs: Sequence[AlignmentJob]) -> Ksw2BatchResult:
        """Align every job and return results plus accounting."""
        timer = Timer()
        with timer:
            triples = parallel_map(
                _align_one_ksw2,
                jobs,
                args=(self.scoring, self.zdrop, self.bandwidth),
                workers=self.workers,
            )
        summary = BatchWorkSummary()
        results: list[tuple[Ksw2Result, Ksw2Result]] = []
        scores: list[int] = []
        for left, right, score in triples:
            results.append((left, right))
            scores.append(score)
            summary.alignments += 1
            summary.extensions += 2
            summary.cells += left.cells_computed + right.cells_computed
            summary.iterations += left.rows_computed + right.rows_computed
        summary.max_band_width = 2 * self.bandwidth + 1
        modeled = self.modeled_seconds_for(summary)
        return Ksw2BatchResult(
            results=results,
            summary=summary,
            scores=scores,
            elapsed_seconds=timer.elapsed,
            modeled_seconds=modeled,
            band=self.bandwidth,
        )

    def modeled_seconds_for(self, summary: BatchWorkSummary) -> float:
        """Modeled Skylake runtime for a (possibly extrapolated) work summary."""
        return self.cost_model.seconds(
            cells=summary.cells,
            rows=summary.iterations,
            alignments=summary.alignments,
            band=summary.max_band_width,
        )
