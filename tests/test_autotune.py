"""Tests of the self-tuning subsystem (:mod:`repro.autotune`).

Covers option validation, the per-bin batch-size controller (convergence
on low/high/oscillating telemetry streams, hard bounds), the engine-knob
controller (tile/compaction stepping, the static compact-threshold
floor), the gpusim-backed what-if planner, the manager state machine
(advise vs on, planner veto, kill-switch revert) and the end-to-end
service integration including bit-identity of tuned results.
"""

from __future__ import annotations

import pytest

from repro.api import AlignConfig, ServiceConfig
from repro.autotune import (
    AUTOTUNE_MODES,
    AutotuneManager,
    AutotuneOptions,
    BinController,
    EngineKnobController,
    WhatIfPlanner,
    tunable_knobs,
)
from repro.core.xdrop_batch import (
    MAX_SUGGESTED_BATCH_SIZE,
    BatchKernelStats,
)
from repro.engine import get_engine
from repro.errors import ConfigurationError
from repro.service import AdaptiveBatcher, AlignmentService, BatchPolicy
from repro.workloads import WorkloadSpec, generate_workload

SMALL = WorkloadSpec(count=12, seed=7, min_length=120, max_length=400, xdrop=15)

#: Aggressive pacing so a handful of batches is enough to decide.
FAST = dict(window=2, min_window_batches=1, cooldown_batches=0)


def kstats(rows=32, fraction=0.9, peak=512, depth=50):
    """Synthetic one-batch telemetry with a chosen live fraction."""
    row_steps = rows * depth
    return BatchKernelStats(
        rows=rows,
        steps=depth,
        row_steps=row_steps,
        active_row_steps=int(row_steps * fraction),
        compactions=1,
        tiles=depth,
        peak_window=peak,
        cells=row_steps * 16,
        dtype="int16",
        weighted_rows=rows,
        weighted_live=fraction * rows,
    )


# --------------------------------------------------------------------------- #
# Options.
# --------------------------------------------------------------------------- #
class TestAutotuneOptions:
    def test_defaults_are_valid(self):
        opts = AutotuneOptions()
        assert opts.window >= 1
        assert 0.0 < opts.low_live_fraction < opts.high_live_fraction <= 1.0

    def test_from_options_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            AutotuneOptions.from_options({"not_a_knob": 1})

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            AutotuneOptions(window=0)

    def test_inverted_band_rejected(self):
        with pytest.raises(ConfigurationError):
            AutotuneOptions(low_live_fraction=0.9, high_live_fraction=0.5)

    def test_batch_size_bound_caps_at_hint_ceiling(self):
        opts = AutotuneOptions(max_batch_size_factor=4)
        assert opts.batch_size_bound(16) == 64
        assert opts.batch_size_bound(10**6) == MAX_SUGGESTED_BATCH_SIZE

    def test_modes_tuple(self):
        assert AUTOTUNE_MODES == ("off", "advise", "on")


# --------------------------------------------------------------------------- #
# Batch-size hint clamp (the satellite fix in the core).
# --------------------------------------------------------------------------- #
class TestSuggestedBatchSizeClamp:
    def test_growth_capped_at_four_times_current_by_default(self):
        grown = kstats(fraction=0.95).suggested_batch_size(512)
        assert grown == 1024  # doubling stays under the 4x default ceiling

    def test_absolute_ceiling_is_never_exceeded(self):
        assert (
            kstats(fraction=0.95).suggested_batch_size(MAX_SUGGESTED_BATCH_SIZE)
            == MAX_SUGGESTED_BATCH_SIZE
        )
        assert (
            kstats(fraction=0.95).suggested_batch_size(
                900, max_batch_size=10**9
            )
            == MAX_SUGGESTED_BATCH_SIZE
        )

    def test_explicit_ceiling_clamps_every_branch(self):
        # Growth, hold and shrink all respect an explicit ceiling.
        assert kstats(fraction=0.95).suggested_batch_size(64, max_batch_size=100) == 100
        assert kstats(fraction=0.7).suggested_batch_size(64, max_batch_size=32) == 32
        assert kstats(fraction=0.2).suggested_batch_size(64, max_batch_size=16) == 16

    def test_ceiling_is_at_least_one(self):
        assert kstats(fraction=0.95).suggested_batch_size(1, max_batch_size=0) == 1


# --------------------------------------------------------------------------- #
# BinController.
# --------------------------------------------------------------------------- #
def drive(controller, fractions):
    """Feed fractions through observe/commit; return applied decisions."""
    applied = []
    for fraction in fractions:
        decision = controller.observe(kstats(fraction=fraction))
        if decision is not None:
            controller.commit(decision)
            applied.append(decision)
    return applied


class TestBinController:
    def test_uniform_stream_grows_to_bound_and_settles(self):
        opts = AutotuneOptions(**FAST, max_batch_size_factor=4)
        ctrl = BinController(1, 16, opts)
        applied = drive(ctrl, [0.95] * 10)
        assert ctrl.batch_size == 64  # 16 -> 32 -> 64, then nothing
        assert len(applied) == 2
        assert all(d.proposed <= ctrl.max_bound for d in applied)

    def test_ragged_stream_shrinks_to_floor_and_settles(self):
        opts = AutotuneOptions(**FAST)
        ctrl = BinController(0, 64, opts)
        applied = drive(ctrl, [0.2] * 12)
        assert ctrl.batch_size == opts.min_batch_size
        assert len(applied) == 3  # 64 -> 32 -> 16 -> 8, then nothing
        assert all(d.proposed >= ctrl.min_bound for d in applied)

    def test_small_static_base_stays_reachable(self):
        # An operator base below the configured floor is a valid floor.
        ctrl = BinController(0, 4, AutotuneOptions(**FAST, min_batch_size=8))
        drive(ctrl, [0.2] * 4)
        assert ctrl.batch_size == 4

    def test_oscillation_inside_hysteresis_margin_settles(self):
        # Signal flips across the band edges but never clears the extra
        # hysteresis margin after a reversal: one initial move, then hold.
        opts = AutotuneOptions(**FAST, hysteresis=0.05)
        ctrl = BinController(2, 32, opts)
        applied = drive(ctrl, [0.87, 0.48, 0.87, 0.48, 0.87, 0.48])
        assert len(applied) == 1  # the initial grow; reversals are damped
        assert ctrl.batch_size == 64

    def test_pathological_stream_never_leaves_bounds(self):
        opts = AutotuneOptions(**FAST)
        ctrl = BinController(0, 16, opts)
        sizes = []
        for fraction in [0.99, 0.01] * 20:
            decision = ctrl.observe(kstats(fraction=fraction))
            if decision is not None:
                ctrl.commit(decision)
            sizes.append(ctrl.batch_size)
        assert all(ctrl.min_bound <= s <= ctrl.max_bound for s in sizes)

    def test_min_window_batches_gates_decisions(self):
        opts = AutotuneOptions(window=8, min_window_batches=4, cooldown_batches=0)
        ctrl = BinController(0, 16, opts)
        for _ in range(3):
            assert ctrl.observe(kstats(fraction=0.95)) is None
        assert ctrl.observe(kstats(fraction=0.95)) is not None

    def test_commit_restarts_window(self):
        opts = AutotuneOptions(window=4, min_window_batches=2, cooldown_batches=0)
        ctrl = BinController(0, 16, opts)
        drive(ctrl, [0.95, 0.95])
        assert ctrl.batch_size == 32
        # Old-knob telemetry was discarded: one fresh batch is not enough.
        assert ctrl.window.batches == 0
        assert ctrl.observe(kstats(fraction=0.95)) is None

    def test_reset_returns_to_static_base(self):
        ctrl = BinController(0, 16, AutotuneOptions(**FAST))
        drive(ctrl, [0.95] * 6)
        assert ctrl.batch_size > 16
        ctrl.reset()
        assert ctrl.batch_size == 16


# --------------------------------------------------------------------------- #
# EngineKnobController.
# --------------------------------------------------------------------------- #
class TestEngineKnobController:
    def observe_commit(self, ctrl, stats):
        decisions = ctrl.observe(stats)
        for decision in decisions:
            ctrl.commit(decision)
        return decisions

    def test_tile_grows_toward_peak_window(self):
        opts = AutotuneOptions(**FAST, max_tile_width=4096)
        ctrl = EngineKnobController(opts, tile_width=512, compact_threshold=0.5)
        for _ in range(6):
            self.observe_commit(ctrl, kstats(peak=3000))
        assert ctrl.tile_width == 4096  # doubled to the bound, then stopped

    def test_tile_shrinks_back_but_respects_floor(self):
        opts = AutotuneOptions(**FAST, min_tile_width=256)
        ctrl = EngineKnobController(opts, tile_width=2048, compact_threshold=0.5)
        for _ in range(8):
            self.observe_commit(ctrl, kstats(peak=100))
        assert ctrl.tile_width == 256

    def test_compact_raises_on_padding_heavy_stream(self):
        opts = AutotuneOptions(**FAST, max_compact_threshold=0.9)
        ctrl = EngineKnobController(opts, tile_width=512, compact_threshold=0.5)
        for _ in range(8):
            self.observe_commit(ctrl, kstats(fraction=0.2))
        assert ctrl.compact_threshold == pytest.approx(0.9)

    def test_compact_never_relaxes_below_static_value(self):
        # A uniformly live stream relaxes a *raised* threshold back down,
        # but the static starting point is a hard floor: below it the
        # kernel carries dead rows for the rest of every sweep.
        opts = AutotuneOptions(**FAST, min_compact_threshold=0.1)
        ctrl = EngineKnobController(opts, tile_width=512, compact_threshold=0.5)
        for _ in range(10):
            self.observe_commit(ctrl, kstats(fraction=0.95))
        assert ctrl.compact_threshold == pytest.approx(0.5)

    def test_compact_round_trip_raise_then_relax_to_base(self):
        opts = AutotuneOptions(**FAST)
        ctrl = EngineKnobController(opts, tile_width=512, compact_threshold=0.5)
        for _ in range(3):
            self.observe_commit(ctrl, kstats(fraction=0.2))
        raised = ctrl.compact_threshold
        assert raised > 0.5
        for _ in range(10):
            self.observe_commit(ctrl, kstats(fraction=0.95))
        assert ctrl.compact_threshold == pytest.approx(0.5)


# --------------------------------------------------------------------------- #
# WhatIfPlanner.
# --------------------------------------------------------------------------- #
class TestWhatIfPlanner:
    def test_estimate_produces_positive_timing(self):
        est = WhatIfPlanner().estimate(kstats(rows=64, depth=80), batch_size=64)
        assert est is not None
        assert est.seconds > 0 and est.per_pair_seconds > 0
        assert est.gcups > 0
        assert est.bound in ("compute", "memory", "latency", "launch")
        payload = est.to_dict()
        assert payload["batch_size"] == 64

    def test_estimate_without_signal_is_none(self):
        assert WhatIfPlanner().estimate(BatchKernelStats(), batch_size=32) is None

    def test_growth_payoff_is_positive_and_finite(self):
        stats = kstats(rows=128, depth=60)
        payoff = WhatIfPlanner().payoff(stats, batches=4, current=32, proposed=64)
        assert payoff is not None and payoff > 0


# --------------------------------------------------------------------------- #
# Manager.
# --------------------------------------------------------------------------- #
def make_manager(mode="on", engine=None, base=16, **option_kwargs):
    options = AutotuneOptions(**{**FAST, **option_kwargs})
    batcher = AdaptiveBatcher(BatchPolicy(max_batch_size=base))
    manager = AutotuneManager(
        mode, options, batcher, engine=engine, base_batch_size=base
    )
    return manager, batcher


def feed(manager, fraction=0.95, batches=6, length_bin=1, elapsed=0.01):
    out = []
    for _ in range(batches):
        out.extend(
            manager.on_batch(
                length_bin=length_bin,
                batch_size=16,
                kernel_stats=kstats(fraction=fraction),
                cells=10**7,
                elapsed_seconds=elapsed,
            )
        )
    return out


class TestAutotuneManager:
    def test_off_mode_is_rejected(self):
        with pytest.raises(ConfigurationError):
            make_manager(mode="off")

    def test_advise_counts_without_actuating(self):
        engine = get_engine("batched", xdrop=15)
        static_tile = engine.tile_width
        manager, batcher = make_manager(mode="advise", engine=engine)
        feed(manager)
        assert manager.action_counts["advised"] > 0
        assert manager.applied == 0
        assert batcher.bin_limits == {}
        assert engine.tile_width == static_tile

    def test_on_mode_actuates_bin_limits(self):
        manager, batcher = make_manager(mode="on")
        feed(manager)
        assert manager.applied > 0
        assert batcher.bin_limits[1] == manager.bin_batch_sizes()[1]
        assert batcher.bin_limits[1] > 16

    def test_planner_vetoes_growth_below_min_gain(self):
        manager, batcher = make_manager(mode="on", planner_min_gain=10**6)
        feed(manager)
        assert manager.action_counts["vetoed"] > 0
        assert batcher.bin_limits == {}  # growth never actuated

    def test_kill_switch_reverts_everything(self):
        engine = get_engine("batched", xdrop=15)
        static = (engine.tile_width, engine.compact_threshold)
        manager, batcher = make_manager(
            mode="on",
            engine=engine,
            planner=False,
            revert_fraction=0.5,
            revert_batches=2,
        )
        # Healthy pre-decision traffic defines the baseline...
        feed(manager, batches=4, elapsed=0.01)
        assert manager.applied > 0
        assert batcher.bin_limits
        # ...then sustained 100x-slower batches must trip the revert.
        decisions = feed(manager, batches=2, elapsed=1.0)
        reverted = [d for d in decisions if d.action == "reverted"]
        assert len(reverted) == 1
        assert manager.killed
        assert batcher.bin_limits == {}
        assert (engine.tile_width, engine.compact_threshold) == static
        assert manager.bin_batch_sizes()[1] == 16
        # A tripped kill-switch ends tuning for good.
        assert feed(manager, batches=3, elapsed=0.01) == []

    def test_single_regression_does_not_trip(self):
        manager, _ = make_manager(mode="on", planner=False, revert_batches=3)
        feed(manager, batches=4, elapsed=0.01)
        decisions = feed(manager, batches=2, elapsed=1.0)
        assert all(d.action != "reverted" for d in decisions)
        assert not manager.killed

    def test_snapshot_shape(self):
        manager, _ = make_manager(mode="on")
        feed(manager)
        snap = manager.snapshot()
        assert snap["mode"] == "on"
        assert snap["killed"] is False
        assert set(snap["decisions"]) == {
            "applied", "advised", "vetoed", "reverted"
        }
        assert snap["bin_batch_sizes"]["1"] > 16
        assert isinstance(snap["recent"], list) and snap["recent"]


class TestTunableKnobs:
    def test_none_engine_has_no_surface(self):
        assert tunable_knobs(None) == ()

    def test_batched_engine_exposes_kernel_knobs(self):
        engine = get_engine("batched", xdrop=15)
        assert tunable_knobs(engine) == ("tile_width", "compact_threshold")

    def test_reference_engine_has_no_surface(self):
        assert tunable_knobs(get_engine("reference", xdrop=15)) == ()


# --------------------------------------------------------------------------- #
# Config plumbing.
# --------------------------------------------------------------------------- #
class TestAutotuneConfig:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="autotune"):
            ServiceConfig(autotune="bogus")

    def test_invalid_options_rejected_eagerly(self):
        with pytest.raises(ConfigurationError, match="autotune_options"):
            ServiceConfig(autotune="on", autotune_options={"not_a_knob": 1})

    def test_mode_reaches_service_stats(self):
        config = AlignConfig(
            engine="batched",
            xdrop=15,
            service=ServiceConfig(autotune="advise", max_batch_size=8),
        )
        with AlignmentService(config=config) as service:
            stats = service.stats()
        assert stats.autotune_mode == "advise"
        assert stats.autotune["mode"] == "advise"

    def test_off_mode_builds_no_manager(self):
        with AlignmentService(config=AlignConfig(engine="batched", xdrop=15)) as s:
            assert s.autotune is None
            assert s.stats().autotune_mode == "off"


# --------------------------------------------------------------------------- #
# End-to-end: tuned results are bit-identical and decisions land.
# --------------------------------------------------------------------------- #
class TestServiceIntegration:
    def tuned_config(self, mode="on"):
        return AlignConfig(
            engine="batched",
            xdrop=15,
            bin_width=500,
            service=ServiceConfig(
                max_batch_size=4,
                cache_capacity=0,
                autotune=mode,
                autotune_options=dict(FAST),
            ),
        )

    def test_tuned_service_matches_direct_engine(self):
        jobs = generate_workload("length_skew", SMALL).jobs
        direct = get_engine("batched", xdrop=15).align_batch(jobs)
        with AlignmentService(config=self.tuned_config()) as service:
            results = service.map(jobs)
        assert [r.score for r in results] == [r.score for r in direct.results]

    def test_decisions_apply_and_are_observable(self):
        jobs = generate_workload("length_skew", SMALL).jobs
        with AlignmentService(config=self.tuned_config()) as service:
            service.map(jobs)
            service.map(generate_workload("length_skew", SMALL).jobs)
            stats = service.stats()
            manager = service.autotune
            assert manager is not None
            assert manager.applied >= 1
            bound = manager.options.batch_size_bound(4)
            assert all(
                size <= bound for size in manager.bin_batch_sizes().values()
            )
        assert stats.autotune["decisions"]["applied"] >= 1

    def test_autotune_metrics_series_present(self):
        jobs = generate_workload("length_skew", SMALL).jobs
        with AlignmentService(config=self.tuned_config()) as service:
            service.map(jobs)
            names = service.obs.registry.names()
        assert "repro_autotune_decisions_total" in names
        assert "repro_autotune_bin_batch_size" in names
        assert "repro_autotune_active" in names
