#!/usr/bin/env python
"""Distributed serving demo: process workers, a socket front door, and
durable state that survives a restart.

Walks the whole :mod:`repro.distrib` surface:

* an :class:`~repro.distrib.AlignmentServer` wrapping a process-transport
  :class:`~repro.service.AlignmentService` (two spawned workers, whole
  batches round-robined across them),
* a :class:`~repro.distrib.ServiceClient` submitting over the wire and
  reading back the fleet-merged metrics (worker-process kernel counters
  folded into the coordinator's registry),
* a durable SQLite state file: after the server is torn down, a *new*
  service on the same file answers every request from the durable result
  table without aligning anything.

Everything is bit-identical to one direct ``align_batch`` call.

Run from the repository root::

    PYTHONPATH=src python examples/distributed_serving.py

(The ``__main__`` guard is required: spawned worker processes re-import
this module.)
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import AlignConfig, ServiceConfig
from repro.data import PairSetSpec, generate_pair_set
from repro.distrib import AlignmentServer, ServiceClient
from repro.engine import get_engine
from repro.service import AlignmentService

XDROP = 50


def main() -> None:
    jobs = generate_pair_set(
        PairSetSpec(
            num_pairs=48,
            min_length=200,
            max_length=900,
            pairwise_error_rate=0.15,
            seed_placement="middle",
            rng_seed=7,
        )
    )
    direct = get_engine("batched", xdrop=XDROP).align_batch(jobs)

    state_path = str(Path(tempfile.mkdtemp(prefix="repro-distrib-")) / "state.db")
    config = AlignConfig(
        engine="batched",
        xdrop=XDROP,
        service=ServiceConfig(
            num_workers=2,
            transport="process",
            worker_policy="batch",
            max_batch_size=16,
            state_path=state_path,
        ),
    )

    # -- serve over a real socket -----------------------------------------
    with AlignmentServer(config=config) as server:
        server.start()
        print(f"server listening on {server.host}:{server.port}")
        with ServiceClient(server.host, server.port) as client:
            identity = client.ping()
            print(f"server identity: {identity}")
            results, cached = client.submit_detailed(jobs)
            assert [r.score for r in results] == direct.scores()
            print(
                f"aligned {len(results)} jobs over the wire "
                f"(bit-identical: {results == direct.results}, "
                f"{sum(cached)} cache hits)"
            )
            snap = client.metrics()
            for shard in ("0", "1"):
                heat = snap.value(
                    "repro_worker_jobs_total", default=0.0, shard=shard
                )
                print(f"worker shard {shard}: {heat:.0f} jobs")
            kernel_rows = snap.value(
                "repro_engine_jobs_total", default=0.0, engine="batched"
            )
            print(f"engine counters merged from workers: {kernel_rows:.0f} jobs")

    # -- restart: the durable result table answers everything -------------
    with AlignmentService(
        config=config.replace(
            service=ServiceConfig(
                num_workers=1, state_path=state_path  # thread transport is fine now
            )
        )
    ) as reborn:
        tickets = reborn.submit_many(jobs)
        reborn.drain()
        replayed = [t.result(timeout=60.0) for t in tickets]
        assert replayed == direct.results
        assert all(t.cache_hit for t in tickets)
        print(
            f"after restart: {len(replayed)} results served from "
            f"{Path(state_path).name}, 0 batches aligned "
            f"(batches_formed={reborn.stats().batches_formed})"
        )


if __name__ == "__main__":
    main()
