"""Tests of the scenario workload bank (repro.workloads)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Seed
from repro.core.encoding import WILDCARD_CODE
from repro.core.job import AlignmentJob
from repro.core.scoring import ScoringScheme
from repro.core.seed_extend import extend_seed
from repro.core.xdrop import xdrop_extend_reference
from repro.errors import ConfigurationError
from repro.workloads import (
    WorkloadBank,
    WorkloadSpec,
    describe_profiles,
    generate_workload,
    list_profiles,
    register_profile,
    unregister_profile,
)

ALL_PROFILES = list_profiles()


class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="count"):
            WorkloadSpec(count=0)
        with pytest.raises(ConfigurationError, match="length range"):
            WorkloadSpec(min_length=100, max_length=50)
        with pytest.raises(ConfigurationError, match="error_rate"):
            WorkloadSpec(error_rate=1.5)
        with pytest.raises(ConfigurationError, match="xdrop"):
            WorkloadSpec(xdrop=-1)

    def test_profile_private_rng_streams(self):
        spec = WorkloadSpec(seed=5)
        a = spec.rng("pacbio").integers(0, 1 << 30, size=4)
        b = spec.rng("ont").integers(0, 1 << 30, size=4)
        assert not np.array_equal(a, b)  # profiles never share a stream
        again = spec.rng("pacbio").integers(0, 1 << 30, size=4)
        np.testing.assert_array_equal(a, again)


class TestBankRegistry:
    def test_builtin_profiles_registered(self):
        expected = {
            "pacbio",
            "ont",
            "homopolymer",
            "tandem_repeat",
            "inverted_repeat",
            "length_skew",
            "degenerate",
            "xdrop_boundary",
        }
        assert expected <= set(ALL_PROFILES)

    def test_describe_profiles_has_summaries(self):
        rows = describe_profiles()
        assert {r["name"] for r in rows} == set(ALL_PROFILES)
        assert all(r["summary"] for r in rows)

    def test_unknown_profile_names_alternatives(self):
        with pytest.raises(ConfigurationError, match="available"):
            generate_workload("nanopore-ultra")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_profile("pacbio", lambda spec, rng: [])

    def test_custom_profile_roundtrip(self):
        def tiny(spec, rng):
            for _ in range(spec.count):
                yield "ACGTACGT", "ACGTACGT", Seed(0, 0, 4), {"custom": True}

        register_profile("custom_tiny", tiny, "two-copy toy profile")
        try:
            wl = generate_workload("custom_tiny", WorkloadSpec(count=3))
            assert len(wl.jobs) == 3
            assert wl.meta[0]["custom"] is True
        finally:
            unregister_profile("custom_tiny")


@pytest.mark.parametrize("profile", ALL_PROFILES)
class TestEveryProfile:
    SPEC = WorkloadSpec(count=10, seed=77, min_length=50, max_length=140, xdrop=15)

    def test_deterministic_for_same_spec(self, profile):
        a = generate_workload(profile, self.SPEC)
        b = generate_workload(profile, self.SPEC)
        assert len(a.jobs) == self.SPEC.count
        for x, y in zip(a.jobs, b.jobs):
            np.testing.assert_array_equal(x.query, y.query)
            np.testing.assert_array_equal(x.target, y.target)
            assert x.seed == y.seed

    def test_seed_changes_content(self, profile):
        a = generate_workload(profile, self.SPEC)
        b = generate_workload(profile, WorkloadSpec(
            count=10, seed=78, min_length=50, max_length=140, xdrop=15))
        assert any(
            not np.array_equal(x.query, y.query) for x, y in zip(a.jobs, b.jobs)
        )

    def test_jobs_are_valid_and_metadata_parallel(self, profile):
        wl = generate_workload(profile, self.SPEC)
        assert len(wl.meta) == len(wl.jobs)
        for index, (job, meta) in enumerate(zip(wl.jobs, wl.meta)):
            assert isinstance(job, AlignmentJob)
            assert job.pair_id == index
            assert meta["profile"] == profile
            assert meta["index"] == index
            # The seed anchor must fit both sequences (AlignmentJob and the
            # kernels rely on it).
            assert job.seed.query_end <= job.query_length
            assert job.seed.target_end <= job.target_length

    def test_replay_hint_mentions_spec(self, profile):
        wl = generate_workload(profile, self.SPEC)
        hint = wl.replay_hint()
        assert profile in hint and "seed=77" in hint


class TestProfileShapes:
    """Each scenario family actually produces its advertised shape."""

    def test_homopolymer_templates_are_runny(self):
        wl = generate_workload(
            "homopolymer", WorkloadSpec(count=6, seed=1, min_length=120, max_length=160)
        )
        for job in wl.jobs:
            transitions = int(np.count_nonzero(np.diff(job.query.astype(np.int16))))
            # Runs of >= 3 mean far fewer transitions than a uniform sequence.
            assert transitions < 0.6 * job.query_length

    def test_length_skew_is_extreme_in_both_orientations(self):
        wl = generate_workload(
            "length_skew", WorkloadSpec(count=8, seed=2, min_length=60, max_length=400)
        )
        ratios = [j.target_length / j.query_length for j in wl.jobs]
        assert max(ratios) > 4 and min(ratios) < 0.25

    def test_degenerate_covers_one_base_and_full_seed(self):
        wl = generate_workload("degenerate", WorkloadSpec(count=12, seed=3))
        shapes = {m["shape"] for m in wl.meta}
        assert "one-base-match" in shapes and "seed-consumes-both" in shapes
        one_base = [j for j, m in zip(wl.jobs, wl.meta) if m["shape"] == "one-base-match"]
        assert all(j.query_length == j.target_length == 1 for j in one_base)

    def test_tandem_repeat_has_copy_number_change(self):
        wl = generate_workload("tandem_repeat", WorkloadSpec(count=4, seed=4))
        for job, meta in zip(wl.jobs, wl.meta):
            assert job.target_length > job.query_length  # +1 unit on the target

    def test_inverted_repeat_contains_reverse_complement_arm(self):
        wl = generate_workload(
            "inverted_repeat",
            WorkloadSpec(count=4, seed=5, error_rate=0.0, min_length=90, max_length=90),
        )
        meta = wl.meta[0]
        assert meta["structure"] == "inverted-repeat"
        assert meta["arm_length"] >= 8

    def test_xdrop_boundary_ground_truth_matches_reference(self):
        # The family's whole point: termination flips within +-1 cell of X,
        # and the metadata predicts the reference kernel's behaviour exactly.
        for xdrop in (0, 7, 20):
            spec = WorkloadSpec(count=12, seed=6, xdrop=xdrop)
            wl = generate_workload("xdrop_boundary", spec)
            outcomes = set()
            for job, meta in zip(wl.jobs, wl.meta):
                res = extend_seed(
                    job.query, job.target, job.seed,
                    xdrop=xdrop, kernel=xdrop_extend_reference,
                )
                assert res.right.terminated_early == meta["expect_early_termination"]
                outcomes.add(meta["expect_early_termination"])
            assert outcomes == {True, False}  # both sides of the boundary

    def test_xdrop_boundary_tail_is_wildcard(self):
        wl = generate_workload("xdrop_boundary", WorkloadSpec(count=4, seed=8))
        tailed = [
            (j, m) for j, m in zip(wl.jobs, wl.meta) if m["mismatch_tail"] > 0
        ]
        assert tailed
        job, meta = tailed[0]
        assert int(job.query[-1]) == WILDCARD_CODE

    def test_boundary_respects_custom_scoring(self):
        scoring = ScoringScheme(match=2, mismatch=-3, gap=-2)
        spec = WorkloadSpec(count=8, seed=9, xdrop=20, scoring=scoring)
        wl = generate_workload("xdrop_boundary", spec)
        for job, meta in zip(wl.jobs, wl.meta):
            res = extend_seed(
                job.query, job.target, job.seed,
                scoring=scoring, xdrop=20, kernel=xdrop_extend_reference,
            )
            assert res.right.terminated_early == meta["expect_early_termination"]


class TestWorkloadBankFacade:
    def test_generate_all_covers_registry(self):
        bank = WorkloadBank(WorkloadSpec(count=2, seed=10))
        workloads = bank.generate_all()
        assert [w.profile for w in workloads] == bank.profiles()

    def test_override_is_per_call(self):
        bank = WorkloadBank(WorkloadSpec(count=2, seed=10))
        wl = bank.generate("pacbio", count=5)
        assert len(wl.jobs) == 5
        assert len(bank.generate("pacbio").jobs) == 2  # default untouched
