"""Tests for the exact full-DP baselines (SW, NW, banded SW)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    band_cells,
    banded_smith_waterman,
    needleman_wunsch,
    needleman_wunsch_matrix,
    smith_waterman,
    smith_waterman_matrix,
)
from repro.core import ScoringScheme, exact_extension_score, random_sequence, xdrop_extend
from repro.errors import ConfigurationError

SEQ = st.text(alphabet="ACGT", min_size=1, max_size=40)


def _sw_brute(q, t, s: ScoringScheme) -> int:
    m, n = len(q), len(t)
    H = [[0] * (n + 1) for _ in range(m + 1)]
    best = 0
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            sub = s.match if q[i - 1] == t[j - 1] else s.mismatch
            H[i][j] = max(0, H[i - 1][j - 1] + sub, H[i - 1][j] + s.gap, H[i][j - 1] + s.gap)
            best = max(best, H[i][j])
    return best


def _nw_brute(q, t, s: ScoringScheme) -> int:
    m, n = len(q), len(t)
    H = [[0] * (n + 1) for _ in range(m + 1)]
    for i in range(m + 1):
        H[i][0] = i * s.gap
    for j in range(n + 1):
        H[0][j] = j * s.gap
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            sub = s.match if q[i - 1] == t[j - 1] else s.mismatch
            H[i][j] = max(H[i - 1][j - 1] + sub, H[i - 1][j] + s.gap, H[i][j - 1] + s.gap)
    return H[m][n]


class TestSmithWaterman:
    def test_identical(self, scoring):
        res = smith_waterman("ACGTACGT", "ACGTACGT", scoring)
        assert res.best_score == 8
        assert res.cells_computed == 81

    def test_disjoint_sequences_score_zero_or_one(self, scoring):
        res = smith_waterman("AAAA", "CCCC", scoring)
        assert res.best_score == 0

    def test_local_island(self, scoring):
        # Shared island of 6 bases inside unrelated flanks.
        res = smith_waterman("TTTTTTACGACGTTTTTT", "GGGGGGACGACGGGGGGG", scoring)
        assert res.best_score == 6

    @settings(max_examples=40, deadline=None)
    @given(q=SEQ, t=SEQ)
    def test_matches_bruteforce(self, q, t):
        s = ScoringScheme()
        assert smith_waterman(q, t, s).best_score == _sw_brute(q, t, s)

    def test_matrix_variant_consistent(self, scoring, rng):
        q = random_sequence(25, rng)
        t = random_sequence(30, rng)
        plain = smith_waterman(q, t, scoring)
        with_matrix = smith_waterman_matrix(q, t, scoring)
        assert plain.best_score == with_matrix.best_score
        assert with_matrix.matrix is not None
        assert with_matrix.matrix.shape == (26, 31)
        assert with_matrix.matrix.max() == plain.best_score

    def test_xdrop_never_exceeds_local_optimum(self, scoring, rng):
        for _ in range(10):
            q = random_sequence(60, rng)
            t = random_sequence(60, rng)
            assert (
                xdrop_extend(q, t, scoring, xdrop=15).best_score
                <= smith_waterman(q, t, scoring).best_score
            )


class TestNeedlemanWunsch:
    def test_identical(self, scoring):
        assert needleman_wunsch("ACGT", "ACGT", scoring).best_score == 4

    def test_global_penalises_length_difference(self, scoring):
        assert needleman_wunsch("ACGT", "ACGTAAAA", scoring).best_score == 4 - 4

    @settings(max_examples=40, deadline=None)
    @given(q=SEQ, t=SEQ)
    def test_matches_bruteforce(self, q, t):
        s = ScoringScheme()
        assert needleman_wunsch(q, t, s).best_score == _nw_brute(q, t, s)

    def test_matrix_variant(self, scoring):
        res = needleman_wunsch_matrix("ACG", "ACG", scoring)
        assert res.matrix is not None
        assert res.matrix[0, 0] == 0
        assert res.matrix[3, 3] == 3

    def test_global_never_exceeds_local(self, scoring, rng):
        q = random_sequence(40, rng)
        t = random_sequence(50, rng)
        assert (
            needleman_wunsch(q, t, scoring).best_score
            <= smith_waterman(q, t, scoring).best_score
        )

    def test_exact_extension_between_global_and_local(self, scoring, rng):
        q = random_sequence(40, rng)
        t = random_sequence(40, rng)
        ext = exact_extension_score(q, t, scoring).best_score
        assert needleman_wunsch(q, t, scoring).best_score <= ext
        assert ext <= smith_waterman(q, t, scoring).best_score


class TestBandedSmithWaterman:
    def test_wide_band_equals_full_sw(self, scoring, rng):
        for _ in range(5):
            q = random_sequence(40, rng)
            t = random_sequence(45, rng)
            full = smith_waterman(q, t, scoring).best_score
            banded = banded_smith_waterman(q, t, scoring, bandwidth=100).best_score
            assert banded == full

    def test_narrow_band_never_exceeds_full(self, scoring, rng):
        q = random_sequence(60, rng)
        t = random_sequence(60, rng)
        full = smith_waterman(q, t, scoring).best_score
        for bw in (0, 2, 5, 10):
            assert banded_smith_waterman(q, t, scoring, bandwidth=bw).best_score <= full

    def test_band_score_monotone_in_width(self, scoring, similar_pair):
        q, t = similar_pair
        scores = [
            banded_smith_waterman(q, t, scoring, bandwidth=bw).best_score
            for bw in (0, 4, 16, 64)
        ]
        assert scores == sorted(scores)

    def test_cells_match_band_cells_helper(self, scoring, rng):
        q = random_sequence(30, rng)
        t = random_sequence(50, rng)
        res = banded_smith_waterman(q, t, scoring, bandwidth=7)
        assert res.cells_computed == band_cells(30, 50, 7)

    def test_negative_bandwidth_rejected(self, scoring):
        with pytest.raises(ConfigurationError):
            banded_smith_waterman("ACGT", "ACGT", scoring, bandwidth=-1)
        with pytest.raises(ConfigurationError):
            band_cells(10, 10, -1)

    def test_band_cells_full_matrix_when_band_huge(self):
        assert band_cells(10, 12, 100) == 11 * 13

    def test_fixed_band_explores_more_than_xdrop_on_divergent_pair(
        self, divergent_pair
    ):
        # The Fig. 2 argument: on clearly diverging sequences X-drop stops
        # early while the fixed band ploughs on to the end regardless.
        # A scoring scheme with a clearly negative expected score on random
        # sequences (BLAST-like 1/-2/-2) makes the divergence unambiguous;
        # with BELLA's 1/-1/-1 the expected score of random DNA hovers near
        # zero and the X-drop band can wander for a long time.
        blast = ScoringScheme(match=1, mismatch=-2, gap=-2)
        q, t = divergent_pair
        xdrop_cells = xdrop_extend(q, t, blast, xdrop=10).cells_computed
        banded_cells = banded_smith_waterman(q, t, blast, bandwidth=10).cells_computed
        assert banded_cells > 3 * xdrop_cells
