"""Functional LOGAN kernel: one GPU block per extension, traced.

The CUDA kernel of the paper assigns each extension to a GPU block and
computes its anti-diagonals with Algorithm 2.  In this reproduction the same
work is performed by the vectorised NumPy X-drop kernel
(:func:`repro.core.xdrop_vectorized.xdrop_extend`), and every extension
additionally records its anti-diagonal width trace, which is what the GPU
execution model replays to estimate V100 time.

The kernel is *functionally exact*: the scores and end positions it returns
are the library's single source of truth and are identical to the scalar
SeqAn-style reference (tests enforce this), which reproduces the paper's
"equivalent accuracy" statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.result import ExtensionResult
from ..core.scoring import ScoringScheme
from ..core.xdrop_batch import BatchKernelStats, xdrop_extend_batch
from ..core.xdrop_vectorized import xdrop_extend
from ..errors import ConfigurationError
from ..gpusim.trace import BlockWorkTrace, KernelWorkload
from ..perf.parallel import chunk_evenly, parallel_map
from .host import ExtensionTask

__all__ = [
    "StreamExecution",
    "run_extension_stream",
    "execute_tasks_batched",
    "empty_extension",
    "EXTENSION_EXECUTORS",
]


@dataclass
class StreamExecution:
    """Functional output of one GPU stream (a list of extensions).

    Attributes
    ----------
    results:
        Per-task extension results (same order as the input tasks).
    workload:
        The traced workload for the GPU execution model.  Empty tasks (seed
        flush against a sequence end) contribute no block.
    """

    results: list[ExtensionResult]
    workload: KernelWorkload


def empty_extension(trace: bool = True) -> ExtensionResult:
    """Result used for tasks with nothing to extend (zero-length side)."""
    return ExtensionResult(
        best_score=0,
        query_end=0,
        target_end=0,
        anti_diagonals=1,
        cells_computed=1,
        terminated_early=False,
        band_widths=np.asarray([1], dtype=np.int64) if trace else None,
    )


def _run_task(
    task: ExtensionTask, scoring: ScoringScheme, xdrop: int
) -> ExtensionResult:
    """Worker: execute one extension with tracing enabled (picklable)."""
    if task.is_empty:
        return empty_extension()
    return xdrop_extend(task.query, task.target, scoring=scoring, xdrop=xdrop, trace=True)


def _execute_vectorized(
    tasks: Sequence[ExtensionTask], scoring: ScoringScheme, xdrop: int, workers: int
) -> list[ExtensionResult]:
    """Per-task execution: one vectorised kernel call per extension."""
    return parallel_map(_run_task, list(tasks), args=(scoring, xdrop), workers=workers)


def _run_pair_chunk(
    pairs: list,
    scoring: ScoringScheme,
    xdrop: int,
    trace: bool,
    compact_threshold: float | None,
    tile_width: int | None,
) -> list[ExtensionResult]:
    """Worker: one batched sweep over a chunk of pairs (picklable)."""
    return xdrop_extend_batch(
        pairs,
        scoring=scoring,
        xdrop=xdrop,
        trace=trace,
        compact_threshold=compact_threshold,
        tile_width=tile_width,
    )


def execute_tasks_batched(
    tasks: Sequence[ExtensionTask],
    scoring: ScoringScheme,
    xdrop: int,
    workers: int = 1,
    trace: bool = True,
    compact_threshold: float | None = None,
    tile_width: int | None = None,
    stats: BatchKernelStats | None = None,
) -> list[ExtensionResult]:
    """Inter-sequence execution: every extension is one row of a batched
    anti-diagonal sweep (LOGAN's one-block-per-extension layout).

    With ``workers > 1`` the live tasks are split into contiguous chunks and
    each chunk is swept by one worker process — chunking never changes
    scores or traces, only the measured wall-clock.  Seed-flush tasks (an
    empty side) never reach the kernel; they yield a zero-score extension,
    the shared contract of every batch runner.

    ``compact_threshold`` / ``tile_width`` tune the kernel's active-row
    compaction and column tiling (results are invariant to them), and
    ``stats`` — when given — collects the sweep's
    :class:`~repro.core.xdrop_batch.BatchKernelStats` telemetry.  Stats are
    only gathered on the in-process path; chunked multi-worker sweeps run in
    subprocesses, which cannot update the caller's accumulator.
    """
    live = [task for task in tasks if not task.is_empty]
    pairs = [(task.query, task.target) for task in live]
    if workers > 1 and len(pairs) > 1:
        chunks = chunk_evenly(pairs, min(workers, len(pairs)))
        chunk_results = parallel_map(
            _run_pair_chunk,
            chunks,
            args=(scoring, xdrop, trace, compact_threshold, tile_width),
            workers=workers,
            min_items_per_worker=1,
        )
        extensions = iter([ext for chunk in chunk_results for ext in chunk])
    else:
        extensions = iter(
            xdrop_extend_batch(
                pairs,
                scoring=scoring,
                xdrop=xdrop,
                trace=trace,
                compact_threshold=compact_threshold,
                tile_width=tile_width,
                stats=stats,
            )
        )
    return [
        empty_extension(trace) if task.is_empty else next(extensions)
        for task in tasks
    ]


def _execute_batched(
    tasks: Sequence[ExtensionTask], scoring: ScoringScheme, xdrop: int, workers: int
) -> list[ExtensionResult]:
    """Stream executor wrapper: batched execution with tracing on."""
    return execute_tasks_batched(tasks, scoring, xdrop, workers=workers, trace=True)


#: Named functional-execution strategies for a stream of extension tasks.
EXTENSION_EXECUTORS: dict[str, Callable[..., list[ExtensionResult]]] = {
    "vectorized": _execute_vectorized,
    "batched": _execute_batched,
}


def run_extension_stream(
    tasks: Sequence[ExtensionTask],
    scoring: ScoringScheme,
    xdrop: int,
    replication: float = 1.0,
    workers: int = 1,
    engine: str | Callable[..., list[ExtensionResult]] = "batched",
) -> StreamExecution:
    """Execute one stream of extensions and collect the traced workload.

    Parameters
    ----------
    tasks:
        The stream's extension tasks (all left-extensions or all
        right-extensions of a prepared batch).
    scoring, xdrop:
        Alignment parameters.
    replication:
        How many real extensions each task stands for when the batch is a
        scaled-down sample of the paper's workload.
    workers:
        Local worker processes used to execute the extensions (affects only
        the measured wall-clock, never the scores or the traces).
    engine:
        Functional execution strategy: ``"batched"`` (default — the
        inter-sequence batch kernel), ``"vectorized"`` (one kernel call per
        extension), or a callable ``(tasks, scoring, xdrop, workers) ->
        list[ExtensionResult]``.  Scores and traces are identical for every
        strategy; only the measured Python wall-clock differs.
    """
    if callable(engine):
        executor = engine
    else:
        executor = EXTENSION_EXECUTORS.get(str(engine))
        if executor is None:
            raise ConfigurationError(
                f"unknown extension engine {engine!r}; "
                f"available: {sorted(EXTENSION_EXECUTORS)}"
            )
    results = executor(list(tasks), scoring, xdrop, workers)
    workload = KernelWorkload(replication=replication)
    for task, result in zip(tasks, results):
        if task.is_empty:
            continue
        workload.add(
            BlockWorkTrace.from_extension(
                result,
                query_length=len(task.query),
                target_length=len(task.target),
            )
        )
    return StreamExecution(results=list(results), workload=workload)
