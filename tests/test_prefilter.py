"""Tests of the alignment-free prefilter (repro.prefilter).

Tier-1 covers the sketch/distance layer, the policy's triage rules —
including the headline guarantee that the reject class has zero false
rejections on the ``pacbio``/``ont`` profiles at default thresholds —
and the service admission wiring in both ``advise`` and ``enforce``
modes.  The tier-2 tests (`-m tier2`) sweep every workload-bank profile
for rejection soundness and replay the full conformance harness with
the prefilter enabled.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import AlignConfig, ServiceConfig
from repro.core import ScoringScheme, Seed, random_sequence
from repro.core.job import AlignmentJob
from repro.engine import get_engine
from repro.errors import ConfigurationError
from repro.prefilter import (
    PREFILTER_OUTCOMES,
    PrefilterPolicy,
    d2_distance,
    d2star_distance,
    rejected_result,
    sketch_distance,
    sketch_sequence,
)
from repro.service import AlignmentService
from repro.testing import ConformanceRunner
from repro.workloads import WorkloadSpec, generate_workload, list_profiles

SCORING = ScoringScheme(match=1, mismatch=-1, gap=-1)
XDROP = 20

#: Read-scale spec: long enough that the provable bounds never fire and
#: triage is decided by the sketch distance alone.
LONG = WorkloadSpec(
    count=12,
    seed=23,
    min_length=600,
    max_length=1200,
    xdrop=XDROP,
    scoring=SCORING,
)


def _service_config(mode: str, **options) -> AlignConfig:
    return AlignConfig(
        engine="batched",
        scoring=SCORING,
        xdrop=XDROP,
        service=ServiceConfig(
            num_workers=2,
            max_batch_size=8,
            prefilter=mode,
            prefilter_options=options,
        ),
    )


def _mixed_jobs() -> tuple[list[AlignmentJob], list[bool]]:
    """Six related (pacbio) + six unrelated jobs, with ground truth."""
    related = generate_workload("pacbio", LONG).jobs[:6]
    unrelated = generate_workload("unrelated", LONG).jobs[:6]
    jobs = related + unrelated
    for pair_id, job in enumerate(jobs):
        job.pair_id = pair_id
    return jobs, [True] * 6 + [False] * 6


# --------------------------------------------------------------------------- #
# Sketches and distances
# --------------------------------------------------------------------------- #
class TestSketch:
    def test_identical_sequences_at_zero_distance(self, rng):
        seq = random_sequence(700, rng)
        a, b = sketch_sequence(seq), sketch_sequence(seq.copy())
        assert d2_distance(a, b) == pytest.approx(0.0, abs=1e-12)
        assert d2star_distance(a, b) == pytest.approx(0.0, abs=1e-12)

    def test_unrelated_sequences_are_far(self, rng):
        a = sketch_sequence(random_sequence(800, rng))
        b = sketch_sequence(random_sequence(800, rng))
        assert d2_distance(a, b) > 0.4
        assert d2star_distance(a, b) > 0.4

    def test_short_and_all_wildcard_sketches_are_empty(self):
        assert sketch_sequence("ACG", 7).empty
        assert sketch_sequence("N" * 100, 7).empty
        full = sketch_sequence("ACGTACGTACGT", 7)
        assert d2_distance(sketch_sequence("N" * 100, 7), full) == 1.0

    def test_homopolymer_d2star_falls_back_to_d2(self):
        # The background correction annihilates a pure homopolymer
        # profile; d2star must degrade to d2 instead of reporting noise.
        a = sketch_sequence("A" * 120, 7)
        b = sketch_sequence("A" * 90, 7)
        assert d2star_distance(a, b) == d2_distance(a, b) == pytest.approx(0.0)

    def test_k_mismatch_raises(self, rng):
        seq = random_sequence(100, rng)
        with pytest.raises(ConfigurationError):
            d2_distance(sketch_sequence(seq, 5), sketch_sequence(seq, 7))

    def test_unknown_metric_raises(self, rng):
        sk = sketch_sequence(random_sequence(50, rng))
        with pytest.raises(ConfigurationError):
            sketch_distance(sk, sk, metric="mash")

    def test_invalid_k_raises(self):
        with pytest.raises(ConfigurationError):
            sketch_sequence("ACGT", 0)
        with pytest.raises(ConfigurationError):
            sketch_sequence("ACGT", 13)  # dense profile cap is k=12


# --------------------------------------------------------------------------- #
# Policy triage rules
# --------------------------------------------------------------------------- #
class TestPolicy:
    def test_options_round_trip(self):
        policy = PrefilterPolicy(k=6, metric="d2star", reject_distance=0.5)
        assert PrefilterPolicy.from_options(policy.to_dict()) == policy

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown prefilter"):
            PrefilterPolicy.from_options({"kmer": 9})

    def test_inverted_distance_band_rejected(self):
        with pytest.raises(ConfigurationError):
            PrefilterPolicy(duplicate_distance=0.5, reject_distance=0.4)

    def test_duplicate_fires_before_overlap_bound(self, rng):
        # Identical but *short* pair: the overlap bound would reject it,
        # yet the duplicate route must win so it keeps its cheap
        # content-address hit.
        seq = random_sequence(60, rng)
        job = AlignmentJob(query=seq, target=seq.copy(), seed=Seed(0, 0, 11))
        decision = PrefilterPolicy().classify(job, SCORING)
        assert decision.outcome == "duplicate"
        assert decision.distance == pytest.approx(0.0, abs=1e-12)

    def test_overlap_bound_rejects_short_pairs(self, rng):
        job = AlignmentJob(
            query=random_sequence(60, rng),
            target=random_sequence(60, rng),
            seed=Seed(0, 0, 11),
        )
        decision = PrefilterPolicy().classify(job, SCORING)
        assert (decision.outcome, decision.reason) == ("reject", "overlap-bound")

    def test_score_bound_rejects_capped_scores(self, rng):
        # Mean length clears min_overlap but the short side caps the
        # best possible score below the threshold at min_overlap.
        job = AlignmentJob(
            query=random_sequence(40, rng),
            target=random_sequence(1100, rng),
            seed=Seed(0, 0, 11),
        )
        decision = PrefilterPolicy().classify(job, SCORING)
        assert (decision.outcome, decision.reason) == ("reject", "score-bound")

    def test_sketch_distance_rejects_unrelated_long_pairs(self, rng):
        job = AlignmentJob(
            query=random_sequence(800, rng),
            target=random_sequence(800, rng),
            seed=Seed(0, 0, 11),
        )
        decision = PrefilterPolicy().classify(job, SCORING)
        assert (decision.outcome, decision.reason) == ("reject", "sketch-distance")
        assert decision.distance >= PrefilterPolicy().reject_distance

    def test_no_sketch_signal_stays_contested(self, rng):
        # All-N query: no k-mer signal, bounds don't fire -> the kernel
        # is the only way to know, so the pair must be admitted.
        job = AlignmentJob(
            query=np.full(700, np.uint8(4)),
            target=random_sequence(700, rng),
            seed=Seed(0, 0, 11),
        )
        decision = PrefilterPolicy().classify(job, SCORING)
        assert (decision.outcome, decision.reason) == ("contested", "no-sketch")
        assert decision.distance is None

    def test_rejected_result_is_seed_only(self, rng):
        job = AlignmentJob(
            query=random_sequence(100, rng),
            target=random_sequence(100, rng),
            seed=Seed(10, 20, 13),
        )
        result = rejected_result(job, SCORING)
        assert result.score == result.seed_score == SCORING.match * 13
        assert (result.query_begin, result.query_end) == (10, 23)
        assert (result.target_begin, result.target_end) == (20, 33)
        assert result.left.cells_computed == result.right.cells_computed == 0


class TestZeroFalseRejections:
    """Headline tier-1 guarantee: related reads are never rejected."""

    @pytest.mark.parametrize("profile", ["pacbio", "ont"])
    def test_default_policy_never_rejects_related_reads(self, profile):
        policy = PrefilterPolicy()
        workload = generate_workload(profile, LONG)
        decisions = [policy.classify(job, SCORING) for job in workload.jobs]
        assert all(d.outcome != "reject" for d in decisions), [
            (d.outcome, d.reason, d.distance) for d in decisions
        ]


# --------------------------------------------------------------------------- #
# Service admission
# --------------------------------------------------------------------------- #
class TestServiceAdmission:
    def test_advise_mode_is_bit_identical_and_counted(self):
        jobs, _ = _mixed_jobs()
        direct = get_engine("batched", scoring=SCORING, xdrop=XDROP)
        expected = direct.align_batch(jobs).results
        with AlignmentService(config=_service_config("advise")) as svc:
            assert svc.map(jobs) == expected
            stats = svc.stats()
        assert stats.prefilter_mode == "advise"
        assert sum(stats.prefilter_decisions.values()) == len(jobs)
        assert stats.prefilter_decisions["reject"] > 0
        assert stats.prefilter_decisions["contested"] > 0

    def test_enforce_mode_rejections_are_sound(self):
        jobs, related = _mixed_jobs()
        direct = get_engine("batched", scoring=SCORING, xdrop=XDROP)
        expected = direct.align_batch(jobs).results
        policy = PrefilterPolicy()
        threshold = policy.threshold(SCORING)
        with AlignmentService(config=_service_config("enforce")) as svc:
            actual = svc.map(jobs)
            stats = svc.stats()
        assert stats.prefilter_mode == "enforce"
        rejections = 0
        for job, is_related, exp, act in zip(jobs, related, expected, actual):
            if policy.classify(job, SCORING).outcome == "reject":
                rejections += 1
                assert act == rejected_result(job, SCORING)
                # Zero false rejections: the pair is truly unrelated and
                # its real alignment fails the BELLA threshold anyway.
                assert not is_related
                assert not threshold.passes(exp.score, exp.overlap_length)
            else:
                assert act == exp
        assert rejections > 0
        assert stats.prefilter_decisions["reject"] == rejections

    def test_enforced_rejections_never_enter_the_cache(self):
        job = generate_workload("unrelated", LONG).jobs[0]
        with AlignmentService(config=_service_config("enforce")) as svc:
            first = svc.map([job])[0]
            second = svc.map([job])[0]
            stats = svc.stats()
        assert first == second == rejected_result(job, SCORING)
        assert stats.cache.hits == 0 and stats.cache.size == 0

    def test_ticket_records_the_outcome(self):
        job = generate_workload("pacbio", LONG).jobs[0]
        with AlignmentService(config=_service_config("advise")) as svc:
            ticket = svc.submit(job)
            svc.drain()
            ticket.result()
        assert ticket.prefilter in PREFILTER_OUTCOMES

    def test_off_mode_reports_no_decisions(self):
        job = generate_workload("pacbio", LONG).jobs[0]
        with AlignmentService(config=_service_config("off")) as svc:
            svc.map([job])
            stats = svc.stats()
        assert stats.prefilter_mode == "off"
        assert stats.prefilter_decisions == {}

    def test_config_validates_mode_and_options(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(prefilter="sometimes")
        with pytest.raises(ConfigurationError):
            ServiceConfig(prefilter="advise", prefilter_options={"kmer": 9})
        with pytest.raises(ConfigurationError):
            ServiceConfig(prefilter="advise", prefilter_options={"k": 0})


# --------------------------------------------------------------------------- #
# Pipeline stage
# --------------------------------------------------------------------------- #
class TestPipelinePrefilter:
    def test_advise_stage_leaves_overlaps_identical(self, tiny_reads):
        from repro.bella import BellaPipeline

        config = AlignConfig(engine="batched", xdrop=15)
        plain = BellaPipeline(k=13, min_overlap=300, config=config).run(tiny_reads)
        advised = BellaPipeline(
            k=13, min_overlap=300, config=config, prefilter="advise"
        ).run(tiny_reads)
        assert advised.overlaps == plain.overlaps
        assert plain.prefilter is None
        assert advised.prefilter["mode"] == "advise"
        assert sum(advised.prefilter["decisions"].values()) == len(
            advised.overlaps
        )
        assert "prefilter" in advised.timer.stages

    def test_enforce_with_unreachable_overlap_rejects_everything(
        self, tiny_reads
    ):
        from repro.bella import BellaPipeline
        from repro.prefilter import PrefilterPolicy

        pipeline = BellaPipeline(
            k=13,
            min_overlap=300,
            config=AlignConfig(engine="batched", xdrop=15),
            prefilter="enforce",
            prefilter_policy=PrefilterPolicy(min_overlap=10**6),
        )
        result = pipeline.run(tiny_reads)
        decisions = result.prefilter["decisions"]
        assert decisions["reject"] == len(result.overlaps) > 0
        # Seed-only placeholders can never clear the BELLA threshold.
        assert result.accepted == []

    def test_invalid_mode_rejected(self):
        from repro.bella import BellaPipeline

        with pytest.raises(ConfigurationError):
            BellaPipeline(prefilter="maybe")


# --------------------------------------------------------------------------- #
# Tier-2: profile sweep + conformance with the prefilter on
# --------------------------------------------------------------------------- #
@pytest.mark.tier2
@pytest.mark.parametrize("profile", list_profiles())
def test_rejections_sound_on_every_profile(profile):
    """Any rejected pair's true alignment fails the BELLA threshold."""
    spec = WorkloadSpec(
        count=6,
        seed=31,
        min_length=600,
        max_length=1200,
        xdrop=XDROP,
        scoring=SCORING,
    )
    workload = generate_workload(profile, spec)
    policy = PrefilterPolicy()
    threshold = policy.threshold(SCORING)
    engine = get_engine("batched", scoring=SCORING, xdrop=XDROP)
    results = engine.align_batch(workload.jobs).results
    for job, meta, result in zip(workload.jobs, workload.meta, results):
        decision = policy.classify(job, SCORING)
        if decision.outcome == "reject":
            assert meta.get("related", True) is False or not threshold.passes(
                result.score, result.overlap_length
            ), (profile, decision, meta)


@pytest.mark.tier2
@pytest.mark.parametrize("profile", list_profiles())
def test_advise_conformance_stays_bit_identical(profile):
    config = AlignConfig(
        engine="batched",
        xdrop=15,
        service=ServiceConfig(num_workers=2, max_batch_size=8, prefilter="advise"),
    )
    runner = ConformanceRunner(
        config, engines=["reference"], include_service=True, include_network=True
    )
    spec = WorkloadSpec(count=4, seed=11, min_length=50, max_length=120, xdrop=15)
    report = runner.run_workload(generate_workload(profile, spec))
    assert report.ok, report.summary()
    assert report.service_checked


@pytest.mark.tier2
def test_enforce_conformance_forgives_sound_rejections():
    config = AlignConfig(
        engine="batched",
        xdrop=XDROP,
        scoring=SCORING,
        service=ServiceConfig(num_workers=2, max_batch_size=8, prefilter="enforce"),
    )
    runner = ConformanceRunner(
        config, engines=["reference"], include_service=True, include_network=True
    )
    report = runner.run_workload(generate_workload("unrelated", LONG))
    assert report.ok, report.summary()
