"""The :class:`AutotuneManager`: controllers wired to a live service.

The manager is the only autotune component that touches mutable service
state.  :meth:`on_batch` is called by
:meth:`repro.service.AlignmentService._dispatch` (under the service lock)
with one batch's telemetry and does four things:

1. feeds the measured throughput into the kill-switch guard;
2. feeds the kernel stats into the batch's bin controller and the
   engine-knob controller;
3. resolves any proposals — planner gate, then actuate (``"on"``) or
   count (``"advise"``);
4. reverts *everything* to the static configuration the moment measured
   GCUPS regresses past the configured fraction of the pre-decision
   baseline (and stays reverted: a tripped kill-switch ends tuning for
   the service's lifetime).

Instrumentation lands in the service's scoped registry:
``repro_autotune_decisions_total{knob,action}`` counters, per-bin
``repro_autotune_bin_batch_size{length_bin}`` gauges, the engine-knob
gauges, ``repro_autotune_active``, and one ``autotune.decide`` span per
resolved decision.
"""

from __future__ import annotations

from ..core.xdrop_batch import (
    DEFAULT_COMPACT_THRESHOLD,
    DEFAULT_TILE_WIDTH,
    BatchKernelStats,
)
from ..errors import ConfigurationError
from .controller import BinController, Decision, EngineKnobController
from .options import AutotuneOptions
from .planner import WhatIfPlanner

__all__ = ["AutotuneManager", "tunable_knobs"]

#: Resolved decisions kept on the manager for stats()/examples/tests.
_DECISION_HISTORY = 256


def tunable_knobs(engine) -> tuple[str, ...]:
    """Engine-level override knobs *engine* actually exposes.

    Engines advertise their result-invariant tuning surface via a
    ``TUNABLE_KNOBS`` class attribute (the batched engine exposes
    ``tile_width``/``compact_threshold``; the per-pair compiled kernel
    has neither compaction nor column tiling, so it advertises none).
    ``None`` — e.g. the process transport, whose workers rebuild engines
    in their own interpreters — yields an empty surface.
    """
    if engine is None:
        return ()
    return tuple(
        knob
        for knob in getattr(engine, "TUNABLE_KNOBS", ())
        if hasattr(engine, knob)
    )


class AutotuneManager:
    """Per-service autotune state machine (see module docstring)."""

    def __init__(
        self,
        mode: str,
        options: AutotuneOptions,
        batcher,
        engine=None,
        base_batch_size: int = 64,
        obs=None,
        planner: WhatIfPlanner | None = None,
    ) -> None:
        if mode not in ("advise", "on"):
            raise ConfigurationError(
                f"autotune mode must be 'advise' or 'on', got {mode!r}"
            )
        self.mode = mode
        self.options = options
        self.batcher = batcher
        self.engine = engine
        self.base_batch_size = int(base_batch_size)
        self.obs = obs
        self.planner = planner if planner is not None else (
            WhatIfPlanner() if options.planner else None
        )
        self._controllers: dict[int, BinController] = {}
        self._engine_knobs = tunable_knobs(engine)
        self._static_knobs = {
            knob: getattr(engine, knob) for knob in self._engine_knobs
        }
        self._engine_controller = None
        if self._engine_knobs:
            tile = getattr(engine, "tile_width", None)
            compact = getattr(engine, "compact_threshold", None)
            self._engine_controller = EngineKnobController(
                options,
                tile_width=tile if tile is not None else DEFAULT_TILE_WIDTH,
                compact_threshold=(
                    compact if compact is not None else DEFAULT_COMPACT_THRESHOLD
                ),
            )
        self.killed = False
        self.decisions: list[Decision] = []
        self.action_counts = {
            "applied": 0, "advised": 0, "vetoed": 0, "reverted": 0
        }
        # Kill-switch state: GCUPS baseline from pre-decision batches,
        # then a regression streak over post-decision batches.
        self._baseline_samples: list[float] = []
        self._baseline_gcups: float | None = None
        self._regress_streak = 0
        if obs is not None:
            self._decision_c = obs.counter(
                "repro_autotune_decisions_total",
                "autotune decisions, by knob and resolution",
                ("knob", "action"),
            )
            self._bin_size_g = obs.gauge(
                "repro_autotune_bin_batch_size",
                "per-length-bin batch size currently in force",
                ("length_bin",),
            )
            self._tile_g = obs.gauge(
                "repro_autotune_tile_width",
                "tile_width engine override currently in force",
            )
            self._compact_g = obs.gauge(
                "repro_autotune_compact_threshold",
                "compact_threshold engine override currently in force",
            )
            self._active_g = obs.gauge(
                "repro_autotune_active",
                "1 while tuning, 0 after a kill-switch revert",
            )
            self._active_g.set(1.0)
        else:
            self._decision_c = None
            self._bin_size_g = None
            self._tile_g = None
            self._compact_g = None
            self._active_g = None

    @property
    def applied(self) -> int:
        """Decisions actually actuated so far."""
        return self.action_counts["applied"]

    # ------------------------------------------------------------------ #
    def on_batch(
        self,
        length_bin: int,
        batch_size: int,
        kernel_stats: BatchKernelStats | None,
        cells: int,
        elapsed_seconds: float,
    ) -> list[Decision]:
        """Digest one dispatched batch; return the decisions it triggered."""
        if self.killed:
            return []
        if self._guard_throughput(cells, elapsed_seconds):
            return [self._revert()]
        if kernel_stats is None:
            return []
        resolved: list[Decision] = []
        controller = self._controllers.get(length_bin)
        if controller is None:
            controller = self._controllers[length_bin] = BinController(
                length_bin, self.base_batch_size, self.options
            )
        decision = controller.observe(kernel_stats)
        if decision is not None:
            resolved.append(self._resolve(controller, decision))
        if self._engine_controller is not None:
            for decision in self._engine_controller.observe(kernel_stats):
                resolved.append(
                    self._resolve(self._engine_controller, decision)
                )
        return resolved

    def _guard_throughput(self, cells: int, elapsed_seconds: float) -> bool:
        """Track measured GCUPS; True when the kill-switch must trip."""
        if elapsed_seconds <= 0 or cells <= 0:
            return False
        measured = cells / elapsed_seconds / 1e9
        if self.mode != "on" or self.applied == 0:
            # Pre-decision traffic defines what "not regressed" means.
            self._baseline_samples.append(measured)
            del self._baseline_samples[: -self.options.window]
            self._baseline_gcups = sum(self._baseline_samples) / len(
                self._baseline_samples
            )
            return False
        if self._baseline_gcups is None:
            return False
        floor = self._baseline_gcups * (1.0 - self.options.revert_fraction)
        if measured < floor:
            self._regress_streak += 1
        else:
            self._regress_streak = 0
        return self._regress_streak >= self.options.revert_batches

    # ------------------------------------------------------------------ #
    def _resolve(self, controller, decision: Decision) -> Decision:
        """Planner-gate, then apply or count one proposal."""
        growth = (
            decision.knob == "batch_size"
            and decision.proposed > decision.current
        )
        if self.planner is not None and decision.knob == "batch_size":
            window = controller.window
            decision.predicted_payoff = self.planner.payoff(
                window.merged(),
                window.batches,
                int(decision.current),
                int(decision.proposed),
            )
        vetoed = (
            growth
            and decision.predicted_payoff is not None
            and decision.predicted_payoff < self.options.planner_min_gain
        )
        if vetoed:
            decision.action = "vetoed"
            controller.reject(decision)
        elif self.mode == "advise":
            decision.action = "advised"
            controller.reject(decision)
        else:
            self._actuate(decision)
            controller.commit(decision)
            decision.action = "applied"
        self._record(decision)
        return decision

    def _actuate(self, decision: Decision) -> None:
        if decision.knob == "batch_size":
            self.batcher.set_bin_limit(
                decision.length_bin, int(decision.proposed)
            )
            if self._bin_size_g is not None:
                self._bin_size_g.set(
                    decision.proposed, length_bin=str(decision.length_bin)
                )
        else:
            setattr(self.engine, decision.knob, decision.proposed)
            gauge = (
                self._tile_g
                if decision.knob == "tile_width"
                else self._compact_g
            )
            if gauge is not None:
                gauge.set(float(decision.proposed))

    def _record(self, decision: Decision) -> None:
        self.action_counts[decision.action] += 1
        self.decisions.append(decision)
        del self.decisions[:-_DECISION_HISTORY]
        if self._decision_c is not None:
            self._decision_c.inc(knob=decision.knob, action=decision.action)
        if self.obs is not None:
            with self.obs.span(
                "autotune.decide",
                knob=decision.knob,
                action=decision.action,
                length_bin=decision.length_bin,
                current=decision.current,
                proposed=decision.proposed,
                signal=decision.signal,
                predicted_payoff=decision.predicted_payoff,
            ):
                pass

    # ------------------------------------------------------------------ #
    def _revert(self) -> Decision:
        """Kill-switch: every knob back to the static configuration."""
        self.batcher.clear_bin_limits()
        for knob, value in self._static_knobs.items():
            setattr(self.engine, knob, value)
        for controller in self._controllers.values():
            controller.reset()
            if self._bin_size_g is not None:
                self._bin_size_g.set(
                    controller.base_batch_size,
                    length_bin=str(controller.length_bin),
                )
        self.killed = True
        decision = Decision(
            knob="all",
            current=0.0,
            proposed=0.0,
            signal=self._baseline_gcups or 0.0,
            reason=(
                "measured GCUPS stayed below "
                f"{1.0 - self.options.revert_fraction:.2f}x the "
                f"pre-decision baseline for "
                f"{self.options.revert_batches} consecutive batches"
            ),
            action="reverted",
        )
        self._record(decision)
        if self._active_g is not None:
            self._active_g.set(0.0)
        if self.obs is not None:
            self.obs.event(
                "autotune_revert",
                baseline_gcups=self._baseline_gcups,
                revert_fraction=self.options.revert_fraction,
            )
        return decision

    # ------------------------------------------------------------------ #
    def bin_batch_sizes(self) -> dict[int, int]:
        """Per-bin batch sizes currently in force."""
        return {
            index: ctrl.batch_size
            for index, ctrl in sorted(self._controllers.items())
        }

    def engine_knob_values(self) -> dict[str, float]:
        """Engine overrides currently in force (empty without a surface)."""
        if self._engine_controller is None:
            return {}
        return {
            "tile_width": self._engine_controller.tile_width,
            "compact_threshold": self._engine_controller.compact_threshold,
        }

    def snapshot(self) -> dict:
        """JSON-ready state for :class:`repro.service.ServiceStats`."""
        return {
            "mode": self.mode,
            "killed": self.killed,
            "decisions": dict(self.action_counts),
            "bin_batch_sizes": {
                str(index): size
                for index, size in self.bin_batch_sizes().items()
            },
            "engine_knobs": self.engine_knob_values(),
            "baseline_gcups": self._baseline_gcups,
            "recent": [d.to_dict() for d in self.decisions[-8:]],
        }
