#!/usr/bin/env python
"""Self-tuning service tour: the telemetry loop closed into controllers.

Runs the same skewed workload through :class:`repro.service.AlignmentService`
three times —

* ``autotune="off"``    — fixed knobs, the baseline behaviour,
* ``autotune="advise"`` — controllers watch windowed kernel telemetry and
  log what they *would* change, but actuate nothing,
* ``autotune="on"``     — decisions actuate per-bin batch limits and engine
  knobs, gated by the gpusim what-if planner and guarded by a kill switch,

and shows that every mode produces bit-identical scores (the tuner only
moves *when* batches flush, never what they compute) while the ``on`` run
converges its per-bin batch sizes away from the static default.  The final
section compares the planner's *predicted* payoff for each applied growth
against nothing more exotic than the decision log itself.

Run from the repository root::

    PYTHONPATH=src python examples/autotune_tour.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import AlignConfig, ServiceConfig
from repro.service import AlignmentService
from repro.workloads import WorkloadSpec, generate_workload

XDROP = 20

#: Aggressive pacing so the loop converges inside a demo-sized run; the
#: defaults are deliberately slower for production stability.
DEMO_OPTIONS = {
    "window": 4,
    "min_window_batches": 1,
    "cooldown_batches": 0,
}

spec = WorkloadSpec(count=96, seed=2020, min_length=150, max_length=900, xdrop=XDROP)
jobs = generate_workload("length_skew", spec).jobs


def run(mode: str):
    config = AlignConfig(
        engine="batched",
        xdrop=XDROP,
        bin_width=500,
        service=ServiceConfig(
            max_batch_size=8,
            cache_capacity=0,
            autotune=mode,
            autotune_options=DEMO_OPTIONS if mode != "off" else {},
        ),
    )
    with AlignmentService(config=config) as service:
        scores = [r.score for r in service.map(jobs)]
        return scores, service.stats()


scores_off, stats_off = run("off")
scores_advise, stats_advise = run("advise")
scores_on, stats_on = run("on")

assert scores_off == scores_advise == scores_on, "autotune must stay bit-identical"
print(f"workload                 : {len(jobs)} length-skewed pairs, X={XDROP}")
print(f"bit-identical across modes: True ({len(scores_on)} scores)")
print()

for mode, stats in (("off", stats_off), ("advise", stats_advise), ("on", stats_on)):
    snap = stats.autotune
    if not snap:
        print(f"mode {mode:7}: no controllers (fixed knobs)")
        continue
    decisions = snap["decisions"]
    print(
        f"mode {mode:7}: applied={decisions['applied']} "
        f"advised={decisions['advised']} vetoed={decisions['vetoed']} "
        f"reverted={decisions['reverted']} killed={snap['killed']}"
    )
    if snap["bin_batch_sizes"]:
        print(f"             per-bin batch limits now: {snap['bin_batch_sizes']}")
    if snap["engine_knobs"]:
        print(f"             engine knobs now        : {snap['engine_knobs']}")

print()
print("planner predictions behind the applied batch-size decisions:")
for decision in stats_on.autotune["recent"]:
    if decision["action"] != "applied" or decision["knob"] != "batch_size":
        continue
    payoff = decision["predicted_payoff"]
    predicted = f"{payoff:.2f}x" if payoff is not None else "(not planned)"
    print(
        f"  bin {decision['length_bin']}: {decision['current']:.0f} -> "
        f"{decision['proposed']:.0f}  predicted payoff {predicted}  "
        f"(signal live fraction {decision['signal']:.3f})"
    )
print()
print("the advise run proposed the same moves without touching a knob —")
print("use autotune='advise' to audit the loop before handing it the keys.")
