"""Scenario generators of the workload bank.

Each profile is a deterministic, seedable generator of one *scenario
family* — a class of read pairs that stresses the alignment stack in a
specific way, the differential-testing practice of the SeqAn and ksw2
aligner suites.  The bundled families cover the traffic a long-read
overlapper actually sees, plus the adversarial shapes that historically
break banded aligners:

``pacbio``
    PacBio-CLR-style pairs: indel-dominated errors (50/30/20
    insertion/deletion/substitution) at ~15 % pairwise divergence.
``ont``
    ONT-style pairs: substitution-heavier mix (40/25/35) over templates
    with mild homopolymer bias, the regime where per-base error models
    disagree the most.
``homopolymer``
    Templates built entirely of homopolymer runs (3-15 bases), the
    classic slippage stressor for banded DP.
``tandem_repeat``
    Tandem repeat arrays with a copy-number difference between the two
    reads — the band must shift a whole unit to follow the alignment.
``inverted_repeat``
    Templates containing a segment and its reverse complement, producing
    locally self-similar sequences that invite spurious extensions.
``length_skew``
    Extreme length asymmetry (one read ~20-60 bases, the other up to the
    spec maximum) in both orientations, exercising band clipping at the
    matrix edges.
``degenerate``
    One-base pairs, seeds flush against sequence ends and seeds that
    consume an entire read — every extension is empty or one cell.
``unrelated``
    Independent random reads sharing only a planted seed k-mer — the
    spurious-candidate traffic an overlapper's k-mer stage emits, whose
    extensions score near zero; ground truth: no genuine overlap.
``xdrop_boundary``
    Adversarial pairs whose mismatch tail makes the extension terminate
    within +-1 anti-diagonal of the X-drop threshold, in both directions
    (barely-terminates and barely-survives).

Every generator takes a :class:`WorkloadSpec` and a
``numpy.random.Generator`` and yields ``(query, target, seed, meta)``
tuples; :mod:`repro.workloads.bank` assembles them into
:class:`~repro.core.job.AlignmentJob` batches.  The ``meta`` dict carries
ground truth provenance (template length, planted error budget, expected
early-termination behaviour, ...) so conformance failures can be traced
back to what the generator intended.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

import numpy as np

from ..core.encoding import COMPLEMENT_CODE, WILDCARD_CODE, random_sequence
from ..core.scoring import ScoringScheme
from ..core.seed_extend import Seed
from ..data.reads import ErrorModel, apply_errors
from ..errors import ConfigurationError

__all__ = ["WorkloadSpec", "CaseTuple", "PROFILE_GENERATORS"]

#: One generated case: (query, target, seed, ground-truth metadata).
CaseTuple = tuple[np.ndarray, np.ndarray, Seed, dict[str, Any]]


@dataclass(frozen=True)
class WorkloadSpec:
    """Tunables shared by every profile generator.

    Attributes
    ----------
    count:
        Number of pairs to generate per profile.
    seed:
        Root seed of the profile's private NumPy generator; the same
        ``(profile, spec)`` always produces the same jobs.
    min_length, max_length:
        Template length range (profiles with intrinsic shapes — skew,
        degenerate, boundary — interpret these as their long side).
    error_rate:
        Pairwise divergence budget of the error-profile families.
    xdrop:
        X-drop threshold the ``xdrop_boundary`` family is adversarial
        against — pass the same value the conformance run will use.
    scoring:
        Scoring scheme assumed by the boundary construction (per-mismatch
        score drop sets the tail lengths).
    seed_length:
        Anchor length planted in each pair (clipped to fit short reads).
    """

    count: int = 32
    seed: int = 0
    min_length: int = 60
    max_length: int = 200
    error_rate: float = 0.15
    xdrop: int = 20
    scoring: ScoringScheme = field(default_factory=ScoringScheme)
    seed_length: int = 11

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ConfigurationError(
                f"workload count must be positive, got {self.count}"
            )
        if self.min_length < 4 or self.max_length < self.min_length:
            raise ConfigurationError(
                "workload length range must satisfy 4 <= min <= max, got "
                f"[{self.min_length}, {self.max_length}]"
            )
        if not 0.0 <= self.error_rate < 1.0:
            raise ConfigurationError(
                f"workload error_rate must be in [0, 1), got {self.error_rate}"
            )
        if self.xdrop < 0:
            raise ConfigurationError(
                f"workload xdrop must be non-negative, got {self.xdrop}"
            )
        if self.seed_length <= 0:
            raise ConfigurationError(
                f"workload seed_length must be positive, got {self.seed_length}"
            )

    def rng(self, profile: str) -> np.random.Generator:
        """Profile-private generator: root seed + profile name entropy."""
        name_entropy = [ord(c) for c in profile]
        return np.random.default_rng(
            np.random.SeedSequence([int(self.seed)] + name_entropy)
        )


# --------------------------------------------------------------------------- #
# Shared construction helpers
# --------------------------------------------------------------------------- #
def _length(spec: WorkloadSpec, rng: np.random.Generator) -> int:
    return int(rng.integers(spec.min_length, spec.max_length + 1))


def _plant_seed(
    template: np.ndarray, spec: WorkloadSpec, rng: np.random.Generator
) -> tuple[int, int]:
    """Pick a seed interval on *template*: (start, k), mid-read biased."""
    k = min(spec.seed_length, max(1, len(template) // 3))
    upper = max(1, len(template) - k)
    lo = int(0.25 * upper)
    hi = max(lo + 1, int(0.75 * upper))
    return int(rng.integers(lo, hi)), k


def _pair_from_template(
    template: np.ndarray,
    model: ErrorModel,
    spec: WorkloadSpec,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, Seed]:
    """Derive a (query, target, seed) triple from one template.

    Mirrors :func:`repro.data.pairs._make_related_pair`: the seed k-mer is
    kept exact on both reads (it is the anchor), the flanks each absorb
    half of the pairwise error budget.
    """
    start, k = _plant_seed(template, spec, rng)
    prefix, kmer, suffix = (
        template[:start],
        template[start : start + k],
        template[start + k :],
    )

    def flank(part: np.ndarray) -> np.ndarray:
        return apply_errors(part, model, rng) if len(part) else part.copy()

    q_pre, q_suf = flank(prefix), flank(suffix)
    t_pre, t_suf = flank(prefix), flank(suffix)
    query = np.concatenate([p for p in (q_pre, kmer, q_suf) if len(p)])
    target = np.concatenate([p for p in (t_pre, kmer, t_suf) if len(p)])
    return query, target, Seed(len(q_pre), len(t_pre), k)


def _half_budget(spec: WorkloadSpec, sub: float, ins: float, dele: float) -> ErrorModel:
    """Per-read error model carrying half the pairwise budget, given a mix."""
    half = spec.error_rate / 2.0
    return ErrorModel(
        substitution=sub * half, insertion=ins * half, deletion=dele * half
    )


# --------------------------------------------------------------------------- #
# Error-profile families
# --------------------------------------------------------------------------- #
def gen_pacbio(spec: WorkloadSpec, rng: np.random.Generator) -> Iterator[tuple]:
    """PacBio-CLR mix: 50 % insertions, 30 % deletions, 20 % substitutions."""
    model = _half_budget(spec, sub=0.2, ins=0.5, dele=0.3)
    for _ in range(spec.count):
        template = random_sequence(_length(spec, rng), rng)
        query, target, seed = _pair_from_template(template, model, spec, rng)
        yield query, target, seed, {
            "template_length": int(len(template)),
            "error_rate": spec.error_rate,
            "mix": "ins-dominated",
        }


def gen_ont(spec: WorkloadSpec, rng: np.random.Generator) -> Iterator[tuple]:
    """ONT mix (40/25/35 sub/ins/del) over mildly homopolymer-biased templates."""
    model = _half_budget(spec, sub=0.4, ins=0.25, dele=0.35)
    for _ in range(spec.count):
        length = _length(spec, rng)
        # ~Half the template is short homopolymer runs, half uniform bases,
        # interleaved — ONT deletion errors concentrate in such runs.
        parts: list[np.ndarray] = []
        built = 0
        while built < length:
            if rng.random() < 0.5:
                run = int(rng.integers(3, 9))
                parts.append(
                    np.full(run, rng.integers(0, 4), dtype=np.uint8)
                )
            else:
                run = int(rng.integers(4, 12))
                parts.append(random_sequence(run, rng))
            built += run
        template = np.concatenate(parts)[:length]
        query, target, seed = _pair_from_template(template, model, spec, rng)
        yield query, target, seed, {
            "template_length": int(len(template)),
            "error_rate": spec.error_rate,
            "mix": "sub-heavy homopolymer-biased",
        }


# --------------------------------------------------------------------------- #
# Structural families
# --------------------------------------------------------------------------- #
def gen_homopolymer(spec: WorkloadSpec, rng: np.random.Generator) -> Iterator[tuple]:
    """Templates made entirely of homopolymer runs (3-15 bases each)."""
    model = _half_budget(spec, sub=0.2, ins=0.4, dele=0.4)
    for _ in range(spec.count):
        length = _length(spec, rng)
        parts: list[np.ndarray] = []
        built = 0
        base = int(rng.integers(0, 4))
        while built < length:
            run = int(rng.integers(3, 16))
            parts.append(np.full(run, base, dtype=np.uint8))
            built += run
            base = (base + int(rng.integers(1, 4))) % 4  # always switch base
        template = np.concatenate(parts)[:length]
        query, target, seed = _pair_from_template(template, model, spec, rng)
        yield query, target, seed, {
            "template_length": int(len(template)),
            "structure": "homopolymer-runs",
        }


def gen_tandem_repeat(spec: WorkloadSpec, rng: np.random.Generator) -> Iterator[tuple]:
    """Tandem repeat arrays with a one-unit copy-number difference."""
    model = _half_budget(spec, sub=0.5, ins=0.25, dele=0.25)
    for _ in range(spec.count):
        unit_len = int(rng.integers(4, 21))
        copies = max(3, _length(spec, rng) // unit_len)
        unit = random_sequence(unit_len, rng)
        template = np.tile(unit, copies)
        query, target, seed = _pair_from_template(template, model, spec, rng)
        # Copy-number variation: append one extra unit to the target tail
        # (after the seed) so the query/target disagree by a whole unit.
        target = np.concatenate([target, unit])
        yield query, target, seed, {
            "unit_length": unit_len,
            "copies": int(copies),
            "structure": "tandem-repeat+1unit",
        }


def gen_inverted_repeat(spec: WorkloadSpec, rng: np.random.Generator) -> Iterator[tuple]:
    """Templates of the form  [S | spacer | revcomp(S)]  (palindromic arms)."""
    model = _half_budget(spec, sub=0.5, ins=0.25, dele=0.25)
    for _ in range(spec.count):
        length = _length(spec, rng)
        arm_len = max(8, length // 3)
        arm = random_sequence(arm_len, rng)
        spacer = random_sequence(max(4, length - 2 * arm_len), rng)
        revcomp = np.ascontiguousarray(COMPLEMENT_CODE[arm][::-1])
        template = np.concatenate([arm, spacer, revcomp])
        query, target, seed = _pair_from_template(template, model, spec, rng)
        yield query, target, seed, {
            "arm_length": int(arm_len),
            "structure": "inverted-repeat",
        }


def gen_unrelated(spec: WorkloadSpec, rng: np.random.Generator) -> Iterator[tuple]:
    """Independent random reads that share only the planted seed k-mer.

    This is the spurious-candidate traffic a k-mer overlap stage emits:
    the seed match is real, everything around it is noise, and the
    ground truth is that no genuine overlap exists.  ``related: False``
    in the metadata is what the prefilter bench axis scores its reject
    class against.
    """
    for _ in range(spec.count):
        q_len = _length(spec, rng)
        t_len = _length(spec, rng)
        query = random_sequence(q_len, rng)
        target = random_sequence(t_len, rng)
        k = min(spec.seed_length, q_len, t_len)
        q_pos = int(rng.integers(0, q_len - k + 1))
        t_pos = int(rng.integers(0, t_len - k + 1))
        target[t_pos : t_pos + k] = query[q_pos : q_pos + k]
        yield query, target, Seed(q_pos, t_pos, k), {
            "related": False,
            "query_length": int(q_len),
            "target_length": int(t_len),
        }


def gen_length_skew(spec: WorkloadSpec, rng: np.random.Generator) -> Iterator[tuple]:
    """Extreme length asymmetry, alternating which side is the short one."""
    model = _half_budget(spec, sub=0.4, ins=0.3, dele=0.3)
    for index in range(spec.count):
        long_len = spec.max_length
        short_len = int(rng.integers(20, max(21, min(61, spec.min_length + 1))))
        template = random_sequence(long_len, rng)
        window = template[:short_len]
        short = apply_errors(window, model, rng)
        if len(short) == 0:  # pathological all-deleted draw
            short = window.copy()
        k = min(spec.seed_length, len(short), 8)
        # Anchor both reads at their first k bases (kept exact).
        short[:k] = template[:k]
        if index % 2 == 0:
            query, target = short, template.copy()
        else:
            query, target = template.copy(), short
        yield query, target, Seed(0, 0, k), {
            "short_length": int(len(short)),
            "long_length": int(long_len),
            "short_side": "query" if index % 2 == 0 else "target",
        }


# --------------------------------------------------------------------------- #
# Adversarial families
# --------------------------------------------------------------------------- #
def gen_degenerate(spec: WorkloadSpec, rng: np.random.Generator) -> Iterator[tuple]:
    """Zero-extension and one-base pairs: the smallest legal inputs.

    Sequences must be non-empty (the encoding layer rejects empty arrays),
    so "zero" here means *zero-length extensions*: seeds flush against the
    sequence ends or consuming the whole read.
    """
    shapes = (
        "one-base-match",
        "one-base-mismatch",
        "seed-consumes-query",
        "seed-consumes-both",
        "seed-at-start",
        "seed-at-end",
    )
    for index in range(spec.count):
        shape = shapes[index % len(shapes)]
        if shape == "one-base-match":
            base = int(rng.integers(0, 4))
            query = np.asarray([base], dtype=np.uint8)
            target = query.copy()
            seed = Seed(0, 0, 1)
        elif shape == "one-base-mismatch":
            base = int(rng.integers(0, 4))
            query = np.asarray([base], dtype=np.uint8)
            target = np.asarray([(base + 1) % 4], dtype=np.uint8)
            seed = Seed(0, 0, 1)
        elif shape == "seed-consumes-query":
            k = int(rng.integers(2, 8))
            query = random_sequence(k, rng)
            tail = random_sequence(int(rng.integers(1, 16)), rng)
            target = np.concatenate([query, tail])
            seed = Seed(0, 0, k)
        elif shape == "seed-consumes-both":
            k = int(rng.integers(2, 8))
            query = random_sequence(k, rng)
            target = query.copy()
            seed = Seed(0, 0, k)
        elif shape == "seed-at-start":
            length = int(rng.integers(8, 32))
            template = random_sequence(length, rng)
            query = template.copy()
            target = template.copy()
            seed = Seed(0, 0, min(4, length))
        else:  # seed-at-end
            length = int(rng.integers(8, 32))
            k = min(4, length)
            template = random_sequence(length, rng)
            query = template.copy()
            target = template.copy()
            seed = Seed(length - k, length - k, k)
        yield query, target, seed, {"shape": shape}


def gen_xdrop_boundary(spec: WorkloadSpec, rng: np.random.Generator) -> Iterator[tuple]:
    """Pairs whose extension dies within +-1 anti-diagonal of the threshold.

    A matching prefix raises the running best, then an all-mismatch tail
    lowers the diagonal score by ``-mismatch`` per step below that best.
    With drop-per-mismatch ``d = -mismatch``, a tail of ``floor(X / d)``
    mismatches never
    breaches the threshold (the extension reaches the matrix corner) while
    a tail of ``floor(X / d) + 1`` kills the whole band right at the
    prefix — the two cases bracket the termination boundary within one
    anti-diagonal.  ``meta["expect_early_termination"]`` records which side
    of the boundary each pair was built on.
    """
    drop = max(1, -spec.scoring.mismatch)
    breach = spec.xdrop // drop + 1  # smallest mismatch count breaching X
    tails = (max(0, breach - 2), max(0, breach - 1), breach, breach + 1)
    for index in range(spec.count):
        prefix_len = int(rng.integers(4, max(5, spec.min_length)))
        prefix = random_sequence(prefix_len, rng)
        tail_len = tails[index % len(tails)]
        # Wildcard (N) tails: N never matches anything — not even another N
        # — so every DP path through the tail strictly drains score and the
        # termination point is exactly the mismatch count, with no
        # off-diagonal escape routes.
        tail = np.full(tail_len, np.uint8(WILDCARD_CODE))
        if tail_len == 0:
            query, target = prefix.copy(), prefix.copy()
        else:
            query = np.concatenate([prefix, tail])
            target = np.concatenate([prefix, tail.copy()])
        k = min(spec.seed_length, prefix_len)
        # X = 0 is its own boundary: the first anti-diagonal holds only gap
        # cells (score -|gap| < best - 0), so any non-empty extension
        # terminates immediately whatever the tail.
        extension_nonempty = prefix_len > k or tail_len > 0
        expected = bool(
            tail_len >= breach or (spec.xdrop == 0 and extension_nonempty)
        )
        yield query, target, Seed(0, 0, k), {
            "prefix_length": prefix_len,
            "mismatch_tail": int(tail_len),
            "breach_tail": int(breach),
            "expect_early_termination": expected,
            "xdrop": spec.xdrop,
        }


#: Name -> (generator, one-line description) of every built-in profile.
PROFILE_GENERATORS: dict[str, tuple[Callable, str]] = {
    "pacbio": (gen_pacbio, "PacBio-CLR indel-dominated error pairs"),
    "ont": (gen_ont, "ONT sub-heavy pairs over homopolymer-biased templates"),
    "homopolymer": (gen_homopolymer, "templates made entirely of homopolymer runs"),
    "tandem_repeat": (gen_tandem_repeat, "tandem arrays with a copy-number change"),
    "inverted_repeat": (gen_inverted_repeat, "palindromic arm / spacer / arm pairs"),
    "length_skew": (gen_length_skew, "extreme length asymmetry, both orientations"),
    "degenerate": (gen_degenerate, "one-base pairs and zero-length extensions"),
    "unrelated": (gen_unrelated, "independent reads sharing only the seed"),
    "xdrop_boundary": (gen_xdrop_boundary, "termination within +-1 cell of X"),
}
