"""Table III / Fig. 9 — LOGAN vs ksw2 (80 Skylake threads), 100 K pairs.

Paper reference: ksw2 is competitive at small X (6.9-10.4 s for X<=100) but
its runtime explodes for large X (3213 s at X=5000), while LOGAN saturates
below ~30 s; single-GPU speed-ups range from ~3x to ~120x and 8-GPU
speed-ups reach ~560x.

The reproduction checks the explosion of the baseline, the saturation of
LOGAN and the growth of the speed-up with X.
"""

from __future__ import annotations


def test_table3_logan_vs_ksw2(run_experiment):
    table = run_experiment("table3")
    ksw2 = table.column("ksw2_80t_s")
    logan1 = table.column("logan_1gpu_s")
    speedup1 = table.column("speedup_1gpu")
    speedup8 = table.column("speedup_8gpu")

    # ksw2 cost explodes with X (orders of magnitude), LOGAN's does not.
    assert ksw2[-1] > 50 * ksw2[0]
    assert logan1[-1] < 20 * logan1[0]
    # ksw2 runtime is monotone in X.
    assert all(b >= a for a, b in zip(ksw2, ksw2[1:]))
    # LOGAN always wins at large X and the advantage grows dramatically.
    assert speedup1[-1] > 10.0
    assert speedup1[-1] > 5 * speedup1[0]
    # Eight GPUs multiply the advantage further.
    assert all(s8 >= s1 for s1, s8 in zip(speedup1, speedup8))
    assert speedup8[-1] > 2 * speedup1[-1]
