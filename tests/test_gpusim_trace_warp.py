"""Tests for work traces and warp-level instruction accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ScoringScheme, random_sequence, xdrop_extend
from repro.errors import ConfigurationError
from repro.gpusim import (
    BlockWorkTrace,
    KernelCostParameters,
    KernelWorkload,
    block_instruction_count,
    reduction_warp_instructions,
)


def _trace_from_pair(rng, length=120, xdrop=20) -> BlockWorkTrace:
    q = random_sequence(length, rng)
    t = q.copy()
    res = xdrop_extend(q, t, ScoringScheme(), xdrop=xdrop, trace=True)
    return BlockWorkTrace.from_extension(res, query_length=length, target_length=length)


class TestBlockWorkTrace:
    def test_from_extension(self, rng):
        trace = _trace_from_pair(rng)
        assert trace.cells == int(trace.band_widths.sum())
        assert trace.anti_diagonals == len(trace.band_widths)
        assert trace.max_band_width >= 1
        assert trace.sequence_bytes == 240
        assert trace.buffer_bytes() == 3 * 121 * 4

    def test_requires_traced_result(self, rng):
        q = random_sequence(50, rng)
        res = xdrop_extend(q, q, ScoringScheme(), xdrop=10, trace=False)
        with pytest.raises(ConfigurationError):
            BlockWorkTrace.from_extension(res, 50, 50)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            BlockWorkTrace(band_widths=np.zeros((2, 2)), query_length=5, target_length=5)
        with pytest.raises(ConfigurationError):
            BlockWorkTrace(band_widths=np.array([1, 2]), query_length=-1, target_length=5)


class TestKernelWorkload:
    def test_aggregates(self, rng):
        traces = [_trace_from_pair(rng) for _ in range(4)]
        workload = KernelWorkload(blocks=traces)
        assert workload.sampled_blocks == 4
        assert workload.total_blocks == 4
        assert workload.total_cells == sum(t.cells for t in traces)
        assert workload.max_anti_diagonals == max(t.anti_diagonals for t in traces)
        assert workload.mean_band_width > 0
        assert workload.max_band_width == max(t.max_band_width for t in traces)

    def test_replication_scales_totals(self, rng):
        traces = [_trace_from_pair(rng) for _ in range(3)]
        base = KernelWorkload(blocks=traces)
        scaled = KernelWorkload(blocks=traces, replication=100.0)
        assert scaled.total_blocks == 100 * base.total_blocks
        assert scaled.total_cells == 100 * base.total_cells
        assert scaled.mean_band_width == pytest.approx(base.mean_band_width)

    def test_invalid_replication(self):
        with pytest.raises(ConfigurationError):
            KernelWorkload(replication=0.0)

    def test_split_conserves_replication(self, rng):
        workload = KernelWorkload(blocks=[_trace_from_pair(rng)], replication=6.0)
        parts = workload.split([1, 1, 1])
        assert sum(p.replication for p in parts) == pytest.approx(6.0)

    def test_split_rejects_zero_weights(self, rng):
        workload = KernelWorkload(blocks=[_trace_from_pair(rng)])
        with pytest.raises(ConfigurationError):
            workload.split([0, 0])


class TestInstructionAccounting:
    def test_reduction_cost_grows_with_threads(self):
        params = KernelCostParameters()
        small = reduction_warp_instructions(32, 32, params)
        large = reduction_warp_instructions(1024, 32, params)
        assert large > small
        assert reduction_warp_instructions(0, 32, params) == 0.0

    def test_block_instruction_count_scales_with_cells(self):
        params = KernelCostParameters()
        narrow = block_instruction_count(np.full(100, 16), 64, 32, params)
        wide = block_instruction_count(np.full(100, 64), 64, 32, params)
        assert wide[0] > narrow[0]

    def test_partial_warps_still_issue_full_warp_instructions(self):
        params = KernelCostParameters(ops_per_cell=10)
        one_lane, _ = block_instruction_count(np.array([1]), 64, 32, params)
        full_warp, _ = block_instruction_count(np.array([32]), 64, 32, params)
        # One active lane costs the same warp issues as a full warp.
        assert one_lane == pytest.approx(full_warp)

    def test_segmenting_long_antidiagonals(self):
        params = KernelCostParameters(ops_per_cell=10)
        # 100 cells with 32 threads: 4 segments (3 full + 1 of 4 cells).
        cells, _ = block_instruction_count(np.array([100]), 32, 32, params)
        assert cells == pytest.approx(10 * 4)

    def test_overhead_scales_with_antidiagonals(self):
        params = KernelCostParameters()
        _, short = block_instruction_count(np.full(10, 8), 64, 32, params)
        _, long = block_instruction_count(np.full(1000, 8), 64, 32, params)
        assert long == pytest.approx(100 * short)

    def test_empty_trace(self):
        assert block_instruction_count(np.array([]), 64, 32, KernelCostParameters()) == (0.0, 0.0)

    def test_invalid_arguments(self):
        params = KernelCostParameters()
        with pytest.raises(ConfigurationError):
            block_instruction_count(np.array([1]), 0, 32, params)
        with pytest.raises(ConfigurationError):
            block_instruction_count(np.array([-1]), 32, 32, params)
        with pytest.raises(ConfigurationError):
            KernelCostParameters(ops_per_cell=0)

    @settings(max_examples=25, deadline=None)
    @given(
        widths=st.lists(st.integers(min_value=1, max_value=300), min_size=1, max_size=50),
        threads=st.sampled_from([32, 64, 128, 256, 1024]),
    )
    def test_instruction_count_lower_bound(self, widths, threads):
        # Every cell costs at least ops_per_cell / warp_size warp instructions.
        params = KernelCostParameters()
        cells_instr, overhead = block_instruction_count(
            np.array(widths), threads, 32, params
        )
        total_cells = sum(widths)
        assert cells_instr >= params.ops_per_cell * total_cells / 32 - 1e-9
        assert overhead > 0
