"""Instruction Roofline model, instrumentation and reporting (Fig. 13)."""

from .instrument import RooflineAnalysis, RooflinePoint, analyze_kernel
from .model import RooflineCeilings, adapted_ceiling, attainable_gips, roofline_ceilings
from .report import RooflineSeries, build_series, render_ascii

__all__ = [
    "RooflineCeilings",
    "roofline_ceilings",
    "adapted_ceiling",
    "attainable_gips",
    "RooflinePoint",
    "RooflineAnalysis",
    "analyze_kernel",
    "RooflineSeries",
    "build_series",
    "render_ascii",
]
