"""Vectorised k-mer-profile sketches and alignment-free distances.

A :class:`KmerSketch` is the dense k-mer count profile of one sequence —
every k-mer packed into a 2-bit code by :func:`repro.bella.kmer.pack_kmers`
and histogrammed over the full ``4**k`` alphabet — plus the order-0 base
composition the d2star statistic uses as its background model.

Two distances are provided, both from the d2 statistic family the
alignment-free comparison literature (and the Afann tool) uses:

``d2``
    Half of one minus the cosine of the raw (L2-normalised) count
    vectors.  Two unrelated reads share almost no k-mers at k >= 7, so
    their cosine is near zero and the distance sits near 0.5; reads from
    one template keep a large shared-k-mer mass and land well below.
``d2star``
    The same cosine computed over *centred and standardised* counts:
    each word count is reduced by its expected count under the
    sequence's own base composition and scaled by the standard deviation
    of that expectation.  This corrects for composition bias (two
    AT-rich but unrelated reads look similar to raw d2, not to d2star).

Both distances live in ``[0, 1]`` with 0 meaning identical profiles.
Sketches of sequences shorter than ``k`` (or made entirely of wildcards)
are *empty* — the policy layer treats pairs involving an empty sketch as
``contested`` rather than guessing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bella.kmer import pack_kmers
from ..core.encoding import SequenceLike, encode
from ..errors import ConfigurationError

__all__ = [
    "MAX_SKETCH_K",
    "KmerSketch",
    "sketch_sequence",
    "d2_distance",
    "d2star_distance",
    "sketch_distance",
]

#: Dense profiles hold ``4**k`` bins; k = 12 already means 16M floats, so
#: the sketch layer caps k well below :data:`repro.bella.kmer._MAX_K`.
MAX_SKETCH_K = 12


@dataclass
class KmerSketch:
    """Dense k-mer count profile of one sequence.

    Attributes
    ----------
    k:
        k-mer length of the profile.
    counts:
        Float count vector of length ``4**k`` (dense histogram of the
        packed codes).
    total:
        Number of counted k-mers (sum of ``counts``); 0 for sequences
        shorter than ``k`` or made entirely of wildcards.
    base_freqs:
        Order-0 background model: the four base frequencies of the
        sequence (uniform when the sequence has no ACGT bases at all).
    """

    k: int
    counts: np.ndarray
    total: int
    base_freqs: np.ndarray

    @property
    def empty(self) -> bool:
        """True when the sequence yielded no countable k-mer."""
        return self.total == 0


def sketch_sequence(sequence: SequenceLike, k: int = 7) -> KmerSketch:
    """Build the dense k-mer profile sketch of *sequence*.

    Wildcard-containing k-mers are skipped (the same rule the BELLA
    k-mer stage applies), so an all-``N`` sequence produces a well-formed
    empty sketch rather than garbage codes.
    """
    if not 1 <= k <= MAX_SKETCH_K:
        raise ConfigurationError(
            f"sketch k must be in [1, {MAX_SKETCH_K}], got {k}"
        )
    seq = encode(sequence) if len(sequence) else np.empty(0, dtype=np.uint8)
    codes, _ = pack_kmers(seq, k)
    counts = np.bincount(
        codes.astype(np.int64), minlength=4**k
    ).astype(np.float64)
    bases = seq[seq < 4]
    if len(bases):
        base_freqs = np.bincount(bases, minlength=4).astype(np.float64)
        base_freqs /= base_freqs.sum()
    else:
        base_freqs = np.full(4, 0.25)
    return KmerSketch(
        k=int(k), counts=counts, total=int(codes.size), base_freqs=base_freqs
    )


def _cosine(a: np.ndarray, b: np.ndarray) -> float:
    denom = float(np.linalg.norm(a)) * float(np.linalg.norm(b))
    if denom == 0.0:
        return 0.0
    return float(np.dot(a, b)) / denom


def d2_distance(a: KmerSketch, b: KmerSketch) -> float:
    """d2 distance: ``0.5 * (1 - cosine)`` of the raw count profiles.

    Defined as the maximal distance 1.0 when either sketch is empty —
    callers that can tell "no signal" from "dissimilar" should check
    :attr:`KmerSketch.empty` first (the policy layer does).
    """
    _check_compatible(a, b)
    if a.empty or b.empty:
        return 1.0
    return 0.5 * (1.0 - _cosine(a.counts, b.counts))


def d2star_distance(a: KmerSketch, b: KmerSketch) -> float:
    """d2star distance: cosine over background-corrected count profiles.

    Each count is centred by its expected value under the sketch's own
    order-0 base composition and standardised by that expectation's
    scale: ``x_w = (X_w - N p_w) / sqrt(N p_w)``.  Words whose background
    probability is zero cannot occur and contribute zero.  When the
    correction annihilates a profile entirely (a pure homopolymer is
    *exactly* its background expectation) the statistic carries no
    signal, so the raw d2 distance is returned instead.
    """
    _check_compatible(a, b)
    if a.empty or b.empty:
        return 1.0
    xa = _standardised(a)
    xb = _standardised(b)
    if not np.any(xa) or not np.any(xb):
        return d2_distance(a, b)
    return 0.5 * (1.0 - _cosine(xa, xb))


def _standardised(sketch: KmerSketch) -> np.ndarray:
    """Centred, standardised count profile of one sketch."""
    probs = _word_probs(sketch.base_freqs, sketch.k)
    expected = sketch.total * probs
    scale = np.sqrt(expected)
    centred = sketch.counts - expected
    out = np.zeros_like(centred)
    np.divide(centred, scale, out=out, where=scale > 0)
    return out


def _word_probs(base_freqs: np.ndarray, k: int) -> np.ndarray:
    """Probability of every packed word under an order-0 model.

    The outer-product expansion matches the big-endian packing of
    :func:`repro.bella.kmer.pack_kmers`: code ``c``'s leading base is its
    highest 2-bit digit.
    """
    probs = np.asarray(base_freqs, dtype=np.float64)
    for _ in range(k - 1):
        probs = np.multiply.outer(probs, base_freqs).ravel()
    return probs


def sketch_distance(a: KmerSketch, b: KmerSketch, metric: str = "d2") -> float:
    """Dispatch to the named distance (``"d2"`` or ``"d2star"``)."""
    if metric == "d2":
        return d2_distance(a, b)
    if metric == "d2star":
        return d2star_distance(a, b)
    raise ConfigurationError(
        f"unknown sketch metric {metric!r}; available: d2, d2star"
    )


def _check_compatible(a: KmerSketch, b: KmerSketch) -> None:
    if a.k != b.k:
        raise ConfigurationError(
            f"cannot compare sketches of different k ({a.k} vs {b.k})"
        )
