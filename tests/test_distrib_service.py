"""AlignmentService with the distributed knobs: process transport, durable
SQLite state, crash/restart recovery, and cache persistence.

The one process-transport service here is module-scoped (spawning two
interpreters costs seconds); every durable-state test runs on the cheap
thread transport — the store integration is transport-independent.
"""

from __future__ import annotations

import pytest

from repro.api import AlignConfig, ServiceConfig
from repro.core.scoring import ScoringScheme
from repro.distrib.store import DurableStore
from repro.distrib.wire import cache_key_to_json
from repro.engine import get_engine
from repro.errors import ConfigurationError
from repro.obs import get_observability
from repro.service import AlignmentService
from repro.service.cache import ResultCache, job_cache_key

XDROP = 30
_SCORING = ScoringScheme()


def _config(state_path=None, transport="thread", **service_overrides) -> AlignConfig:
    return AlignConfig(
        engine="batched",
        scoring=_SCORING,
        xdrop=XDROP,
        service=ServiceConfig(
            num_workers=2,
            max_batch_size=8,
            transport=transport,
            state_path=state_path,
            worker_policy="batch" if transport == "process" else "cells",
            **service_overrides,
        ),
    )


def _run(service: AlignmentService, jobs) -> list:
    tickets = service.submit_many(jobs)
    service.drain()
    return [t.result(timeout=60.0) for t in tickets]


@pytest.fixture(scope="module")
def module_jobs():
    from repro.data.pairs import PairSetSpec, generate_pair_set

    spec = PairSetSpec(
        num_pairs=12,
        min_length=150,
        max_length=300,
        pairwise_error_rate=0.12,
        seed_length=11,
        seed_placement="middle",
        rng_seed=515,
    )
    return generate_pair_set(spec)


@pytest.fixture(scope="module")
def expected(module_jobs):
    engine = get_engine("batched", scoring=_SCORING, xdrop=XDROP)
    return engine.align_batch(module_jobs).results


class TestProcessTransport:
    @pytest.fixture(scope="class")
    def mp_service(self):
        with AlignmentService(config=_config(transport="process")) as service:
            yield service

    def test_results_bit_identical(self, mp_service, module_jobs, expected):
        assert _run(mp_service, module_jobs) == expected

    def test_worker_process_metrics_reach_the_service_registry(
        self, mp_service, module_jobs
    ):
        _run(mp_service, module_jobs)
        snap = mp_service.metrics_snapshot()
        shard_jobs = sum(
            snap.value("repro_worker_jobs_total", default=0.0, shard=str(i))
            for i in range(2)
        )
        assert shard_jobs >= len(module_jobs)
        # Engine counters tick inside the worker interpreters and are
        # folded back as deltas — nonzero proves the merge happened.
        assert snap.value("repro_engine_jobs_total", engine="batched") >= (
            len(module_jobs)
        )

    def test_batch_policy_requires_process_transport(self):
        with pytest.raises(ConfigurationError, match="batch"):
            ServiceConfig(worker_policy="batch", transport="thread")


class TestDurableState:
    def test_submissions_flow_through_the_store(
        self, tmp_path, module_jobs, expected
    ):
        path = str(tmp_path / "state.db")
        with AlignmentService(config=_config(state_path=path)) as service:
            assert _run(service, module_jobs) == expected
            stats = service.stats()
            assert stats.completed == len(module_jobs)
            snap = service.metrics_snapshot()
            assert snap.value("repro_durable_enqueued_total") == len(module_jobs)
            assert snap.value("repro_durable_completed_total") == len(module_jobs)
            assert snap.value("repro_durable_pending") == 0.0

        # The queue drained durably; the results table holds everything.
        with DurableStore(path, obs=get_observability().scoped()) as store:
            assert store.pending_count() == 0
            assert store.result_count() > 0

    def test_restart_answers_from_durable_results(
        self, tmp_path, module_jobs, expected
    ):
        path = str(tmp_path / "state.db")
        with AlignmentService(config=_config(state_path=path)) as service:
            _run(service, module_jobs)

        # New process, same state file: the in-memory cache is cold but
        # the durable results are not — no alignment work is redone.
        with AlignmentService(config=_config(state_path=path)) as service:
            tickets = service.submit_many(module_jobs)
            assert [t.result(timeout=60.0) for t in tickets] == expected
            assert all(t.cache_hit for t in tickets)
            assert service.stats().batches_formed == 0

    def test_crash_restart_redelivers_inflight_jobs(
        self, tmp_path, module_jobs, expected
    ):
        path = str(tmp_path / "state.db")
        scoped = get_observability().scoped()
        with DurableStore(path, obs=scoped) as store:
            ids = [
                store.enqueue(
                    cache_key_to_json(job_cache_key(job, _SCORING, XDROP)), job
                )
                for job in module_jobs
            ]
            # Simulate a crash mid-batch: some rows were dispatched
            # (inflight), none completed, and the process died here.
            store.mark_inflight(ids[: len(ids) // 2])

        with AlignmentService(config=_config(state_path=path)) as service:
            recovered = service.recovered_tickets
            assert len(recovered) == len(module_jobs)
            service.drain()
            results = [t.result(timeout=60.0) for t in recovered]
            # Recovery re-enqueues crash leftovers first; map results back
            # to submission order via each ticket's job identity.
            by_id = {t.job.pair_id: r for t, r in zip(recovered, results)}
            assert [by_id[j.pair_id] for j in module_jobs] == expected
            snap = service.metrics_snapshot()
            assert snap.value("repro_service_recovered_total") == len(module_jobs)
            assert snap.value("repro_durable_redelivered_total") == (
                len(module_jobs) // 2
            )

        with DurableStore(path, obs=get_observability().scoped()) as store:
            assert store.pending_count() == 0


class TestCachePersistence:
    def test_persist_load_round_trip_with_counters(
        self, tmp_path, module_jobs, expected
    ):
        path = str(tmp_path / "cache.json")
        obs = get_observability().scoped()
        cache = ResultCache(capacity=64, obs=obs)
        keys = [job_cache_key(job, _SCORING, XDROP) for job in module_jobs]
        for key, result in zip(keys, expected):
            cache.put(key, result)
        assert cache.persist(path) == len(module_jobs)

        restored = ResultCache(capacity=64, obs=obs)
        assert restored.load(path) == len(module_jobs)
        for key, result in zip(keys, expected):
            assert restored.get(key) == result

        snap = obs.registry.snapshot()
        assert snap.value("repro_cache_persist_total", direction="persist") == (
            len(module_jobs)
        )
        assert snap.value("repro_cache_persist_total", direction="load") == (
            len(module_jobs)
        )

    def test_load_respects_capacity(self, tmp_path, module_jobs, expected):
        path = str(tmp_path / "cache.json")
        cache = ResultCache(capacity=64)
        for job, result in zip(module_jobs, expected):
            cache.put(job_cache_key(job, _SCORING, XDROP), result)
        cache.persist(path)

        small = ResultCache(capacity=3)
        small.load(path)
        assert len(small) == 3
        # LRU order persisted oldest-first, so the newest entries survive.
        newest = job_cache_key(module_jobs[-1], _SCORING, XDROP)
        assert small.get(newest) == expected[-1]

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "notcache.json"
        path.write_text('{"kind": "something-else", "entries": []}')
        with pytest.raises(ValueError, match="persisted result cache"):
            ResultCache(capacity=4).load(str(path))
