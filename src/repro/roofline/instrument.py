"""Kernel instrumentation: place a LOGAN run on the instruction Roofline.

The GPU execution model already accounts warp instructions, HBM bytes and
modeled runtime for every kernel launch (:class:`~repro.gpusim.kernel.KernelTiming`).
This module turns those numbers — plus the anti-diagonal width trace needed
by the Eq. (1) adapted ceiling — into a :class:`RooflinePoint` that can be
compared against the ceilings and rendered by :mod:`repro.roofline.report`,
reproducing Fig. 13.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..gpusim.device import DeviceSpec
from ..gpusim.kernel import KernelTiming
from ..gpusim.trace import KernelWorkload
from .model import RooflineCeilings, roofline_ceilings

__all__ = ["RooflinePoint", "RooflineAnalysis", "analyze_kernel"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position on the instruction Roofline.

    Attributes
    ----------
    operational_intensity:
        Warp instructions per byte of HBM traffic.
    warp_gips:
        Achieved warp giga-instructions per second (modeled).
    label:
        Display label ("LOGAN X=100", ...).
    """

    operational_intensity: float
    warp_gips: float
    label: str = "LOGAN"


@dataclass(frozen=True)
class RooflineAnalysis:
    """A Roofline point together with the ceilings it is judged against."""

    point: RooflinePoint
    ceilings: RooflineCeilings

    @property
    def is_compute_bound(self) -> bool:
        """True when the kernel's OI lies right of the ridge point."""
        return self.point.operational_intensity >= self.ceilings.ridge_point

    @property
    def attainable_gips(self) -> float:
        """Roof value (adapted ceiling) at the kernel's operational intensity."""
        return self.ceilings.roof_at(self.point.operational_intensity, adapted=True)

    @property
    def efficiency(self) -> float:
        """Achieved fraction of the attainable (adapted) performance."""
        attainable = self.attainable_gips
        if attainable <= 0:
            return 0.0
        return min(1.5, self.point.warp_gips / attainable)


def _mean_width_trace(workload: KernelWorkload, max_points: int = 4096) -> np.ndarray:
    """Average anti-diagonal width per iteration index across blocks.

    Blocks have different lengths; iteration ``i`` averages the widths of the
    blocks that are still running at iteration ``i``, which is exactly the
    per-iteration parallelism Eq. (1) averages over.  The trace is truncated
    to ``max_points`` samples to keep the ceiling computation cheap.
    """
    longest = workload.max_anti_diagonals
    if longest == 0:
        raise ConfigurationError("workload has no traced anti-diagonals")
    length = min(longest, max_points)
    sums = np.zeros(length, dtype=np.float64)
    counts = np.zeros(length, dtype=np.int64)
    for block in workload.blocks:
        widths = block.band_widths
        if widths.size > length:
            idx = np.linspace(0, widths.size - 1, length).astype(np.int64)
            widths = widths[idx]
        sums[: widths.size] += widths
        counts[: widths.size] += 1
    counts = np.maximum(counts, 1)
    return sums / counts


def analyze_kernel(
    device: DeviceSpec,
    timing: KernelTiming,
    workload: KernelWorkload,
    label: str = "LOGAN",
) -> RooflineAnalysis:
    """Build the Fig. 13 Roofline analysis for one modeled kernel launch.

    Parameters
    ----------
    device:
        The device the kernel was modeled on.
    timing:
        The kernel timing returned by the execution model.
    workload:
        The traced workload that produced the timing (provides the
        per-iteration width trace for the adapted ceiling).
    label:
        Label for the plotted point.
    """
    # Validate the workload (and build the per-iteration trace) before
    # touching the timing so an empty workload fails with a clear error.
    width_trace = _mean_width_trace(workload)
    point = RooflinePoint(
        operational_intensity=timing.operational_intensity,
        warp_gips=timing.warp_gips,
        label=label,
    )
    ceilings = roofline_ceilings(
        device,
        per_iteration_ops=width_trace,
        blocks=timing.blocks,
        threads_per_block=timing.threads_per_block,
    )
    return RooflineAnalysis(point=point, ceilings=ceilings)
