"""SeqAn-like CPU batch X-drop aligner (the paper's primary baseline).

BELLA drives SeqAn's ``extendSeed`` X-drop routine with one OpenMP thread
per alignment; the LOGAN paper benchmarks against that configuration on a
168-thread POWER9 node (Table II / Fig. 8).  This module provides

* :class:`SeqAnBatchAligner` — a CPU batch runner that executes the *real*
  X-drop algorithm (the scalar-equivalent vectorised kernel) over a batch of
  :class:`~repro.core.job.AlignmentJob`, optionally across local processes
  (the laptop analogue of the OpenMP loop), and
* a hook into the POWER9 cost model so the same run also reports the
  *modeled* 168-thread POWER9 runtime for the measured work trace.

Scores are identical to LOGAN's by construction — both call the same X-drop
recurrence — which reproduces the paper's "equivalent accuracy" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.job import AlignmentJob, BatchWorkSummary, summarize_results
from ..core.result import SeedAlignmentResult
from ..core.scoring import ScoringScheme
from ..core.seed_extend import extend_seed
from ..core.xdrop_vectorized import xdrop_extend
from ..perf.parallel import parallel_map
from ..perf.timers import Timer
from .platforms import SEQAN_POWER9_MODEL, CpuCostModel

__all__ = ["SeqAnBatchResult", "SeqAnBatchAligner"]


@dataclass
class SeqAnBatchResult:
    """Results and accounting of one SeqAn-like CPU batch run.

    Attributes
    ----------
    results:
        Per-job seed alignment results, in job order.
    summary:
        Aggregate work accounting for the batch.
    elapsed_seconds:
        Measured wall-clock of the Python run (laptop scale).
    modeled_seconds:
        Modeled wall-clock of the same work on the paper's POWER9 platform
        with 168 threads.
    """

    results: list[SeedAlignmentResult]
    summary: BatchWorkSummary
    elapsed_seconds: float
    modeled_seconds: float

    def measured_gcups(self) -> float:
        """GCUPS of the measured Python run."""
        return self.summary.gcups(self.elapsed_seconds)

    def modeled_gcups(self) -> float:
        """GCUPS of the modeled POWER9 run."""
        return self.summary.gcups(self.modeled_seconds)


def _align_one(
    job: AlignmentJob, scoring: ScoringScheme, xdrop: int, trace: bool
) -> SeedAlignmentResult:
    """Worker: run one seed-and-extend alignment (picklable for process pools)."""
    return extend_seed(
        job.query,
        job.target,
        job.seed,
        scoring=scoring,
        xdrop=xdrop,
        kernel=xdrop_extend,
        trace=trace,
    )


class SeqAnBatchAligner:
    """Batch X-drop aligner mimicking BELLA's SeqAn + OpenMP configuration.

    Parameters
    ----------
    scoring:
        Linear-gap scoring scheme (BELLA default +1/-1/-1).
    xdrop:
        X-drop threshold.
    cost_model:
        CPU cost model used to translate the measured work trace into a
        modeled POWER9 runtime; defaults to the 168-thread model calibrated
        against Table II.
    workers:
        Local worker processes for the measured run (1 = run in-process).
        This parallelism affects only the measured wall-clock, never the
        scores or the modeled runtime.
    trace:
        Record per-anti-diagonal band widths (needed when the same results
        are fed to the GPU model, e.g. in comparison benchmarks).
    """

    def __init__(
        self,
        scoring: ScoringScheme | None = None,
        xdrop: int = 100,
        cost_model: CpuCostModel = SEQAN_POWER9_MODEL,
        workers: int = 1,
        trace: bool = False,
    ) -> None:
        self.scoring = scoring if scoring is not None else ScoringScheme()
        self.xdrop = int(xdrop)
        self.cost_model = cost_model
        self.workers = max(1, int(workers))
        self.trace = bool(trace)

    def align_batch(self, jobs: Sequence[AlignmentJob]) -> SeqAnBatchResult:
        """Align every job in the batch and return results plus accounting."""
        timer = Timer()
        with timer:
            results = parallel_map(
                _align_one,
                jobs,
                args=(self.scoring, self.xdrop, self.trace),
                workers=self.workers,
            )
        summary = summarize_results(results)
        modeled = self.cost_model.seconds(
            cells=summary.cells,
            iterations=summary.iterations,
            alignments=summary.alignments,
        )
        return SeqAnBatchResult(
            results=list(results),
            summary=summary,
            elapsed_seconds=timer.elapsed,
            modeled_seconds=modeled,
        )

    def modeled_seconds_for(self, summary: BatchWorkSummary) -> float:
        """Modeled POWER9 runtime for an externally-produced work summary.

        Used by benchmarks that measure a scaled-down batch and extrapolate
        the summary to the paper's pair count before asking for the model
        time.
        """
        return self.cost_model.seconds(
            cells=summary.cells,
            iterations=summary.iterations,
            alignments=summary.alignments,
        )
