#!/usr/bin/env python
"""Multi-GPU scaling and load balancing (Section IV-C / Fig. 12).

Aligns one sample batch, then re-models it on 1-8 V100s with both load
balancing policies (LOGAN's length-aware split and a naive equal-count
split), showing how throughput scales and where the load-balancer overhead
starts to bite — the effect the paper lists as future work to remove.

Run with::

    python examples/multi_gpu_scaling.py
"""

from __future__ import annotations

from repro.data import PairSetSpec, generate_pair_set
from repro.gpusim import MultiGpuSystem
from repro.logan import LoganAligner

PAPER_PAIRS = 100_000
XDROP = 1000


def main() -> None:
    # A deliberately skewed read-length mix so balancing actually matters.
    long_spec = PairSetSpec(num_pairs=3, min_length=6000, max_length=7500,
                            seed_placement="start", rng_seed=1)
    short_spec = PairSetSpec(num_pairs=9, min_length=2500, max_length=3500,
                             seed_placement="start", rng_seed=2)
    jobs = generate_pair_set(long_spec) + generate_pair_set(short_spec)
    replication = PAPER_PAIRS / len(jobs)

    print(f"aligning {len(jobs)} sampled pairs once (X={XDROP}), "
          f"then re-modeling on 1-8 GPUs")
    base = LoganAligner(system=MultiGpuSystem.homogeneous(1), xdrop=XDROP).align_batch(
        jobs, replication=replication
    )
    print(f"single-GPU modeled time: {base.modeled_seconds:.2f} s "
          f"({base.modeled_gcups:.1f} GCUPS)")
    print()
    header = (f"{'GPUs':>5s} {'cells policy s':>15s} {'count policy s':>15s} "
              f"{'GCUPS':>8s} {'speedup':>8s} {'imbalance':>10s}")
    print(header)
    for gpus in range(1, 9):
        smart = LoganAligner(
            system=MultiGpuSystem.homogeneous(gpus), xdrop=XDROP, balancer_policy="cells"
        ).model_existing(jobs, base.results, replication=replication)
        naive = LoganAligner(
            system=MultiGpuSystem.homogeneous(gpus), xdrop=XDROP, balancer_policy="count"
        ).model_existing(jobs, base.results, replication=replication)
        print(
            f"{gpus:>5d} {smart.modeled_seconds:>15.2f} {naive.modeled_seconds:>15.2f} "
            f"{smart.modeled_gcups:>8.1f} "
            f"{base.modeled_seconds / smart.modeled_seconds:>8.2f} "
            f"{smart.multi_gpu.load_imbalance:>10.2f}"
        )
    print()
    print("Computing time shrinks with the device count, but the serial host "
          "preprocessing and the per-device balancer overhead grow, so scaling "
          "flattens — exactly the behaviour discussed in the paper's conclusions.")


if __name__ == "__main__":
    main()
