#!/usr/bin/env python
"""Service-layer benchmark: batching + cache benefit over per-job submission.

Runs the same fixed-seed mixed-length workload three ways —

1. ``direct``     — one ``align_batch`` call on the batched engine (the
                    offline upper bound the service should approach);
2. ``per_job``    — one engine call per job, the naive front door the
                    service replaces;
3. ``service``    — individual submissions through
                    :class:`repro.service.AlignmentService` (adaptive
                    batching, sharded workers), then a second submission
                    round that must be answered from the result cache

— and writes ``BENCH_service.json`` next to the repository root.  The
checked-in acceptance numbers: service throughput >= per-job submission
throughput, score parity with the direct batch, and a nonzero cache hit
rate on resubmission.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_service.py [--pairs 192] [--smoke]

``--smoke`` shrinks the workload and skips the timing assertion (CI runs it
as a non-timing wiring check), while still enforcing score parity and
cache behaviour.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import AlignConfig, ServiceConfig  # noqa: E402
from repro.core import ScoringScheme  # noqa: E402
from repro.data import PairSetSpec, generate_pair_set  # noqa: E402
from repro.engine import get_engine  # noqa: E402
from repro.perf import Timer, gcups  # noqa: E402
from repro.service import AlignmentService  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_service.json"


def build_batch(pairs: int, rng_seed: int) -> list:
    """Mixed-length workload (200-900 bp) with mid-read seeds."""
    return generate_pair_set(
        PairSetSpec(
            num_pairs=pairs,
            min_length=200,
            max_length=900,
            pairwise_error_rate=0.15,
            unrelated_fraction=0.1,
            seed_placement="middle",
            rng_seed=rng_seed,
        )
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Benchmark the alignment service.")
    parser.add_argument("--pairs", type=int, default=192, help="workload size")
    parser.add_argument("--xdrop", type=int, default=50, help="X-drop threshold")
    parser.add_argument("--seed", type=int, default=2020, help="workload RNG seed")
    parser.add_argument("--batch-size", type=int, default=48, help="service batch bound")
    parser.add_argument("--workers", type=int, default=1, help="service worker shards")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload, correctness checks only (no timing assertion)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.pairs = min(args.pairs, 24)
        args.batch_size = min(args.batch_size, 8)

    scoring = ScoringScheme()
    jobs = build_batch(args.pairs, args.seed)
    print(f"workload: {len(jobs)} jobs, X={args.xdrop}, seed={args.seed}")

    engine = get_engine("batched", scoring=scoring, xdrop=args.xdrop)

    # 1. Direct: the whole workload in one engine batch.
    direct_timer = Timer()
    with direct_timer:
        direct = engine.align_batch(jobs)
    direct_gcups = gcups(direct.summary.cells, direct_timer.elapsed)

    # 2. Per-job: one engine call per request (no batching, no cache).
    per_job_timer = Timer()
    per_job_scores = []
    with per_job_timer:
        for job in jobs:
            per_job_scores.append(engine.align_batch([job]).scores()[0])
    per_job_gcups = gcups(direct.summary.cells, per_job_timer.elapsed)

    # 3. Service: individual submissions, adaptive batching, then a cached
    #    resubmission round.
    service = AlignmentService(
        config=AlignConfig(
            engine="batched",
            scoring=scoring,
            xdrop=args.xdrop,
            bin_width=500,
            service=ServiceConfig(
                num_workers=args.workers,
                max_batch_size=args.batch_size,
                cache_capacity=4 * len(jobs),
            ),
        )
    )
    service_timer = Timer()
    with service_timer:
        tickets = service.submit_many(jobs)
        service.drain()
        service_scores = [t.result(timeout=120.0).score for t in tickets]
    service_gcups = gcups(direct.summary.cells, service_timer.elapsed)

    resubmit_timer = Timer()
    with resubmit_timer:
        tickets2 = service.submit_many(jobs)
        service.drain()
        resubmit_scores = [t.result(timeout=120.0).score for t in tickets2]
    stats = service.stats()
    service.shutdown()

    rows = {
        "direct": {"seconds": direct_timer.elapsed, "gcups": direct_gcups},
        "per_job": {"seconds": per_job_timer.elapsed, "gcups": per_job_gcups},
        "service": {
            "seconds": service_timer.elapsed,
            "gcups": service_gcups,
            "batches_formed": stats.batches_formed,
            "mean_batch_size": stats.mean_batch_size,
            "flush_reasons": stats.flush_reasons,
        },
        "service_resubmit": {
            "seconds": resubmit_timer.elapsed,
            "cache_hit_rate": stats.cache.hit_rate,
            "cache_hits": stats.cache.hits,
        },
    }
    for name, row in rows.items():
        extra = f" {row['gcups']:8.4f} GCUPS" if "gcups" in row else ""
        print(f"{name:>18s}: {row['seconds']:8.3f}s{extra}")
    speedup_vs_per_job = (
        per_job_timer.elapsed / service_timer.elapsed
        if service_timer.elapsed > 0
        else 0.0
    )
    print(
        f"service vs per-job: {speedup_vs_per_job:.2f}x, "
        f"cache hit rate {stats.cache.hit_rate:.2f}, "
        f"mean batch {stats.mean_batch_size:.1f}"
    )

    payload = {
        "workload": {
            "pairs": len(jobs),
            "xdrop": args.xdrop,
            "rng_seed": args.seed,
            "cells": direct.summary.cells,
            "smoke": args.smoke,
        },
        "service_config": {
            "batch_size": args.batch_size,
            "workers": args.workers,
            "bin_width": 500,
        },
        "rows": rows,
        "service_speedup_vs_per_job": speedup_vs_per_job,
    }
    if not args.smoke:
        OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {OUTPUT}")

    failed = False
    if service_scores != direct.scores() or resubmit_scores != direct.scores():
        print("FAIL: service scores diverge from the direct batch call")
        failed = True
    if per_job_scores != direct.scores():
        print("FAIL: per-job scores diverge from the direct batch call")
        failed = True
    if stats.cache.hit_rate <= 0:
        print("FAIL: resubmission produced no cache hits")
        failed = True
    if stats.batches_formed < 1 or stats.mean_batch_size <= 1.0:
        print("FAIL: the batcher never formed a multi-job batch")
        failed = True
    if not args.smoke and speedup_vs_per_job < 1.0:
        print(
            f"FAIL: service throughput {speedup_vs_per_job:.2f}x is below "
            "per-job submission"
        )
        failed = True
    if not failed:
        print(
            "OK: service matches the direct batch bit-for-bit and beats "
            "per-job submission"
            if not args.smoke
            else "OK: service wiring (smoke) — parity and cache verified"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
