"""Functional LOGAN kernel: one GPU block per extension, traced.

The CUDA kernel of the paper assigns each extension to a GPU block and
computes its anti-diagonals with Algorithm 2.  In this reproduction the same
work is performed by the vectorised NumPy X-drop kernel
(:func:`repro.core.xdrop_vectorized.xdrop_extend`), and every extension
additionally records its anti-diagonal width trace, which is what the GPU
execution model replays to estimate V100 time.

The kernel is *functionally exact*: the scores and end positions it returns
are the library's single source of truth and are identical to the scalar
SeqAn-style reference (tests enforce this), which reproduces the paper's
"equivalent accuracy" statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.result import ExtensionResult
from ..core.scoring import ScoringScheme
from ..core.xdrop_vectorized import XDropKernelState, xdrop_extend
from ..gpusim.trace import BlockWorkTrace, KernelWorkload
from ..perf.parallel import parallel_map
from .host import ExtensionTask

__all__ = ["StreamExecution", "run_extension_stream"]


@dataclass
class StreamExecution:
    """Functional output of one GPU stream (a list of extensions).

    Attributes
    ----------
    results:
        Per-task extension results (same order as the input tasks).
    workload:
        The traced workload for the GPU execution model.  Empty tasks (seed
        flush against a sequence end) contribute no block.
    """

    results: list[ExtensionResult]
    workload: KernelWorkload


def _empty_extension() -> ExtensionResult:
    """Result used for tasks with nothing to extend (zero-length side)."""
    return ExtensionResult(
        best_score=0,
        query_end=0,
        target_end=0,
        anti_diagonals=1,
        cells_computed=1,
        terminated_early=False,
        band_widths=np.asarray([1], dtype=np.int64),
    )


def _run_task(
    task: ExtensionTask, scoring: ScoringScheme, xdrop: int
) -> ExtensionResult:
    """Worker: execute one extension with tracing enabled (picklable)."""
    if task.is_empty:
        return _empty_extension()
    return xdrop_extend(task.query, task.target, scoring=scoring, xdrop=xdrop, trace=True)


def run_extension_stream(
    tasks: Sequence[ExtensionTask],
    scoring: ScoringScheme,
    xdrop: int,
    replication: float = 1.0,
    workers: int = 1,
) -> StreamExecution:
    """Execute one stream of extensions and collect the traced workload.

    Parameters
    ----------
    tasks:
        The stream's extension tasks (all left-extensions or all
        right-extensions of a prepared batch).
    scoring, xdrop:
        Alignment parameters.
    replication:
        How many real extensions each task stands for when the batch is a
        scaled-down sample of the paper's workload.
    workers:
        Local worker processes used to execute the extensions (affects only
        the measured wall-clock, never the scores or the traces).
    """
    results = parallel_map(_run_task, list(tasks), args=(scoring, xdrop), workers=workers)
    workload = KernelWorkload(replication=replication)
    for task, result in zip(tasks, results):
        if task.is_empty:
            continue
        workload.add(
            BlockWorkTrace.from_extension(
                result,
                query_length=len(task.query),
                target_length=len(task.target),
            )
        )
    return StreamExecution(results=list(results), workload=workload)
