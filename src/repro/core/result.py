"""Result containers returned by the alignment kernels.

Every kernel in the library — the scalar reference, the vectorised LOGAN
kernel, the full-DP baselines and ksw2 — reports its outcome through the
dataclasses defined here so downstream code (BELLA, the GPU execution model,
the benchmark harness) can treat them uniformly.

The containers deliberately carry *work accounting* alongside the biological
answer: ``cells_computed`` and the per-anti-diagonal ``band_widths`` trace are
what the GPU performance model replays to estimate V100 wall-clock, and what
the GCUPS metric divides by.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = [
    "NEG_INF",
    "ExtensionResult",
    "SeedAlignmentResult",
    "FullAlignmentResult",
]

#: Sentinel used for pruned / unreachable DP cells.  A quarter of the int64
#: range so that adding a handful of scores can never overflow.
NEG_INF: int = int(np.iinfo(np.int64).min // 4)


@dataclass
class ExtensionResult:
    """Outcome of a single X-drop (or Z-drop) extension in one direction.

    Attributes
    ----------
    best_score:
        Highest alignment score reached before termination.
    query_end, target_end:
        Number of query / target bases consumed by the best-scoring cell
        (i.e. the extension reached ``query[:query_end]`` / ``target[:target_end]``).
    anti_diagonals:
        Number of anti-diagonal iterations executed before the X-drop
        condition emptied the band (or the matrix was exhausted).
    cells_computed:
        Total DP cells evaluated — the numerator of the CUPS metric.
    terminated_early:
        ``True`` when the X-drop condition stopped the extension before the
        end of the shorter sequence was reached.
    band_widths:
        Optional per-anti-diagonal band width trace (length ``anti_diagonals``)
        used by the GPU execution model; ``None`` unless tracing was requested.
    """

    best_score: int
    query_end: int
    target_end: int
    anti_diagonals: int
    cells_computed: int
    terminated_early: bool = False
    band_widths: Optional[np.ndarray] = None

    def gcups(self, seconds: float) -> float:
        """Cells computed per second, in units of 1e9 (giga cell updates)."""
        if seconds <= 0:
            return float("inf")
        return self.cells_computed / seconds / 1e9

    def __post_init__(self) -> None:
        if self.band_widths is not None:
            self.band_widths = np.asarray(self.band_widths, dtype=np.int64)


@dataclass
class SeedAlignmentResult:
    """Combined result of a seed-and-extend alignment (left + seed + right).

    This mirrors what LOGAN returns to BELLA: a single score for the pair,
    plus the extents of the alignment on both sequences, from which BELLA's
    adaptive threshold decides whether the candidate overlap is genuine.
    """

    score: int
    left: ExtensionResult
    right: ExtensionResult
    seed_score: int
    query_begin: int
    query_end: int
    target_begin: int
    target_end: int

    @property
    def query_span(self) -> int:
        """Number of query bases covered by the alignment."""
        return self.query_end - self.query_begin

    @property
    def target_span(self) -> int:
        """Number of target bases covered by the alignment."""
        return self.target_end - self.target_begin

    @property
    def overlap_length(self) -> int:
        """Length of the putative overlap: the mean of the two spans.

        BELLA estimates the overlap length from the alignment extents; the
        mean of the two spans is a robust symmetric choice that its adaptive
        threshold multiplies by the expected per-base score.
        """
        return (self.query_span + self.target_span) // 2

    @property
    def cells_computed(self) -> int:
        """Total DP cells across both extensions."""
        return self.left.cells_computed + self.right.cells_computed


@dataclass
class FullAlignmentResult:
    """Outcome of an exact full-DP alignment (Smith–Waterman / Needleman–Wunsch).

    Used as the accuracy oracle in tests and in the Fig. 2 search-space
    comparison; ``cells_computed`` for a full DP is simply ``m * n`` (or the
    banded cell count for banded SW).
    """

    best_score: int
    query_end: int
    target_end: int
    cells_computed: int
    query_begin: int = 0
    target_begin: int = 0
    matrix: Optional[np.ndarray] = field(default=None, repr=False)

    def gcups(self, seconds: float) -> float:
        """Cells computed per second, in units of 1e9 (giga cell updates)."""
        if seconds <= 0:
            return float("inf")
        return self.cells_computed / seconds / 1e9
