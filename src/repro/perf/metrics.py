"""Performance metrics: GCUPS, speed-ups and benchmark report rows.

GCUPS (giga cell updates per second) is the standard throughput metric for
alignment kernels and the one the paper uses throughout Section VI; speed-up
is always reported relative to a named baseline (SeqAn on 168 threads, ksw2
on 80 threads, or BELLA-with-SeqAn).  The small dataclasses here are what
the benchmark harness prints and serialises, one row per X value — the same
rows as the paper's tables.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["gcups", "speedup", "BenchRow", "BenchTable"]


def gcups(cells: int, seconds: float) -> float:
    """Giga cell updates per second.

    Returns the ``0.0`` sentinel for non-positive durations: a degenerate
    timing must not inflate a throughput claim, and ``inf`` would poison
    downstream :func:`speedup` arithmetic and JSON serialisation (``inf``
    is not valid JSON).  The sentinel is deliberately finite, so a caller
    that wants a report row flagged must say so —
    ``table.add_row(x, degenerate=seconds <= 0, ...)``; non-finite values
    reaching :meth:`BenchTable.add_row` from other sources are flagged
    automatically.
    """
    if seconds <= 0:
        return 0.0
    return cells / seconds / 1e9


def speedup(baseline_seconds: float, accelerated_seconds: float) -> float:
    """Baseline time divided by accelerated time (``> 1`` means faster).

    A non-positive accelerated time is degenerate; it clamps to ``0.0`` (see
    :func:`gcups`) instead of returning ``inf``.
    """
    if accelerated_seconds <= 0:
        return 0.0
    return baseline_seconds / accelerated_seconds


@dataclass
class BenchRow:
    """One row of a reproduced table: a parameter value plus named timings.

    Attributes
    ----------
    parameter:
        The swept parameter value (the X-drop threshold in Tables II-V, the
        GPU count in Fig. 12).
    values:
        Column name -> value (seconds, GCUPS or speed-up, as labelled by the
        owning table).
    degenerate:
        True when any value of the row came from a degenerate measurement
        (non-finite, e.g. a zero-duration timing); set automatically by
        :meth:`BenchTable.add_row`.
    """

    parameter: float
    values: dict[str, float] = field(default_factory=dict)
    degenerate: bool = False

    def formatted(self, columns: Sequence[str], width: int = 14) -> str:
        """Fixed-width text rendering of the row for the given column order."""
        cells = [f"{self.parameter:>{width}g}"]
        for col in columns:
            val = self.values.get(col, float("nan"))
            cells.append(f"{val:>{width}.3f}")
        return "".join(cells)


@dataclass
class BenchTable:
    """A reproduced table or figure series.

    Collects :class:`BenchRow` objects, renders them as fixed-width text
    (mirroring the layout of the paper's tables) and serialises to JSON so
    EXPERIMENTS.md and regression checks can consume the numbers.
    """

    title: str
    parameter_name: str
    columns: list[str]
    rows: list[BenchRow] = field(default_factory=list)
    notes: str = ""

    def add_row(
        self, parameter: float, degenerate: bool = False, **values: float
    ) -> BenchRow:
        """Append a row; unknown columns are added to the column list.

        Rows containing a non-finite value (NaN/inf from a degenerate
        measurement) are flagged ``degenerate`` automatically; pass
        ``degenerate=True`` to flag a row whose values are finite sentinels
        (e.g. the ``0.0`` that :func:`gcups` returns for a zero duration).
        """
        for key in values:
            if key not in self.columns:
                self.columns.append(key)
        degenerate = degenerate or any(
            not math.isfinite(v) for v in values.values()
        )
        row = BenchRow(parameter=parameter, values=dict(values), degenerate=degenerate)
        self.rows.append(row)
        return row

    def column(self, name: str) -> list[float]:
        """All values of one column, in row order (NaN when missing)."""
        return [row.values.get(name, float("nan")) for row in self.rows]

    def formatted(self, width: int = 14) -> str:
        """Fixed-width text rendering of the whole table."""
        header = [f"{self.parameter_name:>{width}s}"] + [
            f"{c:>{width}s}" for c in self.columns
        ]
        lines = [self.title, "".join(header)]
        lines.extend(row.formatted(self.columns, width) for row in self.rows)
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)

    def to_json(self) -> str:
        """JSON representation (used to archive benchmark outputs).

        Non-finite values serialise as ``null`` so the output is strict JSON
        (``json.dumps`` would otherwise emit the invalid literals
        ``Infinity``/``NaN``); degenerate rows carry ``"degenerate": true``.
        """

        def _finite(value: float):
            return value if math.isfinite(value) else None

        rows = []
        for row in self.rows:
            entry = {"parameter": row.parameter}
            entry.update({k: _finite(v) for k, v in row.values.items()})
            if row.degenerate:
                entry["degenerate"] = True
            rows.append(entry)
        payload = {
            "title": self.title,
            "parameter_name": self.parameter_name,
            "columns": self.columns,
            "rows": rows,
            "notes": self.notes,
        }
        return json.dumps(payload, indent=2, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "BenchTable":
        """Rebuild a table from :meth:`to_json` output (null -> NaN)."""
        payload = json.loads(text)
        table = cls(
            title=payload["title"],
            parameter_name=payload["parameter_name"],
            columns=list(payload["columns"]),
            notes=payload.get("notes", ""),
        )
        for row in payload["rows"]:
            parameter = row.pop("parameter")
            degenerate = bool(row.pop("degenerate", False))
            values = {
                k: (float("nan") if v is None else v) for k, v in row.items()
            }
            table.rows.append(
                BenchRow(parameter=parameter, values=values, degenerate=degenerate)
            )
        return table
