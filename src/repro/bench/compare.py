"""Regression gating: judge a fresh benchmark entry against its baseline.

The default metric is ``speedup_vs_scalar``: it divides out the host's
absolute speed using the scalar reference timed in the same run, so a
trajectory recorded on a laptop still gates a CI runner meaningfully.
Raw ``measured_seconds``/``measured_gcups`` comparisons are available for
same-machine trend analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .schema import BenchEntry

__all__ = ["MetricDelta", "ComparisonReport", "compare"]

#: Metrics where larger is better (regression = value dropped).
_HIGHER_IS_BETTER = {"speedup_vs_scalar", "measured_gcups"}
#: Metrics where smaller is better (regression = value grew).
_LOWER_IS_BETTER = {"measured_seconds"}

#: Engines whose metric is definitionally constant and therefore ungated
#: (the reference *is* the speed-up denominator).
_DENOMINATOR_ENGINES = {"reference", "per_job"}

#: Rows that only measure millisecond-scale overhead (the cache-served
#: resubmission round): pure timing noise on any gated metric, so they are
#: recorded in the trajectory but never gated.
_NOISE_ENGINES = {"service_resubmit"}


@dataclass
class MetricDelta:
    """One engine's baseline-vs-current movement on the chosen metric."""

    engine: str
    metric: str
    baseline: float
    current: float
    ratio: float
    regressed: bool

    def describe(self) -> str:
        direction = "regressed" if self.regressed else (
            "improved" if self.ratio > 1.0 else "held"
        )
        return (
            f"{self.engine:>12s}: {self.metric} {self.baseline:.4g} -> "
            f"{self.current:.4g} ({self.ratio:.2f}x, {direction})"
        )


@dataclass
class ComparisonReport:
    """Outcome of gating one entry against one baseline entry."""

    metric: str
    tolerance: float
    deltas: list[MetricDelta] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    baseline_label: str = ""

    @property
    def ok(self) -> bool:
        """True when no gated engine regressed beyond the tolerance."""
        return not self.regressions

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    def formatted(self) -> str:
        head = (
            f"compare vs baseline [{self.baseline_label or 'unknown'}] on "
            f"{self.metric} (tolerance {self.tolerance:.0%}) -> "
            f"{'OK' if self.ok else f'{len(self.regressions)} REGRESSION(S)'}"
        )
        lines = [head] + [d.describe() for d in self.deltas]
        if self.skipped:
            lines.append(f"    ungated: {', '.join(self.skipped)}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "tolerance": self.tolerance,
            "ok": self.ok,
            "baseline_label": self.baseline_label,
            "deltas": [
                {
                    "engine": d.engine,
                    "metric": d.metric,
                    "baseline": d.baseline,
                    "current": d.current,
                    "ratio": d.ratio,
                    "regressed": d.regressed,
                }
                for d in self.deltas
            ],
            "skipped": list(self.skipped),
        }


def compare(
    current: BenchEntry,
    baseline: BenchEntry | None,
    tolerance: float = 0.30,
    metric: str = "speedup_vs_scalar",
) -> ComparisonReport:
    """Gate *current* against *baseline* with a fractional *tolerance*.

    An engine regresses when its metric worsens by more than *tolerance*
    relative to the baseline value (direction depends on the metric).
    Engines missing from either entry — and the metric's own denominator
    engines — are listed as ``skipped``, never failed.  A ``None``
    baseline yields an empty, passing report (first recording).
    """
    if not 0.0 <= tolerance:
        raise ConfigurationError(f"tolerance must be non-negative, got {tolerance}")
    if metric not in _HIGHER_IS_BETTER | _LOWER_IS_BETTER:
        raise ConfigurationError(
            f"unknown comparison metric {metric!r}; available: "
            f"{', '.join(sorted(_HIGHER_IS_BETTER | _LOWER_IS_BETTER))}"
        )
    report = ComparisonReport(
        metric=metric,
        tolerance=float(tolerance),
        baseline_label=(
            f"{baseline.label or baseline.kind} @ {baseline.timestamp}"
            if baseline is not None
            else ""
        ),
    )
    if baseline is None:
        return report
    higher_better = metric in _HIGHER_IS_BETTER
    for row in current.rows:
        if row.engine in _NOISE_ENGINES or (
            row.engine in _DENOMINATOR_ENGINES and metric == "speedup_vs_scalar"
        ):
            report.skipped.append(row.engine)
            continue
        base_row = baseline.row(row.engine)
        if base_row is None:
            report.skipped.append(row.engine)
            continue
        base_value = float(getattr(base_row, metric))
        cur_value = float(getattr(row, metric))
        if base_value <= 0:
            report.skipped.append(row.engine)
            continue
        if higher_better:
            ratio = cur_value / base_value
        else:
            ratio = base_value / cur_value if cur_value > 0 else float("inf")
        regressed = ratio < (1.0 - tolerance)
        report.deltas.append(
            MetricDelta(
                engine=row.engine,
                metric=metric,
                baseline=base_value,
                current=cur_value,
                ratio=ratio,
                regressed=regressed,
            )
        )
    return report
