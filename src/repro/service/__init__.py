"""Asynchronous alignment service: queue -> cache -> batcher -> workers.

The serving layer over the engine registry.  Individually submitted
:class:`~repro.core.job.AlignmentJob` requests are content-addressed against
an LRU result cache, coalesced by an adaptive length-binned batcher into
engine-sized batches, and sharded across a load-balanced worker pool — the
paper's host-side batching and multi-GPU partitioning (Section IV) recast
as a production front door.

>>> from repro.api import AlignConfig
>>> from repro.service import AlignmentService
>>> with AlignmentService(config=AlignConfig(engine="batched", xdrop=50)) as svc:
...     tickets = [svc.submit(job) for job in jobs]
...     svc.drain()
...     scores = [t.result().score for t in tickets]

See :mod:`repro.service.service` for the facade, and the sibling modules
for the individual stages.
"""

from .batcher import AdaptiveBatcher, BatchPolicy, FormedBatch
from .cache import CacheStats, ResultCache, job_cache_key
from .queue import AlignmentTicket, SubmissionQueue
from .service import AlignmentService, ServiceStats
from .workers import ShardedWorkerPool, WorkerStats

__all__ = [
    "AlignmentService",
    "ServiceStats",
    "AlignmentTicket",
    "SubmissionQueue",
    "AdaptiveBatcher",
    "BatchPolicy",
    "FormedBatch",
    "ResultCache",
    "CacheStats",
    "job_cache_key",
    "ShardedWorkerPool",
    "WorkerStats",
]
