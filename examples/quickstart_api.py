#!/usr/bin/env python
"""Quickstart for the public API: one config, one facade, four call shapes.

Everything in the library is driven from a single declarative
:class:`repro.api.AlignConfig` — the engine (with its options), the scoring
scheme, the X-drop threshold, the seed policy, the bin/band parameters and
the nested serving-layer knobs.  The :class:`repro.api.Aligner` facade then
exposes the four ways to align:

* ``align(query, target)``   — one pair, seed synthesised by policy;
* ``align_batch(jobs)``      — the classic batch call (bit-identical to
  calling the engine registry directly);
* ``align_iter(jobs)``       — a streaming generator that flows through the
  service batcher and result cache;
* ``open_service()``         — a fully configured AlignmentService for
  long-lived serving.

Run from the repository root::

    PYTHONPATH=src python examples/quickstart_api.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import AlignConfig, Aligner, ServiceConfig
from repro.data import PairSetSpec, generate_pair_set
from repro.engine import get_engine

# One declarative object configures every layer.  It round-trips through
# JSON, so the same dict can live in a config file and drive the CLIs
# (every subcommand accepts --config config.json).
config = AlignConfig(
    engine="batched",
    xdrop=50,
    seed_policy="middle",
    service=ServiceConfig(max_batch_size=16, cache_capacity=1024),
)
assert AlignConfig.from_dict(config.to_dict()) == config
print("config:")
print(config.to_json())

jobs = generate_pair_set(
    PairSetSpec(
        num_pairs=32,
        min_length=300,
        max_length=800,
        pairwise_error_rate=0.15,
        seed_placement="middle",
        rng_seed=11,
    )
)

with Aligner(config) as aligner:
    # 1. One pair, anchor seed synthesised by the configured seed policy.
    single = aligner.align("ACGTACGTACGTACGT" * 8, "ACGTACGTACGTACGT" * 8)
    print(f"\nsingle pair: score={single.score}")

    # 2. The classic batch call — bit-identical to the engine registry.
    batch = aligner.align_batch(jobs)
    direct = get_engine(config.engine, xdrop=config.xdrop).align_batch(jobs)
    assert batch.scores() == direct.scores()
    print(f"batch: {len(batch.results)} jobs, mean score "
          f"{sum(batch.scores()) / len(jobs):.1f}, parity with get_engine OK")

    # 3. Streaming: results flow through the service batcher/cache.
    streamed = [r.score for r in aligner.align_iter(iter(jobs))]
    assert streamed == batch.scores()
    rerun = [r.score for r in aligner.align_iter(iter(jobs))]  # cache hits
    assert rerun == streamed
    print("align_iter: streaming parity OK (second pass served from cache)")

# 4. A long-lived service, fully configured from the same object.
with Aligner(config).open_service() as service:
    tickets = service.submit_many(jobs)
    service.drain()
    scores = [t.result(timeout=60.0).score for t in tickets]
    assert scores == direct.scores()
    stats = service.stats()
print(f"service: {stats.completed} completed, "
      f"{stats.batches_formed} batches, hit rate {stats.cache.hit_rate:.2f}")
