"""Process-wide observability runtime: one bundle, one switch.

Library code never imports concrete instruments from each other's modules;
it asks for the ambient :class:`Observability` bundle::

    from repro import obs
    ob = obs.get_observability()
    ob.counter("repro_kernel_sweeps_total").inc()
    with ob.tracer.span("kernel.sweep", rows=128):
        ...

The bundle has two cost tiers:

* The **metrics registry is always live** — counter increments are a
  locked float add, the same price as the hand-rolled counters they
  replaced, so nothing needs gating.
* **Tracing, the flight recorder and per-sweep kernel telemetry are
  opt-in** via :func:`configure` (or per-component handles).  Disabled,
  ``tracer.span()`` returns a shared no-op and ``ob.enabled`` short-
  circuits the deeper emission, keeping the hot paths at their
  pre-observability cost and results bit-identical.
"""

from __future__ import annotations

import threading
from typing import Any

from .metrics import MetricsRegistry
from .recorder import FlightRecorder
from .tracing import Tracer

__all__ = [
    "Observability",
    "get_observability",
    "configure",
    "reset",
    "emit_kernel_batch",
    "LIVE_FRACTION_BUCKETS",
]

#: Buckets of the kernel live-fraction histogram (a 0..1 ratio).
LIVE_FRACTION_BUCKETS: tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
)


class Observability:
    """One subsystem's bundle of registry + tracer + flight recorder.

    The process-global bundle (:func:`get_observability`) carries the
    library-wide telemetry; an :class:`~repro.service.AlignmentService`
    derives a *scoped* bundle with a private registry so two services
    never mix their counters, while sharing the global tracer and
    recorder (one trace tree, one crash ring per process).
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        recorder: FlightRecorder | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.recorder = recorder
        if recorder is not None:
            self.tracer.add_sink(recorder.record_span)

    @property
    def enabled(self) -> bool:
        """True when deep telemetry (tracing / kernel emission) is on."""
        return self.tracer.enabled

    # Convenience passthroughs so call sites read naturally.
    def counter(self, name: str, help: str = "", labelnames=()):
        return self.registry.counter(name, help=help, labelnames=labelnames)

    def gauge(self, name: str, help: str = "", labelnames=()):
        return self.registry.gauge(name, help=help, labelnames=labelnames)

    def histogram(self, name: str, help: str = "", labelnames=(), buckets=None):
        if buckets is None:
            return self.registry.histogram(name, help=help, labelnames=labelnames)
        return self.registry.histogram(
            name, help=help, labelnames=labelnames, buckets=buckets
        )

    def span(self, name: str, **attributes: Any):
        return self.tracer.span(name, **attributes)

    def event(self, kind: str, **payload: Any) -> None:
        """Record a discrete event on the flight recorder, if attached."""
        if self.recorder is not None:
            self.recorder.record_event(kind, **payload)

    def scoped(self, registry: MetricsRegistry | None = None) -> "Observability":
        """A bundle with its own registry, sharing tracer and recorder."""
        return Observability(
            registry=registry if registry is not None else MetricsRegistry(),
            tracer=self.tracer,
            recorder=self.recorder,
        )


_lock = threading.Lock()
_global = Observability()


def get_observability() -> Observability:
    """The ambient process-wide bundle."""
    return _global


def configure(
    tracing: bool | None = None,
    flight_recorder: bool | None = None,
    recorder_capacity: int = 256,
) -> Observability:
    """Adjust the global bundle in place (and return it).

    Parameters
    ----------
    tracing:
        Enable/disable span emission (``None`` leaves it unchanged).
    flight_recorder:
        Attach (True) or detach (False) the crash ring.  Attaching wires
        it as a tracer sink and points it at the global registry.
    recorder_capacity:
        Ring size used when attaching a recorder.
    """
    with _lock:
        ob = _global
        if flight_recorder is True and ob.recorder is None:
            ob.recorder = FlightRecorder(
                capacity=recorder_capacity, registry=ob.registry
            )
            ob.tracer.add_sink(ob.recorder.record_span)
        elif flight_recorder is False and ob.recorder is not None:
            ob.tracer.remove_sink(ob.recorder.record_span)
            ob.recorder = None
        if tracing is not None:
            ob.tracer.enabled = bool(tracing)
    return ob


def reset() -> Observability:
    """Replace the global bundle with a fresh disabled one (tests)."""
    global _global
    with _lock:
        _global = Observability()
    return _global


def emit_kernel_batch(
    kernel: str,
    pairs: int,
    cells: int,
    steps: int,
    dtype: str | None = None,
    ob: Observability | None = None,
) -> None:
    """Fold one kernel batch call into the ambient registry.

    Called once per *batch* (not per pair) from the kernel entry points,
    so the cost — a handful of locked adds — is noise against the sweep
    it describes and stays unconditionally on.
    """
    if ob is None:
        ob = _global
    reg = ob.registry
    labels = ("kernel",)
    reg.counter(
        "repro_kernel_batches_total", "kernel batch invocations", labels
    ).inc(kernel=kernel)
    reg.counter(
        "repro_kernel_pairs_total", "extension pairs processed", labels
    ).inc(pairs, kernel=kernel)
    reg.counter(
        "repro_kernel_cells_total", "DP cells computed", labels
    ).inc(cells, kernel=kernel)
    reg.counter(
        "repro_kernel_steps_total", "anti-diagonal / row steps swept", labels
    ).inc(steps, kernel=kernel)
    if dtype:
        reg.counter(
            "repro_kernel_dtype_total",
            "batches per selected dtype tier",
            ("kernel", "dtype"),
        ).inc(kernel=kernel, dtype=dtype)
