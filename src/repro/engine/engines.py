"""Concrete alignment engines wrapping every aligner in the library.

Eight engines ship with the package (names as registered):

==============  =====================================================  ======
name            implementation                                         exact
==============  =====================================================  ======
``reference``   per-job Python loop over the scalar reference kernel   yes
``vectorized``  per-job loop over the per-pair vectorised kernel       yes
``batched``     inter-sequence batched kernel — the whole batch is
                packed into padded arrays and swept together
                (:func:`repro.core.xdrop_batch.xdrop_extend_batch`)    yes
``compiled``    numba-JIT per-pair banded sweep sharing the batched
                kernel's dtype tiers; registered unavailable (with
                the reason) when numba is not installed
                (:func:`repro.core.xdrop_compiled.xdrop_extend_compiled`)  yes
``wavefront``   WFA-style furthest-reaching-point extension, unit
                scoring only
                (:func:`repro.core.wavefront.wavefront_extend_batch`)  yes*
``seqan``       SeqAn-like CPU batch runner + POWER9 platform model    yes
``ksw2``        ksw2-style affine Z-drop runner + Skylake model        no
``logan``       LOGAN batch aligner + V100 multi-GPU execution model   yes
==============  =====================================================  ======

"exact" engines return scores, end positions and work accounting identical
to :func:`repro.core.xdrop.xdrop_extend_reference` on every job; the parity
test-suite enforces this.  ``wavefront`` (*) is exact on scores, end
positions and early-termination but computes in cost space, so its
cells/anti-diagonal accounting is an honest estimate of the equivalent DP
work rather than a bit-identical replay (``work_exact = False``).  All
constructors share the ``(scoring, xdrop, workers, trace)`` signature so
:func:`repro.engine.get_engine` can build any of them uniformly; engines
that cannot use an option accept and ignore it (documented per class).
"""

from __future__ import annotations

from typing import Sequence

from ..baselines.ksw2_batch import Ksw2BatchAligner
from ..baselines.seqan_like import SeqAnBatchAligner
from ..core.job import AlignmentJob, summarize_results
from ..core.result import ExtensionResult, SeedAlignmentResult
from ..core.scoring import AffineScoringScheme, ScoringScheme
from ..core.seed_extend import extend_seed
from ..core.wavefront import ensure_unit_scoring, wavefront_extend_batch
from ..core.xdrop import xdrop_extend_reference
from ..core.xdrop_compiled import (
    HAVE_NUMBA,
    NUMBA_IMPORT_ERROR,
    xdrop_extend_compiled,
)
from ..core.xdrop_vectorized import xdrop_extend
from ..logan.host import prepare_batch
from ..logan.kernel import empty_extension, execute_tasks_batched
from ..obs.runtime import (
    LIVE_FRACTION_BUCKETS,
    emit_kernel_batch,
    get_observability,
)
from ..perf.parallel import parallel_map
from ..perf.timers import Timer
from .base import EngineBatchResult, register_engine

__all__ = [
    "ReferenceEngine",
    "VectorizedEngine",
    "BatchedEngine",
    "CompiledEngine",
    "WavefrontEngine",
    "SeqAnEngine",
    "Ksw2Engine",
    "LoganEngine",
]


def _extend_job(job, scoring, xdrop, trace, kernel) -> SeedAlignmentResult:
    """Worker: one seed-and-extend alignment (module-level, picklable)."""
    return extend_seed(
        job.query, job.target, job.seed, scoring=scoring, xdrop=xdrop,
        kernel=kernel, trace=trace,
    )


class _EngineBase:
    """Shared configuration plumbing for the bundled engines."""

    name = "abstract"
    exact = True
    #: Result-invariant tuning attributes the autotune layer may override
    #: in place on a live instance.  Empty by default: the per-pair
    #: kernels (compiled/wavefront) have neither active-row compaction
    #: nor column tiling, so they expose no online tuning surface.
    TUNABLE_KNOBS: tuple = ()

    def __init__(
        self,
        scoring: ScoringScheme | None = None,
        xdrop: int = 100,
        workers: int = 1,
        trace: bool = False,
    ) -> None:
        self.scoring = scoring if scoring is not None else ScoringScheme()
        self.xdrop = int(xdrop)
        self.workers = max(1, int(workers))
        self.trace = bool(trace)

    def _resolve(
        self, scoring: ScoringScheme | None, xdrop: int | None
    ) -> tuple[ScoringScheme, int]:
        return (
            self.scoring if scoring is None else scoring,
            self.xdrop if xdrop is None else int(xdrop),
        )

    def align_batch(
        self,
        jobs: Sequence[AlignmentJob],
        scoring: ScoringScheme | None = None,
        xdrop: int | None = None,
    ) -> EngineBatchResult:
        """Align *jobs*, wrapped in a trace span + per-engine metrics.

        Subclasses implement :meth:`_align_batch`; the telemetry fold here
        is once per batch, so it stays on unconditionally.
        """
        ob = get_observability()
        with ob.span("engine.align_batch", engine=self.name, jobs=len(jobs)):
            result = self._align_batch(jobs, scoring=scoring, xdrop=xdrop)
        self._observe_batch(ob, result, len(jobs))
        return result

    def _align_batch(
        self,
        jobs: Sequence[AlignmentJob],
        scoring: ScoringScheme | None = None,
        xdrop: int | None = None,
    ) -> EngineBatchResult:
        raise NotImplementedError  # pragma: no cover - abstract

    def _observe_batch(
        self, ob, result: EngineBatchResult, jobs: int
    ) -> None:
        reg = ob.registry
        labels = ("engine",)
        reg.counter(
            "repro_engine_batches_total", "engine batch calls", labels
        ).inc(engine=self.name)
        reg.counter(
            "repro_engine_jobs_total", "jobs aligned", labels
        ).inc(jobs, engine=self.name)
        reg.counter(
            "repro_engine_seconds_total", "wall seconds in align_batch", labels
        ).inc(result.elapsed_seconds, engine=self.name)
        stats = result.extras.get("kernel_stats") if result.extras else None
        if stats is not None and stats.rows:
            # Fresh per-call accumulator, so its totals *are* the deltas.
            emit_kernel_batch(
                "batched",
                pairs=stats.rows,
                cells=stats.cells,
                steps=stats.row_steps,
                dtype=stats.dtype or None,
                ob=ob,
            )
            reg.counter(
                "repro_kernel_compactions_total",
                "active-row compactions performed",
                ("kernel",),
            ).inc(stats.compactions, kernel="batched")
            reg.histogram(
                "repro_kernel_live_fraction",
                "rows-weighted live fraction per batch call",
                ("kernel",),
                buckets=LIVE_FRACTION_BUCKETS,
            ).observe(stats.rows_weighted_live_fraction, kernel="batched")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(xdrop={self.xdrop})"


class _PerJobEngine(_EngineBase):
    """Engines that loop over jobs, one extension kernel call per side."""

    kernel = staticmethod(xdrop_extend)

    def _align_batch(
        self,
        jobs: Sequence[AlignmentJob],
        scoring: ScoringScheme | None = None,
        xdrop: int | None = None,
    ) -> EngineBatchResult:
        scoring, xdrop = self._resolve(scoring, xdrop)
        timer = Timer()
        with timer:
            results = parallel_map(
                _extend_job,
                list(jobs),
                args=(scoring, xdrop, self.trace, self.kernel),
                workers=self.workers,
            )
        return EngineBatchResult(
            engine=self.name,
            results=list(results),
            summary=summarize_results(results),
            elapsed_seconds=timer.elapsed,
        )


class ReferenceEngine(_PerJobEngine):
    """Per-job scalar reference loop — the semantic oracle, and the slowest."""

    name = "reference"
    kernel = staticmethod(xdrop_extend_reference)


class VectorizedEngine(_PerJobEngine):
    """Per-job loop over the per-pair vectorised kernel (intra-sequence only)."""

    name = "vectorized"
    kernel = staticmethod(xdrop_extend)


class BatchedEngine(_EngineBase):
    """Inter-sequence batched engine: one fused sweep over the whole batch.

    Jobs are split at their seeds by the LOGAN host preprocessing, and all
    resulting left- and right-extensions are swept together by
    :func:`repro.logan.kernel.execute_tasks_batched` — every extension is
    one row of the batch kernel, mirroring LOGAN's one-block-per-extension
    GPU layout.  With ``workers > 1`` the sweep is chunked across worker
    processes (scores and traces are unaffected).

    ``compact_threshold`` and ``tile_width`` tune the kernel's active-row
    compaction and column tiling (see
    :func:`repro.core.xdrop_batch.xdrop_extend_batch`); results are
    invariant to both.  Single-process runs attach the kernel's
    :class:`~repro.core.xdrop_batch.BatchKernelStats` telemetry to the
    batch result as ``extras["kernel_stats"]`` — the serving layer reads
    it for batch-sizing hints.
    """

    name = "batched"
    #: Both knobs are read per align_batch call, so the autotune layer can
    #: retune a live instance between dispatches (results are invariant).
    TUNABLE_KNOBS = ("tile_width", "compact_threshold")

    def __init__(
        self,
        scoring: ScoringScheme | None = None,
        xdrop: int = 100,
        workers: int = 1,
        trace: bool = False,
        compact_threshold: float | None = None,
        tile_width: int | None = None,
    ) -> None:
        super().__init__(scoring=scoring, xdrop=xdrop, workers=workers, trace=trace)
        self.compact_threshold = compact_threshold
        self.tile_width = tile_width

    def _align_batch(
        self,
        jobs: Sequence[AlignmentJob],
        scoring: ScoringScheme | None = None,
        xdrop: int | None = None,
    ) -> EngineBatchResult:
        from ..core.xdrop_batch import BatchKernelStats

        scoring, xdrop = self._resolve(scoring, xdrop)
        stats = BatchKernelStats() if self.workers == 1 else None
        timer = Timer()
        with timer:
            prepared = prepare_batch(jobs, scoring)
            tasks = prepared.left_tasks + prepared.right_tasks
            extensions = execute_tasks_batched(
                tasks,
                scoring,
                xdrop,
                workers=self.workers,
                trace=self.trace,
                compact_threshold=self.compact_threshold,
                tile_width=self.tile_width,
                stats=stats,
            )
            sides: dict[tuple[int, str], ExtensionResult] = {
                (task.job_index, task.direction): ext
                for task, ext in zip(tasks, extensions)
            }
            results = []
            for index, job in enumerate(jobs):
                left = sides[(index, "left")]
                right = sides[(index, "right")]
                anchor = prepared.seed_scores[index]
                seed = job.seed
                results.append(
                    SeedAlignmentResult(
                        score=int(left.best_score + right.best_score + anchor),
                        left=left,
                        right=right,
                        seed_score=anchor,
                        query_begin=seed.query_pos - left.query_end,
                        query_end=seed.query_end + right.query_end,
                        target_begin=seed.target_pos - left.target_end,
                        target_end=seed.target_end + right.target_end,
                    )
                )
        return EngineBatchResult(
            engine=self.name,
            results=results,
            summary=summarize_results(results),
            elapsed_seconds=timer.elapsed,
            extras={"kernel_stats": stats} if stats is not None else {},
        )


class _PairKernelEngine(_EngineBase):
    """Engines that run one batch-kernel call over the prepared extensions.

    Jobs are split at their seeds exactly like :class:`BatchedEngine`;
    zero-length sides never reach the kernel (the shared batch-runner
    contract) and are reinserted as zero-score extensions in task order.
    Subclasses provide :meth:`_extend_pairs` mapping the live
    ``(query, target)`` pairs to per-pair :class:`ExtensionResult`\\ s.
    """

    def _extend_pairs(self, pairs, scoring, xdrop) -> list[ExtensionResult]:
        raise NotImplementedError  # pragma: no cover - abstract

    def _align_batch(
        self,
        jobs: Sequence[AlignmentJob],
        scoring: ScoringScheme | None = None,
        xdrop: int | None = None,
    ) -> EngineBatchResult:
        scoring, xdrop = self._resolve(scoring, xdrop)
        timer = Timer()
        with timer:
            prepared = prepare_batch(jobs, scoring)
            tasks = prepared.left_tasks + prepared.right_tasks
            live = [task for task in tasks if not task.is_empty]
            pairs = [(task.query, task.target) for task in live]
            live_results = iter(
                self._extend_pairs(pairs, scoring, xdrop) if pairs else []
            )
            sides: dict[tuple[int, str], ExtensionResult] = {}
            for task in tasks:
                ext = (
                    empty_extension(self.trace)
                    if task.is_empty
                    else next(live_results)
                )
                sides[(task.job_index, task.direction)] = ext
            results = []
            for index, job in enumerate(jobs):
                left = sides[(index, "left")]
                right = sides[(index, "right")]
                anchor = prepared.seed_scores[index]
                seed = job.seed
                results.append(
                    SeedAlignmentResult(
                        score=int(left.best_score + right.best_score + anchor),
                        left=left,
                        right=right,
                        seed_score=anchor,
                        query_begin=seed.query_pos - left.query_end,
                        query_end=seed.query_end + right.query_end,
                        target_begin=seed.target_pos - left.target_end,
                        target_end=seed.target_end + right.target_end,
                    )
                )
        return EngineBatchResult(
            engine=self.name,
            results=results,
            summary=summarize_results(results),
            elapsed_seconds=timer.elapsed,
        )


class CompiledEngine(_PairKernelEngine):
    """numba-JIT per-pair banded sweep — the batched semantics without interpreter cost.

    Runs :func:`repro.core.xdrop_compiled.xdrop_extend_compiled`: the scalar
    reference recurrence compiled per pair, touching exactly the live band
    (the effect the batched kernel's compaction/tiling approximates) with
    the same dtype-tier overflow guard.  Bit-identical to the reference on
    every scoring scheme, including work accounting and band traces.

    The registry marks this engine unavailable when numba is not installed
    (``repro-align --list-engines`` shows the reason); the class itself
    still works everywhere by falling back to the pure-Python kernel, which
    is what the test-suite exercises on numba-less environments.  ``workers``
    is accepted for signature uniformity and ignored (the compiled loop is
    already single-pass per pair).
    """

    name = "compiled"

    def _extend_pairs(self, pairs, scoring, xdrop) -> list[ExtensionResult]:
        return xdrop_extend_compiled(
            pairs, scoring=scoring, xdrop=xdrop, trace=self.trace
        )


class WavefrontEngine(_PairKernelEngine):
    """WFA-style furthest-reaching-point X-drop extension (unit scoring only).

    Runs :func:`repro.core.wavefront.wavefront_extend_batch`: snake-walking
    furthest-reaching points per (cost, diagonal) instead of sweeping DP
    anti-diagonals, so work scales with accumulated *cost* rather than
    sequence length — on high-identity reads this removes almost all of the
    anti-diagonal stepping and beats the batched kernel outright.

    Exact on scores, end positions and early-termination for the unit
    scheme (match=+1, mismatch=-1, gap=-1) only; any other scheme raises
    :class:`ConfigurationError` at construction and on per-call overrides.
    Cost-space execution has no per-anti-diagonal band, so cells /
    anti-diagonal accounting is an honest equivalent-work estimate
    (``work_exact = False``).  ``workers`` is accepted for signature
    uniformity and ignored.
    """

    name = "wavefront"
    work_exact = False

    def __init__(
        self,
        scoring: ScoringScheme | None = None,
        xdrop: int = 100,
        workers: int = 1,
        trace: bool = False,
    ) -> None:
        super().__init__(scoring=scoring, xdrop=xdrop, workers=workers, trace=trace)
        ensure_unit_scoring(self.scoring)

    def _extend_pairs(self, pairs, scoring, xdrop) -> list[ExtensionResult]:
        ensure_unit_scoring(scoring)
        return wavefront_extend_batch(
            pairs, scoring=scoring, xdrop=xdrop, trace=self.trace
        )


class SeqAnEngine(_EngineBase):
    """SeqAn-like CPU batch runner with the modeled POWER9 runtime."""

    name = "seqan"

    def _align_batch(
        self,
        jobs: Sequence[AlignmentJob],
        scoring: ScoringScheme | None = None,
        xdrop: int | None = None,
    ) -> EngineBatchResult:
        scoring, xdrop = self._resolve(scoring, xdrop)
        aligner = SeqAnBatchAligner(
            scoring=scoring, xdrop=xdrop, workers=self.workers, trace=self.trace
        )
        batch = aligner.align_batch(jobs)
        return EngineBatchResult(
            engine=self.name,
            results=batch.results,
            summary=batch.summary,
            elapsed_seconds=batch.elapsed_seconds,
            modeled_seconds=batch.modeled_seconds,
            extras={"batch": batch},
        )


class Ksw2Engine(_EngineBase):
    """ksw2-style affine Z-drop runner with the modeled Skylake runtime.

    Not score-exact with the X-drop reference: the recurrence is affine-gap
    and the termination rule is Z-drop, so scores are comparable but not
    identical (``exact = False``).  The ``xdrop`` parameter is used as the
    Z-drop threshold, the mapping of LOGAN's benchmark harness.

    A non-default linear ``scoring`` has its match/mismatch scores carried
    over into the affine scheme (the gap terms keep ksw2's minimap2
    defaults, which have no linear equivalent); pass ``affine_scoring`` to
    control the affine scheme fully.
    """

    name = "ksw2"
    exact = False

    def __init__(
        self,
        scoring: ScoringScheme | None = None,
        xdrop: int = 100,
        workers: int = 1,
        trace: bool = False,
        affine_scoring: AffineScoringScheme | None = None,
        bandwidth: int | None = None,
    ) -> None:
        super().__init__(scoring=scoring, xdrop=xdrop, workers=workers, trace=trace)
        self._explicit_affine = affine_scoring
        self.affine_scoring = affine_scoring or self._derive_affine(self.scoring)
        self.bandwidth = bandwidth

    @staticmethod
    def _derive_affine(scoring: ScoringScheme) -> AffineScoringScheme:
        """Affine scheme honouring a custom linear substitution scoring."""
        if scoring == ScoringScheme():
            return AffineScoringScheme()  # minimap2 map-pb defaults
        base = AffineScoringScheme()
        return AffineScoringScheme(
            match=scoring.match,
            mismatch=scoring.mismatch,
            gap_open=base.gap_open,
            gap_extend=base.gap_extend,
        )

    def _align_batch(
        self,
        jobs: Sequence[AlignmentJob],
        scoring: ScoringScheme | None = None,
        xdrop: int | None = None,
    ) -> EngineBatchResult:
        scoring, zdrop = self._resolve(scoring, xdrop)
        affine = self._explicit_affine or self._derive_affine(scoring)
        aligner = Ksw2BatchAligner(
            scoring=affine,
            zdrop=zdrop,
            bandwidth=self.bandwidth,
            workers=self.workers,
        )
        batch = aligner.align_batch(jobs)
        results = []
        for job, (left, right), score in zip(jobs, batch.results, batch.scores):
            left_ext = self._to_extension(left)
            right_ext = self._to_extension(right)
            seed = job.seed
            results.append(
                SeedAlignmentResult(
                    score=int(score),
                    left=left_ext,
                    right=right_ext,
                    seed_score=seed.length * affine.match,
                    query_begin=seed.query_pos - left.query_end,
                    query_end=seed.query_end + right.query_end,
                    target_begin=seed.target_pos - left.target_end,
                    target_end=seed.target_end + right.target_end,
                )
            )
        return EngineBatchResult(
            engine=self.name,
            results=results,
            summary=batch.summary,
            elapsed_seconds=batch.elapsed_seconds,
            modeled_seconds=batch.modeled_seconds,
            extras={"batch": batch, "band": batch.band},
        )

    @staticmethod
    def _to_extension(res) -> ExtensionResult:
        return ExtensionResult(
            best_score=res.best_score,
            query_end=res.query_end,
            target_end=res.target_end,
            anti_diagonals=res.rows_computed,
            cells_computed=res.cells_computed,
            terminated_early=res.terminated_early,
        )


class LoganEngine(_EngineBase):
    """LOGAN batch aligner with the modeled V100 multi-GPU runtime.

    ``trace`` is accepted for signature uniformity; LOGAN always traces
    (the GPU execution model replays the band traces).
    """

    name = "logan"

    def __init__(
        self,
        scoring: ScoringScheme | None = None,
        xdrop: int = 100,
        workers: int = 1,
        trace: bool = False,
        system=None,
        gpus: int | None = None,
        threads_per_block: int | None = None,
        execution: str = "batched",
    ) -> None:
        super().__init__(scoring=scoring, xdrop=xdrop, workers=workers, trace=trace)
        from ..gpusim.multi_gpu import MultiGpuSystem
        from ..logan.batch import LoganAligner

        if system is None and gpus is not None:
            system = MultiGpuSystem.homogeneous(gpus)
        self.aligner = LoganAligner(
            system=system,
            scoring=self.scoring,
            xdrop=self.xdrop,
            threads_per_block=threads_per_block,
            workers=self.workers,
            engine=execution,
        )

    def _align_batch(
        self,
        jobs: Sequence[AlignmentJob],
        scoring: ScoringScheme | None = None,
        xdrop: int | None = None,
    ) -> EngineBatchResult:
        scoring, xdrop = self._resolve(scoring, xdrop)
        aligner = self.aligner
        if scoring is not aligner.scoring or xdrop != aligner.xdrop:
            from ..logan.batch import LoganAligner

            aligner = LoganAligner(
                system=aligner.system,
                scoring=scoring,
                xdrop=xdrop,
                threads_per_block=aligner._explicit_threads,
                workers=aligner.workers,
                engine=aligner.engine,
            )
        batch = aligner.align_batch(jobs)
        return EngineBatchResult(
            engine=self.name,
            results=batch.results,
            summary=batch.summary,
            elapsed_seconds=batch.elapsed_seconds,
            modeled_seconds=batch.modeled_seconds,
            extras={"batch": batch, "modeled_gcups": batch.modeled_gcups},
        )


register_engine("reference", ReferenceEngine)
register_engine("vectorized", VectorizedEngine)
register_engine("batched", BatchedEngine)
register_engine(
    "compiled",
    CompiledEngine,
    available=HAVE_NUMBA,
    reason=None
    if HAVE_NUMBA
    else (
        "the optional dependency numba is not installed "
        f"(pip install numba): {NUMBA_IMPORT_ERROR}"
    ),
)
register_engine("wavefront", WavefrontEngine)
register_engine("seqan", SeqAnEngine)
register_engine("ksw2", Ksw2Engine)
register_engine("logan", LoganEngine)
