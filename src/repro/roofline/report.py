"""Text/series rendering of the instruction Roofline (Fig. 13).

No plotting library is assumed to be available, so the report produces

* the numeric series needed to recreate the figure in any plotting tool
  (ceiling lines sampled over a log-spaced OI range plus the kernel point),
  serialisable to JSON, and
* a simple ASCII log-log rendering for terminal inspection, with the memory
  roof, the INT32 roof, the adapted ceiling and the kernel's point.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .instrument import RooflineAnalysis

__all__ = ["RooflineSeries", "build_series", "render_ascii"]


@dataclass
class RooflineSeries:
    """Numeric series of a Roofline plot.

    Attributes
    ----------
    operational_intensity:
        Log-spaced OI sample positions (warp instructions / byte).
    memory_roof, int32_roof, adapted_roof:
        Attainable warp GIPS at each sample position for the three ceilings.
    point_oi, point_gips, point_label:
        The kernel's measured/modeled position.
    """

    operational_intensity: list[float]
    memory_roof: list[float]
    int32_roof: list[float]
    adapted_roof: list[float]
    point_oi: float
    point_gips: float
    point_label: str
    ridge_point: float

    def to_json(self) -> str:
        """JSON representation for archiving / external plotting."""
        return json.dumps(self.__dict__, indent=2)


def build_series(
    analysis: RooflineAnalysis, oi_min: float = 1e-2, oi_max: float = 1e3, samples: int = 64
) -> RooflineSeries:
    """Sample the Roofline ceilings around the kernel's operational intensity."""
    if oi_min <= 0 or oi_max <= oi_min:
        raise ConfigurationError("need 0 < oi_min < oi_max")
    if samples < 2:
        raise ConfigurationError("samples must be at least 2")
    ceilings = analysis.ceilings
    oi = np.logspace(math.log10(oi_min), math.log10(oi_max), samples)
    memory = ceilings.memory_bandwidth_gbps * oi
    int32 = np.minimum(memory, ceilings.int32_warp_gips)
    adapted = np.minimum(memory, ceilings.adapted_warp_gips)
    return RooflineSeries(
        operational_intensity=[float(x) for x in oi],
        memory_roof=[float(x) for x in memory],
        int32_roof=[float(x) for x in int32],
        adapted_roof=[float(x) for x in adapted],
        point_oi=analysis.point.operational_intensity,
        point_gips=analysis.point.warp_gips,
        point_label=analysis.point.label,
        ridge_point=ceilings.ridge_point,
    )


def render_ascii(series: RooflineSeries, width: int = 72, height: int = 20) -> str:
    """ASCII log-log rendering of the Roofline (ceilings + kernel point)."""
    if width < 20 or height < 8:
        raise ConfigurationError("plot must be at least 20x8 characters")
    oi = np.asarray(series.operational_intensity)
    all_gips = np.concatenate(
        [series.int32_roof, series.adapted_roof, [max(series.point_gips, 1e-3)]]
    )
    y_max = float(np.max(all_gips)) * 1.5
    y_min = max(1e-2, float(np.min(all_gips)) / 10)
    x_min, x_max = float(oi.min()), float(oi.max())

    def col(x: float) -> int:
        return int(
            (math.log10(x) - math.log10(x_min))
            / (math.log10(x_max) - math.log10(x_min))
            * (width - 1)
        )

    def row(y: float) -> int:
        y = min(max(y, y_min), y_max)
        return (height - 1) - int(
            (math.log10(y) - math.log10(y_min))
            / (math.log10(y_max) - math.log10(y_min))
            * (height - 1)
        )

    grid = [[" "] * width for _ in range(height)]
    for x, mem, hard, soft in zip(
        series.operational_intensity,
        series.memory_roof,
        series.int32_roof,
        series.adapted_roof,
    ):
        c = col(x)
        if y_min <= mem <= y_max:
            grid[row(mem)][c] = "/"
        grid[row(hard)][c] = "="
        grid[row(soft)][c] = "-"
    pr, pc = row(max(series.point_gips, y_min)), col(
        min(max(series.point_oi, x_min), x_max)
    )
    grid[pr][pc] = "*"

    lines = ["Instruction Roofline (=: INT32 roof, -: adapted ceiling, /: memory roof, *: kernel)"]
    lines.extend("".join(r) for r in grid)
    lines.append(
        f"OI = {series.point_oi:.3g} warp-instr/byte, performance = "
        f"{series.point_gips:.1f} warp GIPS, ridge point = {series.ridge_point:.3g}"
    )
    return "\n".join(lines)
