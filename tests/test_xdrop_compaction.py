"""Differential tests of the compacting/tiled batched X-drop kernel.

The PR-5 hot-path overhaul (active-row compaction, int16/int32 downsizing,
column tiling) must be invisible in every output bit: these tests replay
workload-bank profiles through the :class:`repro.testing.ConformanceRunner`
against the scalar oracle (tier-1 subset here, the full matrix under the
``tier2`` marker), assert invariance of the results to the tuning knobs
(including a Hypothesis sweep over random thresholds/tile widths), and pin
the short-circuit behaviour for fully-retired rows on the ``degenerate``
profile.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import AlignConfig
from repro.core import ScoringScheme
from repro.core.xdrop import xdrop_extend_reference
from repro.core.xdrop_batch import (
    DEFAULT_COMPACT_THRESHOLD,
    DEFAULT_TILE_WIDTH,
    BatchKernelStats,
    xdrop_extend_batch,
)
from repro.engine import get_engine, register_engine, unregister_engine
from repro.engine.engines import BatchedEngine
from repro.errors import ConfigurationError
from repro.testing import ConformanceRunner
from repro.workloads import WorkloadSpec, generate_workload, list_profiles

CONFIG = AlignConfig(engine="batched", xdrop=15, trace=True)
SPEC = WorkloadSpec(count=6, seed=23, min_length=50, max_length=140, xdrop=15)

#: Knob settings that force every mechanism on hard: compaction at every
#: retirement, single-column tiles, and a mid-range tile.
FORCED_TUNINGS = [
    {"compact_threshold": 1.0, "tile_width": 1},
    {"compact_threshold": 1.0, "tile_width": 7},
    {"compact_threshold": 0.0, "tile_width": 3},
    {"compact_threshold": 0.25, "tile_width": 64},
]


def _pairs_from_workload(profile: str, spec: WorkloadSpec = SPEC):
    """Raw (query, target) extension inputs from a workload's jobs."""
    workload = generate_workload(profile, spec)
    return [(job.query, job.target) for job in workload.jobs]


def _result_tuple(res):
    return (
        res.best_score,
        res.query_end,
        res.target_end,
        res.anti_diagonals,
        res.cells_computed,
        res.terminated_early,
    )


def assert_identical(batch_results, reference_results):
    for k, (got, ref) in enumerate(zip(batch_results, reference_results)):
        assert _result_tuple(got) == _result_tuple(ref), k
        same_trace = (got.band_widths is None) == (ref.band_widths is None) and (
            got.band_widths is None
            or np.array_equal(got.band_widths, ref.band_widths)
        )
        assert same_trace, k


# --------------------------------------------------------------------------- #
# Tier-1 differential subset: conformance runner over three profiles
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("profile", ["pacbio", "degenerate", "xdrop_boundary"])
def test_tier1_profile_conformance_default_knobs(profile):
    """Workload profiles through the reworked kernel vs the scalar oracle.

    Scores, extents, work accounting *and traces* must be bit-identical
    (``CONFIG.trace`` is on, so ``compare_results`` checks band widths).
    """
    runner = ConformanceRunner(
        CONFIG, engines=["reference", "batched"], include_service=False
    )
    report = runner.run_workload(generate_workload(profile, SPEC))
    assert report.ok, report.summary()
    assert report.comparisons >= SPEC.count


@pytest.mark.parametrize("tuning", FORCED_TUNINGS, ids=lambda t: str(t))
def test_tier1_forced_knobs_bit_identical(tuning):
    """Forced compaction/tiling settings on a mixed workload, per-pair."""
    pairs = _pairs_from_workload("pacbio") + _pairs_from_workload("length_skew")
    tuned = xdrop_extend_batch(pairs, xdrop=15, trace=True, **tuning)
    reference = [
        xdrop_extend_reference(q, t, xdrop=15, trace=True) for q, t in pairs
    ]
    assert_identical(tuned, reference)


# --------------------------------------------------------------------------- #
# Tier-2 full matrix: every profile x forced-knob engine via the runner
# --------------------------------------------------------------------------- #
@pytest.mark.tier2
@pytest.mark.parametrize("tuning", FORCED_TUNINGS, ids=lambda t: str(t))
@pytest.mark.parametrize("profile", list_profiles())
class TestCompactionConformanceMatrix:
    def test_profile_conformance_with_forced_knobs(self, profile, tuning):
        def factory(scoring=None, xdrop=100, workers=1, trace=False):
            return BatchedEngine(
                scoring=scoring, xdrop=xdrop, workers=workers, trace=trace, **tuning
            )

        factory.exact = True
        factory.__doc__ = "Batched engine with forced compaction/tiling knobs."
        register_engine("batched-tuned", factory)
        try:
            runner = ConformanceRunner(
                CONFIG,
                engines=["reference", "batched-tuned"],
                include_service=False,
            )
            report = runner.run_workload(generate_workload(profile, SPEC))
            assert report.ok, report.summary()
        finally:
            unregister_engine("batched-tuned")


# --------------------------------------------------------------------------- #
# Hypothesis: results are invariant to any legal knob combination
# --------------------------------------------------------------------------- #
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    threshold=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    tile=st.integers(min_value=1, max_value=256),
    seed=st.integers(min_value=0, max_value=2**20),
)
def test_kernel_invariant_to_tuning_knobs(threshold, tile, seed):
    rng = np.random.default_rng(seed)
    batch = int(rng.integers(1, 10))
    pairs = []
    for _ in range(batch):
        m = int(rng.integers(1, 70))
        n = int(rng.integers(1, 70))
        pairs.append(
            (
                rng.integers(0, 4, size=m).astype(np.uint8),
                rng.integers(0, 4, size=n).astype(np.uint8),
            )
        )
    xdrop = int(rng.integers(0, 30))
    baseline = xdrop_extend_batch(pairs, xdrop=xdrop, trace=True)
    tuned = xdrop_extend_batch(
        pairs,
        xdrop=xdrop,
        trace=True,
        compact_threshold=threshold,
        tile_width=tile,
    )
    assert_identical(tuned, baseline)


# --------------------------------------------------------------------------- #
# Regression: fully-retired rows are short-circuited (degenerate profile)
# --------------------------------------------------------------------------- #
def test_degenerate_retired_rows_short_circuited():
    """A long straggler plus a degenerate batch: dead rows must stop costing.

    Before the rework, every anti-diagonal step re-derived band bounds for
    every retired row, so ``row_steps`` would equal ``rows * steps``.  With
    compaction, the instantly-retiring degenerate extensions must be
    dropped after a handful of steps while the straggler runs on alone.
    """
    rng = np.random.default_rng(7)
    straggler = rng.integers(0, 4, size=400).astype(np.uint8)
    pairs = [(straggler, straggler.copy())]
    pairs += _pairs_from_workload("degenerate", WorkloadSpec(count=24, seed=5))

    stats = BatchKernelStats()
    results = xdrop_extend_batch(pairs, xdrop=15, stats=stats)
    reference = [xdrop_extend_reference(q, t, xdrop=15) for q, t in pairs]
    assert_identical(results, reference)

    assert stats.compactions >= 1
    # The straggler alone accounts for ~steps row-steps; the 24 degenerate
    # rows retire almost immediately, so without compaction row_steps would
    # be ~25x steps.  Allow generous slack while still proving the
    # short-circuit.
    assert stats.row_steps < stats.steps * 4, stats.to_dict()
    assert stats.live_fraction > 0.5


def test_degenerate_profile_conformance_with_stats():
    """Degenerate workload through the batched engine, stats attached."""
    engine = get_engine("batched", xdrop=15)
    workload = generate_workload("degenerate", SPEC)
    batch = engine.align_batch(workload.jobs)
    stats = batch.extras["kernel_stats"]
    assert stats.rows > 0
    # Seed-flush (empty) extensions never reach the kernel; they add one
    # accounting cell each outside the sweep, so the kernel's cell count is
    # bounded by — and close to — the per-result accounting.
    total = sum(r.cells_computed for r in batch.results)
    assert 0 < stats.cells <= total
    assert total - stats.cells == 2 * len(batch.results) - stats.rows


# --------------------------------------------------------------------------- #
# Overflow guard and knob validation
# --------------------------------------------------------------------------- #
def test_dtype_guard_tiers():
    rng = np.random.default_rng(3)
    q = rng.integers(0, 4, size=40).astype(np.uint8)
    pairs = [(q, q.copy())]
    small = BatchKernelStats()
    xdrop_extend_batch(pairs, xdrop=10, stats=small)
    assert small.dtype == "int16"

    mid = BatchKernelStats()
    xdrop_extend_batch(pairs, xdrop=10**6, stats=mid)
    assert mid.dtype == "int32"

    wide = BatchKernelStats()
    huge = ScoringScheme(match=2**32, mismatch=-(2**32), gap=-(2**32))
    xdrop_extend_batch(pairs, scoring=huge, xdrop=10, stats=wide)
    assert wide.dtype == "int64"


def test_dtype_tiers_agree_with_reference():
    """The int64 fallback and downsized tiers produce identical answers."""
    rng = np.random.default_rng(9)
    pairs = [
        (
            rng.integers(0, 4, size=int(rng.integers(1, 60))).astype(np.uint8),
            rng.integers(0, 4, size=int(rng.integers(1, 60))).astype(np.uint8),
        )
        for _ in range(6)
    ]
    for xdrop in (0, 12, 10**6, 2**40):
        got = xdrop_extend_batch(pairs, xdrop=xdrop, trace=True)
        ref = [xdrop_extend_reference(q, t, xdrop=xdrop, trace=True) for q, t in pairs]
        assert_identical(got, ref)


def _run_compiled(pairs, scoring=None, xdrop=100):
    from repro.core.xdrop_compiled import xdrop_extend_compiled

    return xdrop_extend_compiled(pairs, scoring=scoring, xdrop=xdrop, trace=True)


def _run_batched(pairs, scoring=None, xdrop=100):
    return xdrop_extend_batch(pairs, scoring=scoring, xdrop=xdrop, trace=True)


@pytest.mark.parametrize(
    "run_kernel", [_run_batched, _run_compiled], ids=["batched", "compiled"]
)
@pytest.mark.parametrize(
    "length, scoring, xdrop, expected_dtype",
    [
        # Long near-identical pair: the running best climbs past the int16
        # sentinel magnitude (2**14), so int16 buffers would corrupt the
        # pruning comparisons — the guard must take the int32 tier.
        (2100, ScoringScheme(match=8, mismatch=-8, gap=-8), 40, "int32"),
        # X threshold alone floods the int32 bound: int64 fallback.
        (300, ScoringScheme(), 2**31, "int64"),
    ],
    ids=["score-exceeds-int16", "xdrop-exceeds-int32"],
)
def test_overflow_guard_on_near_identical_pairs(
    run_kernel, length, scoring, xdrop, expected_dtype
):
    """Wavefront-shaped adversarial input: long, almost-identical pairs.

    The ``batched`` and ``compiled`` kernels share ``_select_dtype``; both
    must pick the same widened tier and stay bit-identical to the scalar
    reference (which always computes in Python ints).
    """
    from repro.core.xdrop_batch import _select_dtype

    rng = np.random.default_rng(41)
    q = rng.integers(0, 4, size=length).astype(np.uint8)
    t = q.copy()
    for pos in rng.choice(length, size=8, replace=False):
        t[pos] = (int(t[pos]) + 1 + int(rng.integers(0, 3))) % 4
    pairs = [(q, t), (q.copy(), q.copy())]

    dtype, _ = _select_dtype(length, length, scoring, xdrop)
    assert np.dtype(dtype).name == expected_dtype

    got = run_kernel(pairs, scoring=scoring, xdrop=xdrop)
    ref = [
        xdrop_extend_reference(a, b, scoring=scoring, xdrop=xdrop, trace=True)
        for a, b in pairs
    ]
    assert_identical(got, ref)
    # the identical pair really does exceed the int16 sentinel in tier one
    if expected_dtype == "int32":
        assert got[1].best_score == length * scoring.match > 2**14


def test_overflow_guard_batched_stats_report_widened_tier():
    rng = np.random.default_rng(42)
    q = rng.integers(0, 4, size=2100).astype(np.uint8)
    scoring = ScoringScheme(match=8, mismatch=-8, gap=-8)
    stats = BatchKernelStats()
    xdrop_extend_batch([(q, q.copy())], scoring=scoring, xdrop=40, stats=stats)
    assert stats.dtype == "int32"


def test_invalid_knobs_rejected():
    pairs = [("ACGT", "ACGT")]
    with pytest.raises(ConfigurationError):
        xdrop_extend_batch(pairs, compact_threshold=1.5)
    with pytest.raises(ConfigurationError):
        xdrop_extend_batch(pairs, compact_threshold=-0.1)
    with pytest.raises(ConfigurationError):
        xdrop_extend_batch(pairs, tile_width=0)


# --------------------------------------------------------------------------- #
# Stats plumbing: engine options, merge, and the service hint
# --------------------------------------------------------------------------- #
def test_engine_options_reach_the_kernel():
    config = AlignConfig(
        engine="batched",
        xdrop=15,
        engine_options={"compact_threshold": 1.0, "tile_width": 3},
    )
    engine = config.build_engine()
    assert engine.compact_threshold == 1.0
    assert engine.tile_width == 3
    workload = generate_workload("pacbio", SPEC)
    tuned = engine.align_batch(workload.jobs)
    baseline = get_engine("batched", xdrop=15).align_batch(workload.jobs)
    assert [r.score for r in tuned.results] == [r.score for r in baseline.results]
    assert tuned.extras["kernel_stats"].compactions >= 0


def test_stats_merge_and_suggestion():
    a = BatchKernelStats(rows=4, steps=10, row_steps=40, active_row_steps=10,
                         compactions=1, tiles=10, peak_window=8, cells=100,
                         dtype="int16")
    b = BatchKernelStats(rows=2, steps=5, row_steps=10, active_row_steps=10,
                         compactions=0, tiles=5, peak_window=16, cells=50,
                         dtype="int16")
    merged = BatchKernelStats().merge(a).merge(b)
    assert merged.rows == 6 and merged.steps == 15
    assert merged.peak_window == 16
    assert merged.cells == 150
    assert merged.dtype == "int16"
    assert 0.0 < merged.live_fraction < 1.0
    # Uneven retirement (low live fraction) suggests shrinking the batch.
    assert a.suggested_batch_size(64) == 32
    # Uniform retirement (high live fraction) suggests growing it.
    assert b.suggested_batch_size(64) == 128
    assert BatchKernelStats().suggested_batch_size(64) == 64


def test_default_knob_constants_are_sane():
    assert 0.0 < DEFAULT_COMPACT_THRESHOLD <= 1.0
    assert DEFAULT_TILE_WIDTH >= 64


def test_service_exposes_kernel_batch_hint():
    from repro.service import AlignmentService

    workload = generate_workload("pacbio", SPEC)
    with AlignmentService(config=AlignConfig(engine="batched", xdrop=15)) as service:
        tickets = service.submit_many(workload.jobs)
        service.drain()
        for ticket in tickets:
            ticket.result(timeout=30.0)
        stats = service.stats()
    assert stats.kernel_live_fraction is not None
    assert 0.0 < stats.kernel_live_fraction <= 1.0
    assert stats.suggested_batch_size is not None
    assert stats.suggested_batch_size >= 8
    payload = stats.to_dict()
    assert "kernel_live_fraction" in payload
    assert "suggested_batch_size" in payload


def _window_entry(rows: int, fraction: float) -> BatchKernelStats:
    """One batch accumulator whose weighted live fraction is ``fraction``."""
    return BatchKernelStats(
        rows=rows,
        steps=rows,
        row_steps=rows * 10,
        active_row_steps=int(rows * 10 * fraction),
        cells=rows * 100,
        peak_window=64,
        weighted_rows=rows,
        weighted_live=fraction * rows,
    )


def test_windowed_stats_trims_to_the_ring():
    from repro.core.xdrop_batch import WindowedKernelStats

    window = WindowedKernelStats(window=3)
    for index in range(5):
        window.observe(_window_entry(rows=8, fraction=0.1 * (index + 1)))
    # Only the newest three batches survive; lifetime count keeps all five.
    assert window.batches == 3 and len(window) == 3
    assert window.total_batches == 5
    assert window.rows == 24
    # Mean of the surviving fractions (0.3, 0.4, 0.5), not the lifetime mean.
    assert window.live_fraction == pytest.approx(0.4, abs=1e-9)
    assert window.rows_weighted_live_fraction == pytest.approx(0.4, abs=1e-9)


def test_windowed_stats_merged_matches_manual_fold():
    from repro.core.xdrop_batch import WindowedKernelStats

    entries = [_window_entry(rows=4, fraction=0.2), _window_entry(rows=12, fraction=0.9)]
    window = WindowedKernelStats(window=8)
    manual = BatchKernelStats()
    for entry in entries:
        window.observe(entry)
        manual.merge(entry)
    merged = window.merged()
    assert merged.rows == manual.rows == 16
    assert merged.cells == manual.cells
    assert merged.rows_weighted_live_fraction == pytest.approx(
        manual.rows_weighted_live_fraction
    )
    # The windowed hint is the merged accumulator's hint, nothing more.
    assert window.suggested_batch_size(32) == merged.suggested_batch_size(32)


def test_windowed_stats_edge_cases():
    from repro.core.xdrop_batch import WindowedKernelStats

    with pytest.raises(ConfigurationError):
        WindowedKernelStats(window=0)
    empty = WindowedKernelStats(window=4)
    assert empty.batches == 0 and empty.total_batches == 0
    assert empty.live_fraction == 1.0
    assert empty.suggested_batch_size(64) == 64
    payload = empty.to_dict()
    assert payload["window"] == 4
    assert payload["window_batches"] == 0
    assert payload["total_batches"] == 0

    window = WindowedKernelStats(window=2)
    window.observe(_window_entry(rows=8, fraction=0.95))
    payload = window.to_dict()
    assert payload["window_batches"] == 1 and payload["total_batches"] == 1
    assert payload["rows"] == 8
