"""Tests for LOGAN's host preprocessing layer."""

from __future__ import annotations

import pytest

from repro.core import Seed
from repro.core.job import AlignmentJob
from repro.errors import ConfigurationError
from repro.gpusim import TESLA_V100
from repro.logan import HostModel, prepare_batch, threads_for_xdrop


class TestThreadsForXdrop:
    def test_paper_value_for_x100(self):
        # Table I uses 128 threads per block at X = 100.
        assert threads_for_xdrop(100, TESLA_V100) == 128

    def test_minimum_two_warps(self):
        assert threads_for_xdrop(0, TESLA_V100) == 64
        assert threads_for_xdrop(5, TESLA_V100) == 64

    def test_capped_at_device_maximum(self):
        assert threads_for_xdrop(5000, TESLA_V100) == 1024

    def test_monotone_in_x(self):
        values = [threads_for_xdrop(x, TESLA_V100) for x in (10, 50, 100, 300, 600, 1200)]
        assert values == sorted(values)

    def test_multiple_of_warp_size(self):
        for x in (1, 37, 100, 450, 999):
            assert threads_for_xdrop(x, TESLA_V100) % TESLA_V100.warp_size == 0

    def test_gap_penalty_widens_band(self):
        assert threads_for_xdrop(100, TESLA_V100, gap_penalty=1) >= threads_for_xdrop(
            100, TESLA_V100, gap_penalty=4
        )

    def test_negative_x_rejected(self):
        with pytest.raises(ConfigurationError):
            threads_for_xdrop(-1, TESLA_V100)


class TestPrepareBatch:
    def test_split_and_reversal(self, scoring):
        # Query carries the seed "CGT" at position 3, target at position 2.
        job = AlignmentJob(query="AAACGTTTT", target="CCCGTGGGG", seed=Seed(3, 2, 3))
        batch = prepare_batch([job], scoring)
        assert batch.num_jobs == 1
        left = batch.left_tasks[0]
        right = batch.right_tasks[0]
        # Left-extension sequences are reversed prefixes.
        assert list(left.query) == list(job.query[:3][::-1])
        assert list(left.target) == list(job.target[:2][::-1])
        assert list(right.query) == list(job.query[6:])
        assert list(right.target) == list(job.target[5:])
        assert batch.seed_scores[0] == 3 * scoring.match
        assert batch.total_bases == 9 + 9

    def test_empty_side_detection(self, scoring):
        job = AlignmentJob(query="ACGTACGT", target="ACGTACGT", seed=Seed(0, 0, 4))
        batch = prepare_batch([job], scoring)
        assert batch.left_tasks[0].is_empty
        assert not batch.right_tasks[0].is_empty

    def test_job_indices_align_with_batch_order(self, small_jobs, scoring):
        batch = prepare_batch(small_jobs, scoring)
        assert [t.job_index for t in batch.left_tasks] == list(range(len(small_jobs)))
        assert [t.job_index for t in batch.right_tasks] == list(range(len(small_jobs)))


class TestHostModel:
    def test_seconds_scale_with_bases(self):
        model = HostModel(ns_per_base=2.0, ns_per_alignment=0.0, fixed_seconds=0.0)
        assert model.seconds(1_000_000_000, 0) == pytest.approx(2.0)

    def test_seconds_scale_with_alignments(self):
        model = HostModel(ns_per_base=0.0, ns_per_alignment=1000.0, fixed_seconds=0.0)
        # 1e6 alignments x 1000 ns = 1 s of host-side bookkeeping.
        assert model.seconds(0, 1_000_000) == pytest.approx(1.0)

    def test_fixed_cost_sets_the_small_batch_floor(self):
        model = HostModel()
        tiny = model.seconds(10, 1)
        assert tiny == pytest.approx(model.fixed_seconds, rel=0.01)
        assert model.seconds(10**12, 10**8) > tiny

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            HostModel(ns_per_base=-1.0)
        with pytest.raises(ConfigurationError):
            HostModel(fixed_seconds=-0.1)
        with pytest.raises(ConfigurationError):
            HostModel().seconds(-1, 0)
