"""Throughput models of the GPU competitors in Fig. 12 (CUDASW++ and manymap).

Fig. 12 of the paper compares LOGAN against two GPU codes in terms of GCUPS
as a function of GPU count:

* **CUDASW++ 3.0** — exact Smith–Waterman for protein database search.  The
  paper reports at most ~70 GCUPS per V100 in GPU-only mode on this workload
  (long DNA reads are far from its design point of <400-residue proteins)
  and ~185 GCUPS peak in hybrid CPU-SIMD + GPU mode on short sequences.
* **manymap** — Feng et al.'s GPU port of minimap2's seed-chain-extend; the
  paper quotes 96.5 GCUPS on a single GPU and notes it does not scale to
  multiple GPUs (reported as a flat line in Fig. 12).

Neither code is available to us (and both implement different algorithms
performing different work), so — exactly like the paper, which quotes their
numbers rather than re-deriving them — we model them as throughput curves.
The only modelling freedom is the multi-GPU scaling of CUDASW++, which the
paper describes as sub-linear; we use a fixed per-GPU efficiency factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = [
    "GpuThroughputModel",
    "CUDASW_GPU_ONLY",
    "CUDASW_HYBRID_SIMD",
    "MANYMAP",
]


@dataclass(frozen=True)
class GpuThroughputModel:
    """GCUPS-vs-GPU-count model for a competing aligner.

    Attributes
    ----------
    name:
        Display name used in benchmark tables.
    single_gpu_gcups:
        Throughput on one V100 for the long-read workload of Fig. 12.
    scaling_efficiency:
        Fraction of ideal scaling retained per additional GPU
        (``1.0`` = perfectly linear, ``0.0`` = does not scale at all).
    max_gpus:
        Largest GPU count the code supports (manymap is single-GPU only).
    """

    name: str
    single_gpu_gcups: float
    scaling_efficiency: float = 0.85
    max_gpus: int = 8

    def __post_init__(self) -> None:
        if self.single_gpu_gcups <= 0:
            raise ConfigurationError("single_gpu_gcups must be positive")
        if not 0.0 <= self.scaling_efficiency <= 1.0:
            raise ConfigurationError("scaling_efficiency must be in [0, 1]")
        if self.max_gpus <= 0:
            raise ConfigurationError("max_gpus must be positive")

    def gcups(self, gpus: int) -> float:
        """Modeled aggregate GCUPS when running on *gpus* devices.

        GPU counts beyond ``max_gpus`` saturate at the ``max_gpus``
        throughput (the extra devices sit idle), mirroring how Fig. 12 draws
        manymap as a flat line.
        """
        if gpus <= 0:
            raise ConfigurationError(f"gpus must be positive, got {gpus}")
        usable = min(gpus, self.max_gpus)
        if usable == 1:
            return self.single_gpu_gcups
        # First GPU at full speed, each additional one contributes the
        # efficiency-scaled increment.
        return self.single_gpu_gcups * (1.0 + self.scaling_efficiency * (usable - 1))

    def seconds(self, cells: int, gpus: int) -> float:
        """Time to process *cells* DP cells at the modeled throughput."""
        if cells < 0:
            raise ConfigurationError("cells must be non-negative")
        rate = self.gcups(gpus) * 1e9
        return cells / rate if rate > 0 else float("inf")


#: CUDASW++ 3.0 running GPU-only (the paper: "their maximum attained
#: performance is 68 GCUPS" on this class of input; Fig. 12 shows ~70).
#: Fig. 12 also shows its multi-GPU curve growing well below linearly —
#: LOGAN on 8 GPUs delivers 3.2x its aggregate GCUPS — so the incremental
#: per-GPU efficiency is set to 30 %.
CUDASW_GPU_ONLY = GpuThroughputModel(
    name="CUDASW++ (GPU only)",
    single_gpu_gcups=70.0,
    scaling_efficiency=0.30,
    max_gpus=8,
)

#: CUDASW++ 3.0 in its default hybrid CPU-SIMD + GPU mode (the CPU SIMD
#: share does not grow with the GPU count, so scaling is similarly weak).
CUDASW_HYBRID_SIMD = GpuThroughputModel(
    name="CUDASW++ (SIMD hybrid)",
    single_gpu_gcups=105.0,
    scaling_efficiency=0.30,
    max_gpus=8,
)

#: manymap (Feng et al. 2019): 96.5 GCUPS, single GPU only.
MANYMAP = GpuThroughputModel(
    name="manymap",
    single_gpu_gcups=96.5,
    scaling_efficiency=0.0,
    max_gpus=1,
)
