"""Inter-sequence batched X-drop extension kernel (compacting + tiled).

The LOGAN paper's central observation (Section IV) is that X-drop extension
only scales when *inter-sequence* parallelism is exploited: one GPU block per
extension, thousands of extensions in flight at once.  The per-pair kernel in
:mod:`repro.core.xdrop_vectorized` captures the *intra*-sequence parallelism
of one anti-diagonal; this module adds the missing axis.

:func:`xdrop_extend_batch` packs every extension of a batch into padded 2-D
NumPy arrays — one row per alignment, exactly mirroring LOGAN's
one-block-per-extension layout — and advances a single global anti-diagonal
counter.  Each step performs one set of array operations over the whole
batch:

* the three-parent recurrence is evaluated for every alignment's band at
  once (rows whose band does not cover a column are masked to ``-inf``);
* the X-drop prune uses a per-row running best (the per-block shared
  variable of the GPU kernel);
* the band is trimmed per row by locating the first/last finite cell, and a
  row retires when its band empties (early termination) or its DP matrix is
  exhausted.

Three hot-path mechanisms keep the work proportional to what is actually
alive, without changing a single output bit:

**Active-row compaction.**  Extensions retire at wildly different
anti-diagonals (a one-base pair is done at ``d = 2`` while a 600 bp pair
runs for over a thousand steps).  Whenever the live fraction of the packed
rows drops below ``compact_threshold``, retired rows are scattered into the
result arrays and every per-row array is physically compacted to the
survivors — so a retired extension stops costing band derivation, masking
and buffer traffic on every subsequent step.  Compacting at a fractional
threshold keeps the total copy cost geometric (``O(batch)`` rows copied
over the whole sweep).  Compaction also shrinks the *column* extent of the
scratch buffers to the longest surviving query, which matters for
length-skewed batches.

**Downsized DP buffers (int16/int32).**  When the score magnitudes the
batch can possibly produce (``(max_m + max_n) * max|param| + xdrop``) fit
comfortably inside a smaller integer, the anti-diagonal buffers are
allocated as int16 (sentinel ``-2**14``, short-read batches — four cells
per int64's cache footprint) or int32 (sentinel ``-2**30``).  Each
sentinel keeps the same invariant the int64 sentinel has: a pruned parent
plus the largest substitution score still lies strictly below any
reachable X-drop cutoff, so masked cells can never fake a finite score.
Batches that could overflow fall back to int64 automatically (the
overflow guard).

**Column tiling.**  A very wide union band (thousands of columns) is swept
in ``tile_width``-column tiles so each tile's operands stay cache-resident;
per-row maxima, argmaxima and band trims are folded across tiles with
first-occurrence semantics identical to a single full-width pass.

Only the union of the live per-row bands is computed at every step, so the
work per anti-diagonal is ``O(live_rows * union_band_width)``.  Scores, end
positions, cell counts and band traces are bit-identical to the scalar
reference for every row — and invariant to ``compact_threshold`` and
``tile_width`` — the properties the conformance suite enforces.

Pass a :class:`BatchKernelStats` as ``stats`` to collect compaction /
tiling telemetry; the serving layer uses it to derive batch-sizing hints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from .encoding import SequenceLike, WILDCARD_CODE, encode
from .result import NEG_INF, ExtensionResult
from .scoring import ScoringScheme

__all__ = [
    "BatchKernelStats",
    "WindowedKernelStats",
    "DEFAULT_COMPACT_THRESHOLD",
    "DEFAULT_TILE_WIDTH",
    "MAX_SUGGESTED_BATCH_SIZE",
    "xdrop_extend_batch",
]

#: Compact the packed arrays when the live fraction drops below this.
DEFAULT_COMPACT_THRESHOLD = 0.5

#: Column-tile width of the anti-diagonal sweep (cache-friendly tiles).
DEFAULT_TILE_WIDTH = 2048

#: Absolute ceiling of :meth:`BatchKernelStats.suggested_batch_size` — no
#: amount of consecutive high-live-fraction windows may walk the hint past
#: this many extensions per batch.
MAX_SUGGESTED_BATCH_SIZE = 1024

_NEG64 = np.int64(NEG_INF)
#: Pruned-cell sentinels: a quarter of each dtype's range, so adding any
#: guarded score can neither wrap around nor climb above a real cutoff.
_NEG32 = np.int32(-(2**30))
_NEG16 = np.int16(-(2**14))
#: Largest score magnitude (including the X threshold) each downsized tier
#: accepts; beyond the int32 limit the kernel falls back to int64.
_INT32_SCORE_LIMIT = 2**30 - 1
_INT16_SCORE_LIMIT = 2**14 - 1

_INT64_MAX = np.iinfo(np.int64).max


@dataclass
class BatchKernelStats:
    """Work telemetry of one (or more, via :meth:`merge`) batched sweeps.

    Attributes
    ----------
    rows:
        Extensions entering the kernel.
    steps:
        Global anti-diagonal steps executed.
    row_steps:
        Sum over steps of the packed rows carried through the step — the
        quantity compaction minimises (without compaction it would be
        ``rows * steps``).
    active_row_steps:
        Sum over steps of the rows actually still extending.
    compactions:
        Physical compaction events.
    tiles:
        Column tiles swept.
    peak_window:
        Widest union band window seen (columns).
    cells:
        Useful DP cells computed (matches the per-result accounting).
    dtype:
        DP buffer dtype chosen by the overflow guard (``int16``/``int32``/
        ``int64``; ``mixed`` after merging sweeps that chose differently).
    weighted_rows, weighted_live:
        Row-weighted accumulators of the per-sweep live fraction:
        ``weighted_rows`` sums the rows of every sweep that recorded one,
        ``weighted_live`` sums ``per-sweep live fraction × that sweep's
        rows``.  Their ratio (:attr:`rows_weighted_live_fraction`) weights
        each *sweep* by how many extensions it carried, so one tiny batch
        of very long stragglers — few rows, but many anti-diagonal steps —
        cannot dominate the merged signal the way it skews the raw
        row-step ratio.
    """

    rows: int = 0
    steps: int = 0
    row_steps: int = 0
    active_row_steps: int = 0
    compactions: int = 0
    tiles: int = 0
    peak_window: int = 0
    cells: int = 0
    dtype: str = ""
    weighted_rows: int = 0
    weighted_live: float = 0.0

    @property
    def live_fraction(self) -> float:
        """Mean fraction of carried rows that were still extending."""
        if self.row_steps == 0:
            return 1.0
        return self.active_row_steps / self.row_steps

    @property
    def rows_weighted_live_fraction(self) -> float:
        """Per-sweep live fractions averaged with *row* weights.

        Falls back to :attr:`live_fraction` for accumulators that never
        recorded per-sweep detail (e.g. hand-built in tests).
        """
        if self.weighted_rows <= 0:
            return self.live_fraction
        return self.weighted_live / self.weighted_rows

    @property
    def padding_row_steps(self) -> int:
        """Row-steps spent carrying retired rows (what compaction avoids)."""
        return self.row_steps - self.active_row_steps

    def suggested_batch_size(
        self, current: int, max_batch_size: int | None = None
    ) -> int:
        """Batch-sizing hint for the serving layer's adaptive batcher.

        A low live fraction means retirement times are very uneven, so a
        smaller batch wastes fewer union-window columns and row slots on
        stragglers; a consistently high live fraction means the batch could
        grow and amortise per-step overhead further.  The hint is bounded
        to at most double *current* and never drops below half of it (with
        an absolute floor of 8).

        The growth side is clamped: the hint never exceeds
        *max_batch_size* (default ``4 * current``, i.e. four times the
        configured batch size at the service call sites) nor the absolute
        cap :data:`MAX_SUGGESTED_BATCH_SIZE` — a controller obeying the
        hint on repeated high-live windows must converge, not walk the
        batch size off to infinity.

        The signal is the *rows-weighted* live fraction: each merged
        sweep contributes in proportion to how many extensions it carried,
        so one tiny long-running batch cannot flip the hint for a service
        that mostly forms large well-behaved batches.
        """
        if current <= 0 or self.row_steps == 0:
            return max(current, 1)
        ceiling = 4 * current if max_batch_size is None else int(max_batch_size)
        ceiling = max(1, min(ceiling, MAX_SUGGESTED_BATCH_SIZE))
        fraction = self.rows_weighted_live_fraction
        if fraction < 0.5:
            return min(max(8, current // 2), ceiling)
        if fraction > 0.85:
            return min(current * 2, ceiling)
        return min(current, ceiling)

    def merge(self, other: "BatchKernelStats") -> "BatchKernelStats":
        """Fold *other* into this accumulator (in place) and return self."""
        self.rows += other.rows
        self.steps += other.steps
        self.row_steps += other.row_steps
        self.active_row_steps += other.active_row_steps
        self.compactions += other.compactions
        self.tiles += other.tiles
        self.peak_window = max(self.peak_window, other.peak_window)
        self.cells += other.cells
        self.weighted_rows += other.weighted_rows
        self.weighted_live += other.weighted_live
        if other.dtype:
            self.dtype = other.dtype if not self.dtype else self.dtype
            if other.dtype != self.dtype:
                self.dtype = "mixed"
        return self

    def to_dict(self) -> dict:
        """JSON-ready representation (service stats / benchmarks)."""
        return {
            "rows": self.rows,
            "steps": self.steps,
            "row_steps": self.row_steps,
            "active_row_steps": self.active_row_steps,
            "live_fraction": self.live_fraction,
            "rows_weighted_live_fraction": self.rows_weighted_live_fraction,
            "compactions": self.compactions,
            "tiles": self.tiles,
            "peak_window": self.peak_window,
            "cells": self.cells,
            "dtype": self.dtype,
        }


class WindowedKernelStats:
    """Ring buffer of the most recent per-batch :class:`BatchKernelStats`.

    The lifetime accumulator the serving layer used to keep answers "what
    has the kernel done since the process started" — a signal that goes
    stale the moment traffic shifts, because hours of history outvote the
    last minute.  Controllers need the opposite: *windowed* telemetry over
    the last ``window`` batches, so a change in live fraction shows up
    within a handful of dispatches.

    :meth:`observe` appends one batch's accumulator; properties aggregate
    over the current window only (via :meth:`merged`), while
    :attr:`total_batches` still counts every batch ever observed so
    lifetime throughput accounting stays possible.
    """

    def __init__(self, window: int = 32) -> None:
        if window < 1:
            raise ConfigurationError(
                f"window must be positive, got {window}"
            )
        self.window = int(window)
        self._entries: list[BatchKernelStats] = []
        self.total_batches = 0

    def observe(self, stats: BatchKernelStats) -> None:
        """Append one batch's accumulator (oldest entry falls off)."""
        self._entries.append(stats)
        if len(self._entries) > self.window:
            del self._entries[0]
        self.total_batches += 1

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def batches(self) -> int:
        """Batches currently inside the window."""
        return len(self._entries)

    def merged(self) -> BatchKernelStats:
        """Fold the window into one fresh accumulator."""
        merged = BatchKernelStats()
        for entry in self._entries:
            merged.merge(entry)
        return merged

    @property
    def rows(self) -> int:
        return sum(e.rows for e in self._entries)

    @property
    def cells(self) -> int:
        return sum(e.cells for e in self._entries)

    @property
    def live_fraction(self) -> float:
        """Mean live fraction over the window (1.0 when empty)."""
        row_steps = sum(e.row_steps for e in self._entries)
        if row_steps == 0:
            return 1.0
        active = sum(e.active_row_steps for e in self._entries)
        return active / row_steps

    @property
    def rows_weighted_live_fraction(self) -> float:
        """Rows-weighted live fraction over the window."""
        return self.merged().rows_weighted_live_fraction

    def suggested_batch_size(
        self, current: int, max_batch_size: int | None = None
    ) -> int:
        """The windowed version of the batch-sizing hint."""
        return self.merged().suggested_batch_size(
            current, max_batch_size=max_batch_size
        )

    def to_dict(self) -> dict:
        """JSON-ready representation (windowed aggregate + window meta)."""
        payload = self.merged().to_dict()
        payload["window"] = self.window
        payload["window_batches"] = self.batches
        payload["total_batches"] = self.total_batches
        return payload


def _resolve_tuning(
    compact_threshold: float | None, tile_width: int | None
) -> tuple[float, int]:
    """Validate and default the kernel tuning knobs."""
    threshold = (
        DEFAULT_COMPACT_THRESHOLD
        if compact_threshold is None
        else float(compact_threshold)
    )
    if not 0.0 <= threshold <= 1.0:
        raise ConfigurationError(
            f"compact_threshold must be in [0.0, 1.0] (0 disables compaction), "
            f"got {compact_threshold}"
        )
    width = DEFAULT_TILE_WIDTH if tile_width is None else int(tile_width)
    if width < 1:
        raise ConfigurationError(f"tile_width must be positive, got {tile_width}")
    return threshold, width


def _select_dtype(max_m: int, max_n: int, scoring: ScoringScheme, xdrop: int):
    """DP buffer dtype + pruned-cell sentinel, guarded against overflow.

    A downsized dtype is used only when every score the batch can possibly
    produce — bounded by ``(max_m + max_n) * max|param|`` — plus the X
    threshold and a few parameter magnitudes of transient slack stays
    strictly inside a quarter of the dtype's range, so ``sentinel +
    max(param)`` can neither wrap around nor rise above any reachable
    cutoff.  Short-read batches with small scoring parameters fit int16
    (quadrupling the cells per cache line); anything that could overflow
    falls back through int32 to int64.
    """
    max_abs = max(
        abs(int(scoring.match)), abs(int(scoring.mismatch)), abs(int(scoring.gap)), 1
    )
    bound = (max_m + max_n) * max_abs + int(xdrop) + 4 * max_abs
    if bound < _INT16_SCORE_LIMIT:
        return np.int16, _NEG16
    if bound < _INT32_SCORE_LIMIT:
        return np.int32, _NEG32
    return np.int64, _NEG64


def _pack(seqs: list[np.ndarray], width: int) -> np.ndarray:
    """Pack variable-length code arrays into one padded uint8 matrix.

    Column 0 is a guard column so the base consumed by DP row ``i`` /
    column ``j`` lives at matrix column ``i`` / ``j`` — the per-step reads
    become plain (possibly reversed) slices instead of index gathers.
    Padding and the guard use the wildcard code, which never scores a
    match; padded cells are additionally masked out by the per-row band
    bounds.
    """
    out = np.full((len(seqs), max(width, 1) + 1), WILDCARD_CODE, dtype=np.uint8)
    for row, seq in enumerate(seqs):
        if len(seq):
            out[row, 1 : len(seq) + 1] = seq
    return out


def xdrop_extend_batch(
    pairs: Sequence[tuple[SequenceLike, SequenceLike]],
    scoring: ScoringScheme | None = None,
    xdrop: int = 100,
    trace: bool = False,
    *,
    compact_threshold: float | None = None,
    tile_width: int | None = None,
    stats: BatchKernelStats | None = None,
) -> list[ExtensionResult]:
    """X-drop-extend every (query, target) pair of a batch simultaneously.

    Parameters
    ----------
    pairs:
        The extensions to run, each a ``(query, target)`` tuple (strings or
        encoded ``uint8`` arrays).  Every extension starts at its own
        position (0, 0), as in :func:`repro.core.xdrop.xdrop_extend_reference`.
        Empty sequences are rejected (the shared kernel contract): callers
        must filter seed-flush extensions, as the batch runners do.
    scoring:
        Linear-gap scoring scheme shared by the whole batch.
    xdrop:
        X-drop threshold shared by the whole batch.
    trace:
        Record per-anti-diagonal band widths in every result (consumed by
        the GPU execution model).
    compact_threshold:
        Live fraction below which retired rows are physically compacted
        away (``0`` disables compaction; default
        :data:`DEFAULT_COMPACT_THRESHOLD`).  Tuning knob only — results
        are invariant to it.
    tile_width:
        Column-tile width of the per-step sweep (default
        :data:`DEFAULT_TILE_WIDTH`).  Tuning knob only — results are
        invariant to it.
    stats:
        Optional :class:`BatchKernelStats` accumulator updated in place
        with the sweep's work telemetry.

    Returns
    -------
    list[ExtensionResult]
        One result per pair, in input order, identical to running the
        scalar reference on each pair individually.
    """
    if xdrop < 0:
        raise ConfigurationError(f"X-drop threshold must be non-negative, got {xdrop}")
    compact_threshold, tile_width = _resolve_tuning(compact_threshold, tile_width)
    scoring = scoring if scoring is not None else ScoringScheme()
    if not pairs:
        return []

    queries = [encode(q) for q, _ in pairs]
    targets = [encode(t) for _, t in pairs]
    batch = len(pairs)
    m = np.array([len(q) for q in queries], dtype=np.int64)
    n = np.array([len(t) for t in targets], dtype=np.int64)
    max_m = int(m.max())
    max_n = int(n.max())
    dtype, neg = _select_dtype(max_m, max_n, scoring, xdrop)
    match, mismatch, gap = dtype(scoring.match), dtype(scoring.mismatch), dtype(scoring.gap)
    xdrop_c = dtype(xdrop)

    q_mat = _pack(queries, max_m)
    t_mat = _pack(targets, max_n)

    # Three anti-diagonal buffers, one row per alignment.  Buffer column
    # b corresponds to DP row i = b - 1; column 0 is a -inf guard.
    size = max_m + 2
    prev2 = np.full((batch, size), neg, dtype=dtype)
    prev = np.full((batch, size), neg, dtype=dtype)
    cur = np.full((batch, size), neg, dtype=dtype)
    prev[:, 1] = 0  # origin cell (0, 0) of every alignment
    # Extent of columns last written into each buffer, cleared on reuse so a
    # recycled buffer never exposes stale scores ([start, stop) or None).
    prev2_ext: tuple[int, int] | None = None
    prev_ext: tuple[int, int] | None = (1, 2)
    cur_ext: tuple[int, int] | None = None

    # Per-row band state (DP-row index space, matching the scalar reference).
    prev_lo = np.zeros(batch, dtype=np.int64)
    prev_hi = np.zeros(batch, dtype=np.int64)
    prev2_lo = np.zeros(batch, dtype=np.int64)
    prev2_hi = np.full(batch, -1, dtype=np.int64)

    best = np.zeros(batch, dtype=dtype)
    best_i = np.zeros(batch, dtype=np.int64)
    best_j = np.zeros(batch, dtype=np.int64)
    cells = np.ones(batch, dtype=np.int64)
    anti = np.ones(batch, dtype=np.int64)
    active = np.ones(batch, dtype=bool)
    early = np.zeros(batch, dtype=bool)

    # Rows are physically compacted as they retire; ``row_ids`` maps packed
    # rows back to input order and retired rows are scattered into the
    # ``out_*`` result arrays (at compaction time, or after the sweep).
    row_ids = np.arange(batch, dtype=np.int64)
    out_best = np.zeros(batch, dtype=np.int64)
    out_best_i = np.zeros(batch, dtype=np.int64)
    out_best_j = np.zeros(batch, dtype=np.int64)
    out_cells = np.zeros(batch, dtype=np.int64)
    out_anti = np.zeros(batch, dtype=np.int64)
    out_early = np.zeros(batch, dtype=bool)
    rows = batch

    last_diag = int((m + n).max())
    widths_rec: np.ndarray | None = None
    if trace:
        widths_rec = np.zeros((last_diag + 1, batch), dtype=np.int64)
        widths_rec[0, :] = 1

    if stats is not None:
        stats.rows += batch
        stats.dtype = stats.dtype or np.dtype(dtype).name
        # Snapshot for the per-sweep rows-weighted live fraction below.
        sweep_row_steps0 = stats.row_steps
        sweep_active0 = stats.active_row_steps

    for d in range(1, last_diag + 1):
        # Per-row band of anti-diagonal d: matrix bounds clipped by the rows
        # reachable from the two previous (trimmed) bands.  Retired rows are
        # compacted away below, so bound derivation never re-runs for a
        # whole batch of dead rows.
        lo = np.maximum(d - n, 0)
        hi = np.minimum(d, m)
        reach_lo = prev_lo.copy()
        reach_hi = prev_hi + 1
        has_prev2 = prev2_hi >= prev2_lo
        np.minimum(reach_lo, prev2_lo + 1, out=reach_lo, where=has_prev2)
        np.maximum(reach_hi, prev2_hi + 1, out=reach_hi, where=has_prev2)
        np.maximum(lo, reach_lo, out=lo)
        np.minimum(hi, reach_hi, out=hi)

        exhausted = active & (lo > hi)
        if exhausted.any():
            # Band emptied before the far corner => genuine early stop;
            # d beyond m + n is just the natural end of the matrix.
            early |= exhausted & (d <= m + n)
            active &= ~exhausted
        n_active = int(np.count_nonzero(active))
        if n_active == 0:
            break

        if (
            compact_threshold > 0.0
            and n_active < rows
            and n_active <= rows * compact_threshold
        ):
            dropped = ~active
            ids = row_ids[dropped]
            out_best[ids] = best[dropped]
            out_best_i[ids] = best_i[dropped]
            out_best_j[ids] = best_j[dropped]
            out_cells[ids] = cells[dropped]
            out_anti[ids] = anti[dropped]
            out_early[ids] = early[dropped]

            keep = active
            row_ids = row_ids[keep]
            m, n = m[keep], n[keep]
            max_m, max_n = int(m.max()), int(n.max())
            q_mat = q_mat[keep, : max_m + 1]
            t_mat = t_mat[keep, : max_n + 1]
            size = max_m + 2
            prev2 = prev2[keep, :size]
            prev = prev[keep, :size]
            cur = cur[keep, :size]
            prev2_ext = _clamp_ext(prev2_ext, size)
            prev_ext = _clamp_ext(prev_ext, size)
            cur_ext = _clamp_ext(cur_ext, size)
            prev_lo, prev_hi = prev_lo[keep], prev_hi[keep]
            prev2_lo, prev2_hi = prev2_lo[keep], prev2_hi[keep]
            lo, hi = lo[keep], hi[keep]
            best, best_i, best_j = best[keep], best_i[keep], best_j[keep]
            cells, anti, early = cells[keep], anti[keep], early[keep]
            rows = n_active
            active = np.ones(rows, dtype=bool)
            if stats is not None:
                stats.compactions += 1

        # Union window of the live bands: the only columns computed.
        win_lo = int(lo[active].min())
        win_hi = int(hi[active].max())
        width = win_hi - win_lo + 1

        if stats is not None:
            stats.steps += 1
            stats.row_steps += rows
            stats.active_row_steps += n_active
            if width > stats.peak_window:
                stats.peak_window = width

        cutoff = (best - xdrop_c)[:, None]
        lo_col, hi_col = lo[:, None], hi[:, None]
        # Clear only the stale part of the recycled scratch diagonal the
        # tiles will not overwrite (they fill [win_lo + 1, win_hi + 2)).
        if cur_ext is not None:
            a, b = cur_ext
            if a < win_lo + 1:
                cur[:, a : min(b, win_lo + 1)] = neg
            if b > win_hi + 2:
                cur[:, max(a, win_hi + 2) : b] = neg
        cur_ext = (win_lo + 1, win_hi + 2)

        # The horizontal parents of the whole window, computed once: column
        # c holds prev[c] + gap, i.e. the gap-penalised diag-(d-1) cell of
        # DP row c - 1.
        prev_gap = prev[:, win_lo : win_hi + 2] + gap

        i_all = np.arange(win_lo, win_hi + 1, dtype=np.int64)
        row_best = np.full(rows, neg, dtype=dtype)
        row_arg = np.zeros(rows, dtype=np.int64)
        first = np.full(rows, _INT64_MAX, dtype=np.int64)
        last = np.full(rows, -1, dtype=np.int64)

        # Sweep the window in cache-friendly column tiles; maxima, argmaxima
        # and band trims fold across tiles with first-occurrence semantics
        # identical to one full-width pass.
        for t_lo in range(win_lo, win_hi + 1, tile_width):
            t_hi = min(t_lo + tile_width - 1, win_hi)
            i_idx = i_all[t_lo - win_lo : t_hi - win_lo + 1]
            # Guard-column packing makes both substitution operands plain
            # slices: the query bases of DP rows t_lo..t_hi sit at columns
            # t_lo..t_hi, the target bases of the matching anti-diagonal
            # columns at d - i (a reversed slice).  Guard reads at i == 0 /
            # j == 0 are harmless: the corresponding parents are -inf.
            qa = q_mat[:, t_lo : t_hi + 1]
            j_stop = d - t_hi - 1
            ta = t_mat[:, d - t_lo : (j_stop if j_stop >= 0 else None) : -1]
            vals = cur[:, t_lo + 1 : t_hi + 2]
            np.multiply(
                (qa == ta) & (qa != WILDCARD_CODE),
                match - mismatch,
                out=vals,
                casting="unsafe",
            )
            vals += mismatch
            vals += prev2[:, t_lo : t_hi + 1]  # parent (i-1, j-1)
            base = t_lo - win_lo
            np.maximum(vals, prev_gap[:, base : base + len(i_idx)], out=vals)  # (i-1, j)
            np.maximum(vals, prev_gap[:, base + 1 : base + 1 + len(i_idx)], out=vals)  # (i, j-1)

            # Retired rows carry an empty band (lo > hi), so one pair of
            # bound comparisons masks both out-of-band and retired cells.
            np.copyto(
                vals,
                neg,
                where=(i_idx < lo_col) | (i_idx > hi_col) | (vals < cutoff),
            )
            if stats is not None:
                stats.tiles += 1

            finite = vals > neg
            t_any = finite.any(axis=1)
            if not t_any.any():
                continue
            t_max = vals.max(axis=1)
            t_arg = t_lo + vals.argmax(axis=1)
            better = t_max > row_best
            np.copyto(row_arg, t_arg, where=better)
            np.copyto(row_best, t_max, where=better)
            t_first = np.where(t_any, t_lo + finite.argmax(axis=1), _INT64_MAX)
            np.minimum(first, t_first, out=first)
            t_last = np.where(t_any, t_hi - finite[:, ::-1].argmax(axis=1), -1)
            np.maximum(last, t_last, out=last)

        band_width = np.where(active, hi - lo + 1, 0)
        cells += band_width
        anti += active
        if widths_rec is not None:
            widths_rec[d, row_ids] = band_width

        stopped = active & (last < 0)
        if stopped.any():
            early |= stopped
            active &= ~stopped
        if not active.any():
            break

        # Per-row anti-diagonal maximum (the warp-shuffle reduction of the
        # GPU kernel); the shared best is updated after the whole diagonal.
        improved = row_best > best
        np.copyto(best_i, row_arg, where=improved)
        np.copyto(best_j, d - row_arg, where=improved)
        np.copyto(best, row_best, where=improved)

        # The tile fold already trimmed every row's band to its first/last
        # finite cell; rotate the band state and the scratch buffers.
        # Retired rows get an *empty* band in both states so their bounds
        # derive to lo > hi on every later step — the masking above then
        # needs no separate active test, and a dead row can never resurrect
        # from stale buffer contents.
        prev2_lo = np.where(active, prev_lo, 1)
        prev2_hi = np.where(active, prev_hi, -2)
        prev_lo = np.where(active, first, 1)
        prev_hi = np.where(active, last, -2)

        prev2, prev, cur = prev, cur, prev2
        prev2_ext, prev_ext, cur_ext = prev_ext, cur_ext, prev2_ext

    # Scatter the rows still packed (survivors + not-yet-compacted retirees).
    out_best[row_ids] = best
    out_best_i[row_ids] = best_i
    out_best_j[row_ids] = best_j
    out_cells[row_ids] = cells
    out_anti[row_ids] = anti
    out_early[row_ids] = early
    if stats is not None:
        stats.cells += int(out_cells.sum())
        # Per-sweep live fraction, weighted by the rows this sweep carried:
        # the aggregation signal suggested_batch_size acts on (a tiny batch
        # contributes little weight regardless of how long it stepped).
        sweep_row_steps = stats.row_steps - sweep_row_steps0
        sweep_active = stats.active_row_steps - sweep_active0
        sweep_fraction = (
            sweep_active / sweep_row_steps if sweep_row_steps > 0 else 1.0
        )
        stats.weighted_rows += batch
        stats.weighted_live += sweep_fraction * batch

    results: list[ExtensionResult] = []
    for k in range(batch):
        band_widths = None
        if widths_rec is not None:
            col = widths_rec[:, k]
            band_widths = np.ascontiguousarray(col[col > 0])
        results.append(
            ExtensionResult(
                best_score=int(out_best[k]),
                query_end=int(out_best_i[k]),
                target_end=int(out_best_j[k]),
                anti_diagonals=int(out_anti[k]),
                cells_computed=int(out_cells[k]),
                terminated_early=bool(out_early[k]),
                band_widths=band_widths,
            )
        )
    return results


def _clamp_ext(ext: tuple[int, int] | None, size: int) -> tuple[int, int] | None:
    """Clip a buffer-extent record to a shrunken column count."""
    if ext is None:
        return None
    return (min(ext[0], size), min(ext[1], size))
