"""Engine availability gating: registry, errors, CLI, conformance defaults.

An engine whose optional dependency is missing stays *registered* (configs
naming it still validate, ``--list-engines`` still shows it) but is
*unavailable*: building it fails with a ConfigurationError that carries the
recorded reason, and every default engine sweep skips it. The ``compiled``
engine is the production instance of this contract — numba is optional, and
its pure-Python kernel fallback keeps the engine testable either way.
"""

from __future__ import annotations

import pytest

from repro.api import AlignConfig
from repro.cli import main_align
from repro.core.xdrop_compiled import HAVE_NUMBA
from repro.engine import (
    available_engines,
    describe_engines,
    engine_from_config,
    get_engine,
    list_engines,
    register_engine,
    unregister_engine,
)
from repro.engine.engines import CompiledEngine, ReferenceEngine
from repro.errors import ConfigurationError
from repro.testing import ConformanceRunner
from repro.workloads import WorkloadSpec, generate_workload

SPEC = WorkloadSpec(count=4, seed=7, min_length=60, max_length=120, xdrop=15)


@pytest.fixture
def ghost_engine():
    """A registered-but-unavailable engine with a recorded reason."""
    register_engine(
        "ghost",
        ReferenceEngine,
        available=False,
        reason="the optional dependency ghostlib is not installed (pip install ghostlib)",
    )
    yield "ghost"
    unregister_engine("ghost")


class TestRegistrySurface:
    def test_unavailable_engine_stays_listed(self, ghost_engine):
        assert ghost_engine in list_engines()
        assert ghost_engine not in available_engines()

    def test_describe_engines_carries_reason(self, ghost_engine):
        rows = {row["name"]: row for row in describe_engines()}
        row = rows[ghost_engine]
        assert row["available"] is False
        assert "ghostlib" in row["reason"]
        # Available engines carry no reason.
        assert rows["reference"]["available"] is True
        assert rows["reference"]["reason"] is None

    def test_get_engine_raises_with_reason(self, ghost_engine):
        with pytest.raises(ConfigurationError) as excinfo:
            get_engine(ghost_engine)
        message = str(excinfo.value)
        assert "registered but unavailable" in message
        assert "pip install ghostlib" in message

    def test_config_naming_unavailable_engine_validates_but_fails_to_build(
        self, ghost_engine
    ):
        # Validation (construction, round-trip) must succeed: the name is
        # registered. Only building the engine surfaces the missing dep.
        config = AlignConfig(engine=ghost_engine)
        assert AlignConfig.from_json(config.to_json()) == config
        with pytest.raises(ConfigurationError) as excinfo:
            engine_from_config(config)
        message = str(excinfo.value)
        assert message.startswith("engine: ")
        assert "registered but unavailable" in message
        assert "ghostlib" in message

    def test_reregistration_still_rejected(self, ghost_engine):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_engine(ghost_engine, ReferenceEngine)


class TestCliSurface:
    def test_list_engines_marks_unavailable(self, ghost_engine, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main_align(["--list-engines"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        ghost_line = next(line for line in out.splitlines() if "ghost" in line)
        assert "[unavailable:" in ghost_line
        assert "ghostlib" in ghost_line


class TestConformanceDefaults:
    def test_default_sweep_skips_unavailable(self, ghost_engine):
        runner = ConformanceRunner(AlignConfig(xdrop=15), include_service=False)
        assert ghost_engine not in runner.engine_names

    def test_explicit_unavailable_engine_rejected_with_reason(self, ghost_engine):
        with pytest.raises(ConfigurationError) as excinfo:
            ConformanceRunner(AlignConfig(xdrop=15), engines=["reference", ghost_engine])
        message = str(excinfo.value)
        assert "registered but unavailable" in message
        assert "ghostlib" in message


class TestCompiledEngineGating:
    """The production optional-dep engine, exercised on both CI legs."""

    def test_registry_reflects_numba_presence(self):
        rows = {row["name"]: row for row in describe_engines()}
        row = rows["compiled"]
        assert row["available"] is HAVE_NUMBA
        if not HAVE_NUMBA:
            assert "numba" in row["reason"]
            assert "pip install numba" in row["reason"]

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed: engine is available")
    def test_missing_numba_names_the_install_hint(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_engine("compiled")
        assert "pip install numba" in str(excinfo.value)
        with pytest.raises(ConfigurationError) as excinfo:
            engine_from_config(AlignConfig(engine="compiled"))
        assert "pip install numba" in str(excinfo.value)

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba absent: engine unavailable")
    def test_compiled_available_through_registry(self):
        assert "compiled" in available_engines()
        engine = get_engine("compiled", xdrop=15)
        assert isinstance(engine, CompiledEngine)

    def test_compiled_conformance_via_fallback_kernel(self):
        # The engine class is constructible regardless of numba (the kernel
        # degrades to its pure-Python form), so full-field conformance runs
        # on every CI leg under a temporary registration name.
        register_engine("compiled_test", CompiledEngine)
        try:
            runner = ConformanceRunner(
                AlignConfig(engine="batched", xdrop=15, trace=True),
                engines=["reference", "compiled_test"],
                include_service=False,
            )
            report = runner.run_workload(generate_workload("pacbio", SPEC))
            assert report.ok, report.summary()
        finally:
            unregister_engine("compiled_test")

    def test_compiled_conformance_on_non_unit_scoring(self):
        from repro.core import ScoringScheme

        register_engine("compiled_test", CompiledEngine)
        try:
            config = AlignConfig(
                engine="batched",
                xdrop=25,
                scoring=ScoringScheme(match=3, mismatch=-5, gap=-2),
            )
            runner = ConformanceRunner(
                config, engines=["reference", "compiled_test"], include_service=False
            )
            report = runner.run_workload(generate_workload("ont", SPEC))
            assert report.ok, report.summary()
        finally:
            unregister_engine("compiled_test")
