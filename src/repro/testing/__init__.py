"""Differential conformance and fuzz harness.

Turns the repo's central correctness claim — batched/vectorised/modeled
engines bit-identical to the scalar X-drop reference — into an executable,
continuously expanding artifact:

* :class:`~repro.testing.conformance.ConformanceRunner` replays any job
  batch through every registered engine and the
  :class:`~repro.service.AlignmentService` path, asserting bit-identity
  (exact engines) or determinism (inexact ones), with shrink-on-failure
  reporting (smallest failing pair, workload seed, config);
* :func:`~repro.testing.fuzz.run_fuzz` drives the runner over the
  :mod:`repro.workloads` bank under a count or wall-clock budget — the
  engine room of the ``repro-fuzz`` CLI and the CI ``fuzz-smoke`` job.
"""

from .conformance import (
    ConformanceFailure,
    ConformanceReport,
    ConformanceRunner,
    FieldMismatch,
    compare_results,
)
from .fuzz import FuzzReport, derive_round_seed, run_fuzz

__all__ = [
    "ConformanceFailure",
    "ConformanceReport",
    "ConformanceRunner",
    "FieldMismatch",
    "compare_results",
    "FuzzReport",
    "derive_round_seed",
    "run_fuzz",
]
