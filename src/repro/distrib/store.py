"""Durable SQLite submission queue + result cache (WAL mode).

One file holds two tables:

* ``queue`` — submitted-but-unfinished jobs, each row the full wire-encoded
  job plus its canonical cache key.  Rows move ``pending -> inflight`` when
  dispatched and are tombstoned (``state='deleted'``) on completion; rows
  still ``inflight`` when the store is reopened are crash leftovers and get
  redelivered.  :meth:`DurableStore.compact` purges the tombstones (and,
  given a TTL, expired results) so a long-lived store stops growing.
* ``results`` — completed results keyed by canonical cache-key JSON, i.e. a
  restart-surviving extension of the in-memory ``ResultCache`` with the
  identical content address.

WAL journaling keeps readers and the writer from blocking each other and is
the volume-mounted-SQLite deployment idiom: the ``.db`` file (plus ``-wal``)
is the only state a server needs to carry across restarts.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Iterable

from ..core.job import AlignmentJob
from ..core.result import SeedAlignmentResult
from ..errors import ServiceError
from ..obs import Observability, get_observability
from .wire import job_from_wire, job_to_wire, result_from_wire, result_to_wire

__all__ = ["DurableRecord", "DurableStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS queue (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    cache_key   TEXT NOT NULL,
    payload     TEXT NOT NULL,
    state       TEXT NOT NULL DEFAULT 'pending',
    attempts    INTEGER NOT NULL DEFAULT 0,
    enqueued_at REAL NOT NULL,
    updated_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    cache_key    TEXT PRIMARY KEY,
    payload      TEXT NOT NULL,
    completed_at REAL NOT NULL
);
"""


@dataclass
class DurableRecord:
    """One recovered queue row: the job plus its durable identity."""

    row_id: int
    cache_key: str
    job: AlignmentJob
    attempts: int
    redelivered: bool


class DurableStore:
    """SQLite-backed submission queue and result cache.

    Thread-safe behind one lock; the service's dispatch thread and submitter
    threads share a single connection (``check_same_thread=False``), which
    WAL mode makes cheap.

    Parameters
    ----------
    ttl_seconds:
        Age bound for durable results, applied whenever :meth:`compact`
        runs (including the automatic compaction inside :meth:`recover`).
        ``None`` keeps results forever; queue tombstones are always purged.
    """

    def __init__(
        self,
        path: str,
        obs: Observability | None = None,
        ttl_seconds: float | None = None,
    ) -> None:
        self.path = str(path)
        self.obs = obs if obs is not None else get_observability()
        if ttl_seconds is not None and ttl_seconds < 0:
            raise ValueError(f"ttl_seconds must be non-negative, got {ttl_seconds}")
        self.ttl_seconds = ttl_seconds
        self._lock = threading.Lock()
        self._closed = False
        try:
            self._conn = sqlite3.connect(
                self.path, check_same_thread=False, timeout=30.0
            )
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._conn.commit()
        except sqlite3.Error as exc:
            raise ServiceError(
                f"cannot open durable store at {self.path!r}: {exc}"
            ) from exc

        self._enqueued_c = self.obs.counter(
            "repro_durable_enqueued_total",
            "Jobs written to the durable submission queue.",
        )
        self._completed_c = self.obs.counter(
            "repro_durable_completed_total",
            "Jobs completed and moved to the durable result table.",
        )
        self._redelivered_c = self.obs.counter(
            "repro_durable_redelivered_total",
            "In-flight jobs redelivered after a restart or worker failure.",
        )
        self._lookups_c = self.obs.counter(
            "repro_durable_lookups_total",
            "Durable result-cache lookups by outcome.",
            labelnames=("outcome",),
        )
        self._pending_g = self.obs.gauge(
            "repro_durable_pending",
            "Queue rows currently pending or in flight.",
        )
        self._compacted_c = self.obs.counter(
            "repro_durable_compacted_total",
            "Rows purged by compaction, by kind.",
            labelnames=("kind",),
        )
        self._refresh_pending()

    # -- queue ------------------------------------------------------------

    def enqueue(self, cache_key: str, job: AlignmentJob) -> int:
        """Persist one submitted job; returns the durable row id."""
        payload = json.dumps(job_to_wire(job), separators=(",", ":"))
        now = time.time()
        with self._lock:
            cur = self._conn.execute(
                "INSERT INTO queue (cache_key, payload, enqueued_at,"
                " updated_at) VALUES (?, ?, ?, ?)",
                (cache_key, payload, now, now),
            )
            self._conn.commit()
        self._enqueued_c.inc()
        self._refresh_pending()
        return int(cur.lastrowid)

    def mark_inflight(self, row_ids: Iterable[int]) -> None:
        ids = [int(i) for i in row_ids]
        if not ids:
            return
        now = time.time()
        with self._lock:
            self._conn.executemany(
                "UPDATE queue SET state='inflight', attempts=attempts+1,"
                " updated_at=? WHERE id=?",
                [(now, i) for i in ids],
            )
            self._conn.commit()

    def release(self, row_ids: Iterable[int]) -> None:
        """Put in-flight rows back to pending (dispatch failed)."""
        ids = [int(i) for i in row_ids]
        if not ids:
            return
        now = time.time()
        with self._lock:
            self._conn.executemany(
                "UPDATE queue SET state='pending', updated_at=?"
                " WHERE id=?",
                [(now, i) for i in ids],
            )
            self._conn.commit()

    def complete(
        self, finished: Iterable[tuple[int | None, str, SeedAlignmentResult]]
    ) -> None:
        """Tombstone finished queue rows and upsert their results.

        Rows are marked ``state='deleted'`` rather than removed so a crash
        between the queue update and the result upsert stays diagnosable;
        :meth:`compact` reclaims the tombstones.
        """
        now = time.time()
        rows = list(finished)
        if not rows:
            return
        with self._lock:
            for row_id, cache_key, result in rows:
                if row_id is not None:
                    self._conn.execute(
                        "UPDATE queue SET state='deleted', updated_at=?"
                        " WHERE id=?",
                        (now, int(row_id)),
                    )
                self._conn.execute(
                    "INSERT OR REPLACE INTO results (cache_key, payload,"
                    " completed_at) VALUES (?, ?, ?)",
                    (
                        cache_key,
                        json.dumps(
                            result_to_wire(result), separators=(",", ":")
                        ),
                        now,
                    ),
                )
            self._conn.commit()
        self._completed_c.inc(len(rows))
        self._refresh_pending()

    def recover(self) -> list[DurableRecord]:
        """All unfinished jobs, crash leftovers first.

        Rows found ``inflight`` were dispatched but never completed — the
        previous process died mid-batch — and count as redeliveries.  Every
        returned row is reset to ``pending`` so a subsequent crash-free run
        walks the normal dispatch path.  Finishes by compacting the store
        (tombstones plus, when a TTL is configured, expired results) so
        restart cycles do not accrete dead rows.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT id, cache_key, payload, state, attempts FROM queue"
                " WHERE state IN ('pending', 'inflight')"
                " ORDER BY (state='inflight') DESC, id ASC"
            ).fetchall()
            self._conn.execute(
                "UPDATE queue SET state='pending' WHERE state='inflight'"
            )
            self._conn.commit()
        records = []
        redelivered = 0
        for row_id, cache_key, payload, state, attempts in rows:
            was_inflight = state == "inflight"
            redelivered += int(was_inflight)
            records.append(
                DurableRecord(
                    row_id=int(row_id),
                    cache_key=str(cache_key),
                    job=job_from_wire(json.loads(payload)),
                    attempts=int(attempts),
                    redelivered=was_inflight,
                )
            )
        if redelivered:
            self._redelivered_c.inc(redelivered)
        self.compact(self.ttl_seconds)
        return records

    def compact(self, ttl_seconds: float | None = None) -> dict[str, int]:
        """Purge tombstoned queue rows and, given a TTL, expired results.

        ``ttl_seconds`` bounds the age of retained results by their
        ``completed_at`` stamp; ``None`` leaves the result table alone.
        After the purges the WAL is checkpointed and the database vacuumed
        so the file on disk shrinks too.  Returns the purge counts per
        table, e.g. ``{"queue": 3, "results": 0}``.
        """
        if ttl_seconds is not None and ttl_seconds < 0:
            raise ValueError(f"ttl_seconds must be non-negative, got {ttl_seconds}")
        with self._lock:
            queue_purged = self._conn.execute(
                "DELETE FROM queue WHERE state='deleted'"
            ).rowcount
            results_purged = 0
            if ttl_seconds is not None:
                results_purged = self._conn.execute(
                    "DELETE FROM results WHERE completed_at < ?",
                    (time.time() - ttl_seconds,),
                ).rowcount
            self._conn.commit()
            self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            self._conn.execute("VACUUM")
        if queue_purged:
            self._compacted_c.inc(queue_purged, kind="queue")
        if results_purged:
            self._compacted_c.inc(results_purged, kind="results")
        return {"queue": int(queue_purged), "results": int(results_purged)}

    def pending_count(self) -> int:
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM queue"
                " WHERE state IN ('pending', 'inflight')"
            ).fetchone()
        return int(count)

    # -- results ----------------------------------------------------------

    def lookup_result(self, cache_key: str) -> SeedAlignmentResult | None:
        """Content-addressed durable result lookup (``None`` on miss)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM results WHERE cache_key=?",
                (cache_key,),
            ).fetchone()
        if row is None:
            self._lookups_c.inc(outcome="miss")
            return None
        self._lookups_c.inc(outcome="hit")
        return result_from_wire(json.loads(row[0]))

    def result_count(self) -> int:
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()
        return int(count)

    # -- lifecycle --------------------------------------------------------

    def flush(self) -> None:
        """Checkpoint the WAL so the main database file is current."""
        with self._lock:
            if not self._closed:
                self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.Error:
                pass
            self._conn.close()

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _refresh_pending(self) -> None:
        self._pending_g.set(float(self.pending_count()))
