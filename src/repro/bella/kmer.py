"""k-mer extraction, counting and reliable-k-mer pruning (BELLA stage 1).

BELLA seeds its overlap detection with shared k-mers (k = 17 by default) but
first *prunes* the k-mer set: k-mers seen only once are almost certainly
sequencing errors and k-mers seen far more often than the sequencing
coverage come from genomic repeats; both classes would either miss true
overlaps or flood the overlap matrix with spurious candidates (Section V of
the LOGAN paper summarises this as "the k-mers are pruned because unlikely
to be useful in overlap detection").

k-mers are packed into 64-bit integers (2 bits per base, k <= 31) so the
counting and joining steps are NumPy integer operations rather than Python
string manipulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.encoding import SequenceLike, encode
from ..errors import ConfigurationError

__all__ = [
    "KmerIndex",
    "pack_kmers",
    "count_kmers",
    "reliable_kmer_range",
    "build_kmer_index",
]

_MAX_K = 31


def pack_kmers(sequence: SequenceLike, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Pack every k-mer of *sequence* into a 64-bit code.

    Returns ``(codes, positions)`` where ``codes[i]`` is the 2-bit packed
    k-mer starting at ``positions[i]``.  k-mers containing a wildcard (``N``)
    are skipped.  Degenerate inputs — an empty sequence, a sequence shorter
    than ``k``, or one whose every window holds a wildcard — yield the same
    well-formed empty ``(uint64, int64)`` pair rather than raising.

    Raises
    ------
    ConfigurationError
        If ``k`` is outside ``[1, 31]``.
    """
    if not 1 <= k <= _MAX_K:
        raise ConfigurationError(f"k must be in [1, {_MAX_K}], got {k}")
    if len(sequence) == 0:
        return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
    seq = encode(sequence)
    n = len(seq)
    if n < k:
        return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)

    # Sliding-window pack via a strided view: windows[i, j] = seq[i + j].
    windows = np.lib.stride_tricks.sliding_window_view(seq, k)
    valid = ~(windows >= 4).any(axis=1)
    shifts = (2 * (k - 1 - np.arange(k))).astype(np.uint64)
    codes = (windows.astype(np.uint64) << shifts).sum(axis=1, dtype=np.uint64)
    positions = np.arange(n - k + 1, dtype=np.int64)
    return codes[valid], positions[valid]


def count_kmers(reads: list[SequenceLike], k: int) -> dict[int, int]:
    """Count k-mer occurrences across all reads (one count per occurrence)."""
    counts: dict[int, int] = {}
    for read in reads:
        codes, _ = pack_kmers(read, k)
        uniq, cnt = np.unique(codes, return_counts=True)
        for code, c in zip(uniq.tolist(), cnt.tolist()):
            counts[code] = counts.get(code, 0) + c
    return counts


def reliable_kmer_range(coverage: float, error_rate: float, k: int) -> tuple[int, int]:
    """Heuristic [lower, upper] multiplicity bounds for reliable k-mers.

    A k-mer of the genome is expected to appear in roughly
    ``coverage * (1 - error_rate) ** k`` reads; k-mers far above that come
    from repeats and k-mers seen once are error artefacts.  BELLA derives
    its bounds from a probabilistic model of the k-mer multiplicity
    distribution; this reproduction uses the simpler rule of thumb
    ``lower = 2`` and ``upper = 4x`` the expected multiplicity (with a floor
    of 8 so shallow test datasets do not prune everything).
    """
    if coverage <= 0:
        raise ConfigurationError("coverage must be positive")
    if not 0 <= error_rate < 1:
        raise ConfigurationError("error_rate must be in [0, 1)")
    if k <= 0:
        raise ConfigurationError("k must be positive")
    expected = coverage * (1.0 - error_rate) ** k
    upper = max(8, int(round(4 * max(expected, 1.0))))
    return 2, upper


@dataclass
class KmerIndex:
    """Occurrence index of the *reliable* k-mers of a read set.

    Attributes
    ----------
    k:
        k-mer length.
    occurrences:
        Mapping ``kmer_code -> list of (read_index, position)`` for every
        retained k-mer (first occurrence per read per k-mer).
    num_reads:
        Number of reads indexed.
    total_kmers, retained_kmers:
        Distinct k-mer counts before and after pruning (reported by the
        pipeline and checked by tests).
    """

    k: int
    occurrences: dict[int, list[tuple[int, int]]]
    num_reads: int
    total_kmers: int
    retained_kmers: int

    @property
    def pruned_fraction(self) -> float:
        """Fraction of distinct k-mers removed by the reliability filter."""
        if self.total_kmers == 0:
            return 0.0
        return 1.0 - self.retained_kmers / self.total_kmers


def build_kmer_index(
    reads: list[SequenceLike],
    k: int = 17,
    lower: int = 2,
    upper: int | None = None,
) -> KmerIndex:
    """Build the reliable-k-mer occurrence index of a read set.

    Parameters
    ----------
    reads:
        Read sequences (strings or encoded arrays).
    k:
        k-mer length (BELLA default 17).
    lower, upper:
        Multiplicity bounds; k-mers occurring in fewer than ``lower`` or
        more than ``upper`` *reads* are pruned.  ``upper=None`` disables the
        repeat-side pruning.

    Notes
    -----
    Multiplicity is counted per *read* (a k-mer repeated inside one read
    counts once), matching how BELLA's overlap matrix is built; only the
    first position per read is kept for seeding.
    """
    if lower < 1:
        raise ConfigurationError("lower bound must be at least 1")
    if upper is not None and upper < lower:
        raise ConfigurationError("upper bound must be >= lower bound")

    per_read_first: list[dict[int, int]] = []
    read_multiplicity: dict[int, int] = {}
    for read in reads:
        codes, positions = pack_kmers(read, k)
        first: dict[int, int] = {}
        # np.unique returns the first index of each distinct code when the
        # input is stable-sorted by code; build the map explicitly instead to
        # keep the first position in *read order*.
        for code, pos in zip(codes.tolist(), positions.tolist()):
            if code not in first:
                first[code] = pos
        per_read_first.append(first)
        for code in first:
            read_multiplicity[code] = read_multiplicity.get(code, 0) + 1

    total = len(read_multiplicity)
    retained = {
        code
        for code, mult in read_multiplicity.items()
        if mult >= lower and (upper is None or mult <= upper)
    }

    occurrences: dict[int, list[tuple[int, int]]] = {code: [] for code in retained}
    for read_index, first in enumerate(per_read_first):
        for code, pos in first.items():
            if code in occurrences:
                occurrences[code].append((read_index, pos))

    return KmerIndex(
        k=k,
        occurrences=occurrences,
        num_reads=len(reads),
        total_kmers=total,
        retained_kmers=len(retained),
    )
