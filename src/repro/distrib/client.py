"""Client for the alignment server's length-prefixed JSON protocol."""

from __future__ import annotations

import socket
from typing import Any, Sequence

from ..core.job import AlignmentJob
from ..core.result import SeedAlignmentResult
from ..errors import ServiceError
from ..obs import MetricsSnapshot
from .wire import job_to_wire, recv_frame, result_from_wire, send_frame

__all__ = ["ServiceClient"]


class ServiceClient:
    """One connection to a running :class:`AlignmentServer`.

    Usable as a context manager; not thread-safe (open one client per
    thread — the server handles each connection independently).
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 300.0
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ServiceError(
                f"cannot connect to alignment server at "
                f"{self.host}:{self.port}: {exc}"
            ) from exc

    def ping(self) -> dict[str, Any]:
        """Server identity (pid, engine, transport, workers)."""
        return self._request({"op": "ping"})["server"]

    def submit(
        self, jobs: Sequence[AlignmentJob]
    ) -> list[SeedAlignmentResult]:
        """Align *jobs* on the server; results in submission order."""
        results, _cached = self.submit_detailed(jobs)
        return results

    def submit_detailed(
        self, jobs: Sequence[AlignmentJob]
    ) -> tuple[list[SeedAlignmentResult], list[bool]]:
        """Like :meth:`submit`, plus the per-job server-cache-hit flags."""
        response = self._request(
            {
                "op": "submit",
                "jobs": [job_to_wire(job) for job in jobs],
                "timeout": self.timeout,
            }
        )
        results = [result_from_wire(r) for r in response["results"]]
        cached = [bool(flag) for flag in response.get("cached", [])]
        if len(results) != len(jobs):
            raise ServiceError(
                f"server returned {len(results)} results for "
                f"{len(jobs)} submitted jobs"
            )
        return results, cached

    def stats(self) -> dict[str, Any]:
        """The server-side service's stats dict."""
        return self._request({"op": "stats"})["stats"]

    def metrics(self) -> MetricsSnapshot:
        """The server-side metrics snapshot (worker series merged in)."""
        return MetricsSnapshot.from_dict(self._request({"op": "metrics"})["metrics"])

    def shutdown_server(self) -> None:
        """Ask the server to stop serving (it drains before exiting)."""
        self._request({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _request(self, payload: dict[str, Any]) -> dict[str, Any]:
        send_frame(self._sock, payload)
        response = recv_frame(self._sock)
        if response is None:
            raise ServiceError("server closed the connection mid-request")
        if not response.get("ok", False):
            detail = response.get("error", "unknown server error")
            trace = response.get("traceback")
            raise ServiceError(
                f"server error: {detail}" + (f"\n{trace}" if trace else "")
            )
        return response
