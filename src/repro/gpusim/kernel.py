"""Kernel execution model: from a work trace to modeled V100 wall-clock.

The model charges three resources and takes the binding one, mirroring how
the paper reasons about its kernel (Sections IV and VII):

* **instruction throughput** — total warp instructions divided by the INT32
  issue ceiling, de-rated by a latency-hiding utilisation factor that grows
  with the number of active warps resident per SM (few active warps cannot
  cover memory and pipeline latency; this is why scheduling 1024 threads for
  a 40-cell anti-diagonal hurts, and why LOGAN sizes the thread count to X);
* **memory bandwidth** — modeled HBM traffic divided by peak bandwidth (the
  kernel stays compute-bound for realistic configurations, as the paper's
  Roofline shows, but the ablations can push it into the memory-bound
  region);
* **critical path** — a block's anti-diagonals are inherently serial, so a
  kernel with too few blocks to fill the device is bound by the longest
  block's serial latency (this is what makes the single-pair rows of
  Table I so slow compared to the batched run).

The returned :class:`KernelTiming` also carries the instruction and byte
totals so the Roofline instrumentation (:mod:`repro.roofline`) can place the
kernel on the plot without re-deriving anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .device import DeviceSpec
from .memory import MemoryEstimate, MemoryModel
from .occupancy import OccupancyResult, occupancy
from .trace import KernelWorkload
from .warp import KernelCostParameters, block_instruction_count

__all__ = ["KernelTiming", "KernelExecutionModel"]

_VALUE_BYTES = 4


@dataclass(frozen=True)
class KernelTiming:
    """Timing breakdown of one modeled kernel launch.

    All times are seconds.  ``device_seconds`` is the kernel's execution
    time on the device; ``total_seconds`` additionally includes host-link
    transfers and the launch overhead (transfers are assumed overlapped with
    compute only up to the non-binding component, matching LOGAN's use of
    asynchronous copies).
    """

    compute_seconds: float
    memory_seconds: float
    critical_path_seconds: float
    launch_overhead_seconds: float
    transfer_seconds: float
    device_seconds: float
    total_seconds: float
    warp_instructions_cells: float
    warp_instructions_overhead: float
    hbm_bytes: int
    cells: int
    blocks: int
    threads_per_block: int
    utilization: float
    occupancy: OccupancyResult
    memory_estimate: MemoryEstimate

    @property
    def warp_instructions(self) -> float:
        """Total warp instructions issued by the kernel."""
        return self.warp_instructions_cells + self.warp_instructions_overhead

    @property
    def warp_gips(self) -> float:
        """Achieved warp GIPS over the device execution time."""
        if self.device_seconds <= 0:
            return float("inf")
        return self.warp_instructions / self.device_seconds / 1e9

    @property
    def operational_intensity(self) -> float:
        """Warp instructions per byte of HBM traffic (Roofline x-axis)."""
        if self.hbm_bytes <= 0:
            return float("inf")
        return self.warp_instructions / self.hbm_bytes

    @property
    def gcups(self) -> float:
        """Giga DP-cell updates per second over the total modeled time."""
        if self.total_seconds <= 0:
            return float("inf")
        return self.cells / self.total_seconds / 1e9

    @property
    def bound(self) -> str:
        """Which resource binds the kernel: ``compute``, ``memory`` or ``latency``."""
        binding = max(
            ("compute", self.compute_seconds),
            ("memory", self.memory_seconds),
            ("latency", self.critical_path_seconds),
            key=lambda kv: kv[1],
        )
        return binding[0]


class KernelExecutionModel:
    """Maps a :class:`KernelWorkload` to modeled device time.

    Parameters
    ----------
    device:
        Device specification (default presets live in
        :mod:`repro.gpusim.device`).
    params:
        Instruction/latency cost constants.
    memory_model:
        HBM traffic model; a default one is built from the device.
    latency_hiding_warps:
        Number of active warps per SM at which latency hiding reaches 50 %
        efficiency.  Utilisation is ``aw / (aw + latency_hiding_warps)``.
    launch_overhead_seconds:
        Fixed host-side cost per kernel launch (driver submission, final
        synchronisation).
    """

    def __init__(
        self,
        device: DeviceSpec,
        params: KernelCostParameters | None = None,
        memory_model: MemoryModel | None = None,
        latency_hiding_warps: float = 48.0,
        launch_overhead_seconds: float = 8e-5,
    ) -> None:
        if latency_hiding_warps <= 0:
            raise ConfigurationError("latency_hiding_warps must be positive")
        if launch_overhead_seconds < 0:
            raise ConfigurationError("launch_overhead_seconds must be non-negative")
        self.device = device
        self.params = params or KernelCostParameters()
        self.memory_model = memory_model or MemoryModel(device)
        self.latency_hiding_warps = float(latency_hiding_warps)
        self.launch_overhead_seconds = float(launch_overhead_seconds)

    # ------------------------------------------------------------------ #
    def execute(
        self,
        workload: KernelWorkload,
        threads_per_block: int,
        shared_mem_per_block_bytes: int | None = None,
    ) -> KernelTiming:
        """Model one kernel launch of *workload* with the given configuration."""
        if workload.sampled_blocks == 0:
            raise ConfigurationError("cannot execute an empty workload")
        device = self.device
        params = self.params
        if shared_mem_per_block_bytes is None:
            # LOGAN only keeps the per-warp reduction scratch in shared memory.
            shared_mem_per_block_bytes = threads_per_block * _VALUE_BYTES

        mean_band = workload.mean_band_width
        occ = occupancy(
            device,
            threads_per_block=threads_per_block,
            shared_mem_per_block_bytes=shared_mem_per_block_bytes,
            active_threads_per_block=min(mean_band, threads_per_block),
        )

        # ---------------- instruction accounting ---------------- #
        cell_instr = 0.0
        overhead_instr = 0.0
        max_block_cycles = 0.0
        for block in workload.blocks:
            c, o = block_instruction_count(
                block.band_widths, threads_per_block, device.warp_size, params
            )
            cell_instr += c
            overhead_instr += o
            # Serial critical path of this block: per-anti-diagonal issue
            # cycles (its own instructions at one scheduler's int32 rate)
            # plus the un-hidable dependent latency.
            issue_cycles = (c + o) * device.int32_warp_issue_cycles / (
                device.warp_schedulers_per_sm
            )
            latency_cycles = block.anti_diagonals * params.antidiag_latency_cycles
            max_block_cycles = max(max_block_cycles, issue_cycles + latency_cycles)
        cell_instr *= workload.replication
        overhead_instr *= workload.replication
        total_instr = cell_instr + overhead_instr

        # ---------------- utilisation / throughput ---------------- #
        active_warps = occ.active_warps_per_sm
        utilization = active_warps / (active_warps + self.latency_hiding_warps)
        # A kernel with fewer blocks than the device can host cannot use
        # every SM regardless of per-SM occupancy.
        total_resident_capacity = occ.blocks_per_sm * device.num_sms
        if workload.total_blocks < total_resident_capacity:
            utilization *= workload.total_blocks / total_resident_capacity
        utilization = max(utilization, 1e-6)

        effective_gips = device.int32_peak_warp_gips * 1e9 * utilization
        compute_seconds = total_instr / effective_gips

        # ---------------- memory ---------------- #
        resident_blocks = occ.blocks_per_sm * device.num_sms
        mem = self.memory_model.estimate(workload, resident_blocks)
        memory_seconds = mem.hbm_bytes / (device.hbm_bandwidth_gbps * 1e9)
        transfer_seconds = self.memory_model.transfer_seconds(mem.transfer_bytes)

        # ---------------- critical path ---------------- #
        critical_path_seconds = max_block_cycles / (device.clock_ghz * 1e9)

        device_seconds = max(compute_seconds, memory_seconds, critical_path_seconds)
        # Asynchronous copies overlap transfers with compute; only the excess
        # beyond the device time remains visible.
        exposed_transfer = max(0.0, transfer_seconds - device_seconds)
        total_seconds = (
            device_seconds + exposed_transfer + self.launch_overhead_seconds
        )

        return KernelTiming(
            compute_seconds=compute_seconds,
            memory_seconds=memory_seconds,
            critical_path_seconds=critical_path_seconds,
            launch_overhead_seconds=self.launch_overhead_seconds,
            transfer_seconds=transfer_seconds,
            device_seconds=device_seconds,
            total_seconds=total_seconds,
            warp_instructions_cells=cell_instr,
            warp_instructions_overhead=overhead_instr,
            hbm_bytes=mem.hbm_bytes,
            cells=workload.total_cells,
            blocks=workload.total_blocks,
            threads_per_block=threads_per_block,
            utilization=utilization,
            occupancy=occ,
            memory_estimate=mem,
        )
