"""Seed selection by diagonal binning (BELLA stage 3).

A candidate pair usually shares many k-mers.  Extending from every one of
them would multiply the alignment work; extending from a random one risks
picking a k-mer that belongs to a repeat rather than to the true overlap.
BELLA "chooses the optimal k-mer to begin alignment extension through a
binning mechanism, where k-mer locations are used to estimate the overlap
length and to bin k-mers to form a consensus" (Section V).

Shared k-mers that belong to the same true overlap lie near a common
diagonal (``position_in_i - position_in_j`` roughly constant up to indel
drift), so the k-mers are binned by diagonal, the most populated bin wins,
and the median k-mer of that bin becomes the seed.  The same positions also
give the overlap-length estimate used by the adaptive score threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.seed_extend import Seed
from ..errors import ConfigurationError
from .overlap import CandidateOverlap

__all__ = [
    "SeedChoice",
    "choose_seed",
    "estimate_overlap_length",
    "length_bin",
]


def length_bin(length: int, bin_width: int = 500) -> int:
    """Bin index of a sequence length, using the diagonal-bin edge rule.

    The serving layer's adaptive batcher groups pending jobs by length so
    that the padded inter-sequence kernel wastes as little work as possible;
    it reuses the same ``floor_divide`` bin edges as the diagonal binning
    above (and the same default width), so one ``bin_width`` knob controls
    both consumers.
    """
    if bin_width <= 0:
        raise ConfigurationError("bin_width must be positive")
    return int(np.floor_divide(int(length), int(bin_width)))


@dataclass(frozen=True)
class SeedChoice:
    """The seed selected for a candidate pair plus its supporting evidence.

    Attributes
    ----------
    seed:
        The chosen seed (positions on read i / read j, k-mer length).
    bin_diagonal:
        Centre diagonal of the winning bin.
    bin_support:
        Number of shared k-mers in the winning bin (the "consensus" count).
    overlap_estimate:
        Estimated overlap length in bases, from the seed position and the
        read lengths.
    """

    seed: Seed
    bin_diagonal: int
    bin_support: int
    overlap_estimate: int


def estimate_overlap_length(
    pos_i: int, pos_j: int, len_i: int, len_j: int
) -> int:
    """Estimate the overlap length implied by a shared k-mer.

    If the k-mer sits at ``pos_i`` / ``pos_j`` on the two reads, the overlap
    can extend left by ``min(pos_i, pos_j)`` bases and right by
    ``min(len_i - pos_i, len_j - pos_j)`` bases.
    """
    if len_i <= 0 or len_j <= 0:
        raise ConfigurationError("read lengths must be positive")
    left = min(pos_i, pos_j)
    right = min(len_i - pos_i, len_j - pos_j)
    return int(left + right)


def choose_seed(
    candidate: CandidateOverlap,
    kmer_length: int,
    len_i: int,
    len_j: int,
    bin_width: int = 500,
) -> SeedChoice:
    """Pick the extension seed for a candidate pair by diagonal binning.

    Parameters
    ----------
    candidate:
        The candidate overlap with its shared k-mer positions.
    kmer_length:
        k (seed length).
    len_i, len_j:
        Lengths of the two reads.
    bin_width:
        Diagonal bin width in bases; indel drift within a true overlap stays
        well below this for the read lengths and error rates involved.

    Raises
    ------
    ConfigurationError
        If the candidate carries no seed positions.
    """
    if bin_width <= 0:
        raise ConfigurationError("bin_width must be positive")
    if not candidate.seed_positions:
        raise ConfigurationError(
            f"candidate {candidate.pair} has no shared k-mer positions to bin"
        )

    positions = np.asarray(candidate.seed_positions, dtype=np.int64)
    diagonals = positions[:, 0] - positions[:, 1]
    bins = np.floor_divide(diagonals, bin_width)
    bin_ids, counts = np.unique(bins, return_counts=True)
    winner = int(bin_ids[int(np.argmax(counts))])
    support = int(counts.max())

    in_bin = positions[bins == winner]
    # Median k-mer of the consensus bin (by position on read i) is a robust
    # representative: it sits inside the overlap rather than at its fringe.
    order = np.argsort(in_bin[:, 0], kind="stable")
    median_row = in_bin[order[len(order) // 2]]
    pos_i, pos_j = int(median_row[0]), int(median_row[1])

    seed = Seed(query_pos=pos_i, target_pos=pos_j, length=kmer_length)
    return SeedChoice(
        seed=seed,
        bin_diagonal=winner * bin_width,
        bin_support=support,
        overlap_estimate=estimate_overlap_length(pos_i, pos_j, len_i, len_j),
    )
