#!/usr/bin/env python
"""Quickstart: X-drop pairwise alignment in a few lines.

Generates a pair of noisy long reads that share a common origin, extends a
seed with the X-drop kernel at a few different X values, and compares the
result against the exact (full dynamic-programming) extension score — the
accuracy/efficiency trade-off that motivates the algorithm.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    ScoringScheme,
    Seed,
    exact_extension_score,
    extend_seed,
    get_engine,
    list_engines,
    xdrop_extend,
)
from repro.core.job import AlignmentJob
from repro.data import ErrorModel, apply_errors


def main() -> None:
    rng = np.random.default_rng(42)
    scoring = ScoringScheme(match=1, mismatch=-1, gap=-1)

    # Two ~3 kb reads derived from the same template with ~15 % divergence,
    # mimicking a pair of PacBio reads that truly overlap.
    template = rng.integers(0, 4, 3000).astype(np.uint8)
    per_read_errors = ErrorModel.with_total(0.075)
    query = apply_errors(template, per_read_errors, rng)
    target = apply_errors(template, per_read_errors, rng)

    print(f"query length {len(query)}, target length {len(target)}")
    print()

    # --- 1. Plain X-drop extension from position (0, 0). -------------------
    print(f"{'X':>6s} {'score':>8s} {'cells':>12s} {'time':>9s} {'GCUPS':>8s} {'early stop':>10s}")
    for xdrop in (5, 20, 50, 100, 500):
        start = time.perf_counter()
        result = xdrop_extend(query, target, scoring, xdrop=xdrop)
        elapsed = time.perf_counter() - start
        print(
            f"{xdrop:>6d} {result.best_score:>8d} {result.cells_computed:>12,d} "
            f"{elapsed:>8.3f}s {result.gcups(elapsed):>8.4f} "
            f"{str(result.terminated_early):>10s}"
        )

    # --- 2. Compare with the exact (un-pruned) extension score. ------------
    exact = exact_extension_score(query, target, scoring)
    print()
    print(f"exact extension score (full DP over {exact.cells_computed:,} cells): "
          f"{exact.best_score}")
    best_x = xdrop_extend(query, target, scoring, xdrop=500)
    fraction = best_x.best_score / exact.best_score
    cells_fraction = best_x.cells_computed / exact.cells_computed
    print(f"X=500 recovers {fraction:.1%} of the exact score while computing only "
          f"{cells_fraction:.1%} of the cells")

    # --- 3. Seed-and-extend, the way BELLA/BLAST use the kernel. -----------
    seed = Seed(query_pos=1200, target_pos=1200, length=17)
    # Plant an exact seed so the anchor is genuine.
    target[seed.target_pos : seed.target_end] = query[seed.query_pos : seed.query_end]
    alignment = extend_seed(query, target, seed, scoring, xdrop=100)
    print()
    print("seed-and-extend around a 17-mer anchor at (1200, 1200):")
    print(f"  total score {alignment.score} "
          f"(left {alignment.left.best_score} + seed {alignment.seed_score} + "
          f"right {alignment.right.best_score})")
    print(f"  query span  [{alignment.query_begin}, {alignment.query_end})")
    print(f"  target span [{alignment.target_begin}, {alignment.target_end})")

    # --- 4. Batch alignment through the engine registry. -------------------
    # Every batch aligner is available behind one interface; the "batched"
    # engine packs all jobs into padded arrays and sweeps their
    # anti-diagonals together (LOGAN's inter-sequence parallelism).
    jobs = [
        AlignmentJob(query=query, target=target, seed=seed, pair_id=i)
        for i in range(32)
    ]
    print()
    print(f"available engines: {', '.join(list_engines())}")
    print(f"{'engine':>12s} {'seconds':>9s} {'GCUPS':>8s}")
    for name in ("reference", "vectorized", "batched"):
        engine = get_engine(name, scoring=scoring, xdrop=100)
        batch = engine.align_batch(jobs)
        assert len(set(batch.scores())) == 1  # identical jobs, identical scores
        print(
            f"{name:>12s} {batch.elapsed_seconds:>8.3f}s "
            f"{batch.measured_gcups():>8.4f}"
        )


if __name__ == "__main__":
    main()
