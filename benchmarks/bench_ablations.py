"""Ablation benchmarks for the design decisions described in Section IV.

Each ablation keeps the algorithmic work identical and flips exactly one of
LOGAN's design choices in the execution model:

* threads per block proportional to X vs the naive 1024-thread launch;
* anti-diagonal buffers in HBM vs reserved shared memory (occupancy);
* host-side sequence reversal (coalesced loads) on vs off;
* warp-shuffle max reduction vs a serial per-block scan;
* work-aware multi-GPU load balancing vs equal-count round-robin.

In every case the LOGAN choice must not be slower, and for the conditions
the paper motivates them with, it must be clearly faster.
"""

from __future__ import annotations


def test_ablation_threads_proportional_to_x(run_experiment):
    table = run_experiment("ablation_threads")
    for row in table.rows:
        # Fixed 1024-thread blocks are never faster, and clearly slower for
        # small X where most scheduled threads would stall.
        assert row.values["slowdown_fixed"] >= 0.999
    small_x_row = table.rows[0]
    assert small_x_row.values["slowdown_fixed"] > 1.5


def test_ablation_memory_placement(run_experiment):
    table = run_experiment("ablation_memory")
    hbm, shared = table.rows
    # Reserving the anti-diagonal buffers in shared memory collapses
    # occupancy (Section IV-B) and costs kernel time.
    assert shared.values["blocks_per_sm"] < hbm.values["blocks_per_sm"]
    assert shared.values["slowdown"] > 1.2


def test_ablation_sequence_reversal(run_experiment):
    table = run_experiment("ablation_reversal")
    coalesced, reversed_off = table.rows
    # Disabling the reversal multiplies sequence DRAM traffic and never helps.
    assert reversed_off.values["hbm_gb"] > coalesced.values["hbm_gb"]
    assert reversed_off.values["memory_s"] > coalesced.values["memory_s"]
    assert reversed_off.values["slowdown"] >= 1.0


def test_ablation_warp_reduction(run_experiment):
    table = run_experiment("ablation_reduction")
    shuffle, serial = table.rows
    assert serial.values["warp_instructions"] > shuffle.values["warp_instructions"]
    assert serial.values["slowdown"] > 1.05


def test_ablation_load_balancing(run_experiment):
    table = run_experiment("ablation_loadbalance")
    smart, naive = table.rows
    # The length-aware split is at least as balanced and never slower.
    assert smart.values["imbalance"] <= naive.values["imbalance"] + 1e-9
    assert naive.values["slowdown"] >= 0.999
