"""Long-read simulator with a PacBio-like error model.

Third-generation (PacBio CLR) reads — the workload LOGAN and BELLA target —
are long (1 kb–1 Mb, typically a few kb to tens of kb) and noisy (10–15 %
errors, dominated by insertions/deletions).  The simulator samples reads
from a reference genome, applies a configurable error model, and keeps the
true genomic interval of every read so that downstream components (BELLA's
overlap detection, the benchmark harness) can compute ground-truth overlaps
and recall/precision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from .genome import Genome

__all__ = ["ErrorModel", "SimulatedRead", "apply_errors", "simulate_reads", "true_overlap"]


@dataclass(frozen=True)
class ErrorModel:
    """Per-base error probabilities of the read simulator.

    The defaults give a ~15 % total error rate split 50 % insertions,
    30 % deletions, 20 % substitutions — the usual PacBio CLR profile and the
    regime quoted in Section VI ("sequences have an error rate of about
    10-15 %").
    """

    substitution: float = 0.03
    insertion: float = 0.075
    deletion: float = 0.045

    def __post_init__(self) -> None:
        for name, value in (
            ("substitution", self.substitution),
            ("insertion", self.insertion),
            ("deletion", self.deletion),
        ):
            if not 0.0 <= value < 1.0:
                raise DatasetError(f"{name} rate must be in [0, 1), got {value}")
        if self.total >= 1.0:
            raise DatasetError("total error rate must be below 1.0")

    @property
    def total(self) -> float:
        """Total per-base error probability."""
        return self.substitution + self.insertion + self.deletion

    @classmethod
    def with_total(cls, total: float) -> "ErrorModel":
        """Error model with the canonical 50/30/20 indel/substitution split."""
        if not 0.0 <= total < 1.0:
            raise DatasetError(f"total error rate must be in [0, 1), got {total}")
        return cls(
            substitution=0.2 * total, insertion=0.5 * total, deletion=0.3 * total
        )

    @classmethod
    def perfect(cls) -> "ErrorModel":
        """Error-free model (useful in tests)."""
        return cls(substitution=0.0, insertion=0.0, deletion=0.0)


@dataclass
class SimulatedRead:
    """A simulated long read and its ground-truth provenance.

    Attributes
    ----------
    name:
        Read identifier.
    sequence:
        Encoded (uint8) read sequence, errors applied.
    genome_start, genome_end:
        True half-open interval of the genome the read was sampled from.
    """

    name: str
    sequence: np.ndarray
    genome_start: int
    genome_end: int

    def __len__(self) -> int:
        return int(len(self.sequence))

    @property
    def true_span(self) -> int:
        """Length of the genomic interval the read covers."""
        return self.genome_end - self.genome_start


def apply_errors(
    sequence: np.ndarray, model: ErrorModel, rng: np.random.Generator
) -> np.ndarray:
    """Apply the error model to an encoded sequence, returning a new array.

    Substitutions replace the base with a uniformly random *different* base;
    insertions add a random base after the current one; deletions drop the
    base.  The three events are mutually exclusive per input base, which is
    accurate enough at the 10-20 % total rates used here.
    """
    if model.total == 0.0:
        return sequence.copy()
    n = len(sequence)
    draws = rng.random(n)
    sub_mask = draws < model.substitution
    ins_mask = (draws >= model.substitution) & (
        draws < model.substitution + model.insertion
    )
    del_mask = (draws >= model.substitution + model.insertion) & (draws < model.total)

    out = sequence.copy()
    if sub_mask.any():
        count = int(sub_mask.sum())
        # Random offset 1-3 added modulo 4 guarantees a *different* base.
        offsets = rng.integers(1, 4, size=count, dtype=np.uint8)
        out[sub_mask] = (out[sub_mask] + offsets) % 4

    # Build the output with insertions and deletions in one pass over runs.
    keep = ~del_mask
    insert_bases = rng.integers(0, 4, size=int(ins_mask.sum()), dtype=np.uint8)
    # Vectorised assembly: iterate over positions where structure changes.
    # For simplicity and correctness we fall back to a single compiled-level
    # loop via numpy fancy indexing on the kept bases, then splice insertions.
    kept_bases = out[keep]
    if len(insert_bases) == 0:
        return kept_bases
    # Positions (in the kept-bases coordinate system) after which to insert.
    kept_cumulative = np.cumsum(keep) - 1  # index of each original pos in kept array
    insert_after = kept_cumulative[ins_mask]
    order = np.argsort(insert_after, kind="stable")
    insert_after = insert_after[order]
    insert_bases = insert_bases[order]
    result = np.empty(len(kept_bases) + len(insert_bases), dtype=np.uint8)
    prev = 0
    write = 0
    for idx, base in zip(insert_after, insert_bases):
        upto = int(idx) + 1
        if upto > prev:
            segment = kept_bases[prev:upto]
            result[write : write + len(segment)] = segment
            write += len(segment)
            prev = upto
        result[write] = base
        write += 1
    tail = kept_bases[prev:]
    result[write : write + len(tail)] = tail
    write += len(tail)
    return result[:write]


def simulate_reads(
    genome: Genome,
    num_reads: int,
    mean_length: int,
    length_spread: int,
    error_model: ErrorModel | None = None,
    rng: np.random.Generator | None = None,
    name_prefix: str = "read",
) -> list[SimulatedRead]:
    """Sample *num_reads* error-prone reads from *genome*.

    Read lengths are drawn uniformly from
    ``[mean_length - length_spread, mean_length + length_spread]`` and
    clipped to the genome; start positions are uniform.
    """
    if num_reads <= 0:
        raise DatasetError(f"num_reads must be positive, got {num_reads}")
    if mean_length <= 0 or length_spread < 0:
        raise DatasetError("mean_length must be positive and length_spread >= 0")
    if mean_length - length_spread <= 0:
        raise DatasetError("mean_length - length_spread must be positive")
    rng = rng or np.random.default_rng()
    error_model = error_model or ErrorModel()

    genome_length = len(genome)
    reads: list[SimulatedRead] = []
    for index in range(num_reads):
        length = int(rng.integers(mean_length - length_spread, mean_length + length_spread + 1))
        length = min(length, genome_length)
        start = int(rng.integers(0, max(1, genome_length - length + 1)))
        end = start + length
        fragment = genome.sequence[start:end]
        sequence = apply_errors(fragment, error_model, rng)
        reads.append(
            SimulatedRead(
                name=f"{name_prefix}_{index}",
                sequence=sequence,
                genome_start=start,
                genome_end=end,
            )
        )
    return reads


def true_overlap(a: SimulatedRead, b: SimulatedRead) -> int:
    """Length of the true genomic overlap between two simulated reads (0 if none)."""
    start = max(a.genome_start, b.genome_start)
    end = min(a.genome_end, b.genome_end)
    return max(0, end - start)
