"""Worker-process entry point for the multi-process pool.

Each worker is a spawned interpreter that rebuilds its engine from the
coordinator's :class:`~repro.api.AlignConfig` dict, then loops: take a task
off its queue, attach the named shared-memory job block, align, and reply
with a packed result table.  Three side channels ride on every reply:

* the five-field work summary plus kernel telemetry (``BatchKernelStats``
  is a plain picklable dataclass),
* counter *deltas* between consecutive registry snapshots, so the
  coordinator can fold per-process metrics into its own registry without
  double counting,
* on failure, the exception traceback and a flight-recorder dump — workers
  always run with the flight recorder on, so a crash ships its last spans
  and events back for diagnosis.

Fault injection for crash-recovery tests is explicit: a spec may carry
``{"fault": {"after": N}}``, which hard-exits the process (``os._exit``)
when the N-th task arrives — indistinguishable from a real segfault as far
as the coordinator can tell.
"""

from __future__ import annotations

import os
import traceback
from typing import Any

from .. import obs as obs_mod
from ..api import AlignConfig
from ..core.scoring import ScoringScheme
from ..engine import engine_from_config
from .shm import attach_jobs, pack_results

__all__ = ["worker_main"]

# Exit code used by injected faults; tests assert on it.
FAULT_EXIT_CODE = 3


def worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    spec: dict[str, Any],
) -> None:
    """Run one worker until a ``None`` sentinel arrives."""
    ob = obs_mod.configure(flight_recorder=True)
    fault = spec.get("fault") or None
    tasks_seen = 0
    try:
        config = AlignConfig.from_dict(spec["config"])
        engine = engine_from_config(config)
    except BaseException as exc:  # startup failure: report, then stop
        result_queue.put(_error_reply(worker_id, None, exc, ob))
        return

    last_snapshot = ob.registry.snapshot()
    while True:
        task = task_queue.get()
        if task is None:
            return
        tasks_seen += 1
        if fault is not None and tasks_seen >= int(fault.get("after", 1)):
            os._exit(FAULT_EXIT_CODE)
        seq = task["seq"]
        shm = None
        try:
            shm, jobs = attach_jobs(task["shm"])
            scoring = task.get("scoring")
            if scoring is not None:
                scoring = ScoringScheme(*scoring)
            xdrop = task.get("xdrop")
            batch = engine.align_batch(jobs, scoring=scoring, xdrop=xdrop)
            snapshot = ob.registry.snapshot()
            summary = batch.summary
            reply = {
                "ok": True,
                "worker": worker_id,
                "seq": seq,
                "results": pack_results(batch.results),
                "summary": (
                    summary.alignments,
                    summary.extensions,
                    summary.cells,
                    summary.iterations,
                    summary.max_band_width,
                ),
                "elapsed": batch.elapsed_seconds,
                "kernel_stats": batch.extras.get("kernel_stats"),
                "counters": _counter_deltas(last_snapshot, snapshot),
            }
            last_snapshot = snapshot
            result_queue.put(reply)
        except BaseException as exc:
            result_queue.put(_error_reply(worker_id, seq, exc, ob))
        finally:
            if shm is not None:
                # Jobs alias the mapped buffer; they are dead past this
                # point, which is fine — the reply already copied results.
                del jobs
                shm.close()


def _counter_deltas(prev, cur) -> list[dict[str, Any]]:
    """Counter increments between two snapshots (counters only).

    Histogram sums and gauges are not safely mergeable as increments, so
    the coordinator only receives counter deltas; each entry carries the
    labels dict (declaration order preserved) so the coordinator can
    redeclare the instrument identically.
    """
    previous: dict[tuple, float] = {}
    for sample in prev.series:
        if sample.kind == "counter":
            key = (sample.name, tuple(sorted(sample.labels.items())))
            previous[key] = sample.value
    deltas: list[dict[str, Any]] = []
    for sample in cur.series:
        if sample.kind != "counter":
            continue
        key = (sample.name, tuple(sorted(sample.labels.items())))
        delta = sample.value - previous.get(key, 0.0)
        if delta > 0.0:
            deltas.append(
                {
                    "name": sample.name,
                    "help": sample.help,
                    "labels": dict(sample.labels),
                    "delta": delta,
                }
            )
    return deltas


def _error_reply(worker_id, seq, exc, ob) -> dict[str, Any]:
    dump = None
    try:
        recorder = ob.recorder
        if recorder is not None:
            dump = recorder.dump(
                reason="worker_exception",
                provenance={"worker": str(worker_id)},
            )
    except Exception:
        dump = None
    return {
        "ok": False,
        "worker": worker_id,
        "seq": seq,
        "error": f"{type(exc).__name__}: {exc}",
        "traceback": traceback.format_exc(),
        "flight_recorder": dump,
    }
