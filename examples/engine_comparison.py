#!/usr/bin/env python
"""Side-by-side comparison of the batched, compiled and wavefront engines.

Generates an ont-profile long-read workload (the wavefront engine's home
turf: unit scoring, high-identity pairs) and runs it through the three
kernel strategies behind the engine registry:

* ``batched``   — pure-NumPy inter-sequence batched sweep (the default),
* ``compiled``  — numba-JIT per-pair banded sweep (skipped with a pointer
  at ``pip install numba`` when the optional dependency is missing),
* ``wavefront`` — WFA-style furthest-reaching-point extension.

Every engine's scores are checked bit-identical against the scalar
reference before any timing is reported.

Run with::

    python examples/engine_comparison.py [num_pairs] [xdrop]
"""

from __future__ import annotations

import sys
import time

from repro.api import AlignConfig, Aligner
from repro.engine import describe_engines, get_engine
from repro.workloads import WorkloadSpec, generate_workload


def main(num_pairs: int = 16, xdrop: int = 20) -> None:
    spec = WorkloadSpec(
        count=num_pairs,
        seed=2020,
        min_length=2000,
        max_length=4000,
        error_rate=0.02,
        xdrop=xdrop,
    )
    jobs = generate_workload("ont", spec).jobs
    print(f"ont profile: {len(jobs)} pairs, 2-4 kbp, 2% error, X={xdrop}")
    print()

    reference = get_engine("reference", xdrop=xdrop).align_batch(jobs).scores()

    rows = {row["name"]: row for row in describe_engines()}
    timings: dict[str, float] = {}
    for name in ("batched", "compiled", "wavefront"):
        row = rows[name]
        if not row["available"]:
            print(f"{name:>10s}: skipped — {row['reason']}")
            continue
        aligner = Aligner(AlignConfig(engine=name, xdrop=xdrop))
        aligner.align_batch(jobs)  # warm-up (JIT compilation, allocations)
        start = time.perf_counter()
        scores = aligner.align_batch(jobs).scores()
        timings[name] = time.perf_counter() - start
        parity = "scores identical to reference" if scores == reference else (
            "SCORE MISMATCH vs reference"
        )
        print(f"{name:>10s}: {timings[name]:8.3f} s   ({parity})")
        if scores != reference:
            raise SystemExit(f"engine {name!r} broke bit-identity")

    if "batched" in timings:
        print()
        for name, seconds in timings.items():
            if name != "batched":
                print(f"{name:>10s}: {timings['batched'] / seconds:5.2f}x vs batched")


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 16,
        int(sys.argv[2]) if len(sys.argv) > 2 else 20,
    )
