"""Flight recorder: a bounded ring of recent spans, events and deltas.

Production services rarely need the full telemetry stream — they need the
*last few seconds* of it, at the moment something crashed.  The recorder
keeps a fixed-size ring of recent trace spans, discrete events (worker
crashes, backpressure trips, forced dumps) and per-interval metric deltas;
:meth:`FlightRecorder.dump` freezes the ring into a JSON document stamped
with provenance, written on worker crash, on demand, or by the
conformance harness into its failure reports.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Mapping

from .metrics import MetricsRegistry, MetricsSnapshot, diff_counters
from .provenance import build_provenance
from .tracing import Span

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Bounded ring buffer of recent observability signal.

    Parameters
    ----------
    capacity:
        Maximum retained entries *per ring* (spans / events / deltas each
        keep their own ring so a chatty tracer cannot evict crash events).
    registry:
        Optional registry whose counter deltas :meth:`tick` records.
    """

    def __init__(
        self, capacity: int = 256, registry: MetricsRegistry | None = None
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.registry = registry
        self._lock = threading.Lock()
        self._spans: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        self._events: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        self._deltas: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        self._last_snapshot: MetricsSnapshot | None = None
        self.dumps = 0

    # ------------------------------------------------------------------ #
    # Feeding side.
    def record_span(self, span: Span) -> None:
        """Tracer sink: retain one finished span."""
        payload = span.to_dict()
        with self._lock:
            self._spans.append(payload)

    def record_event(self, kind: str, **payload: Any) -> None:
        """Retain one discrete event (crash, backpressure, dump trigger)."""
        entry = {"kind": kind, "time": time.time(), **payload}
        with self._lock:
            self._events.append(entry)

    def tick(self, snapshot: MetricsSnapshot | None = None) -> None:
        """Record the metric deltas since the previous tick.

        Pass a snapshot, or let the recorder take one from its registry.
        """
        if snapshot is None:
            if self.registry is None:
                return
            snapshot = self.registry.snapshot()
        with self._lock:
            previous = self._last_snapshot
            self._last_snapshot = snapshot
        if previous is not None:
            deltas = diff_counters(previous, snapshot)
            if deltas:
                with self._lock:
                    self._deltas.append(
                        {"time": snapshot.captured_at, "deltas": deltas}
                    )

    # ------------------------------------------------------------------ #
    # Dump side.
    def dump(
        self,
        path: str | Path | None = None,
        reason: str = "on_demand",
        provenance: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Freeze the rings into a JSON-ready document (and write *path*).

        The document is self-describing: reason, provenance, the retained
        spans/events/deltas, and — when the recorder watches a registry —
        a final full metrics snapshot.
        """
        with self._lock:
            spans = list(self._spans)
            events = list(self._events)
            deltas = list(self._deltas)
            self.dumps += 1
        final = self.registry.snapshot().to_dict() if self.registry else None
        document = {
            "kind": "flight_recorder_dump",
            "reason": reason,
            "captured_at": time.time(),
            "provenance": dict(provenance) if provenance else build_provenance(),
            "capacity": self.capacity,
            "spans": spans,
            "events": events,
            "metric_deltas": deltas,
            "metrics": final,
        }
        if path is not None:
            Path(path).write_text(json.dumps(document, indent=2, default=str))
        return document

    def clear(self) -> None:
        """Drop everything retained (dump counter is preserved)."""
        with self._lock:
            self._spans.clear()
            self._events.clear()
            self._deltas.clear()
            self._last_snapshot = None

    # ------------------------------------------------------------------ #
    @property
    def span_count(self) -> int:
        with self._lock:
            return len(self._spans)

    @property
    def event_count(self) -> int:
        with self._lock:
            return len(self._events)
