"""Multi-process worker pool with shared-memory dispatch and crash recovery.

Drop-in peer of :class:`repro.service.ShardedWorkerPool` (same ``run_batch``
-> ``PoolRun`` contract, same per-shard metrics), but the shards are spawned
interpreter processes instead of threads, so engine dispatch runs outside
the coordinator's GIL.

Dispatch policies:

``"batch"`` (default)
    Ship the whole formed batch to one worker, round-robin across workers.
    Batches are the pool's unit of parallelism: consecutive batches pipeline
    across processes, and no batch pays the efficiency penalty of being
    split into smaller kernel invocations.  This is the policy the bench
    records, and the honest reason the process tier beats the thread tier
    even on one core — the thread pool must split a batch to use two
    workers, and split batches cost more total kernel time.
``"cells"`` / ``"count"``
    Split each batch across all workers with the multi-GPU load balancer,
    exactly like the thread pool — intra-batch parallelism for multicore
    hosts.

Crash handling: a worker that dies mid-shard (detected by liveness checks
while waiting on the result queue) is respawned and the shard — whose
shared-memory block the coordinator still owns — is redelivered, up to
``max_redeliveries`` times per shard.  Worker exceptions are *not*
redelivered (they are deterministic); the reply's traceback and
flight-recorder dump surface through :class:`~repro.errors.ServiceError`
and ``last_crash_dump``.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
from dataclasses import dataclass
from typing import Sequence

from ..api import AlignConfig
from ..core.job import AlignmentJob, BatchWorkSummary
from ..core.result import SeedAlignmentResult
from ..core.xdrop_batch import BatchKernelStats
from ..errors import ConfigurationError, ServiceError
from ..logan.scheduler import LoadBalancer
from ..perf.timers import Timer
from ..service.workers import PoolRun, WorkerStats
from .shm import SharedJobBlock, unpack_results
from .worker import worker_main

__all__ = ["ProcessWorkerPool"]

_POLL_SECONDS = 0.2


@dataclass
class _Shard:
    """One dispatched shard: its worker, job slice and shm block."""

    worker_index: int
    job_indices: list[int]
    block: SharedJobBlock
    task: dict
    redeliveries: int = 0


class ProcessWorkerPool:
    """Spawned-process sharded worker pool.

    Parameters
    ----------
    config:
        The full alignment config; each worker rebuilds its engine from
        ``config.to_dict()`` in its own interpreter.  Trace mode is
        rejected — packed result tables carry no band-width traces.
    num_workers:
        Number of worker processes.
    policy:
        ``"batch"``, ``"cells"`` or ``"count"`` (see module docstring).
    xdrop:
        X value for the load balancer's cell estimates (split policies).
    fault_injection:
        Test hook: ``{worker_index: {"after": n}}`` makes that worker
        hard-exit on its *n*-th task.  Consumed on first spawn only, so a
        respawned worker runs clean.
    max_redeliveries:
        How many times one shard may be redelivered after worker deaths
        before the batch fails.
    """

    def __init__(
        self,
        config: AlignConfig,
        num_workers: int = 2,
        policy: str = "batch",
        xdrop: int = 100,
        obs=None,
        fault_injection: dict | None = None,
        max_redeliveries: int = 2,
    ) -> None:
        if num_workers <= 0:
            raise ServiceError(
                f"num_workers must be positive, got {num_workers}"
            )
        if config.trace:
            raise ConfigurationError(
                "transport='process' cannot carry band-width traces: packed "
                "result tables are fixed-width; use transport='thread' for "
                "trace mode"
            )
        if policy not in ("batch", "cells", "count"):
            raise ConfigurationError(
                f"process pool policy must be one of 'batch', 'cells', "
                f"'count', got {policy!r}"
            )
        self.config = config
        self.num_workers = int(num_workers)
        self.policy = policy
        self.max_redeliveries = int(max_redeliveries)
        self.balancer = (
            None
            if policy == "batch"
            else LoadBalancer(
                num_devices=self.num_workers, policy=policy, xdrop=xdrop
            )
        )
        self.worker_stats = [
            WorkerStats(worker_index=i) for i in range(self.num_workers)
        ]
        self.crashes = 0
        self.last_crash_dump: dict | None = None
        self._fault_injection = dict(fault_injection or {})
        self._ctx = mp.get_context("spawn")
        self._result_queue = self._ctx.Queue()
        self._task_queues: list = [None] * self.num_workers
        self._procs: list = [None] * self.num_workers
        self._spec = {"config": config.to_dict()}
        self._seq = 0
        self._round_robin = 0
        self._started = False
        self._closed = False

        self._obs = obs
        if obs is not None:
            shard = ("shard",)
            self._shard_batches = obs.counter(
                "repro_worker_batches_total", "batches run per shard", shard
            )
            self._shard_jobs = obs.counter(
                "repro_worker_jobs_total", "jobs aligned per shard", shard
            )
            self._shard_cells = obs.counter(
                "repro_worker_cells_total", "DP cells aligned per shard", shard
            )
            self._shard_seconds = obs.counter(
                "repro_worker_busy_seconds_total",
                "wall seconds busy per shard",
                shard,
            )
            self._crash_c = obs.counter(
                "repro_worker_crash_total",
                "worker processes that died and were respawned",
            )
        else:
            self._shard_batches = None
            self._crash_c = None

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker processes (idempotent)."""
        if self._started:
            return
        self._started = True
        for index in range(self.num_workers):
            self._spawn(index)

    def _spawn(self, index: int) -> None:
        task_queue = self._ctx.Queue()
        spec = dict(self._spec)
        fault = self._fault_injection.pop(index, None)
        if fault is not None:
            spec["fault"] = fault
        proc = self._ctx.Process(
            target=worker_main,
            args=(index, task_queue, self._result_queue, spec),
            daemon=True,
            name=f"repro-worker-{index}",
        )
        proc.start()
        self._task_queues[index] = task_queue
        self._procs[index] = proc

    def shutdown(self) -> None:
        """Send sentinels, join workers, drop the queues."""
        if self._closed:
            return
        self._closed = True
        if self._started:
            for task_queue, proc in zip(self._task_queues, self._procs):
                if proc is not None and proc.is_alive():
                    try:
                        task_queue.put(None)
                    except (OSError, ValueError):
                        pass
            for proc in self._procs:
                if proc is not None:
                    proc.join(timeout=5.0)
                    if proc.is_alive():
                        proc.terminate()
                        proc.join(timeout=1.0)
        for task_queue in self._task_queues:
            if task_queue is not None:
                task_queue.close()
                task_queue.cancel_join_thread()
        self._result_queue.close()
        self._result_queue.cancel_join_thread()

    def __enter__(self) -> "ProcessWorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- dispatch ---------------------------------------------------------

    def run_batch(
        self,
        jobs: Sequence[AlignmentJob],
        scoring=None,
        xdrop: int | None = None,
    ) -> PoolRun:
        """Align *jobs* across the worker processes; results in job order."""
        if self._closed:
            raise ServiceError("process pool is shut down")
        jobs = list(jobs)
        if not jobs:
            return PoolRun(
                results=[],
                summary=BatchWorkSummary(),
                elapsed_seconds=0.0,
                shards_used=0,
            )
        self.start()
        timer = Timer()
        with timer:
            outstanding = self._dispatch(jobs, scoring, xdrop)
            finished = self._collect(outstanding)
        return self._merge(jobs, finished, timer.elapsed)

    def _dispatch(self, jobs, scoring, xdrop) -> dict[int, _Shard]:
        shards: list[tuple[int, list[int]]] = []
        if self.policy == "batch":
            worker = self._round_robin % self.num_workers
            self._round_robin += 1
            shards.append((worker, list(range(len(jobs)))))
        else:
            for assignment in self.balancer.split(jobs):
                if assignment.num_jobs > 0:
                    shards.append(
                        (assignment.device_index, list(assignment.job_indices))
                    )
        outstanding: dict[int, _Shard] = {}
        for worker_index, indices in shards:
            block = SharedJobBlock.create([jobs[i] for i in indices])
            task = {
                "seq": self._next_seq(),
                "shm": block.name,
                "count": len(indices),
                "scoring": None if scoring is None else scoring.as_tuple(),
                "xdrop": None if xdrop is None else int(xdrop),
            }
            shard = _Shard(
                worker_index=worker_index,
                job_indices=indices,
                block=block,
                task=task,
            )
            outstanding[task["seq"]] = shard
            self._task_queues[worker_index].put(task)
        return outstanding

    def _collect(
        self, outstanding: dict[int, _Shard]
    ) -> list[tuple[_Shard, dict]]:
        finished: list[tuple[_Shard, dict]] = []
        try:
            while outstanding:
                try:
                    reply = self._result_queue.get(timeout=_POLL_SECONDS)
                except queue_mod.Empty:
                    self._handle_dead_workers(outstanding)
                    continue
                self._absorb_reply(reply, outstanding, finished)
        except BaseException:
            for shard in outstanding.values():
                shard.block.close()
                shard.block.unlink()
            raise
        return finished

    def _absorb_reply(self, reply, outstanding, finished) -> None:
        seq = reply.get("seq")
        if not reply.get("ok", False):
            self.last_crash_dump = reply.get("flight_recorder")
            detail = reply.get("error", "unknown worker failure")
            trace = reply.get("traceback")
            if seq is not None and seq in outstanding:
                shard = outstanding.pop(seq)
                shard.block.close()
                shard.block.unlink()
            raise ServiceError(
                f"worker {reply.get('worker')} failed: {detail}"
                + (f"\n{trace}" if trace else "")
            )
        if seq not in outstanding:
            return  # stale duplicate after a redelivery race
        shard = outstanding.pop(seq)
        shard.block.close()
        shard.block.unlink()
        finished.append((shard, reply))

    def _handle_dead_workers(self, outstanding: dict[int, _Shard]) -> None:
        dead = {
            shard.worker_index
            for shard in outstanding.values()
            if not self._procs[shard.worker_index].is_alive()
        }
        if not dead:
            return
        for worker_index in dead:
            self.crashes += 1
            if self._crash_c is not None:
                self._crash_c.inc()
            if self._obs is not None:
                self._obs.event(
                    "worker_process_died",
                    worker=worker_index,
                    exitcode=self._procs[worker_index].exitcode,
                )
            self._spawn(worker_index)
        for seq in [
            s
            for s, shard in outstanding.items()
            if shard.worker_index in dead
        ]:
            shard = outstanding.pop(seq)
            if shard.redeliveries >= self.max_redeliveries:
                shard.block.close()
                shard.block.unlink()
                # Put the rest back so the caller's cleanup still sees them.
                raise ServiceError(
                    f"worker {shard.worker_index} died "
                    f"{shard.redeliveries + 1} times on the same shard "
                    f"({len(shard.job_indices)} jobs); giving up after "
                    f"{self.max_redeliveries} redeliveries"
                )
            shard.redeliveries += 1
            shard.task = dict(shard.task, seq=self._next_seq())
            outstanding[shard.task["seq"]] = shard
            self._task_queues[shard.worker_index].put(shard.task)

    def _merge(self, jobs, finished, elapsed: float) -> PoolRun:
        results: list[SeedAlignmentResult | None] = [None] * len(jobs)
        summary = BatchWorkSummary()
        kernel_stats: BatchKernelStats | None = None
        for shard, reply in finished:
            shard_results = unpack_results(reply["results"])
            if len(shard_results) != len(shard.job_indices):
                raise ServiceError(
                    f"worker {reply['worker']} returned "
                    f"{len(shard_results)} results for a "
                    f"{len(shard.job_indices)}-job shard"
                )
            for local, job_index in enumerate(shard.job_indices):
                results[job_index] = shard_results[local]
            summary = summary.merge(BatchWorkSummary(*reply["summary"]))
            stats = self.worker_stats[shard.worker_index]
            stats.batches += 1
            stats.jobs += len(shard.job_indices)
            stats.cells += int(reply["summary"][2])
            stats.seconds += float(reply["elapsed"])
            if self._shard_batches is not None:
                label = str(shard.worker_index)
                self._shard_batches.inc(shard=label)
                self._shard_jobs.inc(len(shard.job_indices), shard=label)
                self._shard_cells.inc(int(reply["summary"][2]), shard=label)
                self._shard_seconds.inc(float(reply["elapsed"]), shard=label)
            self._merge_counters(reply.get("counters") or ())
            shard_stats = reply.get("kernel_stats")
            if shard_stats is not None:
                if kernel_stats is None:
                    kernel_stats = BatchKernelStats()
                kernel_stats.merge(shard_stats)
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:
            raise ServiceError(
                f"{len(missing)} job(s) received no result from the pool"
            )
        return PoolRun(
            results=results,  # type: ignore[arg-type]
            summary=summary,
            elapsed_seconds=elapsed,
            shards_used=len(finished),
            extras=(
                {"kernel_stats": kernel_stats}
                if kernel_stats is not None
                else {}
            ),
        )

    def _merge_counters(self, entries) -> None:
        """Fold worker-side counter deltas into the coordinator registry."""
        if self._obs is None:
            return
        for entry in entries:
            labels = dict(entry["labels"])
            counter = self._obs.counter(
                entry["name"], entry.get("help", ""), tuple(labels.keys())
            )
            counter.inc(float(entry["delta"]), **labels)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq
