"""Tests for the memory model, kernel execution model, streams and multi-GPU."""

from __future__ import annotations

import pytest

from repro.core import ScoringScheme, random_sequence, xdrop_extend
from repro.errors import ConfigurationError
from repro.gpusim import (
    BlockWorkTrace,
    KernelExecutionModel,
    KernelWorkload,
    MemoryModel,
    MultiGpuSystem,
    TESLA_V100,
    compose_streams,
)


@pytest.fixture
def workload(rng) -> KernelWorkload:
    blocks = []
    for _ in range(6):
        length = int(rng.integers(80, 160))
        q = random_sequence(length, rng)
        res = xdrop_extend(q, q, ScoringScheme(), xdrop=25, trace=True)
        blocks.append(BlockWorkTrace.from_extension(res, length, length))
    return KernelWorkload(blocks=blocks)


class TestMemoryModel:
    def test_footprint_and_fits(self, workload):
        model = MemoryModel(TESLA_V100)
        footprint = model.footprint_bytes(workload)
        assert footprint > 0
        assert model.fits(workload)

    def test_large_replication_exceeds_capacity(self, workload):
        model = MemoryModel(TESLA_V100)
        huge = KernelWorkload(blocks=workload.blocks, replication=1e9)
        assert not model.fits(huge)
        assert model.max_blocks_per_launch(huge) < huge.total_blocks

    def test_l2_residency_degrades_with_resident_blocks(self, workload):
        model = MemoryModel(TESLA_V100)
        few = model.l2_resident_fraction(workload, resident_blocks=80)
        many = model.l2_resident_fraction(workload, resident_blocks=80 * 32 * 100)
        assert few >= many
        assert 0.0 <= many <= 1.0

    def test_estimate_fields(self, workload):
        model = MemoryModel(TESLA_V100)
        est = model.estimate(workload, resident_blocks=2560)
        assert est.hbm_bytes > 0
        assert est.transfer_bytes > 0
        assert est.footprint_bytes == model.footprint_bytes(workload)

    def test_transfer_seconds(self):
        model = MemoryModel(TESLA_V100)
        assert model.transfer_seconds(16_000_000_000) == pytest.approx(1.0)
        with pytest.raises(ConfigurationError):
            model.transfer_seconds(-1)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            MemoryModel(TESLA_V100, bytes_per_cell_uncached=0)
        with pytest.raises(ConfigurationError):
            MemoryModel(TESLA_V100, sequence_read_amplification=0.5)


class TestKernelExecutionModel:
    def test_timing_fields_positive(self, workload):
        model = KernelExecutionModel(TESLA_V100)
        timing = model.execute(workload, threads_per_block=128)
        assert timing.total_seconds > 0
        assert timing.device_seconds > 0
        assert timing.warp_instructions > 0
        assert timing.cells == workload.total_cells
        assert timing.warp_gips > 0
        assert timing.operational_intensity > 0
        assert 0 < timing.utilization <= 1
        assert timing.bound in ("compute", "memory", "latency")

    def test_empty_workload_rejected(self):
        model = KernelExecutionModel(TESLA_V100)
        with pytest.raises(ConfigurationError):
            model.execute(KernelWorkload(), threads_per_block=128)

    def test_more_work_takes_longer(self, workload):
        model = KernelExecutionModel(TESLA_V100)
        small = model.execute(workload, threads_per_block=128)
        big = model.execute(
            KernelWorkload(blocks=workload.blocks, replication=1000.0),
            threads_per_block=128,
        )
        assert big.total_seconds > small.total_seconds
        assert big.warp_instructions == pytest.approx(1000 * small.warp_instructions)

    def test_few_blocks_underutilise_the_device(self, workload):
        # A single block cannot fill 80 SMs: utilisation collapses and the
        # per-block serial critical path is a visible fraction of the time.
        model = KernelExecutionModel(TESLA_V100)
        single = KernelWorkload(blocks=workload.blocks[:1])
        timing = model.execute(single, threads_per_block=128)
        assert timing.utilization < 0.01
        assert timing.critical_path_seconds > 0
        assert timing.bound in ("latency", "compute")

    def test_large_batches_become_compute_bound(self, workload):
        model = KernelExecutionModel(TESLA_V100)
        big = KernelWorkload(blocks=workload.blocks, replication=5000.0)
        timing = model.execute(big, threads_per_block=128)
        assert timing.bound == "compute"

    def test_gcups_improves_with_batching(self, workload):
        # The Table I story: inter-sequence parallelism (many blocks) lifts
        # throughput by orders of magnitude over a single alignment.
        model = KernelExecutionModel(TESLA_V100)
        single = model.execute(KernelWorkload(blocks=workload.blocks[:1]), 128)
        batched = model.execute(
            KernelWorkload(blocks=workload.blocks, replication=2000.0), 128
        )
        assert batched.gcups > 50 * single.gcups

    def test_invalid_model_parameters(self):
        with pytest.raises(ConfigurationError):
            KernelExecutionModel(TESLA_V100, latency_hiding_warps=0)
        with pytest.raises(ConfigurationError):
            KernelExecutionModel(TESLA_V100, launch_overhead_seconds=-1)


class TestStreams:
    def test_compose_two_streams(self, workload):
        model = KernelExecutionModel(TESLA_V100)
        t1 = model.execute(workload, threads_per_block=128)
        t2 = model.execute(workload, threads_per_block=128)
        combined = compose_streams([t1, t2])
        assert combined.streams == 2
        assert combined.device_seconds == pytest.approx(
            t1.device_seconds + t2.device_seconds
        )
        assert combined.cells == t1.cells + t2.cells
        assert combined.total_seconds >= combined.device_seconds
        assert combined.gcups > 0

    def test_empty_stream_list_rejected(self):
        with pytest.raises(ConfigurationError):
            compose_streams([])


class TestMultiGpuSystem:
    def test_homogeneous_constructor(self):
        system = MultiGpuSystem.homogeneous(6)
        assert system.num_devices == 6
        with pytest.raises(ConfigurationError):
            MultiGpuSystem.homogeneous(0)

    def test_combine_takes_max_plus_overhead(self, workload):
        model = KernelExecutionModel(TESLA_V100)
        timing = compose_streams([model.execute(workload, 128)])
        system = MultiGpuSystem.homogeneous(2, per_device_overhead_seconds=0.5)
        combined = system.combine([timing, timing])
        assert combined.total_seconds == pytest.approx(timing.total_seconds + 1.0)
        assert combined.devices == 2
        assert combined.load_imbalance == pytest.approx(1.0)

    def test_combine_ignores_idle_devices(self, workload):
        model = KernelExecutionModel(TESLA_V100)
        timing = compose_streams([model.execute(workload, 128)])
        system = MultiGpuSystem.homogeneous(3, per_device_overhead_seconds=0.1)
        combined = system.combine([timing, None, None])
        assert combined.devices == 1
        assert combined.host_overhead_seconds == pytest.approx(0.1)

    def test_combine_requires_matching_length(self, workload):
        model = KernelExecutionModel(TESLA_V100)
        timing = compose_streams([model.execute(workload, 128)])
        system = MultiGpuSystem.homogeneous(2)
        with pytest.raises(ConfigurationError):
            system.combine([timing])

    def test_all_idle_rejected(self):
        system = MultiGpuSystem.homogeneous(2)
        with pytest.raises(ConfigurationError):
            system.combine([None, None])
