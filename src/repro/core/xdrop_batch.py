"""Inter-sequence batched X-drop extension kernel.

The LOGAN paper's central observation (Section IV) is that X-drop extension
only scales when *inter-sequence* parallelism is exploited: one GPU block per
extension, thousands of extensions in flight at once.  The per-pair kernel in
:mod:`repro.core.xdrop_vectorized` captures the *intra*-sequence parallelism
of one anti-diagonal; this module adds the missing axis.

:func:`xdrop_extend_batch` packs every extension of a batch into padded 2-D
NumPy arrays — one row per alignment, exactly mirroring LOGAN's
one-block-per-extension layout — and advances a single global anti-diagonal
counter.  Each step performs one set of array operations over the whole
batch:

* the three-parent recurrence is evaluated for every alignment's band at
  once (rows whose band does not cover a column are masked to ``-inf``);
* the X-drop prune uses a per-row running best (the per-block shared
  variable of the GPU kernel);
* the band is trimmed per row by locating the first/last finite cell, and a
  row retires when its band empties (early termination) or its DP matrix is
  exhausted.

Only the union of the per-row bands is computed at every step, so the work
per anti-diagonal is ``O(batch * union_band_width)`` rather than
``O(batch * max_query_length)``.  Scores, end positions, cell counts and
band traces are bit-identical to the scalar reference for every row — the
property the parity tests enforce.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from .encoding import SequenceLike, WILDCARD_CODE, encode
from .result import NEG_INF, ExtensionResult
from .scoring import ScoringScheme

__all__ = ["xdrop_extend_batch"]

_NEG = np.int64(NEG_INF)


def _pack(seqs: list[np.ndarray], width: int) -> np.ndarray:
    """Pack variable-length code arrays into one padded uint8 matrix.

    Padding uses the wildcard code, which never scores a match; padded
    cells are additionally masked out by the per-row band bounds.
    """
    out = np.full((len(seqs), max(width, 1)), WILDCARD_CODE, dtype=np.uint8)
    for row, seq in enumerate(seqs):
        if len(seq):
            out[row, : len(seq)] = seq
    return out


def xdrop_extend_batch(
    pairs: Sequence[tuple[SequenceLike, SequenceLike]],
    scoring: ScoringScheme | None = None,
    xdrop: int = 100,
    trace: bool = False,
) -> list[ExtensionResult]:
    """X-drop-extend every (query, target) pair of a batch simultaneously.

    Parameters
    ----------
    pairs:
        The extensions to run, each a ``(query, target)`` tuple (strings or
        encoded ``uint8`` arrays).  Every extension starts at its own
        position (0, 0), as in :func:`repro.core.xdrop.xdrop_extend_reference`.
        Empty sequences are rejected (the shared kernel contract): callers
        must filter seed-flush extensions, as the batch runners do.
    scoring:
        Linear-gap scoring scheme shared by the whole batch.
    xdrop:
        X-drop threshold shared by the whole batch.
    trace:
        Record per-anti-diagonal band widths in every result (consumed by
        the GPU execution model).

    Returns
    -------
    list[ExtensionResult]
        One result per pair, in input order, identical to running the
        scalar reference on each pair individually.
    """
    if xdrop < 0:
        raise ConfigurationError(f"X-drop threshold must be non-negative, got {xdrop}")
    scoring = scoring if scoring is not None else ScoringScheme()
    if not pairs:
        return []

    queries = [encode(q) for q, _ in pairs]
    targets = [encode(t) for _, t in pairs]
    batch = len(pairs)
    m = np.array([len(q) for q in queries], dtype=np.int64)
    n = np.array([len(t) for t in targets], dtype=np.int64)
    max_m = int(m.max())
    max_n = int(n.max())
    match, mismatch, gap = (
        np.int64(scoring.match),
        np.int64(scoring.mismatch),
        np.int64(scoring.gap),
    )

    q_mat = _pack(queries, max_m)
    t_mat = _pack(targets, max_n)

    # Three anti-diagonal buffers, one row per alignment.  Buffer column
    # b corresponds to DP row i = b - 1; column 0 is a -inf guard.
    size = max_m + 2
    prev2 = np.full((batch, size), _NEG, dtype=np.int64)
    prev = np.full((batch, size), _NEG, dtype=np.int64)
    cur = np.full((batch, size), _NEG, dtype=np.int64)
    prev[:, 1] = 0  # origin cell (0, 0) of every alignment
    # Extent of columns last written into each buffer, cleared on reuse so a
    # recycled buffer never exposes stale scores ([start, stop) or None).
    prev2_ext: tuple[int, int] | None = None
    prev_ext: tuple[int, int] | None = (1, 2)
    cur_ext: tuple[int, int] | None = None

    # Per-row band state (DP-row index space, matching the scalar reference).
    prev_lo = np.zeros(batch, dtype=np.int64)
    prev_hi = np.zeros(batch, dtype=np.int64)
    prev2_lo = np.zeros(batch, dtype=np.int64)
    prev2_hi = np.full(batch, -1, dtype=np.int64)

    best = np.zeros(batch, dtype=np.int64)
    best_i = np.zeros(batch, dtype=np.int64)
    best_j = np.zeros(batch, dtype=np.int64)
    cells = np.ones(batch, dtype=np.int64)
    anti = np.ones(batch, dtype=np.int64)
    active = np.ones(batch, dtype=bool)
    early = np.zeros(batch, dtype=bool)

    last_diag = int((m + n).max())
    widths_rec: np.ndarray | None = None
    if trace:
        widths_rec = np.zeros((last_diag + 1, batch), dtype=np.int64)
        widths_rec[0, :] = 1

    for d in range(1, last_diag + 1):
        # Per-row band of anti-diagonal d: matrix bounds clipped by the rows
        # reachable from the two previous (trimmed) bands.
        lo = np.maximum(d - n, 0)
        hi = np.minimum(d, m)
        reach_lo = prev_lo.copy()
        reach_hi = prev_hi + 1
        has_prev2 = prev2_hi >= prev2_lo
        np.minimum(reach_lo, prev2_lo + 1, out=reach_lo, where=has_prev2)
        np.maximum(reach_hi, prev2_hi + 1, out=reach_hi, where=has_prev2)
        np.maximum(lo, reach_lo, out=lo)
        np.minimum(hi, reach_hi, out=hi)

        exhausted = active & (lo > hi)
        if exhausted.any():
            # Band emptied before the far corner => genuine early stop;
            # d beyond m + n is just the natural end of the matrix.
            early |= exhausted & (d <= m + n)
            active &= ~exhausted
        if not active.any():
            break

        # Union window of the active bands: the only columns computed.
        win_lo = int(lo[active].min())
        win_hi = int(hi[active].max())
        width = win_hi - win_lo + 1

        i_idx = np.arange(win_lo, win_hi + 1)
        j_idx = d - i_idx
        # Rows with i == 0 or j == 0 index position -1 / out of range; the
        # wrapped/clipped reads are harmless because the corresponding
        # parents are -inf guards (same argument as the per-pair kernel).
        qa = q_mat[:, i_idx - 1]
        ta = t_mat[:, np.clip(j_idx - 1, 0, max(max_n - 1, 0))]
        sub = np.where((qa == ta) & (qa != WILDCARD_CODE), match, mismatch)

        vals = prev2[:, win_lo : win_hi + 1] + sub  # parent (i-1, j-1)
        np.maximum(vals, prev[:, win_lo : win_hi + 1] + gap, out=vals)  # (i-1, j)
        np.maximum(vals, prev[:, win_lo + 1 : win_hi + 2] + gap, out=vals)  # (i, j-1)

        in_band = (i_idx >= lo[:, None]) & (i_idx <= hi[:, None]) & active[:, None]
        vals[~in_band] = _NEG
        np.copyto(vals, _NEG, where=vals < (best - xdrop)[:, None])

        band_width = np.where(active, hi - lo + 1, 0)
        cells += band_width
        anti += active
        if widths_rec is not None:
            widths_rec[d, :] = band_width

        finite = vals > _NEG
        any_finite = finite.any(axis=1)
        stopped = active & ~any_finite
        if stopped.any():
            early |= stopped
            active &= ~stopped
        if not active.any():
            break

        # Per-row anti-diagonal maximum (the warp-shuffle reduction of the
        # GPU kernel); the shared best is updated after the whole diagonal.
        row_best = vals.max(axis=1)
        arg = vals.argmax(axis=1)
        improved = row_best > best
        best_i = np.where(improved, win_lo + arg, best_i)
        best_j = np.where(improved, d - (win_lo + arg), best_j)
        best = np.where(improved, row_best, best)

        # Trim -inf runs from both ends of every row's band.
        first = finite.argmax(axis=1)
        last = width - 1 - finite[:, ::-1].argmax(axis=1)
        prev2_lo, prev2_hi = prev_lo, prev_hi
        prev_lo = np.where(active, win_lo + first, prev_lo)
        prev_hi = np.where(active, win_lo + last, prev_hi)

        # Write the diagonal into the scratch buffer and rotate.
        if cur_ext is not None:
            cur[:, cur_ext[0] : cur_ext[1]] = _NEG
        cur[:, win_lo + 1 : win_hi + 2] = vals
        cur_ext = (win_lo + 1, win_hi + 2)
        prev2, prev, cur = prev, cur, prev2
        prev2_ext, prev_ext, cur_ext = prev_ext, cur_ext, prev2_ext

    results: list[ExtensionResult] = []
    for k in range(batch):
        band_widths = None
        if widths_rec is not None:
            col = widths_rec[:, k]
            band_widths = np.ascontiguousarray(col[col > 0])
        results.append(
            ExtensionResult(
                best_score=int(best[k]),
                query_end=int(best_i[k]),
                target_end=int(best_j[k]),
                anti_diagonals=int(anti[k]),
                cells_computed=int(cells[k]),
                terminated_early=bool(early[k]),
                band_widths=band_widths,
            )
        )
    return results
