"""Scoring schemes for pairwise alignment.

The X-drop algorithm of Zhang et al. (2000) — and LOGAN, its GPU port — uses
a *linear* gap model: a fixed reward for a match, a fixed penalty for a
mismatch, and a fixed penalty per gapped base.  BELLA's defaults
(match=+1, mismatch=-1, gap=-1) are the library defaults here.

The ksw2 baseline additionally needs an *affine* gap model (gap-open +
gap-extend), so both scheme classes are provided.  Both expose a vectorised
``substitution`` method operating on encoded ``uint8`` arrays, which is what
the anti-diagonal kernels call in their inner loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .encoding import WILDCARD_CODE

__all__ = [
    "ScoringScheme",
    "AffineScoringScheme",
    "DEFAULT_SCORING",
    "BLAST_SCORING",
    "MINIMAP2_SCORING",
]


@dataclass(frozen=True)
class ScoringScheme:
    """Linear-gap scoring scheme used by the X-drop kernels.

    Attributes
    ----------
    match:
        Score added when the two bases are identical (must be positive).
    mismatch:
        Score added when the two bases differ (must be non-positive).
    gap:
        Score added per inserted/deleted base (must be negative).
    """

    match: int = 1
    mismatch: int = -1
    gap: int = -1

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise ConfigurationError(
                f"match score must be positive, got {self.match}"
            )
        if self.mismatch > 0:
            raise ConfigurationError(
                f"mismatch score must be non-positive, got {self.mismatch}"
            )
        if self.gap >= 0:
            raise ConfigurationError(f"gap score must be negative, got {self.gap}")

    def substitution(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorised substitution scores for two equal-length code arrays.

        Wildcard (``N``) bases never match, mirroring SeqAn's simple DNA
        score with N treated as a mismatch.
        """
        match_mask = (a == b) & (a != WILDCARD_CODE)
        return np.where(match_mask, np.int64(self.match), np.int64(self.mismatch))

    def substitution_scalar(self, a: int, b: int) -> int:
        """Scalar substitution score (used by the reference implementation)."""
        if a == b and a != WILDCARD_CODE:
            return self.match
        return self.mismatch

    def worst_case_drop(self, min_length: int) -> int:
        """Upper bound on the score drop along any optimal extension path.

        ``min_length`` is the length of the *shorter* of the two sequences.
        The running best score never exceeds ``match * min_length`` and any
        cell on the optimal path scores at least ``final_best - match *
        min_length`` (the remaining path can gain at most that much), so the
        drop below the running best is bounded by ``2 * match * min_length``.
        An X-drop threshold at least this large therefore guarantees the
        heuristic returns the exact best prefix-extension score.  Used by the
        property-based tests as the "large X" regime.
        """
        return 2 * self.match * max(min_length, 0) + self.match - self.mismatch

    def as_tuple(self) -> tuple[int, int, int]:
        """Return ``(match, mismatch, gap)`` — handy for kernels and hashing."""
        return (self.match, self.mismatch, self.gap)


@dataclass(frozen=True)
class AffineScoringScheme:
    """Affine-gap scoring scheme (gap = gap_open + k * gap_extend).

    Used by the ksw2/minimap2-style baseline.  ``gap_open`` is the penalty
    charged when a gap is opened *in addition to* the first ``gap_extend``;
    this matches ksw2's convention where a length-``k`` gap costs
    ``gap_open + k * gap_extend``.
    """

    match: int = 2
    mismatch: int = -4
    gap_open: int = 4
    gap_extend: int = 2

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise ConfigurationError(
                f"match score must be positive, got {self.match}"
            )
        if self.mismatch > 0:
            raise ConfigurationError(
                f"mismatch score must be non-positive, got {self.mismatch}"
            )
        if self.gap_open < 0 or self.gap_extend <= 0:
            raise ConfigurationError(
                "gap_open must be >= 0 and gap_extend > 0 "
                f"(got open={self.gap_open}, extend={self.gap_extend})"
            )

    def substitution(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorised substitution scores for two equal-length code arrays."""
        match_mask = (a == b) & (a != WILDCARD_CODE)
        return np.where(match_mask, np.int64(self.match), np.int64(self.mismatch))

    def gap_cost(self, length: int) -> int:
        """Total (positive) cost of a gap of *length* bases."""
        if length <= 0:
            return 0
        return self.gap_open + length * self.gap_extend

    def as_linear(self) -> ScoringScheme:
        """Closest linear-gap approximation (gap = open + extend, charged per base)."""
        return ScoringScheme(
            match=self.match,
            mismatch=self.mismatch,
            gap=-(self.gap_open + self.gap_extend),
        )


#: BELLA / LOGAN default scoring (match=1, mismatch=-1, gap=-1).
DEFAULT_SCORING = ScoringScheme(match=1, mismatch=-1, gap=-1)

#: BLAST-like DNA scoring.
BLAST_SCORING = ScoringScheme(match=1, mismatch=-2, gap=-2)

#: minimap2 map-pb preset (affine), used by the ksw2 baseline.
MINIMAP2_SCORING = AffineScoringScheme(match=2, mismatch=-4, gap_open=4, gap_extend=2)
