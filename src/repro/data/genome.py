"""Synthetic genome generation.

The BELLA experiments of the paper use an E. coli PacBio dataset and a
synthetic C. elegans dataset; neither is redistributable here, so the data
substrate generates synthetic genomes with the two properties that matter
for the overlap/alignment pipeline:

* realistic base composition (uniform ACGT is sufficient for alignment
  behaviour at the error rates involved), and
* optional *repeat* regions — segments copied to other locations of the
  genome — because repeats are what create spurious candidate overlaps that
  the X-drop alignment step must reject (the very scenario Section III uses
  to motivate X-drop over full Smith–Waterman).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.encoding import decode, random_sequence
from ..errors import DatasetError

__all__ = ["RepeatSpec", "Genome", "simulate_genome"]


@dataclass(frozen=True)
class RepeatSpec:
    """Description of a repeat family to plant in a synthetic genome.

    Attributes
    ----------
    length:
        Length of the repeated element in bases.
    copies:
        Number of copies planted (the first copy is the template).
    divergence:
        Per-base substitution probability applied independently to every
        copy (0 = identical copies).
    """

    length: int
    copies: int
    divergence: float = 0.02

    def __post_init__(self) -> None:
        if self.length <= 0 or self.copies <= 0:
            raise DatasetError("repeat length and copies must be positive")
        if not 0.0 <= self.divergence < 1.0:
            raise DatasetError("divergence must be in [0, 1)")


@dataclass
class Genome:
    """A synthetic genome: encoded sequence plus repeat annotations."""

    sequence: np.ndarray
    repeat_positions: list[tuple[int, int]] = field(default_factory=list)
    name: str = "synthetic"

    def __len__(self) -> int:
        return int(len(self.sequence))

    def to_string(self) -> str:
        """Decode the genome to an ACGT string (small genomes only)."""
        return decode(self.sequence)


def simulate_genome(
    length: int,
    repeats: list[RepeatSpec] | None = None,
    rng: np.random.Generator | None = None,
    name: str = "synthetic",
) -> Genome:
    """Generate a synthetic genome of *length* bases.

    Parameters
    ----------
    length:
        Genome length in bases.
    repeats:
        Repeat families to plant.  Copies are placed at uniformly random,
        possibly overlapping positions; each copy's location is recorded in
        ``repeat_positions`` so tests can verify that repeat-induced
        candidate overlaps are rejected by the alignment step.
    rng:
        NumPy random generator (a fresh default generator when omitted).
    """
    if length <= 0:
        raise DatasetError(f"genome length must be positive, got {length}")
    rng = rng or np.random.default_rng()
    sequence = random_sequence(length, rng)
    repeat_positions: list[tuple[int, int]] = []

    for spec in repeats or []:
        if spec.length >= length:
            raise DatasetError(
                f"repeat length {spec.length} does not fit in genome of length {length}"
            )
        template = random_sequence(spec.length, rng)
        for _ in range(spec.copies):
            copy = template.copy()
            if spec.divergence > 0:
                mask = rng.random(spec.length) < spec.divergence
                if mask.any():
                    copy[mask] = rng.integers(0, 4, size=int(mask.sum()), dtype=np.uint8)
            start = int(rng.integers(0, length - spec.length))
            sequence[start : start + spec.length] = copy
            repeat_positions.append((start, start + spec.length))

    return Genome(sequence=sequence, repeat_positions=repeat_positions, name=name)
